// Distributed two-phase transition latency: how long one coordinated
// cluster reload takes end to end — slice + diff + PREPARE (both nodes
// validate and park) + unanimous vote + COMMIT (apply at quiescence) +
// acknowledgements — over the in-process loopback transport.
//
// A two-node cluster (periodic producer on node A bridged to a sporadic
// sink on node B) toggles between two target shapes: each reload removes
// the current sink, adds its replacement, and re-targets the bridged
// binding across nodes. Reported (not asserted): commits, coordinator
// round-trip median/p99/worst, and the per-node commit latencies the
// nodes measured themselves. Emits BENCH_dist_reconfig_latency.json
// (honors RTCF_BENCH_OUT).
//
// A second phase measures membership cost: join-to-converged, the full
// admission handshake (candidate JOIN request -> coordinator poll ->
// admit_node: epoch-advancing admission plus the committed re-shard that
// moves the sink onto the joiner) against a fresh two-node cluster per
// sample. Reported as the "join_to_converged" row.
//
//   bench_dist_reconfig_latency [duration_ms]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "dist/coordinator.hpp"
#include "dist/node_runtime.hpp"
#include "fig7_harness.hpp"
#include "runtime/content_registry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rtcf;

class PulseImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = ++sent_;
    port(0).send(m);
  }

 private:
  std::uint64_t sent_ = 0;
};

class DrainImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++received_; }

 private:
  std::uint64_t received_ = 0;
};

RTCF_REGISTER_CONTENT(PulseImpl)
RTCF_REGISTER_CONTENT(DrainImpl)

/// Producer@a --bridged async--> <sink>@b.
model::Architecture make_arch(const char* sink_name) {
  using namespace model;
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(2));
  producer.set_content_class("PulseImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(30));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "IDrain"});
  auto& sink = arch.add_active(sink_name, ActivationKind::Sporadic);
  sink.set_content_class("DrainImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(true);
  sink.add_interface({"in", InterfaceRole::Server, "IDrain"});
  Binding binding;
  binding.client = {"Producer", "out"};
  binding.server = {sink_name, "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 32;
  arch.add_binding(binding);
  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  arch.add_child(rt, producer);
  auto& reg = arch.add_thread_domain("reg1", DomainType::Regular, 5);
  arch.add_child(reg, *arch.find(sink_name));
  model::ModeDecl mode;
  mode.name = "Run";
  mode.components.push_back({"Producer", {}, {}});
  arch.add_mode(std::move(mode));
  return arch;
}

validate::NodeMap make_map() {
  validate::NodeMap map;
  map.nodes = {"a", "b"};
  map.assignment = {{"Producer", "a"}, {"SinkA", "b"}, {"SinkB", "b"}};
  return map;
}

/// Pre-join view: "c" declared but holding the empty slice — what the
/// candidate NodeRuntime boots with.
validate::NodeMap candidate_map() {
  auto map = make_map();
  map.nodes.push_back("c");
  return map;
}

/// Post-admission target: the re-shard moves SinkA onto the joiner.
validate::NodeMap joined_map() {
  validate::NodeMap map;
  map.nodes = {"a", "b", "c"};
  map.assignment = {{"Producer", "a"}, {"SinkA", "c"}, {"SinkB", "b"}};
  return map;
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 1000;
  if (argc > 1) duration_ms = std::atoi(argv[1]);
  if (duration_ms <= 0) duration_ms = 1000;

  const auto global = make_arch("SinkA");
  const auto alt_a = make_arch("SinkA");
  const auto alt_b = make_arch("SinkB");
  const auto map = make_map();

  dist::NodeRuntime::Options node_options;
  node_options.run_duration =
      rtsj::RelativeTime::milliseconds(duration_ms + 100);
  dist::NodeRuntime node_a(global, map, "a", node_options);
  dist::NodeRuntime node_b(global, map, "b", node_options);
  dist::ReconfigCoordinator coordinator(map);
  auto [a_node, a_coord] = comm::LoopbackChannel::make_pair();
  auto [b_node, b_coord] = comm::LoopbackChannel::make_pair();
  node_a.attach_control(a_node);
  node_b.attach_control(b_node);
  coordinator.attach("a", a_coord, global);
  coordinator.attach("b", b_coord, global);
  auto [ab, ba] = comm::LoopbackChannel::make_pair();
  node_a.connect_peer("b", ab);
  node_b.connect_peer("a", ba);
  node_a.start();
  node_b.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  util::SampleSet round_trip_us(4096);
  util::SampleSet node_commit_us(8192);
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  bool on_b = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(duration_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto start = std::chrono::steady_clock::now();
    const auto outcome =
        coordinator.coordinate_reload(on_b ? alt_a : alt_b);
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    if (outcome.committed) {
      ++commits;
      round_trip_us.add(static_cast<double>(elapsed.count()) / 1000.0);
      for (const auto& node : outcome.nodes) {
        node_commit_us.add(static_cast<double>(node.latency_ns) / 1000.0);
      }
      on_b = !on_b;
    } else {
      ++aborts;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  node_a.join_executive();
  node_b.join_executive();
  node_a.stop();
  node_b.stop();

  const double median = commits > 0 ? round_trip_us.median() : 0.0;
  const double p99 = commits > 0 ? round_trip_us.percentile(99) : 0.0;
  const double worst = commits > 0 ? round_trip_us.max() : 0.0;
  const double node_median = commits > 0 ? node_commit_us.median() : 0.0;

  util::Table table({"commits", "aborts", "median_us", "p99_us", "worst_us",
                     "node_median_us"});
  table.add_row({std::to_string(commits), std::to_string(aborts),
                 util::Table::num(median, 1), util::Table::num(p99, 1),
                 util::Table::num(worst, 1),
                 util::Table::num(node_median, 1)});
  std::printf("%s\n", table.to_string().c_str());

  // --- Join-to-converged: time the full admission handshake against a
  // fresh two-node cluster per sample, so every admission starts from
  // the same two-node baseline. The clock runs from the candidate's
  // JOIN request until admit_node returns with the re-shard committed
  // and the membership view containing the joiner.
  util::SampleSet join_sample_us(16);
  std::uint64_t join_commits = 0;
  const int join_samples = 5;
  for (int i = 0; i < join_samples; ++i) {
    dist::NodeRuntime::Options join_options;
    join_options.run_duration = rtsj::RelativeTime::milliseconds(700);
    dist::NodeRuntime ja(global, map, "a", join_options);
    dist::NodeRuntime jb(global, map, "b", join_options);
    dist::NodeRuntime jc(global, candidate_map(), "c", join_options);
    dist::ReconfigCoordinator join_coord(map);
    auto [ja_node, ja_coord] = comm::LoopbackChannel::make_pair();
    auto [jb_node, jb_coord] = comm::LoopbackChannel::make_pair();
    auto [jc_node, jc_coord] = comm::LoopbackChannel::make_pair();
    ja.attach_control(ja_node);
    jb.attach_control(jb_node);
    jc.attach_control(jc_node);
    join_coord.attach("a", ja_coord, global);
    join_coord.attach("b", jb_coord, global);
    join_coord.stage_candidate("c", jc_coord);
    auto [jab, jba] = comm::LoopbackChannel::make_pair();
    ja.connect_peer("b", jab);
    jb.connect_peer("a", jba);
    auto [jac, jca] = comm::LoopbackChannel::make_pair();
    ja.connect_peer("c", jac);
    jc.connect_peer("a", jca);
    auto [jbc, jcb] = comm::LoopbackChannel::make_pair();
    jb.connect_peer("c", jbc);
    jc.connect_peer("b", jcb);
    ja.start();
    jb.start();
    jc.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const auto join_start = std::chrono::steady_clock::now();
    const bool requested = jc.request_join();
    const auto request = join_coord.poll_membership_request(
        rtsj::RelativeTime::milliseconds(500));
    bool converged = false;
    if (requested && request.has_value() && request->join) {
      const auto outcome = join_coord.admit_node("c", global, joined_map());
      converged =
          outcome.committed && join_coord.membership().map.has_node("c");
    }
    const auto join_elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - join_start);
    if (converged) {
      ++join_commits;
      join_sample_us.add(static_cast<double>(join_elapsed.count()) / 1000.0);
    }
    ja.join_executive();
    jb.join_executive();
    jc.join_executive();
    ja.stop();
    jb.stop();
    jc.stop();
  }

  const double join_median = join_commits > 0 ? join_sample_us.median() : 0.0;
  const double join_worst = join_commits > 0 ? join_sample_us.max() : 0.0;
  util::Table join_table({"join_commits", "join_median_us", "join_worst_us"});
  join_table.add_row({std::to_string(join_commits),
                      util::Table::num(join_median, 1),
                      util::Table::num(join_worst, 1)});
  std::printf("%s\n", join_table.to_string().c_str());

  bench::JsonRow row;
  row.name = "two_node_loopback";
  row.metrics = {
      {"commits", static_cast<double>(commits)},
      {"aborts", static_cast<double>(aborts)},
      {"median_us", median},
      {"p99_us", p99},
      {"worst_us", worst},
      {"node_median_us", node_median},
  };
  bench::JsonRow join_row;
  join_row.name = "join_to_converged";
  join_row.metrics = {
      {"join_commits", static_cast<double>(join_commits)},
      {"join_median_us", join_median},
      {"join_worst_us", join_worst},
  };
  bench::emit_json("dist_reconfig_latency", {row, join_row});
  return 0;
}
