// Distributed two-phase transition latency: how long one coordinated
// cluster reload takes end to end — slice + diff + PREPARE (both nodes
// validate and park) + unanimous vote + COMMIT (apply at quiescence) +
// acknowledgements — over the in-process loopback transport.
//
// A two-node cluster (periodic producer on node A bridged to a sporadic
// sink on node B) toggles between two target shapes: each reload removes
// the current sink, adds its replacement, and re-targets the bridged
// binding across nodes. Reported (not asserted): commits, coordinator
// round-trip median/p99/worst, and the per-node commit latencies the
// nodes measured themselves. Emits BENCH_dist_reconfig_latency.json
// (honors RTCF_BENCH_OUT).
//
//   bench_dist_reconfig_latency [duration_ms]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "dist/coordinator.hpp"
#include "dist/node_runtime.hpp"
#include "fig7_harness.hpp"
#include "runtime/content_registry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rtcf;

class PulseImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = ++sent_;
    port(0).send(m);
  }

 private:
  std::uint64_t sent_ = 0;
};

class DrainImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++received_; }

 private:
  std::uint64_t received_ = 0;
};

RTCF_REGISTER_CONTENT(PulseImpl)
RTCF_REGISTER_CONTENT(DrainImpl)

/// Producer@a --bridged async--> <sink>@b.
model::Architecture make_arch(const char* sink_name) {
  using namespace model;
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(2));
  producer.set_content_class("PulseImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(30));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "IDrain"});
  auto& sink = arch.add_active(sink_name, ActivationKind::Sporadic);
  sink.set_content_class("DrainImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(true);
  sink.add_interface({"in", InterfaceRole::Server, "IDrain"});
  Binding binding;
  binding.client = {"Producer", "out"};
  binding.server = {sink_name, "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 32;
  arch.add_binding(binding);
  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  arch.add_child(rt, producer);
  auto& reg = arch.add_thread_domain("reg1", DomainType::Regular, 5);
  arch.add_child(reg, *arch.find(sink_name));
  model::ModeDecl mode;
  mode.name = "Run";
  mode.components.push_back({"Producer", {}, {}});
  arch.add_mode(std::move(mode));
  return arch;
}

validate::NodeMap make_map() {
  validate::NodeMap map;
  map.nodes = {"a", "b"};
  map.assignment = {{"Producer", "a"}, {"SinkA", "b"}, {"SinkB", "b"}};
  return map;
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 1000;
  if (argc > 1) duration_ms = std::atoi(argv[1]);
  if (duration_ms <= 0) duration_ms = 1000;

  const auto global = make_arch("SinkA");
  const auto alt_a = make_arch("SinkA");
  const auto alt_b = make_arch("SinkB");
  const auto map = make_map();

  dist::NodeRuntime::Options node_options;
  node_options.run_duration =
      rtsj::RelativeTime::milliseconds(duration_ms + 100);
  dist::NodeRuntime node_a(global, map, "a", node_options);
  dist::NodeRuntime node_b(global, map, "b", node_options);
  dist::ReconfigCoordinator coordinator(map);
  auto [a_node, a_coord] = comm::LoopbackChannel::make_pair();
  auto [b_node, b_coord] = comm::LoopbackChannel::make_pair();
  node_a.attach_control(a_node);
  node_b.attach_control(b_node);
  coordinator.attach("a", a_coord, global);
  coordinator.attach("b", b_coord, global);
  auto [ab, ba] = comm::LoopbackChannel::make_pair();
  node_a.connect_peer("b", ab);
  node_b.connect_peer("a", ba);
  node_a.start();
  node_b.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  util::SampleSet round_trip_us(4096);
  util::SampleSet node_commit_us(8192);
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  bool on_b = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(duration_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto start = std::chrono::steady_clock::now();
    const auto outcome =
        coordinator.coordinate_reload(on_b ? alt_a : alt_b);
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    if (outcome.committed) {
      ++commits;
      round_trip_us.add(static_cast<double>(elapsed.count()) / 1000.0);
      for (const auto& node : outcome.nodes) {
        node_commit_us.add(static_cast<double>(node.latency_ns) / 1000.0);
      }
      on_b = !on_b;
    } else {
      ++aborts;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  node_a.join_executive();
  node_b.join_executive();
  node_a.stop();
  node_b.stop();

  const double median = commits > 0 ? round_trip_us.median() : 0.0;
  const double p99 = commits > 0 ? round_trip_us.percentile(99) : 0.0;
  const double worst = commits > 0 ? round_trip_us.max() : 0.0;
  const double node_median = commits > 0 ? node_commit_us.median() : 0.0;

  util::Table table({"commits", "aborts", "median_us", "p99_us", "worst_us",
                     "node_median_us"});
  table.add_row({std::to_string(commits), std::to_string(aborts),
                 util::Table::num(median, 1), util::Table::num(p99, 1),
                 util::Table::num(worst, 1),
                 util::Table::num(node_median, 1)});
  std::printf("%s\n", table.to_string().c_str());

  bench::JsonRow row;
  row.name = "two_node_loopback";
  row.metrics = {
      {"commits", static_cast<double>(commits)},
      {"aborts", static_cast<double>(aborts)},
      {"median_us", median},
      {"p99_us", p99},
      {"worst_us", worst},
      {"node_median_us", node_median},
  };
  bench::emit_json("dist_reconfig_latency", {row});
  return 0;
}
