// Saturating throughput of the gateway data plane, per transport,
// before/after batching (docs/DATAPLANE.md §6 is the companion runbook).
//
// For each transport (loopback, TCP over localhost, shm ring) the bench
// drives a dist::DataPlane at saturating load — the sender offers as fast
// as the flow-control window allows — in two modes:
//
//   * unbatched: the peer announced protocol version 2, so every message
//     goes out as its own DATA frame (one channel write — one syscall on
//     TCP — per message: the pre-v3 hot path);
//   * batched:   the peer is v3, so messages coalesce into BATCH frames
//     under the credit window, with the bench's receiver granting CREDIT
//     back as it consumes.
//
// Reported per variant: sustained messages/sec, end-to-end p99 latency at
// that load (producer timestamp to receive instant), and messages per
// channel write. A final phase points the batched plane at a stalled
// receiver that never grants credit, proving sender memory stays bounded
// by the route queue cap (drop-newest beyond it).
//
// Three properties are asserted hard, so a regression fails the bench
// run: batched TCP must beat unbatched TCP by >= 3x messages/sec,
// batched TCP at saturation must average >= 8 messages per channel write
// (i.e. the per-message-syscall exit path stays dead), and the batched
// shm path must run allocation-free in steady state (allocs_per_msg == 0
// after a 10% warmup — the zero-copy exit path stays zero-alloc).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "comm/channel.hpp"
#include "comm/message.hpp"
#include "comm/shm_ring.hpp"
#include "dist/batch_view.hpp"
#include "dist/dataplane.hpp"
#include "dist/protocol.hpp"
#include "fig7_harness.hpp"
#include "rtsj/time/time.hpp"
#include "util/stats.hpp"

namespace {

using rtcf::bench::JsonRow;
using rtcf::comm::Frame;
using rtcf::dist::DataPlane;
using rtcf::dist::FrameType;
using rtcf::rtsj::AbsoluteTime;
using rtcf::rtsj::RelativeTime;

std::int64_t now_ns() {
  return (rtcf::rtsj::SteadyClock::instance().now() - AbsoluteTime())
      .nanos();
}

struct VariantOutcome {
  double msgs_per_sec = 0.0;
  double p99_us = 0.0;
  double median_us = 0.0;
  double msgs_per_frame = 0.0;
  std::uint64_t frames = 0;
  /// Steady-state allocations per message, from the pool/ring counters
  /// after a 10% warmup: pool misses are the only steady-state allocation
  /// source on the send path, so this must read 0.0 once the pool is
  /// warm (and trivially on the in-ring shm path, which skips the pool).
  double allocs_per_msg = 0.0;
  /// Payload bytes staged in user-space buffers per message (same warmup
  /// window). 0 when frames are encoded in the ring.
  double bytes_copied_per_msg = 0.0;
};

/// Drives `count` messages through a fresh DataPlane from `near` to
/// `far`. `batched` selects the peer's announced protocol version.
VariantOutcome run_variant(const std::shared_ptr<rtcf::comm::Channel>& near,
                           const std::shared_ptr<rtcf::comm::Channel>& far,
                           bool batched, std::size_t count) {
  rtcf::dist::DataPlaneConfig config;
  config.batch_max = 32;
  config.flush_interval = RelativeTime::microseconds(200);
  config.credit_window = 1024;
  config.route_queue_cap = 4096;
  DataPlane plane(config);
  plane.set_peer_version("peer",
                         batched ? rtcf::dist::kProtocolVersion
                                 : std::uint16_t{2});
  const std::size_t route = plane.add_route("C", "out", near, "peer");

  rtcf::util::SampleSet latency_us(count);
  std::atomic<std::int64_t> end_ns{0};

  std::thread receiver([&] {
    std::uint64_t received = 0;
    std::uint64_t pending_credits = 0;
    Frame frame;
    while (received < count) {
      if (!far->receive(frame, RelativeTime::milliseconds(200))) continue;
      const std::int64_t arrival = now_ns();
      if (frame.type == static_cast<std::uint16_t>(FrameType::Data)) {
        const rtcf::dist::DataPayload data = rtcf::dist::parse_data(frame);
        latency_us.add(static_cast<double>(arrival -
                                           data.message.timestamp_ns) /
                       1e3);
        ++received;
      } else if (frame.type == static_cast<std::uint16_t>(FrameType::Batch)) {
        // Decode in place, as the runtime's inbox drain does — no
        // BatchPayload materialization on the consuming side either.
        rtcf::dist::BatchView view(frame.payload.data(),
                                   frame.payload.size());
        rtcf::dist::BatchView::Route r;
        rtcf::comm::Message m;
        while (view.next_route(r)) {
          for (std::uint32_t i = 0; i < r.messages; ++i) {
            view.next_message(m);
            latency_us.add(
                static_cast<double>(arrival - m.timestamp_ns) / 1e3);
            ++received;
            ++pending_credits;
          }
        }
      }
      // Replenish-on-consume, as a real entry gateway would
      // (docs/DATAPLANE.md §3): grant once half a window accumulates.
      if (batched && pending_credits >= config.credit_window / 2) {
        far->send(rtcf::dist::make_credit({"C", "out", pending_credits}));
        pending_credits = 0;
      }
    }
    end_ns.store(now_ns());
  });

  const auto poll_credits = [&] {
    Frame frame;
    while (near->receive(frame, RelativeTime::zero())) {
      if (frame.type == static_cast<std::uint16_t>(FrameType::Credit)) {
        plane.on_credit(rtcf::dist::parse_credit(frame));
      }
    }
  };

  rtcf::comm::Message msg;
  msg.type_id = 7;
  msg.size = 16;
  // Counter snapshot after 10% of the run: the pool has seen every slab
  // class it will ever need by then, so the delta to the end measures the
  // *steady state* — cold-start allocations are warmup, not regressions.
  const std::size_t warmup = count / 10;
  rtcf::dist::DataPlaneStats warm{};
  bool warm_taken = false;
  const std::int64_t start = now_ns();
  for (std::size_t i = 0; i < count; ++i) {
    msg.sequence = i;
    msg.timestamp_ns = now_ns();
    while (plane.offer(route, msg) == DataPlane::Offer::Dropped) {
      // Route queue full: the window is exhausted and the receiver is
      // behind. Pick up grants, push a deadline flush, try again.
      poll_credits();
      plane.flush(false);
      std::this_thread::yield();
      msg.timestamp_ns = now_ns();
    }
    if (!warm_taken && i >= warmup) {
      warm = plane.stats();
      warm_taken = true;
    }
    if (batched && (i & 0x3F) == 0) poll_credits();
  }
  while (plane.stats().queued != 0) {
    poll_credits();
    plane.flush(true);
    std::this_thread::yield();
  }
  receiver.join();

  const rtcf::dist::DataPlaneStats stats = plane.stats();
  VariantOutcome out;
  const double elapsed_s =
      static_cast<double>(end_ns.load() - start) / 1e9;
  out.msgs_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(count) / elapsed_s : 0.0;
  out.p99_us = latency_us.percentile(99);
  out.median_us = latency_us.median();
  out.frames = stats.batches + stats.legacy_sends;
  out.msgs_per_frame =
      out.frames != 0
          ? static_cast<double>(stats.sent) /
                static_cast<double>(out.frames)
          : 0.0;
  const std::uint64_t steady_sent = stats.sent - warm.sent;
  if (steady_sent != 0) {
    out.allocs_per_msg =
        static_cast<double>(stats.pool_misses - warm.pool_misses) /
        static_cast<double>(steady_sent);
    out.bytes_copied_per_msg =
        static_cast<double>(stats.bytes_copied - warm.bytes_copied) /
        static_cast<double>(steady_sent);
  }
  return out;
}

JsonRow to_row(const std::string& name, const VariantOutcome& v) {
  JsonRow row;
  row.name = name;
  row.metrics = {{"msgs_per_sec", v.msgs_per_sec},
                 {"median_us", v.median_us},
                 {"p99_us", v.p99_us},
                 {"msgs_per_frame", v.msgs_per_frame},
                 {"allocs_per_msg", v.allocs_per_msg},
                 {"bytes_copied_per_msg", v.bytes_copied_per_msg}};
  return row;
}

/// A batched plane facing a receiver that never grants credit: the window
/// drains once, then everything queues. Sender memory must stay bounded
/// by route_queue_cap, with the overflow declared as drop-newest.
JsonRow run_stalled_receiver(std::size_t offers, bool& ok) {
  rtcf::dist::DataPlaneConfig config;
  config.batch_max = 32;
  config.flush_interval = RelativeTime::microseconds(200);
  config.credit_window = 64;
  config.route_queue_cap = 256;
  DataPlane plane(config);
  plane.set_peer_version("peer", rtcf::dist::kProtocolVersion);
  auto [near, far] = rtcf::comm::LoopbackChannel::make_pair();
  const std::size_t route = plane.add_route("C", "out", near, "peer");

  rtcf::comm::Message msg;
  for (std::size_t i = 0; i < offers; ++i) {
    msg.sequence = i;
    msg.timestamp_ns = now_ns();
    plane.offer(route, msg);
  }
  const rtcf::dist::DataPlaneStats stats = plane.stats();
  if (stats.queued > config.route_queue_cap) {
    std::fprintf(stderr,
                 "FAIL: stalled receiver queued %llu > cap %zu\n",
                 static_cast<unsigned long long>(stats.queued),
                 config.route_queue_cap);
    ok = false;
  }
  if (stats.offered != stats.sent + stats.queued + stats.overflow_drops) {
    std::fprintf(stderr, "FAIL: stalled receiver loses messages silently\n");
    ok = false;
  }
  far->close();
  JsonRow row;
  row.name = "stalled-receiver";
  row.metrics = {
      {"offered", static_cast<double>(stats.offered)},
      {"sent", static_cast<double>(stats.sent)},
      {"queued", static_cast<double>(stats.queued)},
      {"overflow_drops", static_cast<double>(stats.overflow_drops)},
      {"queue_cap", static_cast<double>(config.route_queue_cap)}};
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // argv[1]: thousands of messages per variant (default 200).
  std::size_t kilo = 200;
  if (argc > 1) kilo = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (kilo == 0) kilo = 1;
  const std::size_t count = kilo * 1000;

  std::vector<JsonRow> rows;
  bool ok = true;
  double tcp_unbatched = 0.0;
  double tcp_batched = 0.0;
  double tcp_batched_per_frame = 0.0;
  double shm_batched_allocs = -1.0;  // -1: shm variant did not run.

  for (const bool batched : {false, true}) {
    const char* mode = batched ? "batched" : "unbatched";

    {
      auto [near, far] = rtcf::comm::LoopbackChannel::make_pair();
      const VariantOutcome v = run_variant(near, far, batched, count);
      rows.push_back(to_row(std::string("loopback/") + mode, v));
      near->close();
    }

    {
      std::shared_ptr<rtcf::comm::TcpChannel> server =
          rtcf::comm::TcpChannel::listen(0);
      if (server == nullptr) {
        std::fprintf(stderr, "FAIL: cannot listen on localhost\n");
        return 1;
      }
      std::shared_ptr<rtcf::comm::TcpChannel> client =
          rtcf::comm::TcpChannel::connect("127.0.0.1",
                                          server->bound_port());
      if (client == nullptr) {
        std::fprintf(stderr, "FAIL: cannot connect to localhost\n");
        return 1;
      }
      const VariantOutcome v = run_variant(client, server, batched, count);
      rows.push_back(to_row(std::string("tcp/") + mode, v));
      if (batched) {
        tcp_batched = v.msgs_per_sec;
        tcp_batched_per_frame = v.msgs_per_frame;
      } else {
        tcp_unbatched = v.msgs_per_sec;
      }
      client->close();
      server->close();
    }

    {
      const std::string token =
          "/rtcf-bench-dp." + std::to_string(::getpid());
      std::shared_ptr<rtcf::comm::ShmRingChannel> creator =
          rtcf::comm::ShmRingChannel::create(token, std::size_t{1} << 20);
      std::shared_ptr<rtcf::comm::ShmRingChannel> attacher =
          creator == nullptr ? nullptr
                             : rtcf::comm::ShmRingChannel::attach(token);
      if (creator == nullptr || attacher == nullptr) {
        std::fprintf(stderr, "note: shm ring unavailable, skipping %s\n",
                     mode);
      } else {
        const VariantOutcome v =
            run_variant(creator, attacher, batched, count);
        rows.push_back(to_row(std::string("shm/") + mode, v));
        if (batched) shm_batched_allocs = v.allocs_per_msg;
        attacher->close();
      }
    }
  }

  rows.push_back(run_stalled_receiver(10'000, ok));

  // The two hard acceptance properties of the batched exit path.
  if (tcp_unbatched > 0.0 && tcp_batched < 3.0 * tcp_unbatched) {
    std::fprintf(stderr,
                 "FAIL: batched TCP %.0f msg/s < 3x unbatched %.0f msg/s\n",
                 tcp_batched, tcp_unbatched);
    ok = false;
  }
  if (tcp_batched_per_frame < 8.0) {
    std::fprintf(stderr,
                 "FAIL: batched TCP averaged %.2f msgs per channel write "
                 "(< 8): the per-message-syscall path is back\n",
                 tcp_batched_per_frame);
    ok = false;
  }
  if (shm_batched_allocs > 0.0) {
    std::fprintf(stderr,
                 "FAIL: batched shm allocated %.6f times per message in "
                 "steady state (must be 0): the zero-copy exit path "
                 "regressed\n",
                 shm_batched_allocs);
    ok = false;
  }

  rtcf::bench::emit_json("dist_throughput", rows);
  return ok ? 0 : 1;
}
