// E5 ablation: relative cost of the cross-scope communication patterns
// (§4.1 memory interceptors). One benchmark per pattern op on both the
// asynchronous staging path and the synchronous call path.
#include <benchmark/benchmark.h>

#include "comm/message.hpp"
#include "membrane/patterns.hpp"
#include "rtsj/memory/context.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace {

using namespace rtcf;
using membrane::PatternOp;
using membrane::PatternRuntime;

struct EchoServer final : comm::IInvocable {
  comm::Message invoke(const comm::Message& m) override { return m; }
};

comm::Message make_message() {
  comm::Message m;
  m.type_id = 7;
  double payload = 3.14;
  m.store(payload);
  return m;
}

struct PatternFixture {
  rtsj::ScopedMemory outer{"bench-outer", 64 * 1024};
  rtsj::ScopedMemory server_scope{"bench-server", 64 * 1024};
  // Sibling scopes: one wedge context each, or the second would be
  // parented under the first.
  rtsj::ThreadContext wedge_a{"bench-wedge-a", rtsj::ThreadKind::Realtime, 20,
                              &rtsj::ImmortalMemory::instance()};
  rtsj::ThreadContext wedge_b{"bench-wedge-b", rtsj::ThreadKind::Realtime, 20,
                              &rtsj::ImmortalMemory::instance()};
  rtsj::ScopePin pin_outer{outer, wedge_a};
  rtsj::ScopePin pin_server{server_scope, wedge_b};

  PatternRuntime make(PatternOp op) {
    switch (op) {
      case PatternOp::ScopeEnter:
        return PatternRuntime::make(op, &server_scope, nullptr);
      case PatternOp::SharedScope:
        return PatternRuntime::make(op, &server_scope, &outer);
      case PatternOp::Handoff:
        return PatternRuntime::make(op, &server_scope, &outer);
      default:
        return PatternRuntime::make(op, &server_scope, &server_scope);
    }
  }
};

void BM_PatternStage(benchmark::State& state) {
  PatternFixture fixture;
  auto pattern = fixture.make(static_cast<PatternOp>(state.range(0)));
  const comm::Message m = make_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&pattern.stage(m));
  }
  state.SetLabel(membrane::to_string(static_cast<PatternOp>(state.range(0))));
}

void BM_PatternSyncCall(benchmark::State& state) {
  PatternFixture fixture;
  auto pattern = fixture.make(static_cast<PatternOp>(state.range(0)));
  EchoServer server;
  const comm::Message m = make_message();
  for (auto _ : state) {
    comm::Message out = pattern.call(server, m);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(membrane::to_string(static_cast<PatternOp>(state.range(0))));
}

}  // namespace

BENCHMARK(BM_PatternStage)
    ->Arg(static_cast<int>(PatternOp::Direct))
    ->Arg(static_cast<int>(PatternOp::DeepCopy))
    ->Arg(static_cast<int>(PatternOp::ImmortalForward))
    ->Arg(static_cast<int>(PatternOp::SharedScope))
    ->Arg(static_cast<int>(PatternOp::Handoff))
    ->Arg(static_cast<int>(PatternOp::WedgeThread));

BENCHMARK(BM_PatternSyncCall)
    ->Arg(static_cast<int>(PatternOp::Direct))
    ->Arg(static_cast<int>(PatternOp::ScopeEnter))
    ->Arg(static_cast<int>(PatternOp::DeepCopy))
    ->Arg(static_cast<int>(PatternOp::ImmortalForward));

BENCHMARK_MAIN();
