// Multi-tenant scaling: what tenancy costs as tenants accumulate.
//
// Three axes, each swept over 1..16 resident tenants (one slice each —
// a periodic component in its own RT domain and heap area, capability
// routes between neighbouring tenants):
//
//   admit_us        full AdmissionController::admit() of one candidate
//                   against N residents: compose, full rule engine,
//                   composed RTA, TENANT-* rules, plan_reload synthesis
//   validate_us     validate_tenancy() alone over the resident snapshot
//   admit_gate_ns   the governor hot path (admit_release) with one
//                   envelope per tenant — the per-release cost a tenant
//                   boundary adds inside the executive
//
// Emits the same JSON shape as the fig7 harness:
//   {"bench": "tenant_scaling", "rows": [{"name": "tenants=1", ...}]}
//
//   ./bench_tenant_scaling [iterations]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fig7_harness.hpp"
#include "model/metamodel.hpp"
#include "monitor/governor.hpp"
#include "runtime/content_registry.hpp"
#include "soleil/plan.hpp"
#include "tenant/admission.hpp"
#include "util/table.hpp"
#include "validate/tenancy.hpp"

namespace {

using namespace rtcf;
using model::Architecture;
using model::TenantDecl;

// Admission's DELTA-CONTENT-UNKNOWN gate needs a hot-registrable content
// class for the candidate's components.
class TenantBenchTaskImpl final : public comm::Content {
 public:
  void on_release() override {}
};
RTCF_REGISTER_CONTENT(TenantBenchTaskImpl)

/// One self-contained tenant slice; neighbouring slices are bound through
/// a declared capability route so the capability-routing rule has real
/// cross-tenant edges to walk at every scale.
void add_slice(Architecture& arch, std::size_t index) {
  const std::string prefix = "t" + std::to_string(index);
  auto& comp = arch.add_active(prefix + ".Task",
                               model::ActivationKind::Periodic,
                               rtsj::RelativeTime::milliseconds(20));
  comp.set_cost(rtsj::RelativeTime::microseconds(200));
  comp.set_criticality(model::Criticality::Low);
  comp.set_content_class("TenantBenchTaskImpl");
  comp.set_swappable(true);
  comp.add_interface({"out", model::InterfaceRole::Client, "IChain"});
  comp.add_interface({"in", model::InterfaceRole::Server, "IChain"});
  auto& domain = arch.add_thread_domain(
      prefix + ".RT", model::DomainType::Realtime,
      static_cast<int>(11 + index % 17));  // RT band is [11, 38]
  auto& area =
      arch.add_memory_area(prefix + ".Area", model::AreaType::Heap, 0);
  arch.add_child(area, domain);
  arch.add_child(domain, comp);

  TenantDecl tenant;
  tenant.name = prefix;
  tenant.budget.cpu_utilization = 0.05;
  tenant.members.push_back(prefix + ".Task");
  tenant.exports.push_back({prefix + ".feed", prefix + ".Task", "in"});
  arch.add_tenant(std::move(tenant));

  if (index == 0) return;
  // Chain: tN calls into tN-1 through the exported capability.
  const std::string prev = "t" + std::to_string(index - 1);
  model::Binding binding;
  binding.client = {prefix + ".Task", "out"};
  binding.server = {prev + ".Task", "in"};
  binding.desc.protocol = model::Protocol::Asynchronous;
  binding.desc.buffer_size = 4;
  arch.add_binding(binding);
  const_cast<TenantDecl&>(*arch.find_tenant(prefix))
      .imports.push_back({prev + ".feed", prev});
}

Architecture make_residents(std::size_t tenants) {
  Architecture arch;
  for (std::size_t i = 0; i < tenants; ++i) add_slice(arch, i);
  return arch;
}

double elapsed_us(std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point stop,
                  std::size_t iterations) {
  return std::chrono::duration<double, std::micro>(stop - start).count() /
         static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iterations = 20;
  if (argc > 1) {
    const long v = std::atol(argv[1]);
    if (v <= 0) {
      std::fprintf(stderr, "usage: %s [iterations > 0]\n", argv[0]);
      return 2;
    }
    iterations = static_cast<std::size_t>(v);
  }

  std::printf("== tenant scaling: admission + validation + gate cost, %zu "
              "iteration(s) per row ==\n\n",
              iterations);
  util::Table table({"Tenants", "Components", "Admit (us)", "Validate (us)",
                     "Gate (ns)", "Accepted"});
  std::vector<bench::JsonRow> rows;

  const std::size_t kTenantCounts[] = {1, 2, 4, 8, 16};
  for (const std::size_t tenants : kTenantCounts) {
    const Architecture resident = make_residents(tenants);
    const model::AssemblyPlan running =
        soleil::snapshot_assembly(resident, /*partitions=*/1);

    // Candidate: one more slice, chained onto the last resident.
    Architecture candidate;
    add_slice(candidate, tenants);
    // The chain binding targets a resident component the slice alone does
    // not declare; admission composes it against the residents.

    const tenant::AdmissionController controller;
    // A rejected candidate would time a different (short-circuited) code
    // path; surface the reasons instead of benching the wrong thing.
    {
      const auto probe = controller.admit(running, resident, candidate);
      if (!probe.accepted) {
        std::fprintf(stderr, "tenants=%zu: candidate rejected:\n%s\n",
                     tenants, probe.report.to_string().c_str());
      }
    }
    bool accepted = true;
    const auto admit_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iterations; ++i) {
      const auto decision = controller.admit(running, resident, candidate);
      accepted = accepted && decision.accepted;
    }
    const auto admit_stop = std::chrono::steady_clock::now();

    const auto validate_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iterations; ++i) {
      (void)validate::validate_tenancy(running);
    }
    const auto validate_stop = std::chrono::steady_clock::now();

    // Hot path: one governed component per tenant, round-robin releases.
    monitor::OverloadGovernor governor;
    std::vector<std::size_t> gov_ids;
    for (std::size_t t = 0; t < tenants; ++t) {
      const auto id = governor.add_tenant(
          running.tenants()[t].name.c_str(), model::Criticality::Low);
      gov_ids.push_back(governor.add_component(
          running.tenants()[t].components.front().c_str(),
          model::Criticality::Low, id));
    }
    constexpr std::size_t kReleases = 200000;
    std::uint64_t admitted = 0;
    const auto gate_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kReleases; ++i) {
      admitted += governor.admit_release(gov_ids[i % gov_ids.size()]) ==
                  monitor::OverloadGovernor::Admission::Run;
    }
    const auto gate_stop = std::chrono::steady_clock::now();

    const double admit_us = elapsed_us(admit_start, admit_stop, iterations);
    const double validate_us =
        elapsed_us(validate_start, validate_stop, iterations);
    const double gate_ns =
        elapsed_us(gate_start, gate_stop, kReleases) * 1e3;

    table.add_row({std::to_string(tenants),
                   std::to_string(running.components().size()),
                   util::Table::num(admit_us, 1),
                   util::Table::num(validate_us, 1),
                   util::Table::num(gate_ns, 1),
                   accepted ? "yes" : "no"});
    bench::JsonRow row;
    row.name = "tenants=" + std::to_string(tenants);
    row.metrics = {
        {"tenants", static_cast<double>(tenants)},
        {"components", static_cast<double>(running.components().size())},
        {"admit_us", admit_us},
        {"validate_us", validate_us},
        {"admit_gate_ns", gate_ns},
        {"accepted", accepted ? 1.0 : 0.0},
        {"admitted_releases", static_cast<double>(admitted)},
    };
    rows.push_back(std::move(row));
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("JSON:\n");
  bench::emit_json("tenant_scaling", rows);
  return 0;
}
