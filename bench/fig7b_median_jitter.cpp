// Fig. 7(b): execution-time median and jitter per variant.
//
// Paper's table (Sun RTSJ VM, P4 2.66 GHz):
//     variant      median    jitter
//     OO           31.9 us   0.457 us
//     Soleil       33.5 us   0.453 us   (~+4.7 % vs OO)
//     Merge All    33.3 us   0.387 us
//     Ultra Merge  31.1 us   0.384 us   (compact code, <= OO)
//
// We reproduce the same rows on our substrate; absolute values differ (this
// is a C++ host, not an RTSJ VM), the *shape* to check is the ordering and
// the small relative overhead of SOLEIL.
#include <cstdio>

#include "fig7_harness.hpp"
#include "util/table.hpp"

int main() {
  using namespace rtcf;

  std::printf("== Fig 7(b): execution time median and jitter ==\n");
  std::printf("(jitter = mean absolute deviation from the median, per "
              "EXPERIMENTS.md)\n\n");

  auto results = bench::run_all_variants();
  const double oo_median = results[0].per_iteration_us.median();

  util::Table table({"Variant", "Median (us)", "Jitter (us)", "p99 (us)",
                     "vs OO"});
  for (const auto& r : results) {
    const double median = r.per_iteration_us.median();
    char delta[32];
    std::snprintf(delta, sizeof delta, "%+.1f%%",
                  (median / oo_median - 1.0) * 100.0);
    table.add_row({r.name, util::Table::num(median, 4),
                   util::Table::num(r.per_iteration_us.jitter(), 4),
                   util::Table::num(r.per_iteration_us.percentile(99), 4),
                   delta});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  std::printf("JSON:\n");
  bench::emit_json("fig7b_median_jitter", bench::to_json_rows(results));
  return 0;
}
