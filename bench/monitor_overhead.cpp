// Cost of the runtime-monitoring subsystem's hot paths.
//
// The monitor's claim is "observability for free": histogram recording,
// contract checking, and governor admission are allocation-free and
// lock-free, so they may sit on every dispatch of a real-time executive.
// This bench puts numbers behind that claim:
//
//   * histogram_record        — one LatencyHistogram::record (1 thread)
//   * histogram_record_mt     — the same under 4 contending writers
//   * contract_check          — one ContractMonitor::record_execution
//   * governor_admit          — one OverloadGovernor::admit_release
//   * pipeline_monitored      — one SOLEIL production-line transaction,
//                               timing interceptors live (for scale)
//
//   ./bench_monitor_overhead [ops_per_round]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fig7_harness.hpp"
#include "monitor/contract.hpp"
#include "monitor/governor.hpp"
#include "monitor/telemetry.hpp"
#include "util/table.hpp"

namespace {

/// Mean nanoseconds per op over `rounds` timed rounds of `ops` calls.
double time_ns_per_op(int rounds, std::int64_t ops,
                      const std::function<void(std::int64_t)>& body) {
  auto& clock = rtcf::rtsj::SteadyClock::instance();
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto begin = clock.now();
    body(ops);
    const auto end = clock.now();
    const double per_op =
        static_cast<double>((end - begin).nanos()) / static_cast<double>(ops);
    if (per_op < best) best = per_op;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtcf;

  std::int64_t ops = 2'000'000;
  if (argc > 1) {
    ops = std::atoll(argv[1]);
    if (ops <= 0) {
      std::fprintf(stderr, "usage: %s [ops_per_round > 0]\n", argv[0]);
      return 2;
    }
  }
  constexpr int kRounds = 5;

  std::printf("== monitor hot-path overhead (%lld ops per round, best of %d) "
              "==\n\n",
              static_cast<long long>(ops), kRounds);

  std::vector<bench::JsonRow> rows;
  util::Table table({"Path", "ns/op"});

  monitor::LatencyHistogram histogram;
  const double hist_ns = time_ns_per_op(kRounds, ops, [&](std::int64_t n) {
    for (std::int64_t i = 0; i < n; ++i) {
      histogram.record(static_cast<std::uint64_t>(i) % 1'000'000);
    }
  });
  table.add_row({"histogram_record", util::Table::num(hist_ns, 2)});
  rows.push_back({"histogram_record", {{"ns_per_op", hist_ns}}});

  // Contended recording: 4 writers on one histogram, wall-clock per op.
  monitor::LatencyHistogram shared;
  const double hist_mt_ns = time_ns_per_op(
      kRounds, ops, [&](std::int64_t n) {
        constexpr int kWriters = 4;
        std::vector<std::thread> writers;
        for (int w = 0; w < kWriters; ++w) {
          writers.emplace_back([&shared, n] {
            for (std::int64_t i = 0; i < n / 4; ++i) {
              shared.record(static_cast<std::uint64_t>(i) % 1'000'000);
            }
          });
        }
        for (auto& t : writers) t.join();
      });
  table.add_row({"histogram_record_mt4", util::Table::num(hist_mt_ns, 2)});
  rows.push_back({"histogram_record_mt4", {{"ns_per_op", hist_mt_ns}}});

  model::TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::microseconds(500);
  contract.miss_ratio_bound = 0.1;
  contract.window = 32;
  monitor::ContractMonitor checker("bench", contract);
  const double contract_ns = time_ns_per_op(
      kRounds, ops, [&](std::int64_t n) {
        monitor::Violation out[2];
        monitor::WindowOutcome outcome;
        for (std::int64_t i = 0; i < n; ++i) {
          checker.record_execution(rtsj::RelativeTime::nanoseconds(i % 400),
                                   false, out, &outcome);
        }
      });
  table.add_row({"contract_check", util::Table::num(contract_ns, 2)});
  rows.push_back({"contract_check", {{"ns_per_op", contract_ns}}});

  monitor::OverloadGovernor governor;
  const std::size_t id =
      governor.add_component("bench", model::Criticality::Low);
  const double admit_ns = time_ns_per_op(
      kRounds, ops, [&](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) {
          (void)governor.admit_release(id);
        }
      });
  table.add_row({"governor_admit", util::Table::num(admit_ns, 2)});
  rows.push_back({"governor_admit", {{"ns_per_op", admit_ns}}});

  // One full monitored pipeline transaction, for scale.
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  auto release = app->release_fn("ProductionLine");
  const double pipeline_ns = time_ns_per_op(
      kRounds, std::min<std::int64_t>(ops / 10, 200'000),
      [&](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) {
          release();
          app->pump();
        }
      });
  app->stop();
  table.add_row({"pipeline_monitored", util::Table::num(pipeline_ns, 2)});
  rows.push_back({"pipeline_monitored", {{"ns_per_op", pipeline_ns}}});

  std::printf("%s\n", table.to_string().c_str());
  std::printf("JSON:\n");
  bench::emit_json("monitor_overhead", rows);
  return 0;
}
