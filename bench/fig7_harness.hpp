// Shared measurement harness for the Fig. 7 benchmarks.
//
// Methodology follows §5.1: steady-state observations — a warm-up phase is
// discarded, then a fixed number of observations is collected. Because one
// pipeline iteration on a modern x86 host runs in hundreds of nanoseconds
// (the paper's 2.66 GHz P4 + RTSJ VM needed ~32 µs), each observation times
// a small fixed batch of iterations and reports the per-iteration mean;
// every variant is treated identically, so medians, jitter, and the
// distribution shape remain directly comparable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "baseline/oo_production_line.hpp"
#include "rtsj/time/time.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "util/stats.hpp"

namespace rtcf::bench {

inline constexpr int kWarmupObservations = 2'000;
inline constexpr int kObservations = 10'000;  // as in §5.1
inline constexpr int kBatch = 64;

struct VariantResult {
  std::string name;
  util::SampleSet per_iteration_us;
};

/// One machine-readable result row: a name plus numeric metrics. Every
/// bench that emits JSON uses the same shape,
///   {"bench": "<name>", "rows": [{"name": "...", "<metric>": <num>}...]},
/// so downstream tooling can ingest fig7 and scaling runs identically.
struct JsonRow {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

inline std::string render_json(const std::string& bench,
                               const std::vector<JsonRow>& rows) {
  std::string out = "{\"bench\": \"" + bench + "\", \"rows\": [";
  char number[64];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": \"" + rows[i].name + "\"";
    for (const auto& [key, value] : rows[i].metrics) {
      std::snprintf(number, sizeof(number), "%.6g", value);
      out += ", \"" + key + "\": " + number;
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

inline void print_json(const std::string& bench,
                       const std::vector<JsonRow>& rows) {
  std::fputs(render_json(bench, rows).c_str(), stdout);
}

/// Persists the result as BENCH_<bench>.json so runs leave a machine-
/// readable perf trajectory behind. The file goes to $RTCF_BENCH_OUT (a
/// directory) when set, else the current working directory — CI runs
/// benches from the repo root and uploads BENCH_*.json as artifacts.
inline void write_json_file(const std::string& bench,
                            const std::vector<JsonRow>& rows) {
  std::string dir = ".";
  if (const char* env = std::getenv("RTCF_BENCH_OUT");
      env != nullptr && env[0] != '\0') {
    dir = env;
  }
  const std::string path = dir + "/BENCH_" + bench + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(render_json(bench, rows).c_str(), file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
}

/// print_json + write_json_file in one call (the usual bench epilogue).
inline void emit_json(const std::string& bench,
                      const std::vector<JsonRow>& rows) {
  print_json(bench, rows);
  write_json_file(bench, rows);
}

/// The fig7 sample sets as JSON rows (median/jitter/p99, microseconds).
inline std::vector<JsonRow> to_json_rows(
    const std::vector<VariantResult>& results) {
  std::vector<JsonRow> rows;
  for (const auto& r : results) {
    JsonRow row;
    row.name = r.name;
    row.metrics = {{"median_us", r.per_iteration_us.median()},
                   {"jitter_us", r.per_iteration_us.jitter()},
                   {"p99_us", r.per_iteration_us.percentile(99)}};
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Times `iterate` (one pipeline transaction) with the steady clock.
inline util::SampleSet measure_steady_state(
    const std::function<void()>& iterate,
    int warmup = kWarmupObservations, int observations = kObservations,
    int batch = kBatch) {
  auto& clock = rtsj::SteadyClock::instance();
  for (int i = 0; i < warmup * batch; ++i) iterate();
  util::SampleSet samples(static_cast<std::size_t>(observations));
  for (int obs = 0; obs < observations; ++obs) {
    const auto begin = clock.now();
    for (int k = 0; k < batch; ++k) iterate();
    const auto end = clock.now();
    samples.add((end - begin).to_micros() / static_cast<double>(batch));
  }
  return samples;
}

/// Runs all four §5.1 variants on the motivation scenario and returns their
/// sample sets in presentation order: OO, SOLEIL, MERGE_ALL, ULTRA_MERGE.
///
/// Observations are interleaved in rounds across the variants so that CPU
/// frequency and thermal drift during the run affect every variant equally
/// (sequential measurement would bias whichever variant ran while the
/// machine was slow).
inline std::vector<VariantResult> run_all_variants(
    int warmup = kWarmupObservations, int observations = kObservations,
    int batch = kBatch) {
  auto& clock = rtsj::SteadyClock::instance();

  baseline::OoApplication oo;
  const auto arch = scenario::make_production_architecture();
  auto soleil_app = soleil::build_application(arch, soleil::Mode::Soleil);
  auto merge_app = soleil::build_application(arch, soleil::Mode::MergeAll);
  auto ultra_app = soleil::build_application(arch, soleil::Mode::UltraMerge);
  soleil_app->start();
  merge_app->start();
  ultra_app->start();

  std::vector<VariantResult> results;
  results.push_back({"OO", util::SampleSet(observations)});
  results.push_back({"SOLEIL", util::SampleSet(observations)});
  results.push_back({"MERGE_ALL", util::SampleSet(observations)});
  results.push_back({"ULTRA_MERGE", util::SampleSet(observations)});

  // Resolve release handles once, as generated bootstrap code would; the
  // timed path is then release + pump with no name lookups.
  auto soleil_release = soleil_app->release_fn("ProductionLine");
  auto merge_release = merge_app->release_fn("ProductionLine");
  auto ultra_release = ultra_app->release_fn("ProductionLine");
  const std::function<void()> iterations[4] = {
      [&] { oo.iterate(); },
      [&] {
        soleil_release();
        soleil_app->pump();
      },
      [&] {
        merge_release();
        merge_app->pump();
      },
      [&] {
        ultra_release();
        ultra_app->pump();
      },
  };

  // Warm-up: every variant reaches steady state before any timing starts.
  for (int v = 0; v < 4; ++v) {
    for (int i = 0; i < warmup * batch / 4; ++i) iterations[v]();
  }

  constexpr int kRoundObservations = 50;
  const int rounds = (observations + kRoundObservations - 1) /
                     kRoundObservations;
  for (int round = 0; round < rounds; ++round) {
    for (int v = 0; v < 4; ++v) {
      const auto& iterate = iterations[v];
      for (int obs = 0; obs < kRoundObservations; ++obs) {
        if (static_cast<int>(results[v].per_iteration_us.count()) >=
            observations) {
          break;
        }
        const auto begin = clock.now();
        for (int k = 0; k < batch; ++k) iterate();
        const auto end = clock.now();
        results[v].per_iteration_us.add((end - begin).to_micros() /
                                        static_cast<double>(batch));
      }
    }
  }

  soleil_app->stop();
  merge_app->stop();
  ultra_app->stop();
  return results;
}

}  // namespace rtcf::bench
