// Fig. 7(a): execution-time distribution of a complete pipeline iteration
// for OO / SOLEIL / MERGE_ALL / ULTRA_MERGE.
//
// The paper's claim: the OO and SOLEIL curves have the same shape — the
// framework adds no non-determinism, only a small constant offset. Output:
// an ASCII histogram per variant plus a combined CSV series
// (bucket_low_us,count per variant) for re-plotting.
#include <cstdio>

#include "fig7_harness.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rtcf;

  std::printf("== Fig 7(a): execution time distribution ==\n");
  std::printf("(%d steady-state observations per variant, batch of %d "
              "iterations each)\n\n",
              bench::kObservations, bench::kBatch);

  auto results = bench::run_all_variants();

  // Common range so the curves are visually comparable.
  double lo = 1e300;
  double hi = 0.0;
  for (const auto& r : results) {
    lo = std::min(lo, r.per_iteration_us.percentile(0.5));
    hi = std::max(hi, r.per_iteration_us.percentile(99.5));
  }
  const double pad = (hi - lo) * 0.10 + 1e-6;
  lo -= pad;
  hi += pad;
  if (lo < 0.0) lo = 0.0;

  constexpr std::size_t kBuckets = 40;
  for (const auto& r : results) {
    util::Histogram hist(lo, hi, kBuckets);
    for (double x : r.per_iteration_us.samples()) hist.add(x);
    std::printf("-- %s (median %.4f us) --\n", r.name.c_str(),
                r.per_iteration_us.median());
    std::printf("%s\n", hist.to_ascii(48).c_str());
  }

  std::printf("-- CSV (bucket_low_us%s) --\n", ",count_per_variant");
  std::vector<util::Histogram> hists;
  hists.reserve(results.size());
  for (const auto& r : results) {
    hists.emplace_back(lo, hi, kBuckets);
    for (double x : r.per_iteration_us.samples()) hists.back().add(x);
  }
  std::printf("bucket_low_us");
  for (const auto& r : results) std::printf(",%s", r.name.c_str());
  std::printf("\n");
  for (std::size_t b = 0; b < kBuckets; ++b) {
    std::printf("%.5f", hists[0].bucket_low(b));
    for (const auto& h : hists) {
      std::printf(",%llu", static_cast<unsigned long long>(h.bucket(b)));
    }
    std::printf("\n");
  }

  // The §5.1 determinism check, stated as data: distribution spread of
  // SOLEIL vs OO (inter-quartile range ratio).
  const auto& oo = results[0].per_iteration_us;
  const auto& soleil = results[1].per_iteration_us;
  const double oo_iqr = oo.percentile(75) - oo.percentile(25);
  const double soleil_iqr = soleil.percentile(75) - soleil.percentile(25);
  std::printf("\nIQR(OO)=%.4f us, IQR(SOLEIL)=%.4f us -> spread ratio %.2f "
              "(curves of similar shape; no added non-determinism)\n",
              oo_iqr, soleil_iqr, soleil_iqr / (oo_iqr + 1e-12));

  auto rows = bench::to_json_rows(results);
  for (std::size_t v = 0; v < rows.size(); ++v) {
    rows[v].metrics.emplace_back(
        "iqr_us", results[v].per_iteration_us.percentile(75) -
                      results[v].per_iteration_us.percentile(25));
  }
  std::printf("JSON:\n");
  bench::emit_json("fig7a_exec_distribution", rows);
  return 0;
}
