// E8 ablation: the scheduler-simulator substrate itself — event throughput
// against task-set size and utilization, plus preemption-heavy workloads.
#include <benchmark/benchmark.h>

#include "sim/scheduler.hpp"

namespace {

using namespace rtcf;
using namespace rtcf::sim;

void BM_PeriodicTaskSet(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PreemptiveScheduler sched;
    for (int i = 0; i < tasks; ++i) {
      TaskConfig cfg;
      cfg.name = "t" + std::to_string(i);
      cfg.kind = ThreadKind::Realtime;
      cfg.priority = rtsj::kMinRtPriority + (i % 28);
      cfg.release = ReleaseKind::Periodic;
      cfg.period = rtsj::RelativeTime::milliseconds(1 + i % 10);
      cfg.cost = rtsj::RelativeTime::microseconds(20);
      sched.add_task(std::move(cfg));
    }
    state.ResumeTiming();
    sched.run_until(rtsj::AbsoluteTime::epoch() +
                    rtsj::RelativeTime::seconds(1));
    benchmark::DoNotOptimize(sched.now());
  }
  state.SetLabel(std::to_string(tasks) + " periodic tasks, 1 s horizon");
}

void BM_PreemptionStorm(benchmark::State& state) {
  // One low-priority hog and N high-priority preempters.
  const int preempters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PreemptiveScheduler sched;
    TaskConfig hog;
    hog.name = "hog";
    hog.priority = rtsj::kMinRtPriority;
    hog.release = ReleaseKind::Periodic;
    hog.period = rtsj::RelativeTime::milliseconds(100);
    hog.cost = rtsj::RelativeTime::milliseconds(50);
    sched.add_task(std::move(hog));
    for (int i = 0; i < preempters; ++i) {
      TaskConfig cfg;
      cfg.name = "p" + std::to_string(i);
      cfg.priority = rtsj::kMinRtPriority + 1 + (i % 27);
      cfg.release = ReleaseKind::Periodic;
      cfg.period = rtsj::RelativeTime::milliseconds(1);
      cfg.cost = rtsj::RelativeTime::microseconds(10);
      sched.add_task(std::move(cfg));
    }
    state.ResumeTiming();
    sched.run_until(rtsj::AbsoluteTime::epoch() +
                    rtsj::RelativeTime::seconds(1));
    benchmark::DoNotOptimize(sched.now());
  }
}

void BM_GcModelOverhead(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PreemptiveScheduler sched;
    TaskConfig cfg;
    cfg.name = "worker";
    cfg.kind = ThreadKind::Regular;
    cfg.priority = 5;
    cfg.release = ReleaseKind::Periodic;
    cfg.period = rtsj::RelativeTime::milliseconds(5);
    cfg.cost = rtsj::RelativeTime::milliseconds(1);
    sched.add_task(std::move(cfg));
    sched.set_gc_model({rtsj::RelativeTime::milliseconds(20),
                        rtsj::RelativeTime::milliseconds(1)});
    state.ResumeTiming();
    sched.run_until(rtsj::AbsoluteTime::epoch() +
                    rtsj::RelativeTime::seconds(1));
    benchmark::DoNotOptimize(sched.gc_pause_count());
  }
}

}  // namespace

BENCHMARK(BM_PeriodicTaskSet)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_PreemptionStorm)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_GcModelOverhead);

BENCHMARK_MAIN();
