// Mode-transition latency: how long a running assembly takes to swap
// modes, from the request to the executive resuming on the new release
// plan (quiescence wait + drain + lifecycle/binding swap).
//
// The moded Fig. 4 scenario is toggled Normal <-> Degraded continuously
// while the wall-clock executive runs; every applied transition records
// its measured latency. Reported (not asserted): the median, p99, and the
// observed worst case per worker count — the bound the quiescence protocol
// promises is "longest release-to-completion + drain", and the trajectory
// of these numbers across commits is what CI's bench-trajectory job
// watches. Emits BENCH_mode_transition_latency.json (honors
// RTCF_BENCH_OUT).
//
//   bench_mode_transition_latency [duration_ms_per_worker_count]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "fig7_harness.hpp"
#include "reconfig/mode_manager.hpp"
#include "runtime/launcher.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtcf;

  int duration_ms = 1000;
  if (argc > 1) duration_ms = std::atoi(argv[1]);
  if (duration_ms <= 0) duration_ms = 1000;

  util::Table table(
      {"workers", "transitions", "median_us", "p99_us", "worst_us"});
  std::vector<bench::JsonRow> rows;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const auto arch = scenario::make_moded_production_architecture();
    auto app = soleil::build_application(arch, soleil::Mode::Soleil, workers);
    app->start();
    reconfig::ModeManager manager(*app);
    runtime::Launcher launcher(*app);

    runtime::Launcher::Options options;
    options.duration = rtsj::RelativeTime::milliseconds(duration_ms);
    options.workers = workers;
    options.mode_manager = &manager;

    // Toggle as fast as transitions complete: request, wait for the
    // apply, request the way back.
    std::thread executive([&] { launcher.run(options); });
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(duration_ms);
    bool degraded = false;
    while (std::chrono::steady_clock::now() < deadline) {
      manager.request_transition(degraded ? "Normal" : "Degraded");
      degraded = !degraded;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    executive.join();
    app->stop();

    const auto transitions = manager.transitions();
    util::SampleSet latency_us(transitions.size() + 1);
    for (const auto& t : transitions) {
      latency_us.add(t.latency.to_micros());
    }
    const double median = transitions.empty() ? 0.0 : latency_us.median();
    const double p99 =
        transitions.empty() ? 0.0 : latency_us.percentile(99);
    const double worst = transitions.empty() ? 0.0 : latency_us.max();

    table.add_row({std::to_string(workers),
                   std::to_string(transitions.size()),
                   util::Table::num(median, 1), util::Table::num(p99, 1),
                   util::Table::num(worst, 1)});
    bench::JsonRow row;
    row.name = "workers=" + std::to_string(workers);
    row.metrics = {
        {"workers", static_cast<double>(workers)},
        {"transitions", static_cast<double>(transitions.size())},
        {"median_us", median},
        {"p99_us", p99},
        {"worst_us", worst},
    };
    rows.push_back(std::move(row));
  }

  std::printf("%s\n", table.to_string().c_str());
  bench::emit_json("mode_transition_latency", rows);
  return 0;
}
