// E4 ablation: the §5.1 determinism claim, isolated.
//
// "Real-time threads are not preempted by GC" — we run the Fig. 4 pipeline
// on the virtual-time scheduler twice: without a collector, and with a
// periodic stop-the-world collector (pause every 50 ms for 2 ms). NHRT
// tasks (ProductionLine, MonitoringSystem) must show *identical* response
// statistics in both runs; the regular-thread AuditLog absorbs the pauses.
#include <cstdio>

#include "scenario/production_scenario.hpp"
#include "sim/architecture_sim.hpp"
#include "util/table.hpp"

namespace {

struct RunResult {
  rtcf::util::SampleSet production;
  rtcf::util::SampleSet monitoring;
  rtcf::util::SampleSet audit;
  std::uint64_t gc_pauses = 0;
};

RunResult run(bool with_gc) {
  using namespace rtcf;
  const auto arch = scenario::make_production_architecture();
  sim::PreemptiveScheduler sched;
  const auto mapping = sim::map_architecture(arch, sched);
  if (with_gc) {
    sched.set_gc_model({rtsj::RelativeTime::milliseconds(50),
                        rtsj::RelativeTime::milliseconds(2)});
  }
  sched.run_until(rtsj::AbsoluteTime::epoch() +
                  rtsj::RelativeTime::seconds(10));
  RunResult r;
  r.production = sched.stats(mapping.task("ProductionLine")).response_times_us;
  r.monitoring =
      sched.stats(mapping.task("MonitoringSystem")).response_times_us;
  r.audit = sched.stats(mapping.task("AuditLog")).response_times_us;
  r.gc_pauses = sched.gc_pause_count();
  return r;
}

void emit_rows(rtcf::util::Table& table, const char* task,
               const rtcf::util::SampleSet& no_gc,
               const rtcf::util::SampleSet& with_gc) {
  using rtcf::util::Table;
  table.add_row({task, Table::num(no_gc.median(), 1),
                 Table::num(no_gc.max(), 1), Table::num(with_gc.median(), 1),
                 Table::num(with_gc.max(), 1)});
}

}  // namespace

int main() {
  using namespace rtcf;

  std::printf("== E4: GC interference (virtual time, 10 s horizon) ==\n\n");
  const RunResult base = run(/*with_gc=*/false);
  const RunResult gc = run(/*with_gc=*/true);
  std::printf("collector pauses injected: %llu (2 ms every 50 ms)\n\n",
              static_cast<unsigned long long>(gc.gc_pauses));

  util::Table table({"Task", "median no-GC (us)", "worst no-GC (us)",
                     "median GC (us)", "worst GC (us)"});
  emit_rows(table, "ProductionLine (NHRT p30)", base.production,
            gc.production);
  emit_rows(table, "MonitoringSystem (NHRT p25)", base.monitoring,
            gc.monitoring);
  emit_rows(table, "AuditLog (regular p5)", base.audit, gc.audit);
  std::printf("%s\n", table.to_string().c_str());

  const bool nhrt_immune =
      base.production.max() == gc.production.max() &&
      base.monitoring.max() == gc.monitoring.max();
  std::printf("NHRT worst cases unchanged by GC: %s\n",
              nhrt_immune ? "YES (RTSJ promise holds)" : "NO (BUG)");
  std::printf("AuditLog worst case grew by %.1f us under GC\n",
              gc.audit.max() - base.audit.max());
  return nhrt_immune ? 0 : 1;
}
