// Fig. 7(c): memory footprint of the four variants.
//
// Paper's shape: SOLEIL consumes ~280 KB more than OO (reified membranes,
// introspection, reconfigurability); MERGE_ALL adds only ~4.7 KB over OO
// (the pure algorithms/data structures of the framework); ULTRA_MERGE is
// the most compact, below OO.
//
// Our accounting counts the *infrastructure* bytes each assembly creates:
// membranes + controllers + interceptors (SOLEIL), merged shells +
// embedded endpoints (MERGE_ALL), flattened adapters (ULTRA_MERGE),
// plus message buffers and pattern staging slots for all; the OO baseline
// counts its hand-rolled buffers. Functional content is identical across
// variants and excluded everywhere.
#include <cstdio>

#include "baseline/oo_production_line.hpp"
#include "fig7_harness.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "util/table.hpp"

int main() {
  using namespace rtcf;

  std::printf("== Fig 7(c): memory footprint ==\n\n");

  baseline::OoApplication oo;
  const std::size_t oo_bytes = oo.infrastructure_bytes();

  const auto arch = scenario::make_production_architecture();
  util::Table table({"Variant", "Infrastructure", "Delta vs OO",
                     "Introspection", "Reconfiguration"});
  table.add_row({"OO", util::Table::bytes(oo_bytes), "+0 bytes", "none",
                 "none"});
  std::vector<bench::JsonRow> rows;
  rows.push_back(
      {"OO", {{"infrastructure_bytes", static_cast<double>(oo_bytes)},
              {"delta_vs_oo_bytes", 0.0}}});
  for (const soleil::Mode mode :
       {soleil::Mode::Soleil, soleil::Mode::MergeAll,
        soleil::Mode::UltraMerge}) {
    auto app = soleil::build_application(arch, mode);
    const std::size_t bytes = app->infrastructure_bytes();
    char delta[48];
    std::snprintf(delta, sizeof delta, "%+lld bytes",
                  static_cast<long long>(bytes) -
                      static_cast<long long>(oo_bytes));
    table.add_row({app->mode_name(), util::Table::bytes(bytes), delta,
                   app->supports_membrane_introspection()
                       ? "membrane + functional"
                       : "none",
                   app->supports_reconfiguration() ? "yes" : "no"});
    rows.push_back(
        {app->mode_name(),
         {{"infrastructure_bytes", static_cast<double>(bytes)},
          {"delta_vs_oo_bytes",
           static_cast<double>(bytes) - static_cast<double>(oo_bytes)}}});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());

  // Memory-area consumption under the scenario (the RTSJ-level view).
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  for (int i = 0; i < 100; ++i) app->iterate("ProductionLine");
  std::printf("\nRTSJ memory areas after 100 iterations (SOLEIL):\n");
  std::printf("  immortal consumed: %zu bytes\n",
              rtsj::ImmortalMemory::instance().memory_consumed());
  for (const auto* scope : app->environment().scopes()) {
    std::printf("  scope '%s': %zu / %zu bytes\n", scope->name().c_str(),
                scope->memory_consumed(), scope->size());
  }
  std::printf("JSON:\n");
  bench::emit_json("fig7c_memory_footprint", rows);
  return 0;
}
