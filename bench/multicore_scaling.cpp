// Multicore scaling of the partitioned executive: the production scenario
// at 1, 2, and 4 workers.
//
// The workload is time-triggered (ProductionLine at 10 ms), so transaction
// *throughput* is pinned by the period; what partitioning buys is headroom:
// lower response times per transaction, fewer deadline misses under load,
// and isolation of the audit path from the NHRT pipeline. Rows report both,
// plus the cross-worker message accounting (enqueued/dropped) from the
// binding buffers.
//
// Emits the same JSON shape as the fig7 harness:
//   {"bench": "multicore_scaling", "rows": [{"name": "workers=1", ...}]}
//
//   ./bench_multicore_scaling [duration_ms]
#include <cstdio>
#include <cstdlib>

#include "fig7_harness.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtcf;

  std::int64_t duration_ms = 400;
  if (argc > 1) {
    duration_ms = std::atol(argv[1]);
    if (duration_ms <= 0) {
      std::fprintf(stderr, "usage: %s [duration_ms > 0]\n", argv[0]);
      return 2;
    }
  }
  const auto arch = scenario::make_production_architecture();

  std::printf("== multicore scaling: production scenario, %lld ms per row ==\n\n",
              static_cast<long long>(duration_ms));
  util::Table table({"Workers", "Transactions", "Throughput (tx/s)",
                     "Misses", "Median (us)", "p99 (us)", "Dropped"});
  std::vector<bench::JsonRow> rows;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    auto app = soleil::build_application(arch, soleil::Mode::Soleil, workers);
    app->start();
    runtime::Launcher launcher(*app);
    runtime::Launcher::Options options;
    options.duration = rtsj::RelativeTime::milliseconds(duration_ms);
    options.workers = workers;
    launcher.run(options);

    const auto& stats = launcher.stats("ProductionLine");
    // Durations shorter than the 10 ms period yield no releases; report
    // zeros instead of asking an empty sample set for percentiles.
    const bool have_samples = !stats.response_us.empty();
    const double median_us = have_samples ? stats.response_us.median() : 0.0;
    const double p99_us =
        have_samples ? stats.response_us.percentile(99) : 0.0;
    std::uint64_t misses = 0;
    for (const auto& [name, cs] : launcher.all_stats()) {
      misses += cs.deadline_misses;
    }
    std::uint64_t dropped = 0;
    for (const auto& buffer : app->buffers()) {
      dropped += buffer->dropped_total();
    }
    const auto counters = scenario::collect_counters(*app);
    const double throughput = static_cast<double>(counters.processed) /
                              (static_cast<double>(duration_ms) / 1e3);

    table.add_row({std::to_string(workers),
                   std::to_string(counters.processed),
                   util::Table::num(throughput, 1), std::to_string(misses),
                   util::Table::num(median_us, 2),
                   util::Table::num(p99_us, 2),
                   std::to_string(dropped)});
    bench::JsonRow row;
    row.name = "workers=" + std::to_string(workers);
    row.metrics = {
        {"workers", static_cast<double>(workers)},
        {"transactions", static_cast<double>(counters.processed)},
        {"throughput_per_s", throughput},
        {"deadline_misses", static_cast<double>(misses)},
        {"median_us", median_us},
        {"p99_us", p99_us},
        {"dropped", static_cast<double>(dropped)},
    };
    rows.push_back(std::move(row));
    app->stop();
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("JSON:\n");
  bench::emit_json("multicore_scaling", rows);
  return 0;
}
