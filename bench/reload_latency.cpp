// Live-reload latency: how long a running assembly takes to apply a
// structural plan delta, from request_reload() to the executive resuming
// on the reshaped plan (planning/validation + quiescence wait + drain +
// add/remove/rebind swap + release-plan growth).
//
// A two-stage pipeline is toggled between two architectures while the
// wall-clock executive runs: each reload removes the current sink, adds
// its replacement, and re-targets the producer's asynchronous port onto
// it through the AsyncSkeleton — the full plan-delta machinery on every
// iteration. Reported (not asserted): reload count, median, p99, and
// worst latency per worker count; CI's bench-trajectory job tracks the
// numbers across commits. Emits BENCH_reload_latency.json (honors
// RTCF_BENCH_OUT).
//
//   bench_reload_latency [duration_ms_per_worker_count]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "fig7_harness.hpp"
#include "reconfig/mode_manager.hpp"
#include "reconfig/plan_delta.hpp"
#include "runtime/content_registry.hpp"
#include "runtime/launcher.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rtcf;

class PulseImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = sent_++;
    port(0).send(m);
  }

 private:
  std::uint64_t sent_ = 0;
};

class DrainImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++received_; }

 private:
  std::uint64_t received_ = 0;
};

RTCF_REGISTER_CONTENT(PulseImpl)
RTCF_REGISTER_CONTENT(DrainImpl)

/// Producer --async--> <sink_name>, everything swappable; the reload
/// toggles sink_name between "SinkA" and "SinkB".
model::Architecture make_arch(const char* sink_name) {
  using namespace model;
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(2));
  producer.set_content_class("PulseImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(30));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "IDrain"});
  auto& sink = arch.add_active(sink_name, ActivationKind::Sporadic,
                               rtsj::RelativeTime::zero());
  sink.set_content_class("DrainImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(true);
  sink.add_interface({"in", InterfaceRole::Server, "IDrain"});
  Binding binding;
  binding.client = {"Producer", "out"};
  binding.server = {sink_name, "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 32;
  arch.add_binding(binding);
  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  auto& reg = arch.add_thread_domain("reg1", DomainType::Regular, 5);
  arch.add_child(rt, *arch.find("Producer"));
  arch.add_child(reg, *arch.find(sink_name));
  auto& heap = arch.add_memory_area("H1", AreaType::Heap, 0);
  arch.add_child(heap, rt);
  arch.add_child(heap, reg);
  ModeDecl mode;
  mode.name = "Run";
  mode.components.push_back({"Producer", {}, {}});
  mode.components.push_back({sink_name, {}, {}});
  arch.add_mode(std::move(mode));
  return arch;
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 1000;
  if (argc > 1) duration_ms = std::atoi(argv[1]);
  if (duration_ms <= 0) duration_ms = 1000;

  util::Table table({"workers", "reloads", "median_us", "p99_us",
                     "worst_us"});
  std::vector<bench::JsonRow> rows;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    const auto arch = make_arch("SinkA");
    const auto alt_a = make_arch("SinkA");
    const auto alt_b = make_arch("SinkB");
    auto app = soleil::build_application(arch, soleil::Mode::Soleil, workers);
    app->start();
    reconfig::ModeManager manager(*app);
    runtime::Launcher launcher(*app);

    runtime::Launcher::Options options;
    options.duration = rtsj::RelativeTime::milliseconds(duration_ms);
    options.workers = workers;
    options.mode_manager = &manager;

    // Toggle as fast as reloads apply: request, wait, request the
    // opposite shape.
    std::thread executive([&] { launcher.run(options); });
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(duration_ms);
    bool on_b = false;
    while (std::chrono::steady_clock::now() < deadline) {
      manager.request_reload(on_b ? alt_a : alt_b);
      on_b = !on_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    executive.join();
    app->stop();

    const auto transitions = manager.transitions();
    util::SampleSet latency_us(transitions.size() + 1);
    for (const auto& t : transitions) {
      latency_us.add(t.latency.to_micros());
    }
    const double median = transitions.empty() ? 0.0 : latency_us.median();
    const double p99 = transitions.empty() ? 0.0 : latency_us.percentile(99);
    const double worst = transitions.empty() ? 0.0 : latency_us.max();

    table.add_row({std::to_string(workers),
                   std::to_string(transitions.size()),
                   util::Table::num(median, 1), util::Table::num(p99, 1),
                   util::Table::num(worst, 1)});
    bench::JsonRow row;
    row.name = "workers=" + std::to_string(workers);
    row.metrics = {
        {"workers", static_cast<double>(workers)},
        {"reloads", static_cast<double>(transitions.size())},
        {"median_us", median},
        {"p99_us", p99},
        {"worst_us", worst},
    };
    rows.push_back(std::move(row));
  }

  std::printf("%s\n", table.to_string().c_str());
  bench::emit_json("reload_latency", rows);
  return 0;
}
