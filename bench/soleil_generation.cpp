// E6 ablation: the generator itself (§4.3) — cost of validating, planning,
// and assembling the execution infrastructure per mode, and the size of
// the emitted source per mode (the paper's "code compactness" axis).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "adl/loader.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "soleil/code_emitter.hpp"
#include "util/table.hpp"
#include "validate/validator.hpp"

namespace {

using namespace rtcf;

void BM_ValidateArchitecture(benchmark::State& state) {
  const auto arch = scenario::make_production_architecture();
  for (auto _ : state) {
    auto report = validate::validate(arch);
    benchmark::DoNotOptimize(report.ok());
  }
}

void BM_LoadAdl(benchmark::State& state) {
  for (auto _ : state) {
    auto arch = adl::load_architecture(scenario::production_adl());
    benchmark::DoNotOptimize(arch.components().size());
  }
}

void BM_BuildApplication(benchmark::State& state) {
  const auto arch = scenario::make_production_architecture();
  const auto mode = static_cast<soleil::Mode>(state.range(0));
  for (auto _ : state) {
    auto app = soleil::build_application(arch, mode);
    benchmark::DoNotOptimize(app->infrastructure_bytes());
  }
  state.SetLabel(soleil::to_string(mode));
}

void BM_EmitInfrastructure(benchmark::State& state) {
  const auto arch = scenario::make_production_architecture();
  const auto mode = static_cast<soleil::Mode>(state.range(0));
  for (auto _ : state) {
    auto code = soleil::emit_infrastructure(arch, mode);
    benchmark::DoNotOptimize(code.total_bytes());
  }
  state.SetLabel(soleil::to_string(mode));
}

}  // namespace

BENCHMARK(BM_ValidateArchitecture);
BENCHMARK(BM_LoadAdl);
BENCHMARK(BM_BuildApplication)
    ->Arg(static_cast<int>(soleil::Mode::Soleil))
    ->Arg(static_cast<int>(soleil::Mode::MergeAll))
    ->Arg(static_cast<int>(soleil::Mode::UltraMerge));
BENCHMARK(BM_EmitInfrastructure)
    ->Arg(static_cast<int>(soleil::Mode::Soleil))
    ->Arg(static_cast<int>(soleil::Mode::MergeAll))
    ->Arg(static_cast<int>(soleil::Mode::UltraMerge));

int main(int argc, char** argv) {
  // Code-compactness table first (deterministic, no timing needed).
  using namespace rtcf;
  const auto arch = scenario::make_production_architecture();
  util::Table table({"Mode", "Files", "Lines", "Bytes"});
  for (const soleil::Mode mode :
       {soleil::Mode::Soleil, soleil::Mode::MergeAll,
        soleil::Mode::UltraMerge}) {
    const auto code = soleil::emit_infrastructure(arch, mode);
    table.add_row({soleil::to_string(mode), std::to_string(code.files.size()),
                   std::to_string(code.total_lines()),
                   std::to_string(code.total_bytes())});
  }
  std::printf("== E6: emitted infrastructure size per mode ==\n%s\n",
              table.to_string().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
