// E7 ablation: asynchronous binding buffers (the ADL `bufferSize`
// attribute). Push/pop round-trips against buffer capacity, buffers placed
// in immortal vs scoped memory, and the overflow (load-shedding) path.
#include <benchmark/benchmark.h>

#include "comm/message_buffer.hpp"
#include "rtsj/memory/context.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace {

using namespace rtcf;

comm::Message make_message() {
  comm::Message m;
  m.type_id = 3;
  std::uint64_t payload = 42;
  m.store(payload);
  return m;
}

void BM_BufferPushPop(benchmark::State& state) {
  comm::MessageBuffer buffer(rtsj::ImmortalMemory::instance(),
                             static_cast<std::size_t>(state.range(0)));
  const comm::Message m = make_message();
  for (auto _ : state) {
    buffer.push(m);
    auto out = buffer.pop();
    benchmark::DoNotOptimize(out);
  }
}

void BM_BufferBurstDrain(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  comm::MessageBuffer buffer(rtsj::ImmortalMemory::instance(), capacity);
  const comm::Message m = make_message();
  for (auto _ : state) {
    for (std::size_t i = 0; i < capacity; ++i) buffer.push(m);
    while (auto out = buffer.pop()) benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(capacity));
}

void BM_BufferOverflowShedding(benchmark::State& state) {
  comm::MessageBuffer buffer(rtsj::ImmortalMemory::instance(), 8);
  const comm::Message m = make_message();
  for (std::size_t i = 0; i < 8; ++i) buffer.push(m);  // saturate
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.push(m));  // always drops
  }
}

void BM_BufferInScopedMemory(benchmark::State& state) {
  rtsj::ScopedMemory scope("buffer-scope", 64 * 1024);
  rtsj::ThreadContext wedge("bench-wedge", rtsj::ThreadKind::Realtime, 20,
                            &rtsj::ImmortalMemory::instance());
  rtsj::ScopePin pin(scope, wedge);
  comm::MessageBuffer buffer(scope, static_cast<std::size_t>(state.range(0)));
  const comm::Message m = make_message();
  for (auto _ : state) {
    buffer.push(m);
    auto out = buffer.pop();
    benchmark::DoNotOptimize(out);
  }
}

}  // namespace

BENCHMARK(BM_BufferPushPop)->Arg(1)->Arg(10)->Arg(128)->Arg(1024);
BENCHMARK(BM_BufferBurstDrain)->Arg(10)->Arg(128)->Arg(1024);
BENCHMARK(BM_BufferOverflowShedding);
BENCHMARK(BM_BufferInScopedMemory)->Arg(10)->Arg(128);

BENCHMARK_MAIN();
