#!/usr/bin/env python3
"""Perf-trajectory delta table for the BENCH_*.json artifacts.

Compares the current run's bench JSON against the previous run's (restored
from the branch-keyed actions/cache) and renders a markdown table for the
CI job summary. Exits non-zero only when a *gated* metric regresses by
more than the threshold — by default the medians of multicore_scaling and
monitor_overhead (>2x); everything else is reported, never enforced, so a
noisy CI runner cannot fail the build on an un-gated number.

Usage:
    bench_delta.py PREV_DIR CUR_DIR [--threshold 2.0]
                   [--gate bench:metric ...]

Stdlib only: the CI image must not need a pip install for this.
"""

import argparse
import glob
import json
import os
import sys

DEFAULT_GATES = ["multicore_scaling:median_us", "monitor_overhead:ns_per_op"]

# Metrics worth a row in the summary table (others stay in the artifacts).
REPORTED_SUBSTRINGS = (
    "median",
    "ns_per_op",
    "p99",
    "worst",
    "jitter",
    "throughput",
    "bytes",
    "transitions",
    "reloads",
    "allocs",
    "copied",
)


def load_dir(path):
    """{bench: {row_name: {metric: value}}} for every BENCH_*.json in path."""
    out = {}
    for file in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        try:
            with open(file, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping {file}: {error}", file=sys.stderr)
            continue
        bench = doc.get("bench")
        if not bench:
            continue
        rows = {}
        for row in doc.get("rows", []):
            name = row.get("name")
            if name is None:
                continue
            rows[name] = {
                key: value
                for key, value in row.items()
                if key != "name" and isinstance(value, (int, float))
            }
        out[bench] = rows
    return out


def reported(metric):
    return any(s in metric for s in REPORTED_SUBSTRINGS)


def fmt(value):
    return f"{value:.6g}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prev_dir")
    parser.add_argument("cur_dir")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="gated metrics may grow at most this factor")
    parser.add_argument("--gate", action="append", default=None,
                        metavar="bench:metric",
                        help=f"gated metric (default: {DEFAULT_GATES})")
    args = parser.parse_args()
    gates = set(args.gate if args.gate is not None else DEFAULT_GATES)

    cur = load_dir(args.cur_dir)
    prev = load_dir(args.prev_dir) if os.path.isdir(args.prev_dir) else {}

    print("## Bench trajectory")
    print()
    if not cur:
        print(f"No `BENCH_*.json` found in `{args.cur_dir}` — did the bench "
              "step run?")
        return 1
    if not prev:
        print("No previous run cached for this branch yet; this run becomes "
              "the baseline.")

    print("| bench | row | metric | previous | current | delta | |")
    print("|---|---|---|---:|---:|---:|---|")
    regressions = []
    for bench in sorted(cur):
        for row in cur[bench]:
            for metric, value in cur[bench][row].items():
                if not reported(metric):
                    continue
                gated = f"{bench}:{metric}" in gates
                before = prev.get(bench, {}).get(row, {}).get(metric)
                if before is None:
                    delta, flag = "new", "gated" if gated else ""
                elif abs(before) < 1e-12:
                    delta, flag = "n/a", "gated" if gated else ""
                else:
                    ratio = value / before
                    delta = f"{(ratio - 1.0) * 100.0:+.1f}%"
                    flag = "gated" if gated else ""
                    if gated and ratio > args.threshold:
                        flag = f"**regression >{args.threshold:g}x**"
                        regressions.append(
                            f"{bench}/{row}/{metric}: {fmt(before)} -> "
                            f"{fmt(value)} ({ratio:.2f}x)")
                print(f"| {bench} | {row} | {metric} | "
                      f"{'—' if before is None else fmt(before)} | "
                      f"{fmt(value)} | {delta} | {flag} |")
    print()
    if regressions:
        print(f"### :x: gated regressions (>{args.threshold:g}x)")
        for line in regressions:
            print(f"- {line}")
        return 1
    print("No gated regression.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
