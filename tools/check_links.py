#!/usr/bin/env python3
"""Checks intra-repo markdown links in docs/ and README.md.

Every `[text](target)` whose target is a relative path must resolve to an
existing file (anchors are stripped; external schemes are skipped). A doc
that names a moved or deleted file fails CI — the docs are normative
specs (PROTOCOL.md, DATAPLANE.md), so a dead cross-reference means the
spec and the tree disagree.

Usage: python3 tools/check_links.py [repo_root]
Exits non-zero listing every dead link.
"""

import re
import sys
from pathlib import Path

# Inline markdown links: [text](target). Reference-style definitions are
# rare in this repo's docs; inline is the normative form here.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").glob("**/*.md"))


def check_file(root: Path, doc: Path):
    dead = []
    in_fence = False
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        if in_fence:
            continue  # code blocks illustrate syntax, not references
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                rel = doc.relative_to(root)
                dead.append(f"{rel}:{lineno}: dead link -> {match.group(1)}")
    return dead


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    dead = []
    checked = 0
    for doc in doc_files(root):
        if not doc.exists():
            dead.append(f"{doc.relative_to(root)}: file missing")
            continue
        checked += 1
        dead.extend(check_file(root, doc))
    if dead:
        print("\n".join(dead), file=sys.stderr)
        print(f"FAIL: {len(dead)} dead link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"OK: {checked} markdown file(s), no dead intra-repo links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
