// Adversity drill runner — the CLI behind the CI `drill` job.
//
//   drill --seed 42                       one drill, all fault kinds
//   drill --seed 1 --count 200            a seed sweep (CI acceptance)
//   drill --seed 7 --fault-mix coord      restrict the chaos taxonomy
//   drill --corpus tests/drill_corpus.txt replay the committed corpus
//   drill --seed 7 --add-corpus FILE      append this seed to a corpus
//   drill --inject-bug skip-presumed-abort  deliberate-bug self-check:
//                                         the run must go red
//   drill --artifact-dir DIR              write failing drill reports
//   drill --trace                         full protocol log per drill
//
// Every failure prints the exact command that replays it. Exit status: 0
// when every drill passed, 1 on any violation, 2 on usage errors.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adversity/drill.hpp"

namespace {

using rtcf::adversity::DrillOptions;
using rtcf::adversity::DrillResult;
using rtcf::adversity::FaultMix;
using rtcf::adversity::Violation;

struct CliOptions {
  std::uint64_t seed = 1;
  std::uint64_t count = 1;
  std::string fault_mix = "all";
  std::string corpus;
  bool add_corpus = false;
  std::string artifact_dir;
  std::string inject_bug;
  bool trace = false;
  std::size_t min_nodes = 0;  ///< 0 = generator default.
  std::size_t max_nodes = 0;  ///< 0 = generator default.
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seed N          first seed (default 1)\n"
      << "  --count N         consecutive seeds to drill (default 1)\n"
      << "  --fault-mix CSV   crash,drop,delay,dup,straggler,coord-prepare,"
         "coord-commit,overload,starve,join,leave\n"
      << "                    ('coord' = both coordinator kinds, 'churn' = "
         "join+leave+crash+coord; default 'all')\n"
      << "  --min-nodes N     lower node-count bound for the generator\n"
      << "  --max-nodes N     upper node-count bound (e.g. "
         "--min-nodes 16 --max-nodes 16 for the elastic-cluster drill)\n"
      << "  --corpus FILE     replay 'seed [mix]' lines from FILE first\n"
      << "  --add-corpus      append --seed/--fault-mix to --corpus FILE\n"
      << "  --artifact-dir D  write failing drill reports into D\n"
      << "  --inject-bug B    deliberate bug: 'skip-presumed-abort'\n"
      << "  --trace           print the full drill report, pass or fail\n";
  return 2;
}

std::string replay_command(std::uint64_t seed, const std::string& mix,
                           const CliOptions& cli) {
  std::string cmd = "./build/drill --seed " + std::to_string(seed) +
                    " --fault-mix " + mix + " --trace";
  if (cli.min_nodes != 0) {
    cmd += " --min-nodes " + std::to_string(cli.min_nodes);
  }
  if (cli.max_nodes != 0) {
    cmd += " --max-nodes " + std::to_string(cli.max_nodes);
  }
  if (!cli.inject_bug.empty()) cmd += " --inject-bug " + cli.inject_bug;
  return cmd;
}

/// Runs one drill; prints its summary (and report when asked); returns
/// true when it passed.
bool run_one(std::uint64_t seed, const std::string& mix,
             const CliOptions& cli) {
  DrillOptions options;
  options.seed = seed;
  options.mix = FaultMix::parse(mix);
  options.trace = cli.trace;
  if (cli.min_nodes != 0) options.gen.min_nodes = cli.min_nodes;
  if (cli.max_nodes != 0) options.gen.max_nodes = cli.max_nodes;
  if (options.gen.max_nodes < options.gen.min_nodes) {
    options.gen.max_nodes = options.gen.min_nodes;
  }
  options.proto.bug_skip_presumed_abort =
      cli.inject_bug == "skip-presumed-abort";
  DrillResult result = rtcf::adversity::run_drill(options);
  std::cout << result.summary() << "\n";
  if (cli.trace) std::cout << result.report();
  if (result.passed) return true;
  for (const Violation& v : result.violations) {
    std::cout << "  " << v.to_string() << "\n";
  }
  std::cout << "  replay: " << replay_command(seed, mix, cli) << "\n";
  if (!cli.artifact_dir.empty()) {
    const std::string path = cli.artifact_dir + "/drill-seed-" +
                             std::to_string(seed) + ".txt";
    std::ofstream out(path);
    if (out) {
      out << result.report() << "\nreplay: "
          << replay_command(seed, mix, cli) << "\n";
      std::cout << "  artifact: " << path << "\n";
    } else {
      std::cout << "  (could not write artifact " << path << ")\n";
    }
  }
  return false;
}

/// Parses "seed [mix]" corpus lines ('#' comments, blank lines skipped).
bool replay_corpus(const CliOptions& cli, std::size_t& drills,
                   std::size_t& failures) {
  std::ifstream in(cli.corpus);
  if (!in) {
    std::cerr << "drill: cannot read corpus '" << cli.corpus << "'\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint64_t seed = 0;
    if (!(fields >> seed)) continue;  // blank / comment-only line
    std::string mix;
    if (!(fields >> mix)) mix = "all";
    ++drills;
    if (!run_one(seed, mix, cli)) ++failures;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--count") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fault-mix") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.fault_mix = v;
    } else if (arg == "--corpus") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.corpus = v;
    } else if (arg == "--add-corpus") {
      cli.add_corpus = true;
    } else if (arg == "--artifact-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.artifact_dir = v;
    } else if (arg == "--inject-bug") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.inject_bug = v;
    } else if (arg == "--min-nodes") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.min_nodes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-nodes") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cli.max_nodes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "drill: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (!cli.inject_bug.empty() &&
      cli.inject_bug != "skip-presumed-abort") {
    std::cerr << "drill: unknown bug '" << cli.inject_bug
              << "' (known: skip-presumed-abort)\n";
    return 2;
  }
  try {
    FaultMix::parse(cli.fault_mix);
  } catch (const std::exception& e) {
    std::cerr << "drill: " << e.what() << "\n";
    return 2;
  }

  if (cli.add_corpus) {
    if (cli.corpus.empty()) {
      std::cerr << "drill: --add-corpus needs --corpus FILE\n";
      return 2;
    }
    std::ofstream out(cli.corpus, std::ios::app);
    if (!out) {
      std::cerr << "drill: cannot append to corpus '" << cli.corpus
                << "'\n";
      return 2;
    }
    out << cli.seed << " " << cli.fault_mix << "\n";
    std::cout << "added 'seed " << cli.seed << " [" << cli.fault_mix
              << "]' to " << cli.corpus << "\n";
  }

  std::size_t drills = 0;
  std::size_t failures = 0;
  if (!cli.corpus.empty() && !cli.add_corpus) {
    if (!replay_corpus(cli, drills, failures)) return 2;
  }
  for (std::uint64_t s = cli.seed; s < cli.seed + cli.count; ++s) {
    ++drills;
    if (!run_one(s, cli.fault_mix, cli)) ++failures;
  }

  std::cout << drills << " drill(s), " << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}
