// Multi-rate control system on the virtual-time scheduler: three control
// loops at different rates and criticalities sharing one CPU, with a GC
// model stressing the regular telemetry task.
//
// Demonstrates the "tailor the same functional system for different
// real-time conditions" claim (§5.3): the same functional architecture is
// deployed under two different thread-management views and simulated.
#include <cstdio>

#include "model/views.hpp"
#include "sim/architecture_sim.hpp"
#include "sim/rta.hpp"
#include "util/table.hpp"
#include "validate/validator.hpp"

namespace {

using namespace rtcf;
using namespace rtcf::model;

/// Functional architecture: 1 kHz attitude loop, 100 Hz navigation loop,
/// 10 Hz telemetry, all feeding a sporadic health monitor.
Architecture make_control_architecture(bool telemetry_realtime) {
  Architecture arch;
  BusinessView business(arch);
  auto& attitude = business.active("Attitude", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(1));
  attitude.set_cost(rtsj::RelativeTime::microseconds(150));
  attitude.set_content_class("AttitudeImpl");
  business.client_port(attitude, "health", "IHealth");
  auto& nav = business.active("Navigation", ActivationKind::Periodic,
                              rtsj::RelativeTime::milliseconds(10));
  nav.set_cost(rtsj::RelativeTime::microseconds(900));
  nav.set_content_class("NavigationImpl");
  business.client_port(nav, "health", "IHealth");
  auto& telemetry = business.active("Telemetry", ActivationKind::Periodic,
                                    rtsj::RelativeTime::milliseconds(100));
  telemetry.set_cost(rtsj::RelativeTime::milliseconds(8));
  telemetry.set_content_class("TelemetryImpl");
  business.client_port(telemetry, "health", "IHealth");
  auto& health = business.active("HealthMonitor", ActivationKind::Sporadic);
  health.set_cost(rtsj::RelativeTime::microseconds(50));
  health.set_content_class("HealthImpl");
  business.server_port(health, "health", "IHealth");
  for (const char* client : {"Attitude", "Navigation", "Telemetry"}) {
    business.bind_async(client, "health", "HealthMonitor", "health", 8);
  }

  ThreadManagementView threads(arch);
  auto& hard = threads.domain("hard", DomainType::NoHeapRealtime, 35);
  auto& firm = threads.domain("firm", DomainType::Realtime, 25);
  // GC immunity is an NHRT property: promoting telemetry means moving it
  // into a no-heap domain (and therefore out of heap memory).
  auto& soft = threads.domain(
      "soft",
      telemetry_realtime ? DomainType::NoHeapRealtime : DomainType::Regular,
      telemetry_realtime ? 15 : 5);
  auto& monitor = threads.domain("monitor", DomainType::Realtime, 20);
  threads.deploy(hard, attitude);
  threads.deploy(firm, nav);
  threads.deploy(soft, telemetry);
  threads.deploy(monitor, health);

  MemoryManagementView memory(arch);
  auto& imm = memory.area("ImmCtl", AreaType::Immortal, 256 * 1024);
  auto& heap = memory.area("HeapCtl", AreaType::Heap, 0);
  memory.deploy(imm, hard);
  memory.deploy(imm, firm);
  memory.deploy(imm, monitor);
  if (telemetry_realtime) {
    memory.deploy(imm, soft);
  } else {
    memory.deploy(heap, soft);
  }
  return arch;
}

void simulate(const char* label, bool telemetry_realtime) {
  const auto arch = make_control_architecture(telemetry_realtime);
  const auto report = validate::validate(arch);
  if (!report.ok()) {
    std::printf("validation failed:\n%s\n", report.to_string().c_str());
    return;
  }
  sim::PreemptiveScheduler sched;
  const auto mapping = sim::map_architecture(arch, sched);
  // A collector active every 100 ms for 3 ms.
  sched.set_gc_model({rtsj::RelativeTime::milliseconds(100),
                      rtsj::RelativeTime::milliseconds(3)});
  sched.run_until(rtsj::AbsoluteTime::epoch() +
                  rtsj::RelativeTime::seconds(5));

  std::printf("-- %s --\n", label);
  util::Table table({"Task", "Releases", "Median (us)", "Worst (us)",
                     "Deadline misses"});
  for (const char* task :
       {"Attitude", "Navigation", "Telemetry", "HealthMonitor"}) {
    const auto& stats = sched.stats(mapping.task(task));
    table.add_row({task, std::to_string(stats.releases_completed),
                   util::Table::num(stats.response_times_us.median(), 1),
                   util::Table::num(stats.response_times_us.max(), 1),
                   std::to_string(stats.deadline_misses)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void analyze_offline(const char* label, bool telemetry_realtime) {
  // Response-time analysis straight from the architecture: the design-time
  // companion to the simulation (DESIGN.md §"sim/rta").
  const auto arch = make_control_architecture(telemetry_realtime);
  const auto tasks = sim::tasks_from_architecture(arch);
  const auto result = sim::analyze(tasks);
  std::printf("-- RTA: %s --\n", label);
  util::Table table({"Task", "Priority", "Period", "WCET",
                     "Response bound", "Schedulable"});
  for (const auto& entry : result.entries) {
    table.add_row({entry.task.name, std::to_string(entry.task.priority),
                   entry.task.period.to_string(),
                   entry.task.cost.to_string(),
                   entry.response ? entry.response->to_string()
                                  : std::string("diverges"),
                   entry.schedulable ? "yes" : "NO"});
  }
  std::printf("%s(GC pauses are outside the analysis; the simulation below "
              "adds them)\n\n",
              table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("== multi-rate control: one functional architecture, two "
              "real-time deployments ==\n\n");
  analyze_offline("baseline deployment", false);
  // Deployment A: telemetry on a regular (GC-exposed) thread.
  simulate("telemetry on a regular thread (GC-exposed)", false);
  // Deployment B: telemetry promoted to an NHRT — only the
  // thread-management view changed, the functional architecture did not.
  simulate("telemetry on a real-time thread", true);
  return 0;
}
