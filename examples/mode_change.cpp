// Walkthrough: operational modes and quiescence-based hot-swap.
//
// The Fig. 4 production pipeline runs its declared mode cycle on the
// partitioned executive: Normal (10 ms production, primary console) is
// demoted to Degraded (40 ms production, relaxed contract, anomaly
// reports hot-swapped onto the standby console) and then recovered back —
// all while the assembly keeps running. Every transition is a quiescence
// point: the workers park between dispatches, in-flight messages drain
// through the ordinary buffer paths, the membranes' lifecycle and binding
// controllers do the swap, and the workers resume on the new release plan.
// The walkthrough ends with the transition log (measured latencies) and a
// message-conservation audit showing the cycle lost nothing.
#include <chrono>
#include <cstdio>
#include <thread>

#include "reconfig/mode_manager.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "util/table.hpp"
#include "validate/validator.hpp"

int main() {
  using namespace rtcf;

  std::printf("== mode change: normal -> degraded -> recovery ==\n\n");

  const auto arch = scenario::make_moded_production_architecture();
  const auto report = validate::validate(arch);
  if (!report.ok()) {
    std::printf("%s\n", report.to_string().c_str());
    return 1;
  }
  std::printf("validated: %zu modes declared, degraded mode '%s'\n",
              arch.modes().size(), arch.degraded_mode()->name.c_str());

  auto app = soleil::build_application(arch, soleil::Mode::Soleil, 2);
  app->start();
  reconfig::ModeManager manager(*app);
  runtime::Launcher launcher(*app);

  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(300);
  options.workers = 2;
  options.mode_manager = &manager;

  // Operator console on the side: degrade at 100 ms, recover at 200 ms.
  std::thread executive([&] { launcher.run(options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  manager.request_transition("Degraded");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  manager.request_transition("Normal");
  executive.join();

  std::printf("\n-- transitions --\n");
  util::Table table({"#", "from", "to", "trigger", "latency"});
  for (const auto& t : manager.transitions()) {
    table.add_row({std::to_string(t.seq), t.from, t.to, t.trigger,
                   util::Table::num(t.latency.to_micros(), 1) + " us"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto counters = scenario::collect_counters(*app);
  const auto* standby = dynamic_cast<const scenario::ConsoleImpl*>(
      app->content("StandbyConsole"));
  std::uint64_t dropped = 0;
  for (const auto& buffer : app->buffers()) {
    dropped += buffer->dropped_total();
  }

  std::printf("-- message conservation across the cycle --\n");
  std::printf("  produced          %llu\n",
              static_cast<unsigned long long>(counters.produced));
  std::printf("  processed         %llu\n",
              static_cast<unsigned long long>(counters.processed));
  std::printf("  audit records     %llu\n",
              static_cast<unsigned long long>(counters.audit_records));
  std::printf("  anomalies         %llu (primary console %llu, standby "
              "console %llu)\n",
              static_cast<unsigned long long>(counters.anomalies),
              static_cast<unsigned long long>(counters.console_reports),
              static_cast<unsigned long long>(standby->reports()));
  std::printf("  buffer drops      %llu\n",
              static_cast<unsigned long long>(dropped));

  const bool conserved =
      counters.produced == counters.processed &&
      counters.produced == counters.audit_records && dropped == 0 &&
      counters.console_reports + standby->reports() == counters.anomalies;
  std::printf("\nzero lost messages: %s\n", conserved ? "OK" : "VIOLATED");
  std::printf("final mode: %s\n", manager.current_mode().c_str());
  app->stop();
  return conserved ? 0 : 1;
}
