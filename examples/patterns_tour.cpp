// A tour of the RTSJ cross-scope communication patterns ([1,5,17]) at the
// substrate level: scoped memories, the single parent rule, checked
// references, portals, and every PatternRuntime op.
#include <cstdio>

#include "comm/message.hpp"
#include "membrane/patterns.hpp"
#include "rtsj/memory/ref.hpp"
#include "validate/pattern_catalog.hpp"

namespace {

using namespace rtcf;

struct EchoServer final : comm::IInvocable {
  comm::Message invoke(const comm::Message& m) override {
    comm::Message ack = m;
    ack.type_id = 99;
    return ack;
  }
};

void show_assignment_rules() {
  std::printf("-- RTSJ assignment rules via rtsj::Ref<T> --\n");
  rtsj::ScopedMemory outer("tour-outer", 8 * 1024);
  rtsj::ScopedMemory inner("tour-inner", 8 * 1024);

  struct Node {
    rtsj::Ref<int> next;
  };

  outer.enter([&] {
    auto* outer_value = outer.make<int>(1);
    auto* outer_node = outer.make<Node>();
    inner.enter([&] {
      auto* inner_value = inner.make<int>(2);
      auto* inner_node = inner.make<Node>();
      // Inner object referencing outer object: legal (outer lives longer).
      inner_node->next = outer_value;
      std::printf("  inner->outer store: OK (value %d)\n",
                  *inner_node->next);
      // Outer object referencing inner object: IllegalAssignmentError.
      try {
        outer_node->next = inner_value;
        std::printf("  outer->inner store: accepted (BUG)\n");
      } catch (const rtsj::IllegalAssignmentError& e) {
        std::printf("  outer->inner store: rejected (%s)\n", e.what());
      }
    });
  });
}

void show_nhrt_barrier() {
  std::printf("\n-- NHRT heap barrier --\n");
  struct Holder {
    rtsj::Ref<int> ref;
  };
  auto* heap_value = rtsj::HeapMemory::instance().make<int>(42);
  Holder holder;  // stack local: may reference anything
  holder.ref = heap_value;

  rtsj::ThreadContext nhrt("tour-nhrt", rtsj::ThreadKind::NoHeapRealtime, 30,
                           &rtsj::ImmortalMemory::instance());
  rtsj::ContextGuard guard(nhrt);
  try {
    const int v = *holder.ref;
    std::printf("  NHRT read heap ref: %d (BUG)\n", v);
  } catch (const rtsj::MemoryAccessError& e) {
    std::printf("  NHRT read heap ref: rejected (%s)\n", e.what());
  }
}

void show_portal() {
  std::printf("\n-- scope portal --\n");
  rtsj::ScopedMemory scope("tour-portal", 8 * 1024);
  scope.enter([&] {
    auto* shared = scope.make<int>(7);
    scope.set_portal(shared);
    std::printf("  portal set inside the scope: %d\n",
                *static_cast<int*>(scope.portal()));
  });
  std::printf("  scope reclaimed; portal cleared with it\n");
}

void show_patterns() {
  std::printf("\n-- communication patterns --\n");
  // Sibling scopes need separate wedge contexts: pinning both from one
  // context would nest the second under the first (single parent rule).
  rtsj::ThreadContext wedge_p("tour-wedge-p", rtsj::ThreadKind::Realtime, 20,
                              &rtsj::ImmortalMemory::instance());
  rtsj::ThreadContext wedge_c("tour-wedge-c", rtsj::ThreadKind::Realtime, 20,
                              &rtsj::ImmortalMemory::instance());
  rtsj::ScopedMemory producer_scope("tour-producer", 16 * 1024);
  rtsj::ScopedMemory consumer_scope("tour-consumer", 16 * 1024);
  rtsj::ScopePin pin_p(producer_scope, wedge_p);
  rtsj::ScopePin pin_c(consumer_scope, wedge_c);

  comm::Message m;
  m.type_id = 1;
  double payload = 2.5;
  m.store(payload);
  EchoServer server;

  using membrane::PatternOp;
  using membrane::PatternRuntime;
  struct Row {
    PatternOp op;
    rtsj::MemoryArea* staging;
  };
  const Row rows[] = {
      {PatternOp::Direct, nullptr},
      {PatternOp::DeepCopy, &consumer_scope},
      {PatternOp::ImmortalForward, nullptr},
      {PatternOp::Handoff, &producer_scope},
      {PatternOp::WedgeThread, &consumer_scope},
  };
  for (const auto& row : rows) {
    auto pattern =
        PatternRuntime::make(row.op, &consumer_scope, row.staging);
    const comm::Message& staged = pattern.stage(m);
    const auto* area = rtsj::AreaRegistry::instance().area_of(&staged);
    std::printf("  %-16s staged copy lives in: %s\n",
                membrane::to_string(row.op),
                area != nullptr ? area->name().c_str() : "<caller storage>");
  }
  auto enter_pattern =
      PatternRuntime::make(PatternOp::ScopeEnter, &consumer_scope, nullptr);
  const comm::Message ack = enter_pattern.call(server, m);
  std::printf("  %-16s synchronous call inside scope returned type %u\n",
              "scope-enter", ack.type_id);
}

}  // namespace

int main() {
  std::printf("== patterns tour ==\n\n");
  std::printf("known patterns:");
  for (const auto& name : rtcf::validate::known_patterns()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");
  show_assignment_rules();
  show_nhrt_barrier();
  show_portal();
  show_patterns();
  return 0;
}
