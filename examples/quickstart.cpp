// Quickstart: a two-component system in ~80 lines.
//
// A periodic NHRT Sensor streams readings over an asynchronous binding to a
// sporadic real-time Logger. Shows the whole workflow: content classes ->
// design views -> validation -> generation -> execution.
#include <cstdio>

#include "comm/content.hpp"
#include "model/views.hpp"
#include "runtime/content_registry.hpp"
#include "scenario/production_scenario.hpp"  // for RTCF_REGISTER_CONTENT deps
#include "soleil/application.hpp"
#include "validate/validator.hpp"

namespace {

using namespace rtcf;

// 1. Implement content classes — the only code a developer writes (§3.3).
class SensorImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = count_++;
    double reading = 20.0 + 0.1 * static_cast<double>(m.sequence % 10);
    m.store(reading);
    port("out").send(m);
  }

 private:
  std::uint64_t count_ = 0;
};

class LoggerImpl final : public comm::Content {
 public:
  void on_message(const comm::Message& m) override {
    sum_ += m.load<double>();
    ++received_;
  }
  std::uint64_t received() const { return received_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t received_ = 0;
  double sum_ = 0.0;
};

RTCF_REGISTER_CONTENT(SensorImpl)
RTCF_REGISTER_CONTENT(LoggerImpl)

}  // namespace

int main() {
  using namespace rtcf;
  using namespace rtcf::model;

  // 2. Design: business view first, then real-time concerns (Fig. 3).
  Architecture arch;
  BusinessView business(arch);
  auto& sensor = business.active("Sensor", ActivationKind::Periodic,
                                 rtsj::RelativeTime::milliseconds(5));
  sensor.set_content_class("SensorImpl");
  business.client_port(sensor, "out", "IReadings");
  auto& logger = business.active("Logger", ActivationKind::Sporadic);
  logger.set_content_class("LoggerImpl");
  business.server_port(logger, "out", "IReadings");
  business.bind_async("Sensor", "out", "Logger", "out", 16);

  ThreadManagementView threads(arch);
  auto& nhrt = threads.domain("SensorDomain", DomainType::NoHeapRealtime, 32);
  auto& rt = threads.domain("LoggerDomain", DomainType::Realtime, 20);
  threads.deploy(nhrt, sensor);
  threads.deploy(rt, logger);

  MemoryManagementView memory(arch);
  auto& imm = memory.area("Imm", AreaType::Immortal, 128 * 1024);
  memory.deploy(imm, nhrt);
  memory.deploy(imm, rt);

  // 3. Validate: RTSJ conformance is checked before any code exists.
  const auto report = validate::validate(arch);
  std::printf("validation: %zu error(s), %zu warning(s)\n",
              report.error_count(), report.warning_count());
  if (!report.ok()) {
    std::printf("%s\n", report.to_string().c_str());
    return 1;
  }

  // 4. Generate the execution infrastructure and run.
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  for (int i = 0; i < 100; ++i) app->iterate("Sensor");
  app->stop();

  const auto* log = dynamic_cast<const LoggerImpl*>(app->content("Logger"));
  std::printf("logger received %llu readings, sum %.1f\n",
              static_cast<unsigned long long>(log->received()), log->sum());
  std::printf("sensor thread: %s priority %d\n",
              rtsj::to_string(app->thread_of("Sensor")->kind()),
              app->thread_of("Sensor")->priority());
  return log->received() == 100 ? 0 : 1;
}
