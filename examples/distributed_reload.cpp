// Walkthrough: one atomic reload across two nodes.
//
// A two-node cluster runs the production pipeline split across processes'
// worth of runtime (in-process here, over the loopback transport — swap in
// comm::TcpChannel for real sockets, the frames are identical):
//
//   node A (edge):  SensorFeed --(bridged async)--> Recorder on node B
//   node B (vault): Recorder
//
// The operator then asks the ReconfigCoordinator for one logical reload:
//
//   * add WatchdogPulse on node A (a brand-new periodic component),
//   * remove Recorder on node B (swappable, drained first — zero loss),
//   * re-target the cross-node binding onto the new ArchiveRecorder on
//     node B (a cross-node asynchronous rebind: node B's entry gateway
//     re-targets through the AsyncSkeleton; node A only learns the new
//     route table).
//
// Two-phase quiescence makes it atomic: both nodes validate their slice
// with the DELTA-* rule engine, park their executives, and vote; only a
// unanimous vote commits. The walkthrough first runs a *failure drill* —
// node B vetoes its PREPARE — and shows the clean global abort with both
// nodes still on their old epoch, then performs the real reload and ends
// with a cluster-wide zero-loss conservation audit.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "dist/coordinator.hpp"
#include "dist/node_runtime.hpp"
#include "runtime/content_registry.hpp"
#include "util/table.hpp"

namespace {

using namespace rtcf;

/// Sensor feed: periodic producer streaming readings over the bridge.
class SensorFeedImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = ++sent_;
    port(0).send(m);
  }
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  std::uint64_t sent_ = 0;
};

/// Recorder: sporadic consumer counting everything that arrived.
class RecorderImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++records_; }
  std::uint64_t records() const noexcept { return records_; }

 private:
  std::uint64_t records_ = 0;
};

/// Watchdog: the hot-added heartbeat (hot-registered below).
class WatchdogPulseImpl final : public comm::Content {
 public:
  void on_release() override { ++pulses_; }
  std::uint64_t pulses() const noexcept { return pulses_; }

 private:
  std::uint64_t pulses_ = 0;
};

RTCF_REGISTER_CONTENT(SensorFeedImpl)
RTCF_REGISTER_CONTENT(RecorderImpl)

void add_modes(model::Architecture& arch) {
  model::ModeDecl normal;
  normal.name = "Normal";
  normal.components.push_back({"SensorFeed", rtsj::RelativeTime::zero(), {}});
  arch.add_mode(std::move(normal));
}

/// The running cluster architecture.
model::Architecture base_arch() {
  using namespace model;
  Architecture arch;
  auto& feed = arch.add_active("SensorFeed", ActivationKind::Periodic,
                               rtsj::RelativeTime::milliseconds(4));
  feed.set_content_class("SensorFeedImpl");
  feed.set_cost(rtsj::RelativeTime::microseconds(40));
  feed.set_swappable(true);
  feed.add_interface({"readings", InterfaceRole::Client, "IRecord"});
  auto& recorder = arch.add_active("Recorder", ActivationKind::Sporadic);
  recorder.set_content_class("RecorderImpl");
  recorder.set_criticality(Criticality::Low);
  recorder.set_swappable(true);
  recorder.add_interface({"in", InterfaceRole::Server, "IRecord"});
  Binding bridge;
  bridge.client = {"SensorFeed", "readings"};
  bridge.server = {"Recorder", "in"};
  bridge.desc.protocol = Protocol::Asynchronous;
  bridge.desc.buffer_size = 64;
  arch.add_binding(bridge);
  auto& rt = arch.add_thread_domain("RT_edge", DomainType::Realtime, 20);
  arch.add_child(rt, feed);
  auto& reg = arch.add_thread_domain("reg_vault", DomainType::Regular, 5);
  arch.add_child(reg, recorder);
  add_modes(arch);
  return arch;
}

/// The operator's target: WatchdogPulse added on A, Recorder replaced by
/// ArchiveRecorder on B (the cross-node rebind).
model::Architecture target_arch() {
  using namespace model;
  Architecture arch;
  auto& feed = arch.add_active("SensorFeed", ActivationKind::Periodic,
                               rtsj::RelativeTime::milliseconds(4));
  feed.set_content_class("SensorFeedImpl");
  feed.set_cost(rtsj::RelativeTime::microseconds(40));
  feed.set_swappable(true);
  feed.add_interface({"readings", InterfaceRole::Client, "IRecord"});
  auto& watchdog = arch.add_active("WatchdogPulse", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(25));
  watchdog.set_content_class("WatchdogPulseImpl");
  watchdog.set_swappable(true);
  auto& archive = arch.add_active("ArchiveRecorder", ActivationKind::Sporadic);
  archive.set_content_class("RecorderImpl");
  archive.set_criticality(Criticality::Low);
  archive.set_swappable(true);
  archive.add_interface({"in", InterfaceRole::Server, "IRecord"});
  Binding bridge;
  bridge.client = {"SensorFeed", "readings"};
  bridge.server = {"ArchiveRecorder", "in"};
  bridge.desc.protocol = Protocol::Asynchronous;
  bridge.desc.buffer_size = 64;
  arch.add_binding(bridge);
  auto& rt = arch.add_thread_domain("RT_edge", DomainType::Realtime, 20);
  arch.add_child(rt, feed);
  auto& rtw = arch.add_thread_domain("RT_watchdog", DomainType::Realtime, 15);
  arch.add_child(rtw, watchdog);
  auto& reg = arch.add_thread_domain("reg_vault", DomainType::Regular, 5);
  arch.add_child(reg, archive);
  add_modes(arch);
  return arch;
}

validate::NodeMap cluster_map() {
  validate::NodeMap map;
  map.nodes = {"edge", "vault"};
  map.assignment = {{"SensorFeed", "edge"},
                    {"WatchdogPulse", "edge"},
                    {"Recorder", "vault"},
                    {"ArchiveRecorder", "vault"}};
  return map;
}

void print_outcome(const char* what,
                   const dist::ReconfigCoordinator::Outcome& outcome) {
  std::printf("%s: txn %llu -> %s%s%s\n", what,
              static_cast<unsigned long long>(outcome.txn),
              outcome.committed ? "COMMITTED" : "ABORTED",
              outcome.reason.empty() ? "" : " — ",
              outcome.reason.c_str());
  util::Table table({"node", "prepared", "committed", "epoch", "drained",
                     "latency"});
  for (const auto& node : outcome.nodes) {
    table.add_row({node.node, node.prepared ? "yes" : "no",
                   node.committed ? "yes" : "no",
                   std::to_string(node.epoch),
                   std::to_string(node.drained),
                   util::Table::num(
                       static_cast<double>(node.latency_ns) / 1000.0, 1) +
                       " us"});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("== distributed reload: two nodes, one atomic transition ==\n\n");

  const auto global = base_arch();
  const auto map = cluster_map();

  dist::NodeRuntime::Options node_options;
  node_options.run_duration = rtsj::RelativeTime::milliseconds(700);
  dist::NodeRuntime edge(global, map, "edge", node_options);
  dist::NodeRuntime vault(global, map, "vault", node_options);

  dist::ReconfigCoordinator coordinator(map);
  auto [edge_node, edge_coord] = comm::LoopbackChannel::make_pair();
  auto [vault_node, vault_coord] = comm::LoopbackChannel::make_pair();
  edge.attach_control(edge_node);
  vault.attach_control(vault_node);
  coordinator.attach("edge", edge_coord, global);
  coordinator.attach("vault", vault_coord, global);
  auto [ev, ve] = comm::LoopbackChannel::make_pair();
  edge.connect_peer("vault", ev);
  vault.connect_peer("edge", ve);

  edge.start();
  vault.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const std::uint64_t edge_epoch = edge.mode_manager().plan_epoch();
  const std::uint64_t vault_epoch = vault.mode_manager().plan_epoch();

  // ---- failure drill: a vetoed PREPARE aborts globally -------------------
  // (The hot-added content class is also still unregistered — either veto
  // alone would abort the cluster; the drill exercises the injected one.)
  vault.fail_next_prepare("drill: vault vetoes this prepare");
  {
    const auto outcome = coordinator.coordinate_reload(target_arch());
    print_outcome("failure drill", outcome);
    const bool aborted_cleanly =
        !outcome.committed &&
        edge.mode_manager().plan_epoch() == edge_epoch &&
        vault.mode_manager().plan_epoch() == vault_epoch;
    std::printf("both nodes back on the old epoch: %s\n\n",
                aborted_cleanly ? "OK" : "VIOLATED");
    if (!aborted_cleanly) return 1;
  }

  // ---- the real reload ---------------------------------------------------
  // Hot-register the watchdog implementation (the C++ stand-in for the
  // paper's dynamic class loading), then coordinate.
  runtime::ContentRegistry::instance().register_class<WatchdogPulseImpl>(
      "WatchdogPulseImpl");
  const auto outcome = coordinator.coordinate_reload(target_arch());
  print_outcome("coordinated reload", outcome);
  if (!outcome.committed) {
    std::printf("%s\n", outcome.report.to_string().c_str());
    return 1;
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  edge.stop();   // producer side first, so everything in flight lands
  vault.stop();

  // ---- cluster-wide conservation audit -----------------------------------
  const auto* feed = dynamic_cast<const SensorFeedImpl*>(
      edge.application().content("SensorFeed"));
  const auto* watchdog = dynamic_cast<const WatchdogPulseImpl*>(
      edge.application().content("WatchdogPulse"));
  const auto* recorder = dynamic_cast<const RecorderImpl*>(
      vault.application().content("Recorder"));
  const auto* archive = dynamic_cast<const RecorderImpl*>(
      vault.application().content("ArchiveRecorder"));
  const auto edge_gw = edge.gateway_stats();
  const auto vault_gw = vault.gateway_stats();

  const std::uint64_t sent = feed != nullptr ? feed->sent() : 0;
  const std::uint64_t recorded =
      (recorder != nullptr ? recorder->records() : 0) +
      (archive != nullptr ? archive->records() : 0);

  std::printf("-- conservation across the cluster --\n");
  std::printf("  sensor readings sent       %llu\n",
              static_cast<unsigned long long>(sent));
  std::printf("  recorded (old Recorder)    %llu\n",
              static_cast<unsigned long long>(
                  recorder != nullptr ? recorder->records() : 0));
  std::printf("  recorded (ArchiveRecorder) %llu\n",
              static_cast<unsigned long long>(
                  archive != nullptr ? archive->records() : 0));
  std::printf("  bridge forwarded/injected  %llu/%llu\n",
              static_cast<unsigned long long>(edge_gw.forwarded),
              static_cast<unsigned long long>(vault_gw.injected));
  std::printf("  bridge drops (exit/entry)  %llu/%llu\n",
              static_cast<unsigned long long>(edge_gw.exit_dropped),
              static_cast<unsigned long long>(vault_gw.entry_dropped));
  std::printf("  watchdog pulses            %llu\n",
              static_cast<unsigned long long>(
                  watchdog != nullptr ? watchdog->pulses() : 0));

  const bool conserved = sent > 0 && sent == recorded &&
                         edge_gw.forwarded == sent &&
                         vault_gw.injected == recorded &&
                         edge_gw.exit_dropped == 0 &&
                         vault_gw.entry_dropped == 0;
  const bool grew = watchdog != nullptr && watchdog->pulses() > 0;
  const bool rebound = archive != nullptr && archive->records() > 0;
  std::printf("\nzero lost messages across the reload: %s\n",
              conserved ? "OK" : "VIOLATED");
  std::printf("hot-added component released on node A: %s\n",
              grew ? "OK" : "VIOLATED");
  std::printf("cross-node rebind carried traffic on node B: %s\n",
              rebound ? "OK" : "VIOLATED");
  return conserved && grew && rebound ? 0 : 1;
}
