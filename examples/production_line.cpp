// The paper's motivation example (§2.2, Fig. 4), loaded from its ADL
// description, validated, generated in all three modes, and executed —
// first on the single-core executive, then spread across a 4-worker
// partitioned executive with lock-free cross-worker bindings.
//
// Run with a path argument to load a custom ADL file:
//   ./production_line [architecture.xml]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "adl/loader.hpp"
#include "baseline/oo_production_line.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "validate/validator.hpp"

int main(int argc, char** argv) {
  using namespace rtcf;

  // 1. Obtain the architecture: from a file when given, otherwise the
  //    embedded Fig. 4 ADL text.
  std::string adl_text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    adl_text = ss.str();
    std::printf("loaded architecture from %s\n", argv[1]);
  } else {
    adl_text = scenario::production_adl();
    std::printf("using the embedded Fig. 4 architecture\n");
  }
  model::Architecture arch;
  try {
    arch = adl::load_architecture(adl_text);
  } catch (const adl::AdlError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  // 2. Validate against the RTSJ rules (Fig. 3's feedback loop).
  const auto report = validate::validate(arch);
  std::printf("\nvalidation report:\n%s\n\n", report.to_string().c_str());
  if (!report.ok()) return 1;

  // 3. Execute 1000 transactions in every generation mode and compare with
  //    the hand-written OO baseline.
  baseline::OoApplication oo;
  for (int i = 0; i < 1000; ++i) oo.iterate();
  const auto reference = oo.counters();
  std::printf("OO baseline:       produced=%llu anomalies=%llu audit=%llu\n",
              static_cast<unsigned long long>(reference.produced),
              static_cast<unsigned long long>(reference.anomalies),
              static_cast<unsigned long long>(reference.audit_records));

  bool all_match = true;
  for (const soleil::Mode mode :
       {soleil::Mode::Soleil, soleil::Mode::MergeAll,
        soleil::Mode::UltraMerge}) {
    auto app = soleil::build_application(arch, mode);
    app->start();
    for (int i = 0; i < 1000; ++i) app->iterate("ProductionLine");
    const auto counters = scenario::collect_counters(*app);
    const bool match = counters == reference;
    all_match = all_match && match;
    std::printf("%-12s mode:  produced=%llu anomalies=%llu audit=%llu  "
                "infra=%zu bytes  %s\n",
                app->mode_name(),
                static_cast<unsigned long long>(counters.produced),
                static_cast<unsigned long long>(counters.anomalies),
                static_cast<unsigned long long>(counters.audit_records),
                app->infrastructure_bytes(),
                match ? "== OO" : "!= OO (MISMATCH)");
    app->stop();
  }

  // 4. The same scenario on the partitioned multi-worker executive: four
  //    worker threads, components pinned by the plan's partition
  //    assignment, cross-worker async bindings on lock-free SPSC buffers.
  constexpr std::size_t kWorkers = 4;
  auto partitioned =
      soleil::build_application(arch, soleil::Mode::Soleil, kWorkers);
  partitioned->start();
  runtime::Launcher launcher(*partitioned);
  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(200);
  options.workers = kWorkers;
  launcher.run(options);

  std::printf("\npartitioned executive (%zu workers, 200 ms):\n", kWorkers);
  for (const auto& pc : partitioned->plan().components) {
    std::printf("  %-18s -> worker %zu\n", pc.component->name().c_str(),
                pc.partition);
  }
  std::printf("per-component stats (periodic releases):\n");
  for (const auto& [name, stats] : launcher.all_stats()) {
    std::printf("  %-18s releases=%llu misses=%llu median=%.1fus p99=%.1fus\n",
                name.c_str(),
                static_cast<unsigned long long>(stats.releases),
                static_cast<unsigned long long>(stats.deadline_misses),
                stats.response_us.median(), stats.response_us.percentile(99));
  }
  bool zero_loss = true;
  std::uint64_t forwarded = 0;
  for (const auto& buffer : partitioned->buffers()) {
    forwarded += buffer->enqueued_total();
    zero_loss = zero_loss && buffer->dropped_total() == 0 && buffer->empty();
  }
  const auto pcounters = scenario::collect_counters(*partitioned);
  zero_loss = zero_loss && pcounters.processed == pcounters.produced &&
              pcounters.audit_records == pcounters.processed;
  std::printf("cross-worker messages forwarded=%llu  %s\n",
              static_cast<unsigned long long>(forwarded),
              zero_loss ? "zero loss below buffer capacity"
                        : "MESSAGE LOSS DETECTED");
  partitioned->stop();

  // 5. Round-trip the architecture through the serializer.
  const std::string round_trip = adl::save_architecture(arch);
  auto arch2 = adl::load_architecture(round_trip);
  std::printf("\nADL round-trip: %zu components, %zu bindings (stable)\n",
              arch2.components().size(), arch2.bindings().size());
  return all_match && zero_loss ? 0 : 1;
}
