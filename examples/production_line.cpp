// The paper's motivation example (§2.2, Fig. 4), loaded from its ADL
// description, validated, generated in all three modes, and executed.
//
// Run with a path argument to load a custom ADL file:
//   ./production_line [architecture.xml]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "adl/loader.hpp"
#include "baseline/oo_production_line.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "validate/validator.hpp"

int main(int argc, char** argv) {
  using namespace rtcf;

  // 1. Obtain the architecture: from a file when given, otherwise the
  //    embedded Fig. 4 ADL text.
  std::string adl_text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    adl_text = ss.str();
    std::printf("loaded architecture from %s\n", argv[1]);
  } else {
    adl_text = scenario::production_adl();
    std::printf("using the embedded Fig. 4 architecture\n");
  }
  auto arch = adl::load_architecture(adl_text);

  // 2. Validate against the RTSJ rules (Fig. 3's feedback loop).
  const auto report = validate::validate(arch);
  std::printf("\nvalidation report:\n%s\n\n", report.to_string().c_str());
  if (!report.ok()) return 1;

  // 3. Execute 1000 transactions in every generation mode and compare with
  //    the hand-written OO baseline.
  baseline::OoApplication oo;
  for (int i = 0; i < 1000; ++i) oo.iterate();
  const auto reference = oo.counters();
  std::printf("OO baseline:       produced=%llu anomalies=%llu audit=%llu\n",
              static_cast<unsigned long long>(reference.produced),
              static_cast<unsigned long long>(reference.anomalies),
              static_cast<unsigned long long>(reference.audit_records));

  bool all_match = true;
  for (const soleil::Mode mode :
       {soleil::Mode::Soleil, soleil::Mode::MergeAll,
        soleil::Mode::UltraMerge}) {
    auto app = soleil::build_application(arch, mode);
    app->start();
    for (int i = 0; i < 1000; ++i) app->iterate("ProductionLine");
    const auto counters = scenario::collect_counters(*app);
    const bool match = counters == reference;
    all_match = all_match && match;
    std::printf("%-12s mode:  produced=%llu anomalies=%llu audit=%llu  "
                "infra=%zu bytes  %s\n",
                app->mode_name(),
                static_cast<unsigned long long>(counters.produced),
                static_cast<unsigned long long>(counters.anomalies),
                static_cast<unsigned long long>(counters.audit_records),
                app->infrastructure_bytes(),
                match ? "== OO" : "!= OO (MISMATCH)");
    app->stop();
  }

  // 4. Round-trip the architecture through the serializer.
  const std::string round_trip = adl::save_architecture(arch);
  auto arch2 = adl::load_architecture(round_trip);
  std::printf("\nADL round-trip: %zu components, %zu bindings (stable)\n",
              arch2.components().size(), arch2.bindings().size());
  return all_match ? 0 : 1;
}
