// Walkthrough: runtime monitoring and the overload governor.
//
// The Fig. 4 production pipeline shares its executive with a
// low-criticality "BulkAnalytics" batch component that overruns its WCET
// budget on every release. Watch the monitor catch the violations, the
// governor escalate (rate-limit, then shed the low-criticality work), and
// the high-criticality pipeline keep every deadline throughout. Finishes
// with the per-component telemetry the monitor collected — including
// where each block physically lives (its component's RTSJ memory area).
#include <cstdio>

#include "model/views.hpp"
#include "monitor/governor.hpp"
#include "monitor/runtime_monitor.hpp"
#include "runtime/content_registry.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "util/table.hpp"
#include "validate/validator.hpp"

namespace {

/// The injected overload: spins 4 ms against a 1 ms budget.
class BulkAnalyticsExampleImpl final : public rtcf::comm::Content {
 public:
  void on_release() override {
    const auto& clock = rtcf::rtsj::SteadyClock::instance();
    const auto until =
        clock.now() + rtcf::rtsj::RelativeTime::microseconds(4000);
    while (clock.now() < until) {
    }
  }
};

RTCF_REGISTER_CONTENT(BulkAnalyticsExampleImpl)

void print_violation(void*, const rtcf::monitor::Violation& violation) {
  std::printf("  [violation] %-14s %-12s observed %.1f (bound %.1f), "
              "window %llu\n",
              violation.component, to_string(violation.kind),
              violation.observed, violation.bound,
              static_cast<unsigned long long>(violation.window_index));
}

}  // namespace

int main() {
  using namespace rtcf;

  std::printf("== overload governor: production pipeline + low-criticality "
              "overrunner ==\n\n");

  auto arch = scenario::make_production_architecture();
  {
    model::BusinessView business(arch);
    auto& analytics = business.active("BulkAnalytics",
                                      model::ActivationKind::Periodic,
                                      rtsj::RelativeTime::milliseconds(10));
    analytics.set_content_class("BulkAnalyticsExampleImpl");
    analytics.set_cost(rtsj::RelativeTime::microseconds(4000));
    analytics.set_criticality(model::Criticality::Low);
    model::TimingContract contract;
    contract.wcet_budget = rtsj::RelativeTime::milliseconds(1);
    contract.window = 4;
    analytics.set_timing_contract(contract);
    model::ThreadManagementView threads(arch);
    auto& domain = threads.domain("reg2", model::DomainType::Regular, 4);
    threads.deploy(domain, analytics);
    model::MemoryManagementView memory(arch);
    memory.deploy(*arch.find_as<model::MemoryAreaComponent>("H1"), domain);
  }
  const auto report = validate::validate(arch);
  if (!report.ok()) {
    std::printf("%s\n", report.to_string().c_str());
    return 1;
  }

  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->monitor().set_violation_callback(&print_violation, nullptr);
  app->start();

  std::printf("running 400 ms wall-clock, single-core executive...\n");
  runtime::Launcher launcher(*app);
  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(400);
  launcher.run(options);
  app->stop();

  std::printf("\ngovernor decisions:\n");
  for (const auto& decision : app->monitor().governor().decisions()) {
    std::printf("  #%llu -> %-10s (trigger: %s)\n",
                static_cast<unsigned long long>(decision.seq),
                to_string(decision.level), decision.trigger);
  }

  std::printf("\nper-component telemetry:\n");
  util::Table table({"Component", "Criticality", "Releases", "Activations",
                     "Misses", "Shed", "p99 exec (us)", "Area"});
  for (const auto& entry : app->monitor().entries()) {
    const auto* planned = app->plan().find_component(entry->name);
    table.add_row(
        {entry->name, model::to_string(entry->criticality),
         std::to_string(entry->telemetry->releases.load()),
         std::to_string(entry->telemetry->activations.load()),
         std::to_string(entry->telemetry->deadline_misses.load()),
         std::to_string(entry->telemetry->shed.load()),
         util::Table::num(
             static_cast<double>(
                 entry->telemetry->exec_ns.percentile_upper_nanos(99)) /
                 1e3,
             1),
         planned != nullptr ? planned->area->name() : "?"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto& pl = launcher.stats("ProductionLine");
  std::printf("high-criticality ProductionLine: %llu releases, %llu "
              "deadline misses — protected through the overload.\n",
              static_cast<unsigned long long>(pl.releases),
              static_cast<unsigned long long>(pl.deadline_misses));
  return 0;
}
