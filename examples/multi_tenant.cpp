// Walkthrough: multi-tenant assemblies — admission, budgets, isolation.
//
// Two tenants share one cluster. "acme" arrives first and brings a
// high-criticality control task plus a low-criticality bulk task that
// overruns its WCET budget on every release. "globex" then asks to join:
// the admission controller composes it with the resident, re-runs the
// rule engine and response-time analysis over the composition, and only
// then stages the reload. A second, over-budget candidate is rejected
// with machine-readable reasons — nothing about the running assembly
// changes.
//
// The composed assembly is then replayed on the deterministic virtual-time
// scheduler with the per-tenant overload governor wired into the release
// gates. acme's bulk task drives acme's envelope to Shed; the final audit
// shows conservation (every release either completed or was shed, none
// lost) and isolation (globex comes through the overload with zero shed
// releases and zero deadline misses).
#include <cstdio>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "monitor/contract.hpp"
#include "monitor/governor.hpp"
#include "runtime/content_registry.hpp"
#include "sim/scheduler.hpp"
#include "soleil/plan.hpp"
#include "tenant/admission.hpp"
#include "util/table.hpp"
#include "validate/tenancy.hpp"
#include "validate/validator.hpp"

namespace {

using namespace rtcf;
using model::ActivationKind;
using model::Architecture;
using model::AreaType;
using model::Criticality;
using model::DomainType;
using model::TenantDecl;

class TenantExampleTaskImpl final : public comm::Content {
 public:
  void on_release() override {}
};
RTCF_REGISTER_CONTENT(TenantExampleTaskImpl)

/// One periodic component in its own RT domain on the heap.
model::ActiveComponent& add_task(Architecture& arch, const std::string& name,
                                 const std::string& domain_name, int priority,
                                 rtsj::RelativeTime period,
                                 rtsj::RelativeTime cost, Criticality crit) {
  auto& comp = arch.add_active(name, ActivationKind::Periodic, period);
  comp.set_cost(cost);
  comp.set_criticality(crit);
  comp.set_content_class("TenantExampleTaskImpl");
  comp.set_swappable(true);
  auto& domain =
      arch.add_thread_domain(domain_name, DomainType::Realtime, priority);
  auto& area = arch.add_memory_area(domain_name + ".H", AreaType::Heap, 0);
  arch.add_child(area, domain);
  arch.add_child(domain, comp);
  return comp;
}

/// The resident: tenant acme with a protected control task and an
/// overrunning bulk task under a 0.95-utilization budget.
Architecture make_resident() {
  Architecture arch;
  add_task(arch, "acme.Ctrl", "acme.RT1", 20,
           rtsj::RelativeTime::milliseconds(10),
           rtsj::RelativeTime::milliseconds(1), Criticality::High);
  add_task(arch, "acme.Bulk", "acme.RT2", 25,
           rtsj::RelativeTime::milliseconds(10),
           rtsj::RelativeTime::milliseconds(8), Criticality::Low);
  TenantDecl acme;
  acme.name = "acme";
  acme.budget.cpu_utilization = 0.95;
  acme.members = {"acme.Ctrl", "acme.Bulk"};
  arch.add_tenant(std::move(acme));
  return arch;
}

/// A candidate slice: one task under tenant `name` with the given budget.
Architecture make_candidate(const std::string& name, rtsj::RelativeTime cost,
                            double cpu_budget) {
  Architecture arch;
  add_task(arch, name + ".Victim", name + ".RT", 22,
           rtsj::RelativeTime::milliseconds(20), cost, Criticality::Low);
  TenantDecl tenant;
  tenant.name = name;
  tenant.budget.cpu_utilization = cpu_budget;
  tenant.members = {name + ".Victim"};
  arch.add_tenant(std::move(tenant));
  return arch;
}

}  // namespace

int main() {
  std::printf("== multi-tenant assemblies: admission, budgets, isolation "
              "==\n\n");

  // ---- 1. the resident tenant -------------------------------------------
  const Architecture resident = make_resident();
  const auto resident_report = validate::validate(resident);
  if (!resident_report.ok()) {
    std::printf("%s\n", resident_report.to_string().c_str());
    return 1;
  }
  const model::AssemblyPlan running =
      soleil::snapshot_assembly(resident, /*partitions=*/1);
  std::printf("resident assembly: %zu component(s), tenant 'acme' "
              "(cpu budget 0.95)\n\n",
              running.components().size());

  // ---- 2. admission: globex joins ---------------------------------------
  const tenant::AdmissionController controller;
  const Architecture globex = make_candidate(
      "globex", rtsj::RelativeTime::milliseconds(1), 0.10);
  const auto admitted = controller.admit(running, resident, globex);
  std::printf("admit 'globex' (1ms / 20ms, budget 0.10): %s\n",
              admitted.accepted ? "ACCEPTED" : "REJECTED");
  if (!admitted.accepted) {
    std::printf("%s\n", admitted.report.to_string().c_str());
    return 1;
  }
  for (const auto& rta : admitted.rta) {
    std::printf("  composed RTA [%s]: %s\n",
                rta.mode.empty() ? "<modeless>" : rta.mode.c_str(),
                rta.schedulable ? "schedulable" : "NOT schedulable");
  }
  std::printf("  staged reload: %s\n\n",
              admitted.reload.delta.summary().c_str());

  // ---- 3. admission: an over-budget tenant is turned away ----------------
  const Architecture greedy = make_candidate(
      "initech", rtsj::RelativeTime::milliseconds(9), 0.10);
  const auto rejected = controller.admit(running, resident, greedy);
  std::printf("admit 'initech' (9ms / 20ms, budget 0.10): %s\n",
              rejected.accepted ? "ACCEPTED" : "REJECTED");
  for (const auto& reason : rejected.reasons) {
    std::printf("  [%s] tenant '%s': %s\n", reason.rule.c_str(),
                reason.tenant.empty() ? "<none>" : reason.tenant.c_str(),
                reason.message.c_str());
  }
  if (rejected.accepted) return 1;
  std::printf("  (the running plan is untouched — admission is pure)\n\n");

  // ---- 4. replay the composed assembly with per-tenant governance --------
  std::printf("replaying 1 s of virtual time, acme.Bulk overrunning its "
              "3 ms budget...\n");
  sim::PreemptiveScheduler sched;

  struct Mirrored {
    std::string tenant;
    sim::TaskId task;
    std::size_t gov;
    std::uint64_t expected;  // release instants over the horizon
  };
  monitor::OverloadGovernor governor;
  const auto acme_id = governor.add_tenant("acme", Criticality::Low);
  const auto globex_id = governor.add_tenant("globex", Criticality::Low);

  const auto& target = admitted.reload.target;
  std::vector<Mirrored> mirror;
  for (const auto& spec : target.components()) {
    sim::TaskConfig config;
    config.name = spec.name;
    config.kind = sim::ThreadKind::Realtime;
    config.priority = 22;
    if (spec.name == "acme.Bulk") config.priority = 25;
    if (spec.name == "acme.Ctrl") config.priority = 20;
    config.release = sim::ReleaseKind::Periodic;
    config.period = spec.period;
    config.cost = spec.cost;
    const sim::TaskId task = sched.add_task(config);
    const auto* tenant = target.tenant_of(spec.name);
    const bool is_acme = tenant != nullptr && tenant->name == "acme";
    const std::size_t gov = governor.add_component(
        spec.name.c_str(), spec.criticality, is_acme ? acme_id : globex_id);
    const auto gate = [&governor, gov](sim::TaskId, std::uint64_t) {
      return governor.admit_release(gov) ==
             monitor::OverloadGovernor::Admission::Run;
    };
    sched.set_release_gate(task, gate);
    Mirrored entry;
    entry.tenant = tenant != nullptr ? tenant->name : "";
    entry.task = task;
    entry.gov = gov;
    entry.expected = static_cast<std::uint64_t>(
        rtsj::RelativeTime::seconds(1).nanos() / spec.period.nanos());
    mirror.push_back(entry);
  }

  // acme.Bulk's completions feed its timing contract; violated windows
  // escalate acme's envelope (and only acme's).
  model::TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::milliseconds(3);
  contract.window = 4;
  monitor::ContractMonitor bulk_contract("acme.Bulk", contract);
  for (const auto& m : mirror) {
    if (std::string(sched.config(m.task).name) != "acme.Bulk") continue;
    const auto gov = m.gov;
    sched.set_on_complete(m.task, [&, gov](sim::AbsoluteTime) {
      monitor::Violation out[2];
      monitor::WindowOutcome outcome = monitor::WindowOutcome::Open;
      bulk_contract.record_execution(rtsj::RelativeTime::milliseconds(8),
                                     false, out, &outcome);
      if (outcome == monitor::WindowOutcome::Violated) {
        governor.on_window_violated(gov);
      } else if (outcome == monitor::WindowOutcome::Clean) {
        governor.on_window_clean(gov);
      }
    });
  }

  sched.run_until(sim::AbsoluteTime::epoch() + sim::RelativeTime::seconds(1));

  std::printf("\ngovernor decisions (every one scoped to a tenant):\n");
  for (const auto& decision : governor.decisions()) {
    std::printf("  #%llu tenant '%s' -> %-10s (trigger: %s)\n",
                static_cast<unsigned long long>(decision.seq),
                decision.tenant, to_string(decision.level),
                decision.trigger);
  }

  // ---- 5. conservation + isolation audit ---------------------------------
  std::printf("\naudit:\n");
  util::Table table({"Task", "Tenant", "Expected", "Completed", "Shed",
                     "Misses"});
  bool conserved = true;
  std::uint64_t victim_misses = 0;
  std::uint64_t victim_shed = 0;
  std::uint64_t bulk_shed = 0;
  for (const auto& m : mirror) {
    const auto stats = sched.stats(m.task);
    const std::string name = sched.config(m.task).name;
    // Conservation: every release instant either completed or was shed
    // (at most one release can still be in flight at the horizon).
    const std::uint64_t accounted =
        stats.releases_completed + stats.shed_releases;
    if (accounted + 1 < m.expected || accounted > m.expected + 1) {
      conserved = false;
    }
    if (m.tenant == "globex") {
      victim_misses += stats.deadline_misses;
      victim_shed += stats.shed_releases;
    }
    if (name == "acme.Bulk") bulk_shed = stats.shed_releases;
    table.add_row({name, m.tenant, std::to_string(m.expected),
                   std::to_string(stats.releases_completed),
                   std::to_string(stats.shed_releases),
                   std::to_string(stats.deadline_misses)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const bool degraded_in_scope = bulk_shed > 0;
  const bool isolated = victim_shed == 0 && victim_misses == 0;
  std::printf("conservation: %s (completed + shed accounts for every "
              "release instant)\n",
              conserved ? "PASS" : "FAIL");
  std::printf("isolation:    %s (globex shed=%llu, misses=%llu — the "
              "overload stayed inside acme)\n",
              isolated ? "PASS" : "FAIL",
              static_cast<unsigned long long>(victim_shed),
              static_cast<unsigned long long>(victim_misses));
  std::printf("degradation:  %s (acme.Bulk shed=%llu releases under its "
              "own envelope)\n",
              degraded_in_scope ? "PASS" : "FAIL",
              static_cast<unsigned long long>(bulk_shed));
  return conserved && isolated && degraded_in_scope ? 0 : 1;
}
