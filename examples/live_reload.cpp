// Walkthrough: live ADL reload through the plan-delta engine.
//
// The Fig. 4 production pipeline runs on the partitioned executive while
// an operator loads a *modified* ADL of the same system and asks the
// ModeManager to reload it live. The plan-delta engine diffs the fresh
// <Architecture> against the running assembly's immutable AssemblyPlan
// snapshot and synthesizes one quiescent transition that
//
//   * removes AuditLog (queued messages drain first — zero loss),
//   * re-targets MonitoringSystem.iAudit onto the new DiagnosticsLog
//     through its AsyncSkeleton (an asynchronous port rebind, buffer
//     re-target with drain-before-swap),
//   * adds DiagnosticsLog (sporadic consumer) and WatchdogPulse (a brand
//     new periodic component whose release timeline enters on the
//     run-start anchor grid) — WatchdogPulse's content class is
//     hot-registered at runtime, the C++ stand-in for dynamic loading.
//
// The walkthrough first shows the reload *failing validation* while the
// content class is unregistered (DELTA-CONTENT-UNKNOWN), then registers
// it and reloads for real. It ends with the conservation audit (no
// message lost across the structural swap) and a bit-for-bit identical
// virtual-time replay of the same delta (TraceKind::PlanChange).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "adl/loader.hpp"
#include "reconfig/mode_manager.hpp"
#include "reconfig/plan_delta.hpp"
#include "reconfig/sim_mirror.hpp"
#include "runtime/content_registry.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "sim/architecture_sim.hpp"
#include "soleil/application.hpp"
#include "util/table.hpp"
#include "validate/validator.hpp"

namespace {

/// The hot-added watchdog's content: a periodic no-op heartbeat counter.
class WatchdogImpl final : public rtcf::comm::Content {
 public:
  void on_release() override { ++pulses_; }
  std::uint64_t pulses() const noexcept { return pulses_; }

 private:
  std::uint64_t pulses_ = 0;
};

/// The running system: Fig. 4 with every pipeline stage swappable and one
/// operational mode (live reload needs no mode choreography of its own).
const char* base_adl() {
  return R"(<Architecture>
  <ActiveComponent name="ProductionLine" type="periodic" periodicity="10ms"
                   cost="200us" criticality="high" swappable="true">
    <interface name="iMonitor" role="client" signature="IMonitor"/>
    <content class="ProductionLineImpl"/>
  </ActiveComponent>
  <ActiveComponent name="MonitoringSystem" type="sporadic" cost="150us"
                   criticality="high" swappable="true">
    <interface name="iMonitor" role="server" signature="IMonitor"/>
    <interface name="iConsole" role="client" signature="IConsole"/>
    <interface name="iAudit" role="client" signature="IAudit"/>
    <content class="MonitoringSystemImpl"/>
  </ActiveComponent>
  <PassiveComponent name="Console">
    <interface name="iConsole" role="server" signature="IConsole"/>
    <content class="ConsoleImpl"/>
  </PassiveComponent>
  <ActiveComponent name="AuditLog" type="sporadic" cost="300us"
                   criticality="low" swappable="true">
    <interface name="iAudit" role="server" signature="IAudit"/>
    <content class="AuditLogImpl"/>
  </ActiveComponent>
  <Binding>
    <client cname="ProductionLine" iname="iMonitor"/>
    <server cname="MonitoringSystem" iname="iMonitor"/>
    <BindDesc protocol="asynchronous" bufferSize="10"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iConsole"/>
    <server cname="Console" iname="iConsole"/>
    <BindDesc protocol="synchronous"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iAudit"/>
    <server cname="AuditLog" iname="iAudit"/>
    <BindDesc protocol="asynchronous" bufferSize="10"/>
  </Binding>
  <MemoryArea name="Imm1">
    <ThreadDomain name="NHRT1">
      <ActiveComp name="ProductionLine"/>
      <DomainDesc type="NHRT" priority="30"/>
    </ThreadDomain>
    <ThreadDomain name="NHRT2">
      <ActiveComp name="MonitoringSystem"/>
      <DomainDesc type="NHRT" priority="25"/>
    </ThreadDomain>
    <AreaDesc type="immortal" size="600KB"/>
  </MemoryArea>
  <MemoryArea name="S1">
    <PassiveComp name="Console"/>
    <AreaDesc type="scope" name="cscope" size="28KB"/>
  </MemoryArea>
  <MemoryArea name="H1">
    <ThreadDomain name="reg1">
      <ActiveComp name="AuditLog"/>
      <DomainDesc type="Regular" priority="5"/>
    </ThreadDomain>
    <AreaDesc type="heap"/>
  </MemoryArea>
  <Mode name="Normal">
    <Component name="ProductionLine"/>
    <Component name="MonitoringSystem"/>
    <Component name="AuditLog"/>
  </Mode>
</Architecture>
)";
}

/// The operator's edited ADL: AuditLog is gone, its port re-targeted onto
/// the new DiagnosticsLog, and a WatchdogPulse heartbeat joins the
/// assembly.
const char* modified_adl() {
  return R"(<Architecture>
  <ActiveComponent name="ProductionLine" type="periodic" periodicity="10ms"
                   cost="200us" criticality="high" swappable="true">
    <interface name="iMonitor" role="client" signature="IMonitor"/>
    <content class="ProductionLineImpl"/>
  </ActiveComponent>
  <ActiveComponent name="MonitoringSystem" type="sporadic" cost="150us"
                   criticality="high" swappable="true">
    <interface name="iMonitor" role="server" signature="IMonitor"/>
    <interface name="iConsole" role="client" signature="IConsole"/>
    <interface name="iAudit" role="client" signature="IAudit"/>
    <content class="MonitoringSystemImpl"/>
  </ActiveComponent>
  <PassiveComponent name="Console">
    <interface name="iConsole" role="server" signature="IConsole"/>
    <content class="ConsoleImpl"/>
  </PassiveComponent>
  <ActiveComponent name="DiagnosticsLog" type="sporadic" cost="250us"
                   criticality="low" swappable="true">
    <interface name="iAudit" role="server" signature="IAudit"/>
    <content class="AuditLogImpl"/>
  </ActiveComponent>
  <ActiveComponent name="WatchdogPulse" type="periodic" periodicity="20ms"
                   cost="50us" criticality="low" swappable="true">
    <content class="WatchdogImpl"/>
  </ActiveComponent>
  <Binding>
    <client cname="ProductionLine" iname="iMonitor"/>
    <server cname="MonitoringSystem" iname="iMonitor"/>
    <BindDesc protocol="asynchronous" bufferSize="10"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iConsole"/>
    <server cname="Console" iname="iConsole"/>
    <BindDesc protocol="synchronous"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iAudit"/>
    <server cname="DiagnosticsLog" iname="iAudit"/>
    <BindDesc protocol="asynchronous" bufferSize="10"/>
  </Binding>
  <MemoryArea name="Imm1">
    <ThreadDomain name="NHRT1">
      <ActiveComp name="ProductionLine"/>
      <DomainDesc type="NHRT" priority="30"/>
    </ThreadDomain>
    <ThreadDomain name="NHRT2">
      <ActiveComp name="MonitoringSystem"/>
      <DomainDesc type="NHRT" priority="25"/>
    </ThreadDomain>
    <ThreadDomain name="RT1">
      <ActiveComp name="WatchdogPulse"/>
      <DomainDesc type="RT" priority="20"/>
    </ThreadDomain>
    <AreaDesc type="immortal" size="600KB"/>
  </MemoryArea>
  <MemoryArea name="S1">
    <PassiveComp name="Console"/>
    <AreaDesc type="scope" name="cscope" size="28KB"/>
  </MemoryArea>
  <MemoryArea name="H1">
    <ThreadDomain name="reg2">
      <ActiveComp name="DiagnosticsLog"/>
      <DomainDesc type="Regular" priority="5"/>
    </ThreadDomain>
    <AreaDesc type="heap"/>
  </MemoryArea>
  <Mode name="Normal">
    <Component name="ProductionLine"/>
    <Component name="MonitoringSystem"/>
    <Component name="DiagnosticsLog"/>
    <Component name="WatchdogPulse"/>
  </Mode>
</Architecture>
)";
}

}  // namespace

int main() {
  using namespace rtcf;

  std::printf("== live ADL reload: add + remove + async rebind ==\n\n");

  const auto arch = adl::load_architecture(base_adl());
  const auto report = validate::validate(arch);
  if (!report.ok()) {
    std::printf("%s\n", report.to_string().c_str());
    return 1;
  }

  constexpr std::size_t kWorkers = 2;
  auto app = soleil::build_application(arch, soleil::Mode::Soleil, kWorkers);
  app->start();
  reconfig::ModeManager manager(*app);
  runtime::Launcher launcher(*app);

  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(400);
  options.workers = kWorkers;
  options.mode_manager = &manager;

  std::thread executive([&] { launcher.run(options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // First attempt: the edited ADL names a content class nobody registered
  // — the delta validator rejects the reload before anything moves.
  {
    const auto target = adl::load_architecture(modified_adl());
    validate::Report reload_report;
    const bool accepted = manager.request_reload(target, &reload_report);
    std::printf("reload without WatchdogImpl registered: %s\n",
                accepted ? "accepted (?!)" : "rejected");
    for (const auto& d : reload_report.by_rule("DELTA-CONTENT-UNKNOWN")) {
      std::printf("  %s\n", d.to_string().c_str());
    }
    if (accepted) return 1;
  }

  // Hot-register the implementation (the paper's dynamic class loading,
  // in C++ clothes), then reload for real. The target architecture is
  // captured by value — it may die right after the call.
  runtime::ContentRegistry::instance().register_class<WatchdogImpl>(
      "WatchdogImpl");
  validate::Report reload_report;
  {
    const auto target = adl::load_architecture(modified_adl());
    if (!manager.request_reload(target, &reload_report)) {
      std::printf("reload rejected:\n%s\n",
                  reload_report.to_string().c_str());
      return 1;
    }
  }
  std::printf("\nreload staged; applying at the quiescence rendezvous\n");

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  executive.join();

  std::printf("\n-- transitions --\n");
  util::Table table({"#", "from", "to", "trigger", "latency"});
  for (const auto& t : manager.transitions()) {
    table.add_row({std::to_string(t.seq), t.from, t.to, t.trigger,
                   util::Table::num(t.latency.to_micros(), 1) + " us"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto counters = scenario::collect_counters(*app);
  const auto* diagnostics = dynamic_cast<const scenario::AuditLogImpl*>(
      app->content("DiagnosticsLog"));
  const auto* watchdog =
      dynamic_cast<const WatchdogImpl*>(app->content("WatchdogPulse"));
  std::uint64_t dropped = 0;
  for (const auto& buffer : app->buffers()) {
    dropped += buffer->dropped_total();
  }

  std::printf("-- message conservation across the reload --\n");
  std::printf("  produced             %llu\n",
              static_cast<unsigned long long>(counters.produced));
  std::printf("  processed            %llu\n",
              static_cast<unsigned long long>(counters.processed));
  std::printf("  audit (old AuditLog) %llu\n",
              static_cast<unsigned long long>(counters.audit_records));
  std::printf("  audit (Diagnostics)  %llu\n",
              static_cast<unsigned long long>(
                  diagnostics != nullptr ? diagnostics->records() : 0));
  std::printf("  anomalies/console    %llu/%llu\n",
              static_cast<unsigned long long>(counters.anomalies),
              static_cast<unsigned long long>(counters.console_reports));
  std::printf("  watchdog pulses      %llu (releases %llu)\n",
              static_cast<unsigned long long>(
                  watchdog != nullptr ? watchdog->pulses() : 0),
              static_cast<unsigned long long>(
                  launcher.stats("WatchdogPulse").releases));
  std::printf("  drain audit          %llu message(s) moved at the swap\n",
              static_cast<unsigned long long>(manager.last_drain_audit()));
  std::printf("  buffer drops         %llu\n",
              static_cast<unsigned long long>(dropped));

  const std::uint64_t audited =
      counters.audit_records +
      (diagnostics != nullptr ? diagnostics->records() : 0);
  const bool conserved = counters.produced == counters.processed &&
                         counters.produced == audited && dropped == 0 &&
                         counters.console_reports == counters.anomalies;
  const bool grew = watchdog != nullptr && watchdog->pulses() > 0 &&
                    launcher.stats("WatchdogPulse").releases ==
                        watchdog->pulses();
  std::printf("\nzero lost messages: %s\n", conserved ? "OK" : "VIOLATED");
  std::printf("hot-added timeline released on the anchor grid: %s\n",
              grew ? "OK" : "VIOLATED");

  // ---- virtual-time mirror: the same delta replays bit-for-bit ----------
  const auto base_snapshot = soleil::snapshot_assembly(arch, kWorkers);
  const auto target = adl::load_architecture(modified_adl());
  const auto rp = reconfig::plan_reload(base_snapshot, target);
  if (!rp.ok()) {
    std::printf("sim-mirror planning failed:\n%s\n",
                rp.report.to_string().c_str());
    return 1;
  }
  const auto run_mirror = [&] {
    sim::PreemptiveScheduler sched(kWorkers);
    sched.enable_trace();
    sim::SimMapping mapping = sim::map_architecture(
        arch, sched, [&](const std::string& name) {
          return base_snapshot.find(name)->partition;
        });
    reconfig::schedule_plan_delta(sched, rp.delta, mapping,
                                  rtsj::AbsoluteTime::epoch() +
                                      rtsj::RelativeTime::milliseconds(150),
                                  rtsj::AbsoluteTime::epoch());
    sched.run_until(rtsj::AbsoluteTime::epoch() +
                    rtsj::RelativeTime::milliseconds(400));
    std::vector<std::string> rendered;
    rendered.reserve(sched.trace().size());
    std::size_t plan_changes = 0;
    for (const auto& ev : sched.trace()) {
      if (ev.kind == sim::TraceKind::PlanChange) ++plan_changes;
      rendered.push_back(ev.to_string(sched));
    }
    return std::make_pair(std::move(rendered), plan_changes);
  };
  const auto first = run_mirror();
  const auto second = run_mirror();
  const bool replay_identical =
      first.first == second.first && first.second == 1;
  std::printf("sim replay: %zu trace events, %zu plan-change event(s), "
              "bit-for-bit identical: %s\n",
              first.first.size(), first.second,
              replay_identical ? "OK" : "VIOLATED");

  app->stop();
  return conserved && grew && replay_identical ? 0 : 1;
}
