// Runtime adaptation (§4.2): per-component lifecycle control and RTSJ-aware
// rebinding.
//
// The monitoring system's console binding is redirected at runtime to a
// backup console in immortal memory (legal: direct pattern). A second
// attempted rebinding to a heap-allocated console is *rejected*, because a
// synchronous call from an NHRT client into heap state would violate RTSJ —
// "the reconfiguration process has to adhere to these restrictions as
// well".
#include <cstdio>

#include "comm/content.hpp"
#include "runtime/content_registry.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "validate/validator.hpp"

namespace {

using namespace rtcf;

/// Stand-in console deployed in immortal memory.
class BackupConsoleImpl final : public comm::Content {
 public:
  comm::Message on_invoke(const comm::Message& request) override {
    ++reports_;
    comm::Message ack;
    ack.type_id = scenario::kAckType;
    ack.sequence = request.sequence;
    return ack;
  }
  std::uint64_t reports() const { return reports_; }

 private:
  std::uint64_t reports_ = 0;
};

/// Console on the heap — illegal target for the NHRT monitoring system.
class HeapConsoleImpl final : public comm::Content {
 public:
  comm::Message on_invoke(const comm::Message&) override { return {}; }
};

RTCF_REGISTER_CONTENT(BackupConsoleImpl)
RTCF_REGISTER_CONTENT(HeapConsoleImpl)

}  // namespace

int main() {
  using namespace rtcf;
  using namespace rtcf::model;

  // Extend the Fig. 4 architecture with two alternate consoles.
  auto arch = scenario::make_production_architecture();
  auto& backup = arch.add_passive("BackupConsole");
  backup.set_content_class("BackupConsoleImpl");
  backup.add_interface({"iConsole", InterfaceRole::Server, "IConsole"});
  auto& heap_console = arch.add_passive("HeapConsole");
  heap_console.set_content_class("HeapConsoleImpl");
  heap_console.add_interface({"iConsole", InterfaceRole::Server, "IConsole"});
  arch.add_child(*arch.find("Imm1"), backup);       // immortal: legal target
  arch.add_child(*arch.find("H1"), heap_console);   // heap: illegal target

  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();

  // Phase 1: normal operation (primary console in its 28 KB scope).
  for (int i = 0; i < 500; ++i) app->iterate("ProductionLine");
  const auto phase1 = scenario::collect_counters(*app);
  std::printf("phase 1: %llu anomalies reported to the scoped console\n",
              static_cast<unsigned long long>(phase1.console_reports));

  // Phase 2: stop the monitoring system, rebind its console port to the
  // backup, restart — a maintenance swap while the pipeline keeps running.
  app->set_component_started("MonitoringSystem", false);
  auto report = app->rebind_sync("MonitoringSystem", "iConsole",
                                 "BackupConsole");
  std::printf("rebind to BackupConsole: %s\n",
              report.ok() ? "accepted" : "REJECTED");
  app->set_component_started("MonitoringSystem", true);
  for (int i = 0; i < 500; ++i) app->iterate("ProductionLine");

  const auto* backup_content =
      dynamic_cast<const BackupConsoleImpl*>(app->content("BackupConsole"));
  std::printf("phase 2: backup console handled %llu reports\n",
              static_cast<unsigned long long>(backup_content->reports()));

  // Phase 3: an RTSJ-illegal reconfiguration is refused.
  auto illegal = app->rebind_sync("MonitoringSystem", "iConsole",
                                  "HeapConsole");
  std::printf("rebind to HeapConsole: %s\n",
              illegal.ok() ? "accepted (BUG!)" : "rejected as expected");
  for (const auto& d : illegal.diagnostics()) {
    std::printf("  %s\n", d.to_string().c_str());
  }

  // Membrane introspection (SOLEIL mode only).
  auto* membrane = app->find_membrane("MonitoringSystem");
  std::printf("\nMonitoringSystem membrane: %zu interceptors [",
              membrane->interceptor_count());
  bool first = true;
  for (const auto& kind : membrane->interceptor_kinds()) {
    std::printf("%s%s", first ? "" : ", ", kind.c_str());
    first = false;
  }
  std::printf("]\n");

  app->stop();
  return (report.ok() && !illegal.ok() && backup_content->reports() > 0) ? 0
                                                                         : 1;
}
