// RTSJ time types (javax.realtime.HighResolutionTime family), modelled as
// strongly-typed nanosecond values.
//
// RTSJ distinguishes AbsoluteTime (a point on a clock's timeline) from
// RelativeTime (a duration). Keeping them distinct types catches the
// classic "added a deadline to a deadline" bug at compile time.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace rtcf::rtsj {

class AbsoluteTime;

/// A signed duration with nanosecond resolution.
class RelativeTime {
 public:
  constexpr RelativeTime() = default;
  constexpr explicit RelativeTime(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr RelativeTime nanoseconds(std::int64_t v) {
    return RelativeTime(v);
  }
  static constexpr RelativeTime microseconds(std::int64_t v) {
    return RelativeTime(v * 1'000);
  }
  static constexpr RelativeTime milliseconds(std::int64_t v) {
    return RelativeTime(v * 1'000'000);
  }
  static constexpr RelativeTime seconds(std::int64_t v) {
    return RelativeTime(v * 1'000'000'000);
  }
  static constexpr RelativeTime zero() { return RelativeTime(0); }

  constexpr std::int64_t nanos() const { return nanos_; }
  constexpr double to_millis() const {
    return static_cast<double>(nanos_) / 1e6;
  }
  constexpr double to_micros() const {
    return static_cast<double>(nanos_) / 1e3;
  }
  constexpr bool is_zero() const { return nanos_ == 0; }
  constexpr bool is_negative() const { return nanos_ < 0; }

  constexpr RelativeTime operator+(RelativeTime o) const {
    return RelativeTime(nanos_ + o.nanos_);
  }
  constexpr RelativeTime operator-(RelativeTime o) const {
    return RelativeTime(nanos_ - o.nanos_);
  }
  constexpr RelativeTime operator*(std::int64_t k) const {
    return RelativeTime(nanos_ * k);
  }
  constexpr RelativeTime operator-() const { return RelativeTime(-nanos_); }
  constexpr bool operator==(RelativeTime o) const { return nanos_ == o.nanos_; }
  constexpr bool operator!=(RelativeTime o) const { return nanos_ != o.nanos_; }
  constexpr bool operator<(RelativeTime o) const { return nanos_ < o.nanos_; }
  constexpr bool operator<=(RelativeTime o) const { return nanos_ <= o.nanos_; }
  constexpr bool operator>(RelativeTime o) const { return nanos_ > o.nanos_; }
  constexpr bool operator>=(RelativeTime o) const { return nanos_ >= o.nanos_; }

  std::string to_string() const;

 private:
  std::int64_t nanos_ = 0;
};

/// A point in time on some clock's timeline, nanoseconds since the clock
/// epoch.
class AbsoluteTime {
 public:
  constexpr AbsoluteTime() = default;
  constexpr explicit AbsoluteTime(std::int64_t nanos_since_epoch)
      : nanos_(nanos_since_epoch) {}

  static constexpr AbsoluteTime epoch() { return AbsoluteTime(0); }

  constexpr std::int64_t nanos() const { return nanos_; }

  constexpr AbsoluteTime operator+(RelativeTime d) const {
    return AbsoluteTime(nanos_ + d.nanos());
  }
  constexpr AbsoluteTime operator-(RelativeTime d) const {
    return AbsoluteTime(nanos_ - d.nanos());
  }
  constexpr RelativeTime operator-(AbsoluteTime o) const {
    return RelativeTime(nanos_ - o.nanos_);
  }
  constexpr bool operator==(AbsoluteTime o) const { return nanos_ == o.nanos_; }
  constexpr bool operator!=(AbsoluteTime o) const { return nanos_ != o.nanos_; }
  constexpr bool operator<(AbsoluteTime o) const { return nanos_ < o.nanos_; }
  constexpr bool operator<=(AbsoluteTime o) const { return nanos_ <= o.nanos_; }
  constexpr bool operator>(AbsoluteTime o) const { return nanos_ > o.nanos_; }
  constexpr bool operator>=(AbsoluteTime o) const { return nanos_ >= o.nanos_; }

  std::string to_string() const;

 private:
  std::int64_t nanos_ = 0;
};

/// Abstract clock (javax.realtime.Clock).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time on this clock's timeline.
  virtual AbsoluteTime now() const = 0;
  /// Smallest distinguishable time increment.
  virtual RelativeTime resolution() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock; used by the wall-clock
/// benchmark harness.
class SteadyClock final : public Clock {
 public:
  AbsoluteTime now() const override;
  RelativeTime resolution() const override {
    return RelativeTime::nanoseconds(1);
  }
  /// Process-wide instance.
  static SteadyClock& instance();
};

/// Manually advanced clock driving the discrete-event scheduler simulator.
/// All waits in virtual-time executions resolve against this clock, which
/// is what makes simulation runs deterministic and repeatable.
class ManualClock final : public Clock {
 public:
  AbsoluteTime now() const override { return now_; }
  RelativeTime resolution() const override {
    return RelativeTime::nanoseconds(1);
  }

  /// Moves time forward; never backwards.
  void advance_to(AbsoluteTime t);
  void advance_by(RelativeTime d) { advance_to(now_ + d); }
  void reset() { now_ = AbsoluteTime::epoch(); }

 private:
  AbsoluteTime now_ = AbsoluteTime::epoch();
};

}  // namespace rtcf::rtsj
