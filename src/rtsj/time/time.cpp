#include "rtsj/time/time.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace rtcf::rtsj {

std::string RelativeTime::to_string() const {
  char buf[64];
  if (nanos_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(nanos_ / 1'000'000));
  } else if (nanos_ % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(nanos_ / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(nanos_));
  }
  return buf;
}

std::string AbsoluteTime::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t+%lldns", static_cast<long long>(nanos_));
  return buf;
}

AbsoluteTime SteadyClock::now() const {
  const auto tp = std::chrono::steady_clock::now().time_since_epoch();
  return AbsoluteTime(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp).count());
}

SteadyClock& SteadyClock::instance() {
  static SteadyClock clock;
  return clock;
}

void ManualClock::advance_to(AbsoluteTime t) {
  RTCF_REQUIRE(t >= now_, "manual clock cannot run backwards");
  now_ = t;
}

}  // namespace rtcf::rtsj
