#include "rtsj/threads/params.hpp"

namespace rtcf::rtsj {

const char* to_string(ReleaseKind kind) noexcept {
  switch (kind) {
    case ReleaseKind::Periodic:
      return "periodic";
    case ReleaseKind::Sporadic:
      return "sporadic";
    case ReleaseKind::Aperiodic:
      return "aperiodic";
  }
  return "?";
}

RelativeTime ReleaseProfile::effective_deadline() const noexcept {
  if (!deadline.is_zero()) return deadline;
  switch (kind) {
    case ReleaseKind::Periodic:
      return period;
    case ReleaseKind::Sporadic:
      return min_interarrival;
    case ReleaseKind::Aperiodic:
      return RelativeTime::zero();  // no deadline
  }
  return RelativeTime::zero();
}

ReleaseProfile ReleaseProfile::periodic(RelativeTime period, RelativeTime cost,
                                        AbsoluteTime start) {
  ReleaseProfile p;
  p.kind = ReleaseKind::Periodic;
  p.period = period;
  p.cost = cost;
  p.start = start;
  return p;
}

ReleaseProfile ReleaseProfile::sporadic(RelativeTime min_interarrival,
                                        RelativeTime cost) {
  ReleaseProfile p;
  p.kind = ReleaseKind::Sporadic;
  p.min_interarrival = min_interarrival;
  p.cost = cost;
  return p;
}

ReleaseProfile ReleaseProfile::aperiodic(RelativeTime cost) {
  ReleaseProfile p;
  p.kind = ReleaseKind::Aperiodic;
  p.cost = cost;
  return p;
}

}  // namespace rtcf::rtsj
