// Logical RTSJ threads.
//
// A RealtimeThread here is a *logical* thread: the unit the paper's
// ThreadDomain components group and configure. Logical threads carry their
// RTSJ-visible state (ThreadContext: scope stack, no-heap flag, priority)
// and a per-release body executed run-to-completion — the execution model
// the paper's ActiveInterceptor implements (§4.1). They are driven either
// by the discrete-event simulator (deterministic virtual time) or by the
// wall-clock launcher.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "rtsj/memory/context.hpp"
#include "rtsj/threads/params.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::rtsj {

class MemoryArea;

/// Per-release bookkeeping passed to deadline-miss handlers.
struct ReleaseInfo {
  std::uint64_t sequence = 0;   ///< 0-based release index.
  AbsoluteTime release_time{};  ///< When the release became eligible.
  AbsoluteTime finish_time{};   ///< When the handler completed.
  RelativeTime response() const { return finish_time - release_time; }
};

/// A schedulable logical thread (javax.realtime.RealtimeThread).
class RealtimeThread {
 public:
  RealtimeThread(std::string name, ThreadKind kind, int priority,
                 ReleaseProfile profile, MemoryArea* initial_area = nullptr);
  virtual ~RealtimeThread() = default;

  RealtimeThread(const RealtimeThread&) = delete;
  RealtimeThread& operator=(const RealtimeThread&) = delete;

  const std::string& name() const noexcept { return context_.name(); }
  ThreadKind kind() const noexcept { return context_.kind(); }
  int priority() const noexcept { return context_.priority(); }
  /// RTSJ setSchedulingParameters: adjusts the base priority. Band checks
  /// are performed by the ThreadDomainController driving the change.
  void set_priority(int priority) noexcept {
    context_.set_priority(priority);
  }
  const ReleaseProfile& profile() const noexcept { return profile_; }
  ThreadContext& context() noexcept { return context_; }

  /// Installs the work performed on each release. Must be set before the
  /// thread is started by an executor.
  void set_logic(std::function<void()> logic) { logic_ = std::move(logic); }
  bool has_logic() const noexcept { return static_cast<bool>(logic_); }

  /// Executes one release with this thread's context installed
  /// (run-to-completion; exceptions propagate to the executor).
  void run_release();

  /// Executes arbitrary work under this thread's context and counts it as
  /// one release. Used by the activation manager, which supplies the work
  /// per release (e.g. "pop this binding's buffer and dispatch").
  void run_with_context(const std::function<void()>& work);

  /// Sporadic admission control: returns false (and rejects the release)
  /// when `arrival` violates the declared minimum interarrival time.
  bool admit_sporadic_arrival(AbsoluteTime arrival);

  /// Deadline-miss handler (AsyncEventHandler in RTSJ); invoked by
  /// executors that track deadlines.
  void set_deadline_miss_handler(std::function<void(const ReleaseInfo&)> h) {
    miss_handler_ = std::move(h);
  }
  void notify_deadline_miss(const ReleaseInfo& info);

  std::uint64_t release_count() const noexcept { return release_count_; }
  std::uint64_t deadline_miss_count() const noexcept { return miss_count_; }

 private:
  ThreadContext context_;
  ReleaseProfile profile_;
  std::function<void()> logic_;
  std::function<void(const ReleaseInfo&)> miss_handler_;
  AbsoluteTime last_arrival_{};
  bool has_arrival_ = false;
  std::uint64_t release_count_ = 0;
  std::uint64_t miss_count_ = 0;
};

/// RealtimeThread that must never touch the heap. The constructor refuses a
/// heap initial allocation context, mirroring RTSJ's constructor-time
/// checks; all other heap barriers are enforced by the memory layer.
class NoHeapRealtimeThread final : public RealtimeThread {
 public:
  NoHeapRealtimeThread(std::string name, int priority, ReleaseProfile profile,
                       MemoryArea* initial_area = nullptr);
};

/// Plain (non-realtime) thread wrapper so regular components slot into the
/// same executor machinery.
class RegularThread final : public RealtimeThread {
 public:
  RegularThread(std::string name, int priority, ReleaseProfile profile);
};

}  // namespace rtcf::rtsj
