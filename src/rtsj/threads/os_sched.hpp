// Mapping from RTSJ priority bands onto host OS scheduling.
//
// The paper's testbed runs the RTSJ VM over RT-Preempt Linux, where the 28
// real-time priorities map onto SCHED_FIFO. The partitioned executive's
// worker threads do the same here: each worker asks for the SCHED_FIFO
// level corresponding to the highest-priority component pinned to it.
// Hosts without CAP_SYS_NICE (developer machines, CI containers) refuse the
// request — callers treat that as a soft failure and keep running under
// SCHED_OTHER, which only weakens latency bounds, never correctness.
#pragma once

namespace rtcf::rtsj {

/// Maps an RTSJ priority onto a SCHED_FIFO priority level.
///
/// The real-time band [kMinRtPriority, kMaxRtPriority] maps linearly onto
/// [1, 28]; regular Java priorities map to 0, meaning "stay SCHED_OTHER".
int to_os_priority(int rtsj_priority) noexcept;

/// Attempts to switch the *calling* OS thread to SCHED_FIFO at the level
/// `to_os_priority(rtsj_priority)`. Returns true on success; false when the
/// priority maps to 0, the platform has no POSIX scheduling API, or the
/// process lacks the privilege (EPERM) — all non-fatal.
bool try_set_current_thread_priority(int rtsj_priority) noexcept;

}  // namespace rtcf::rtsj
