#include "rtsj/threads/os_sched.hpp"

#include "rtsj/threads/params.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RTCF_HAVE_PTHREAD_SCHED 1
#include <pthread.h>
#include <sched.h>
#endif

namespace rtcf::rtsj {

int to_os_priority(int rtsj_priority) noexcept {
  if (rtsj_priority < kMinRtPriority) return 0;
  if (rtsj_priority > kMaxRtPriority) rtsj_priority = kMaxRtPriority;
  return rtsj_priority - kMinRtPriority + 1;
}

bool try_set_current_thread_priority(int rtsj_priority) noexcept {
#ifdef RTCF_HAVE_PTHREAD_SCHED
  const int level = to_os_priority(rtsj_priority);
  if (level <= 0) return false;
  sched_param param{};
  param.sched_priority = level;
  return pthread_setschedparam(pthread_self(), SCHED_FIFO, &param) == 0;
#else
  (void)rtsj_priority;
  return false;
#endif
}

}  // namespace rtcf::rtsj
