// Scheduling and release parameters (javax.realtime.SchedulingParameters /
// ReleaseParameters families), consumed by the scheduler simulator and the
// wall-clock launcher.
#pragma once

#include "rtsj/time/time.hpp"

namespace rtcf::rtsj {

/// RTSJ base priority bands: the PriorityScheduler exposes 28 real-time
/// priorities strictly above the 10 regular Java priorities.
inline constexpr int kMinRegularPriority = 1;
inline constexpr int kMaxRegularPriority = 10;
inline constexpr int kMinRtPriority = 11;
inline constexpr int kMaxRtPriority = 38;

/// Fixed-priority scheduling parameters (PriorityParameters).
struct PriorityParameters {
  int priority = kMinRtPriority;
};

/// How a thread's releases arrive.
enum class ReleaseKind {
  Periodic,   ///< time-triggered, fixed period
  Sporadic,   ///< event-triggered with a minimum interarrival time
  Aperiodic,  ///< event-triggered, unconstrained
};

const char* to_string(ReleaseKind kind) noexcept;

/// Merged ReleaseParameters/PeriodicParameters/SporadicParameters record.
/// Unused fields are ignored for the kinds that do not need them.
struct ReleaseProfile {
  ReleaseKind kind = ReleaseKind::Aperiodic;
  /// First release instant (periodic only; epoch = "at launch").
  AbsoluteTime start{};
  /// Release period (periodic only).
  RelativeTime period{};
  /// Minimum interarrival time (sporadic only).
  RelativeTime min_interarrival{};
  /// Modeled worst-case execution cost per release; drives the
  /// discrete-event simulator. Zero means "unknown" (simulator treats as
  /// instantaneous; wall-clock execution measures reality instead).
  RelativeTime cost{};
  /// Relative deadline; zero selects the implicit deadline (= period for
  /// periodic, = min interarrival for sporadic).
  RelativeTime deadline{};

  /// Effective relative deadline after applying the implicit-deadline rule.
  RelativeTime effective_deadline() const noexcept;

  static ReleaseProfile periodic(RelativeTime period,
                                 RelativeTime cost = RelativeTime::zero(),
                                 AbsoluteTime start = AbsoluteTime::epoch());
  static ReleaseProfile sporadic(RelativeTime min_interarrival,
                                 RelativeTime cost = RelativeTime::zero());
  static ReleaseProfile aperiodic(RelativeTime cost = RelativeTime::zero());
};

}  // namespace rtcf::rtsj
