#include "rtsj/threads/realtime_thread.hpp"

#include "rtsj/memory/memory_area.hpp"
#include "util/assert.hpp"

namespace rtcf::rtsj {

RealtimeThread::RealtimeThread(std::string name, ThreadKind kind, int priority,
                               ReleaseProfile profile,
                               MemoryArea* initial_area)
    : context_(std::move(name), kind, priority, initial_area),
      profile_(profile) {}

void RealtimeThread::run_release() {
  if (!logic_) {
    throw IllegalThreadStateException("thread '" + name() +
                                      "' released without logic installed");
  }
  ContextGuard guard(context_);
  logic_();
  ++release_count_;
}

void RealtimeThread::run_with_context(const std::function<void()>& work) {
  ContextGuard guard(context_);
  work();
  ++release_count_;
}

bool RealtimeThread::admit_sporadic_arrival(AbsoluteTime arrival) {
  if (profile_.kind != ReleaseKind::Sporadic) return true;
  if (has_arrival_ &&
      arrival - last_arrival_ < profile_.min_interarrival) {
    return false;
  }
  last_arrival_ = arrival;
  has_arrival_ = true;
  return true;
}

void RealtimeThread::notify_deadline_miss(const ReleaseInfo& info) {
  ++miss_count_;
  if (miss_handler_) miss_handler_(info);
}

NoHeapRealtimeThread::NoHeapRealtimeThread(std::string name, int priority,
                                           ReleaseProfile profile,
                                           MemoryArea* initial_area)
    : RealtimeThread(std::move(name), ThreadKind::NoHeapRealtime, priority,
                     profile, initial_area) {
  if (context().allocation_context().kind() == AreaKind::Heap) {
    throw IllegalThreadStateException(
        "NoHeapRealtimeThread '" + this->name() +
        "' cannot use the heap as its initial allocation context");
  }
}

RegularThread::RegularThread(std::string name, int priority,
                             ReleaseProfile profile)
    : RealtimeThread(std::move(name), ThreadKind::Regular, priority, profile,
                     &HeapMemory::instance()) {}

}  // namespace rtcf::rtsj
