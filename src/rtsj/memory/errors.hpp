// RTSJ error taxonomy (javax.realtime.*), thrown by the memory and thread
// substrate when a program violates the specification's rules at runtime.
//
// The design-time validator (src/validate) exists precisely to reject
// architectures that would trigger these; the runtime checks are the last
// line of defence, mirroring a real RTSJ VM.
#pragma once

#include <stdexcept>
#include <string>

namespace rtcf::rtsj {

/// Base class for all RTSJ runtime violations.
class RtsjError : public std::runtime_error {
 public:
  explicit RtsjError(const std::string& what) : std::runtime_error(what) {}
};

/// Allocation request exceeded the declared size of a memory area.
class OutOfMemoryError : public RtsjError {
 public:
  using RtsjError::RtsjError;
};

/// Entering a scoped memory would give it a second parent (single parent
/// rule, §2.1 of the paper) or create a cycle in the scope stack.
class ScopedCycleException : public RtsjError {
 public:
  using RtsjError::RtsjError;
};

/// A reference store would let a longer-lived object point at a
/// shorter-lived one (RTSJ assignment rules).
class IllegalAssignmentError : public RtsjError {
 public:
  using RtsjError::RtsjError;
};

/// A NoHeapRealtimeThread touched the heap (allocation, dereference, or
/// execution with heap as allocation context).
class MemoryAccessError : public RtsjError {
 public:
  using RtsjError::RtsjError;
};

/// executeInArea / portal access against a scope that is not on the
/// caller's scope stack.
class InaccessibleAreaException : public RtsjError {
 public:
  using RtsjError::RtsjError;
};

/// Sporadic release violating the declared minimum interarrival time, or a
/// release before the thread was started.
class IllegalReleaseException : public RtsjError {
 public:
  using RtsjError::RtsjError;
};

/// Thread lifecycle misuse (double start, waitForNextPeriod outside a
/// periodic thread, ...).
class IllegalThreadStateException : public RtsjError {
 public:
  using RtsjError::RtsjError;
};

}  // namespace rtcf::rtsj
