#include "rtsj/memory/ref.hpp"

namespace rtcf::rtsj {

void check_store(const MemoryArea* holder, const MemoryArea* target,
                 const void* target_ptr) {
  if (target_ptr == nullptr) return;       // null is always storable
  if (holder == nullptr) return;           // stack/global holder: a "local"
  if (target == nullptr) return;           // unmanaged target: untracked
  if (target->kind() != AreaKind::Scoped) return;  // heap/immortal target
  if (holder->kind() != AreaKind::Scoped) {
    throw IllegalAssignmentError(
        "illegal store: object in " + std::string(to_string(holder->kind())) +
        " memory '" + holder->name() + "' may not reference scoped memory '" +
        target->name() + "'");
  }
  const auto* holder_scope = static_cast<const ScopedMemory*>(holder);
  const auto* target_scope = static_cast<const ScopedMemory*>(target);
  if (!holder_scope->descends_from(target_scope)) {
    throw IllegalAssignmentError(
        "illegal store: scope '" + holder->name() +
        "' does not descend from scope '" + target->name() +
        "' (target may be reclaimed first)");
  }
}

void check_read(const MemoryArea* target) {
  if (target == nullptr || target->kind() != AreaKind::Heap) return;
  const auto* ctx = ThreadContext::current_or_null();
  if (ctx != nullptr && ctx->no_heap()) {
    throw MemoryAccessError("NoHeapRealtimeThread '" + ctx->name() +
                            "' dereferenced a heap reference");
  }
}

}  // namespace rtcf::rtsj
