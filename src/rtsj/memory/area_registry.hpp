// Global pointer-to-area resolution.
//
// The RTSJ assignment rules need to answer "which memory area owns this
// object?" for arbitrary addresses. Every MemoryArea registers itself here;
// `area_of` scans registered areas and asks each whether the address lies
// inside one of its arena chunks. Stack/global addresses resolve to nullptr,
// which the checker treats as a local variable (allowed to reference
// anything, as in RTSJ).
#pragma once

#include <mutex>
#include <vector>

namespace rtcf::rtsj {

class MemoryArea;

/// Process-wide registry of live memory areas.
class AreaRegistry {
 public:
  static AreaRegistry& instance();

  void register_area(MemoryArea* area);
  void unregister_area(MemoryArea* area);

  /// Owning area of `p`, or nullptr when `p` is not inside any area
  /// (stack local, static, or plain malloc storage).
  MemoryArea* area_of(const void* p) const;

  /// Number of currently registered areas (introspection/tests).
  std::size_t area_count() const;

 private:
  AreaRegistry() = default;
  mutable std::mutex mutex_;
  std::vector<MemoryArea*> areas_;
};

}  // namespace rtcf::rtsj
