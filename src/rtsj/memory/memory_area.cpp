#include "rtsj/memory/memory_area.hpp"

#include "rtsj/memory/area_registry.hpp"
#include "rtsj/memory/context.hpp"
#include "util/assert.hpp"

namespace rtcf::rtsj {

namespace {
constexpr std::size_t kImmortalInitialChunk = 256 * 1024;
constexpr std::size_t kHeapInitialChunk = 1024 * 1024;
}  // namespace

const char* to_string(AreaKind kind) noexcept {
  switch (kind) {
    case AreaKind::Heap:
      return "heap";
    case AreaKind::Immortal:
      return "immortal";
    case AreaKind::Scoped:
      return "scope";
  }
  return "?";
}

MemoryArea::MemoryArea(AreaKind kind, std::string name,
                       std::size_t declared_size, bool fixed)
    : arena_(declared_size == 0 ? (kind == AreaKind::Heap
                                       ? kHeapInitialChunk
                                       : kImmortalInitialChunk)
                                : declared_size,
             fixed),
      kind_(kind),
      name_(std::move(name)),
      declared_size_(declared_size) {
  AreaRegistry::instance().register_area(this);
}

MemoryArea::~MemoryArea() {
  // Run outstanding finalizers so scoped objects destruct even when an
  // area is destroyed while logically occupied (test teardown paths).
  for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
    it->fn(it->object);
  }
  finalizers_.clear();
  AreaRegistry::instance().unregister_area(this);
}

std::size_t MemoryArea::memory_remaining() const noexcept {
  if (declared_size_ == 0) return static_cast<std::size_t>(-1);
  return arena_.remaining();
}

void* MemoryArea::allocate(std::size_t bytes, std::size_t align) {
  check_allocation();
  void* p = arena_.allocate(bytes, align);
  if (p == nullptr) {
    throw OutOfMemoryError("memory area '" + name_ + "' exhausted (" +
                           std::to_string(bytes) + " bytes requested, " +
                           std::to_string(arena_.remaining()) +
                           " remaining)");
  }
  if (kind_ == AreaKind::Heap) {
    static_cast<HeapMemory*>(this)->count_allocation();
  }
  return p;
}

void MemoryArea::enter(const std::function<void()>& logic) {
  auto& ctx = ThreadContext::current();
  on_enter(ctx);  // May throw (single parent rule) before any mutation.
  ctx.push_area(this);
  try {
    logic();
  } catch (...) {
    ctx.pop_area(this);
    on_exit(ctx);
    throw;
  }
  ctx.pop_area(this);
  on_exit(ctx);
}

void MemoryArea::execute_in_area(const std::function<void()>& logic) {
  auto& ctx = ThreadContext::current();
  if (kind_ == AreaKind::Scoped && !ctx.on_stack(this)) {
    throw InaccessibleAreaException(
        "executeInArea: scope '" + name_ +
        "' is not on the scope stack of thread '" + ctx.name() + "'");
  }
  ctx.push_override(this);
  try {
    logic();
  } catch (...) {
    ctx.pop_override();
    throw;
  }
  ctx.pop_override();
}

void MemoryArea::on_enter(ThreadContext&) {}
void MemoryArea::on_exit(ThreadContext&) {}

void MemoryArea::register_finalizer(void* obj, void (*fn)(void*)) {
  finalizers_.push_back(Finalizer{obj, fn});
}

void MemoryArea::reclaim() {
  for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
    it->fn(it->object);
  }
  finalizers_.clear();
  object_count_ = 0;
  arena_.reset();
}

// ---------------------------------------------------------------- Heap

HeapMemory::HeapMemory() : MemoryArea(AreaKind::Heap, "heap", 0, false) {}

HeapMemory& HeapMemory::instance() {
  static HeapMemory heap;
  return heap;
}

void HeapMemory::check_allocation() const {
  const auto* ctx = ThreadContext::current_or_null();
  if (ctx != nullptr && ctx->no_heap()) {
    throw MemoryAccessError("NoHeapRealtimeThread '" + ctx->name() +
                            "' attempted a heap allocation");
  }
}

void HeapMemory::reset_for_testing() {
  reclaim();
  allocations_ = 0;
}

// ------------------------------------------------------------ Immortal

ImmortalMemory::ImmortalMemory()
    : MemoryArea(AreaKind::Immortal, "immortal", 0, false) {}

ImmortalMemory& ImmortalMemory::instance() {
  static ImmortalMemory immortal;
  return immortal;
}

// -------------------------------------------------------------- Scoped

ScopedMemory::ScopedMemory(std::string name, std::size_t bytes)
    : MemoryArea(AreaKind::Scoped, std::move(name), bytes, /*fixed=*/true) {
  RTCF_REQUIRE(bytes > 0, "scoped memory must declare a positive size");
}

ScopedMemory::~ScopedMemory() {
  RTCF_ASSERT(ref_count_ == 0);
}

void ScopedMemory::on_enter(ThreadContext& ctx) {
  ScopedMemory* candidate = ctx.innermost_scope();
  if (candidate == this) {
    throw ScopedCycleException("scope '" + name() +
                               "' re-entered while already the innermost "
                               "scope (cycle)");
  }
  if (!parented_) {
    parent_ = candidate;  // nullptr == primordial parent (heap/immortal).
    parented_ = true;
  } else if (parent_ != candidate) {
    throw ScopedCycleException(
        "single parent rule: scope '" + name() + "' already parented under '" +
        (parent_ ? parent_->name() : std::string("<primordial>")) +
        "', cannot be entered from '" +
        (candidate ? candidate->name() : std::string("<primordial>")) + "'");
  }
  ++ref_count_;
}

void ScopedMemory::on_exit(ThreadContext&) {
  RTCF_ASSERT(ref_count_ > 0);
  if (--ref_count_ == 0) {
    // Last thread left: run finalizers, rewind the region, unparent.
    reclaim();
    parent_ = nullptr;
    parented_ = false;
    portal_ = nullptr;
  }
}

void ScopedMemory::set_portal(void* portal) {
  if (portal != nullptr && !contains(portal)) {
    throw IllegalAssignmentError("portal of scope '" + name() +
                                 "' must be allocated inside the scope");
  }
  portal_ = portal;
}

void* ScopedMemory::portal() const {
  const auto& ctx = ThreadContext::current();
  if (!ctx.on_stack(this)) {
    throw InaccessibleAreaException("portal of scope '" + name() +
                                    "' requested by thread '" + ctx.name() +
                                    "' which has not entered it");
  }
  return portal_;
}

bool ScopedMemory::descends_from(const ScopedMemory* outer) const noexcept {
  for (const ScopedMemory* s = this; s != nullptr; s = s->parent_) {
    if (s == outer) return true;
  }
  return false;
}

// ------------------------------------------------------------ ScopePin

ScopePin::ScopePin(ScopedMemory& scope, ThreadContext& wedge_ctx)
    : scope_(scope), wedge_ctx_(wedge_ctx) {
  ContextGuard guard(wedge_ctx_);
  scope_.on_enter(wedge_ctx_);
  wedge_ctx_.push_area(&scope_);
}

ScopePin::~ScopePin() {
  ContextGuard guard(wedge_ctx_);
  wedge_ctx_.pop_area(&scope_);
  scope_.on_exit(wedge_ctx_);
}

// ---------------------------------------------------------------- misc

MemoryArea& current_area() {
  return ThreadContext::current().allocation_context();
}

}  // namespace rtcf::rtsj
