#include "rtsj/memory/context.hpp"

#include "rtsj/memory/memory_area.hpp"
#include "util/assert.hpp"

namespace rtcf::rtsj {

namespace {
thread_local ThreadContext* g_current = nullptr;
}  // namespace

const char* to_string(ThreadKind kind) noexcept {
  switch (kind) {
    case ThreadKind::Regular:
      return "Regular";
    case ThreadKind::Realtime:
      return "Realtime";
    case ThreadKind::NoHeapRealtime:
      return "NoHeapRealtime";
  }
  return "?";
}

ThreadContext::ThreadContext(std::string name, ThreadKind kind, int priority,
                             MemoryArea* initial_area)
    : name_(std::move(name)), kind_(kind), priority_(priority) {
  if (initial_area == nullptr) {
    initial_area = (kind == ThreadKind::Regular)
                       ? static_cast<MemoryArea*>(&HeapMemory::instance())
                       : static_cast<MemoryArea*>(&ImmortalMemory::instance());
  }
  stack_.push_back(initial_area);
}

MemoryArea& ThreadContext::allocation_context() const {
  if (!overrides_.empty()) return *overrides_.back();
  RTCF_ASSERT(!stack_.empty());
  return *stack_.back();
}

bool ThreadContext::on_stack(const MemoryArea* area) const noexcept {
  for (const auto* a : stack_) {
    if (a == area) return true;
  }
  return false;
}

ScopedMemory* ThreadContext::innermost_scope() const noexcept {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if ((*it)->kind() == AreaKind::Scoped) {
      return static_cast<ScopedMemory*>(*it);
    }
  }
  return nullptr;
}

void ThreadContext::pop_area(MemoryArea* area) {
  RTCF_ASSERT(!stack_.empty() && stack_.back() == area);
  stack_.pop_back();
}

void ThreadContext::pop_override() {
  RTCF_ASSERT(!overrides_.empty());
  overrides_.pop_back();
}

ThreadContext& ThreadContext::current() {
  if (g_current == nullptr) {
    // Default context for unmanaged OS threads: a Regular thread whose
    // allocation context is the heap, as in a plain JVM.
    thread_local ThreadContext default_ctx("os-thread", ThreadKind::Regular,
                                           0);
    g_current = &default_ctx;
  }
  return *g_current;
}

ThreadContext* ThreadContext::current_or_null() noexcept { return g_current; }

ContextGuard::ContextGuard(ThreadContext& ctx) noexcept
    : previous_(g_current) {
  g_current = &ctx;
}

ContextGuard::~ContextGuard() { g_current = previous_; }

}  // namespace rtcf::rtsj
