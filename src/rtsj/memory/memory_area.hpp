// RTSJ memory areas: HeapMemory, ImmortalMemory, ScopedMemory.
//
// This is the substrate the paper's MemoryArea components compile down to.
// Semantics implemented here, mirroring RTSJ:
//   * allocation contexts — `new` goes to the area on top of the current
//     thread's scope stack (rtcf::rtsj::current_area());
//   * scoped memories with enter()/reference counting — the region is
//     reclaimed (C++ destructors run, bump pointer rewound) when the last
//     logical thread leaves;
//   * the single parent rule — a scope's parent is fixed by its first
//     enter(); entering from a context with a different parent throws
//     ScopedCycleException;
//   * executeInArea() — temporarily redirects the allocation context to an
//     area already on the scope stack (or heap/immortal);
//   * portals — per-scope exchange object, store-checked like any
//     reference;
//   * NHRT heap barrier — allocation on the heap from a no-heap thread
//     throws MemoryAccessError.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "rtsj/memory/errors.hpp"
#include "util/arena.hpp"

namespace rtcf::rtsj {

class ThreadContext;

enum class AreaKind { Heap, Immortal, Scoped };

const char* to_string(AreaKind kind) noexcept;

/// Abstract memory area (javax.realtime.MemoryArea).
class MemoryArea {
 public:
  MemoryArea(const MemoryArea&) = delete;
  MemoryArea& operator=(const MemoryArea&) = delete;
  virtual ~MemoryArea();

  AreaKind kind() const noexcept { return kind_; }
  const std::string& name() const noexcept { return name_; }

  /// Declared capacity in bytes; 0 means "unbounded" (heap/immortal grow on
  /// demand).
  std::size_t size() const noexcept { return declared_size_; }
  std::size_t memory_consumed() const noexcept { return arena_.consumed(); }
  std::size_t memory_remaining() const noexcept;
  bool contains(const void* p) const noexcept { return arena_.contains(p); }

  /// Raw allocation in this area. Throws OutOfMemoryError when a fixed-size
  /// area is exhausted; throws MemoryAccessError when a no-heap thread
  /// allocates on the heap.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Allocates and constructs a T in this area (RTSJ newInstance). The
  /// object's destructor runs when the area is reclaimed.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* storage = allocate(sizeof(T), alignof(T));
    T* obj = new (storage) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      register_finalizer(obj, [](void* p) { static_cast<T*>(p)->~T(); });
    }
    ++object_count_;
    return obj;
  }

  /// Runs `logic` with this area pushed as the current allocation context
  /// (RTSJ MemoryArea.enter()). For scoped memories this participates in
  /// reference counting and the single parent rule.
  void enter(const std::function<void()>& logic);

  /// Runs `logic` with this area as allocation context without changing the
  /// scope stack (RTSJ executeInArea). A scoped area must already be on the
  /// caller's scope stack, otherwise InaccessibleAreaException.
  void execute_in_area(const std::function<void()>& logic);

  /// Number of live objects constructed via make<T>() and not yet
  /// finalized.
  std::size_t object_count() const noexcept { return object_count_; }

 protected:
  MemoryArea(AreaKind kind, std::string name, std::size_t declared_size,
             bool fixed);

  /// Hook called before the allocation context is pushed; scoped memories
  /// enforce parenting here.
  virtual void on_enter(ThreadContext& ctx);
  /// Hook called after the allocation context is popped.
  virtual void on_exit(ThreadContext& ctx);
  /// Subclass veto on allocation (heap applies the NHRT barrier).
  virtual void check_allocation() const {}

  void register_finalizer(void* obj, void (*fn)(void*));
  /// Runs finalizers in reverse construction order and rewinds the arena.
  void reclaim();

  util::Arena arena_;
  std::size_t object_count_ = 0;

 private:
  struct Finalizer {
    void* object;
    void (*fn)(void*);
  };

  AreaKind kind_;
  std::string name_;
  std::size_t declared_size_;
  std::vector<Finalizer> finalizers_;
};

/// The garbage-collected heap, simulated.
///
/// Allocation is tracked so the GC interference model (src/sim) can size
/// simulated collection pauses by live-byte counts. Reclamation of real C++
/// objects only happens on explicit reset_for_testing(); the evaluation
/// scenarios preallocate and reuse messages, as an embedded RTSJ
/// application would.
class HeapMemory final : public MemoryArea {
 public:
  static HeapMemory& instance();

  /// Cumulative number of allocations (GC pressure metric).
  std::uint64_t allocation_count() const noexcept { return allocations_; }

  /// Testing hook: runs finalizers and rewinds the heap. Must not be called
  /// while heap objects are still referenced.
  void reset_for_testing();

 protected:
  void check_allocation() const override;

 private:
  HeapMemory();
  friend class MemoryArea;
  std::uint64_t allocations_ = 0;
  void count_allocation() noexcept { ++allocations_; }
};

/// ImmortalMemory: never reclaimed, shared by all threads, always a legal
/// store target.
class ImmortalMemory final : public MemoryArea {
 public:
  static ImmortalMemory& instance();

 private:
  ImmortalMemory();
};

/// ScopedMemory with linear-time allocation (RTSJ LTMemory): the full
/// region is preallocated at construction.
class ScopedMemory : public MemoryArea {
 public:
  /// @param name  Diagnostic name (the ADL `AreaDesc name` attribute).
  /// @param bytes Fixed region capacity (the ADL `AreaDesc size`).
  ScopedMemory(std::string name, std::size_t bytes);
  ~ScopedMemory() override;

  /// The area below this scope at its first enter(); nullptr while
  /// unparented (reference count zero). Heap/immortal parents are reported
  /// as the "primordial" parent, also nullptr, per RTSJ.
  ScopedMemory* parent() const noexcept { return parent_; }
  /// True once the scope is entered and parented (including primordial).
  bool parented() const noexcept { return parented_; }

  /// Number of logical threads currently inside the scope.
  int reference_count() const noexcept { return ref_count_; }

  /// Portal object exchange (RTSJ get/setPortal). The portal must be
  /// allocated inside this scope; callers must have the scope on their
  /// scope stack.
  void set_portal(void* portal);
  void* portal() const;

  /// True when `outer` is this scope or an ancestor of this scope via the
  /// parent chain — i.e. objects living in `outer` outlive objects living
  /// here. Drives the assignment checker.
  bool descends_from(const ScopedMemory* outer) const noexcept;

 protected:
  void on_enter(ThreadContext& ctx) override;
  void on_exit(ThreadContext& ctx) override;

 private:
  friend class ScopePin;
  ScopedMemory* parent_ = nullptr;
  bool parented_ = false;
  int ref_count_ = 0;
  void* portal_ = nullptr;
};

/// Emulates the *wedge thread* pattern (Pizlo et al. [17]): a dedicated
/// logical thread that enters a scope and parks there, holding its
/// reference count above zero so the region is not reclaimed between
/// releases of the components allocated inside it. The framework pins every
/// architecture-declared scoped area for the application's lifetime; the
/// pin is released (and the scope reclaimed) on shutdown.
class ScopePin {
 public:
  /// Enters `scope` on behalf of `wedge_ctx` (single parent rule enforced
  /// exactly as for a normal enter) and keeps it entered.
  ScopePin(ScopedMemory& scope, ThreadContext& wedge_ctx);
  ~ScopePin();
  ScopePin(const ScopePin&) = delete;
  ScopePin& operator=(const ScopePin&) = delete;

  ScopedMemory& scope() const noexcept { return scope_; }

 private:
  ScopedMemory& scope_;
  ThreadContext& wedge_ctx_;
};

/// RTSJ LTMemory is the linear-time variant of ScopedMemory; our
/// ScopedMemory already implements LT semantics, the alias keeps user code
/// close to RTSJ vocabulary.
using LTMemory = ScopedMemory;

/// The allocation context of the calling logical thread (top of its scope
/// stack). Outside any managed context this is the heap.
MemoryArea& current_area();

/// Convenience: allocate a T in the current allocation context (the
/// semantics of Java `new` under RTSJ).
template <typename T, typename... Args>
T* make_in_current(Args&&... args) {
  return current_area().make<T>(std::forward<Args>(args)...);
}

}  // namespace rtcf::rtsj
