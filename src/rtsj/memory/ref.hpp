// Checked references implementing the RTSJ assignment rules and the NHRT
// read barrier.
//
// An RTSJ VM performs a store check on every reference assignment: an
// object must never out-live something it points to. We reproduce the rule
// with Ref<T>, a pointer wrapper whose assignment resolves the memory area
// of both the *holder* (the object containing the Ref — found by asking the
// registry which area owns `this`) and the *target*:
//
//   target in heap/immortal            -> always storable
//   target scoped, holder heap/immortal-> IllegalAssignmentError
//   target scoped, holder scoped       -> legal iff target scope is the
//                                         holder scope or one of its
//                                         ancestors (outer == longer-lived)
//   holder not in any area (stack var) -> always legal, as for Java locals
//
// Dereferencing applies the NHRT read barrier: a NoHeapRealtimeThread
// touching a heap reference gets MemoryAccessError, which is exactly why
// the paper's validator forbids bindings from NHRT domains into heap areas
// without an interposed pattern.
#pragma once

#include "rtsj/memory/area_registry.hpp"
#include "rtsj/memory/context.hpp"
#include "rtsj/memory/errors.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::rtsj {

/// Store-check shared by Ref<T> and the communication patterns. `holder` /
/// `target` may be nullptr for addresses outside any managed area.
void check_store(const MemoryArea* holder, const MemoryArea* target,
                 const void* target_ptr);

/// Read barrier shared by Ref<T>::get and the pattern library.
void check_read(const MemoryArea* target);

/// A checked reference to a T living in some memory area.
template <typename T>
class Ref {
 public:
  Ref() = default;
  Ref(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Ref(T* p) { assign(p); }  // NOLINT(google-explicit-constructor)
  Ref(const Ref& other) { assign(other.ptr_); }
  Ref& operator=(const Ref& other) {
    assign(other.ptr_);
    return *this;
  }
  Ref& operator=(T* p) {
    assign(p);
    return *this;
  }
  Ref& operator=(std::nullptr_t) {
    ptr_ = nullptr;
    target_area_ = nullptr;
    return *this;
  }

  /// Barrier-checked access.
  T* get() const {
    check_read(target_area_);
    return ptr_;
  }
  T& operator*() const { return *get(); }
  T* operator->() const { return get(); }
  explicit operator bool() const noexcept { return ptr_ != nullptr; }
  bool operator==(const Ref& o) const noexcept { return ptr_ == o.ptr_; }
  bool operator==(const T* p) const noexcept { return ptr_ == p; }

  /// Unchecked access for infrastructure code that has already validated
  /// area compatibility (e.g. the memory interceptors).
  T* raw() const noexcept { return ptr_; }
  /// Memory area the target was resolved to at store time (may be null for
  /// unmanaged storage).
  const MemoryArea* target_area() const noexcept { return target_area_; }

 private:
  void assign(T* p) {
    const MemoryArea* holder = AreaRegistry::instance().area_of(this);
    const MemoryArea* target = AreaRegistry::instance().area_of(p);
    check_store(holder, target, p);
    ptr_ = p;
    target_area_ = target;
  }

  T* ptr_ = nullptr;
  const MemoryArea* target_area_ = nullptr;
};

}  // namespace rtcf::rtsj
