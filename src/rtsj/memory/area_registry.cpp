#include "rtsj/memory/area_registry.hpp"

#include <algorithm>

#include "rtsj/memory/memory_area.hpp"

namespace rtcf::rtsj {

AreaRegistry& AreaRegistry::instance() {
  static AreaRegistry registry;
  return registry;
}

void AreaRegistry::register_area(MemoryArea* area) {
  std::lock_guard lock(mutex_);
  areas_.push_back(area);
}

void AreaRegistry::unregister_area(MemoryArea* area) {
  std::lock_guard lock(mutex_);
  areas_.erase(std::remove(areas_.begin(), areas_.end(), area), areas_.end());
}

MemoryArea* AreaRegistry::area_of(const void* p) const {
  if (p == nullptr) return nullptr;
  std::lock_guard lock(mutex_);
  for (auto* area : areas_) {
    if (area->contains(p)) return area;
  }
  return nullptr;
}

std::size_t AreaRegistry::area_count() const {
  std::lock_guard lock(mutex_);
  return areas_.size();
}

}  // namespace rtcf::rtsj
