// Per-logical-thread execution context: scope stack, allocation context,
// and the no-heap flag.
//
// The framework multiplexes many logical RTSJ threads (RealtimeThread,
// NoHeapRealtimeThread, RegularThread) over one or more OS threads — the
// discrete-event simulator runs them all on one OS thread. A ThreadContext
// carries the RTSJ-visible state of one logical thread, and ContextGuard
// installs it as "current" for the duration of a release.
#pragma once

#include <string>
#include <vector>

#include "rtsj/memory/errors.hpp"

namespace rtcf::rtsj {

class MemoryArea;
class ScopedMemory;

/// RTSJ thread taxonomy (§2.1 of the paper).
enum class ThreadKind {
  Regular,          ///< java.lang.Thread: heap-allocating, GC-preemptible.
  Realtime,         ///< RealtimeThread: precise scheduling, may touch heap.
  NoHeapRealtime,   ///< NHRT: never preempted by GC, must not touch heap.
};

const char* to_string(ThreadKind kind) noexcept;

/// RTSJ-visible state of one logical thread.
class ThreadContext {
 public:
  /// @param initial_area  The thread's initial allocation context; defaults
  ///                      to heap for Regular threads and immortal for
  ///                      real-time threads (NHRTs must not start on the
  ///                      heap — enforcing that is the caller's job, the
  ///                      validator rejects such architectures).
  ThreadContext(std::string name, ThreadKind kind, int priority,
                MemoryArea* initial_area = nullptr);

  const std::string& name() const noexcept { return name_; }
  ThreadKind kind() const noexcept { return kind_; }
  int priority() const noexcept { return priority_; }
  /// Priority is mutable at runtime (RTSJ setSchedulingParameters); band
  /// validation is the caller's responsibility (ThreadDomainController).
  void set_priority(int priority) noexcept { priority_ = priority; }
  bool no_heap() const noexcept { return kind_ == ThreadKind::NoHeapRealtime; }

  /// Current allocation context: the executeInArea override when active,
  /// otherwise the top of the scope stack.
  MemoryArea& allocation_context() const;

  const std::vector<MemoryArea*>& scope_stack() const noexcept {
    return stack_;
  }
  bool on_stack(const MemoryArea* area) const noexcept;
  /// Innermost scoped memory on the stack, or nullptr when the stack holds
  /// only primordial areas; this is the single-parent-rule candidate parent.
  ScopedMemory* innermost_scope() const noexcept;

  // Stack manipulation — called by MemoryArea::enter/execute_in_area only.
  void push_area(MemoryArea* area) { stack_.push_back(area); }
  void pop_area(MemoryArea* area);
  void push_override(MemoryArea* area) { overrides_.push_back(area); }
  void pop_override();

  /// Context installed on the calling OS thread, or a lazily created
  /// default Regular/heap context for unmanaged callers (e.g. main()).
  static ThreadContext& current();
  /// Like current() but never creates the default context.
  static ThreadContext* current_or_null() noexcept;

 private:
  std::string name_;
  ThreadKind kind_;
  int priority_;
  std::vector<MemoryArea*> stack_;
  std::vector<MemoryArea*> overrides_;

  friend class ContextGuard;
};

/// RAII installer: makes `ctx` the current logical thread for this OS
/// thread, restoring the previous one on destruction.
class ContextGuard {
 public:
  explicit ContextGuard(ThreadContext& ctx) noexcept;
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  ThreadContext* previous_;
};

}  // namespace rtcf::rtsj
