#include "monitor/runtime_monitor.hpp"

#include "util/assert.hpp"

namespace rtcf::monitor {

RuntimeMonitor::RuntimeMonitor(OverloadGovernor::Options options)
    : governor_(options) {}

void RuntimeMonitor::adopt_tenants(const model::AssemblyPlan& plan) {
  for (const model::TenantSpec& tenant : plan.tenants()) {
    auto it = tenant_ids_.find(tenant.name);
    std::size_t id;
    if (it != tenant_ids_.end()) {
      id = it->second;
    } else {
      tenant_names_.push_back(tenant.name);
      id = governor_.add_tenant(tenant_names_.back().c_str(),
                                tenant.criticality_floor);
      tenant_ids_.emplace(tenant.name, id);
    }
    for (const std::string& component : tenant.components) {
      component_tenants_[component] = id;
    }
  }
}

RuntimeMonitor::Entry& RuntimeMonitor::add_component(
    const char* name, rtsj::MemoryArea& area, model::Criticality criticality,
    const model::TimingContract* contract, rtsj::RelativeTime deadline,
    bool release_driven) {
  RTCF_REQUIRE(name != nullptr, "monitored component needs a name");
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->telemetry = area.make<ComponentTelemetry>(name);
  telemetry_bytes_ += sizeof(ComponentTelemetry);
  if (contract != nullptr) {
    contracts_.push_back(std::make_unique<ContractMonitor>(name, *contract));
    entry->contract = contracts_.back().get();
  }
  entry->criticality = criticality;
  entry->deadline = deadline;
  entry->release_driven = release_driven;
  const auto tenant_it = component_tenants_.find(name);
  const std::size_t tenant =
      tenant_it == component_tenants_.end() ? 0 : tenant_it->second;
  entry->governor_id = governor_.add_component(name, criticality, tenant);
  entry->owner = this;
  entries_.push_back(std::move(entry));
  Entry& ref = *entries_.back();
  by_name_.emplace(name, &ref);
  return ref;
}

void RuntimeMonitor::rearm(Entry& entry,
                           const model::TimingContract* contract) {
  if (contract == nullptr) {
    entry.contract = nullptr;
    return;
  }
  // Fresh checker, not a reset: the previous one may still be referenced
  // by diagnostics; transitions are rare, so the retired monitors are a
  // bounded assembly-time cost, never a hot-path one.
  contracts_.push_back(std::make_unique<ContractMonitor>(entry.name,
                                                         *contract));
  entry.contract = contracts_.back().get();
}

RuntimeMonitor::Entry* RuntimeMonitor::find(const std::string& name) noexcept {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const RuntimeMonitor::Entry* RuntimeMonitor::find(
    const std::string& name) const noexcept {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

OverloadGovernor::Admission RuntimeMonitor::admit_release(
    Entry& entry) noexcept {
  const auto admission = governor_.admit_release(entry.governor_id);
  if (admission != OverloadGovernor::Admission::Run) {
    // Every governor-dropped release/activation counts as shed, whatever
    // the level that dropped it — shed_total() is the complete drop
    // count. rate_limited additionally attributes the subset dropped at
    // the RateLimit level.
    entry.telemetry->shed.fetch_add(1, std::memory_order_relaxed);
    if (admission == OverloadGovernor::Admission::RateLimited) {
      entry.telemetry->rate_limited.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return admission;
}

bool RuntimeMonitor::admit_activation(Entry& entry) noexcept {
  return admit_release(entry) == OverloadGovernor::Admission::Run;
}

void RuntimeMonitor::record_release(Entry& entry, rtsj::RelativeTime exec,
                                    rtsj::RelativeTime response,
                                    rtsj::RelativeTime lateness,
                                    bool missed) noexcept {
  entry.telemetry->record_release(
      static_cast<std::uint64_t>(exec.nanos() < 0 ? 0 : exec.nanos()),
      static_cast<std::uint64_t>(response.nanos() < 0 ? 0 : response.nanos()),
      static_cast<std::uint64_t>(lateness.nanos() < 0 ? 0 : lateness.nanos()),
      missed);
  if (entry.contract == nullptr) return;
  Violation violations[2];
  WindowOutcome outcome = WindowOutcome::Open;
  const int fired =
      entry.contract->record_execution(exec, missed, violations, &outcome);
  for (int i = 0; i < fired; ++i) fire(entry, violations[i]);
  apply_outcome(entry, outcome);
}

void RuntimeMonitor::record_activation(Entry& entry,
                                       std::uint64_t exec_nanos) noexcept {
  entry.telemetry->record_activation(exec_nanos);
  if (entry.contract == nullptr) return;
  // Periodic components get their contract windows from the launcher's
  // release records (which carry the real deadline verdict); feeding
  // activation records too would dilute the miss ratio. Only the
  // arrival-rate bound is checked here for them.
  if (!entry.release_driven) {
    const auto exec =
        rtsj::RelativeTime::nanoseconds(static_cast<std::int64_t>(exec_nanos));
    // Miss verdict for message-driven releases: execution (from
    // activation dispatch, i.e. excluding queueing) against the
    // MIT-derived implicit deadline.
    const bool missed = !entry.deadline.is_zero() && exec > entry.deadline;
    if (missed) {
      entry.telemetry->deadline_misses.fetch_add(1,
                                                 std::memory_order_relaxed);
    }
    Violation violations[2];
    WindowOutcome outcome = WindowOutcome::Open;
    const int fired =
        entry.contract->record_execution(exec, missed, violations, &outcome);
    for (int i = 0; i < fired; ++i) fire(entry, violations[i]);
    apply_outcome(entry, outcome);
  }
  // Only contracts with an arrival-rate bound pay the clock read.
  if (entry.contract->contract().max_arrival_rate_hz > 0.0) {
    Violation arrival;
    if (entry.contract->record_arrival(rtsj::SteadyClock::instance().now(),
                                       &arrival)) {
      fire(entry, arrival);
    }
  }
}

void RuntimeMonitor::record_activation_trampoline(
    void* entry, std::uint64_t exec_nanos) noexcept {
  auto* e = static_cast<Entry*>(entry);
  e->owner->record_activation(*e, exec_nanos);
}

void RuntimeMonitor::apply_outcome(Entry& entry,
                                   WindowOutcome outcome) noexcept {
  if (outcome == WindowOutcome::Violated) {
    governor_.on_window_violated(entry.governor_id);
  } else if (outcome == WindowOutcome::Clean) {
    governor_.on_window_clean(entry.governor_id);
  }
}

void RuntimeMonitor::fire(Entry& entry, const Violation& violation) noexcept {
  entry.telemetry->contract_violations.fetch_add(1,
                                                 std::memory_order_relaxed);
  if (violation_fn_ != nullptr) violation_fn_(violation_arg_, violation);
}

std::uint64_t RuntimeMonitor::violations_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& entry : entries_) {
    total += entry->telemetry->contract_violations.load(
        std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t RuntimeMonitor::shed_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& entry : entries_) {
    total += entry->telemetry->shed.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace rtcf::monitor
