// Stochastic timing contracts checked online.
//
// The design-time validator proves structural RTSJ conformance; the
// contract monitor polices *temporal* behaviour while the system runs,
// following the runtime-verification line of work (stochastic contracts
// catch timing violations that component-by-component static analysis
// misses). A contract bounds three observables of one active component:
//
//   * WCET budget        — per-release execution time (hard bound,
//                          checked on every release);
//   * miss-ratio bound   — fraction of deadline misses per observation
//                          window of `window` releases (stochastic bound:
//                          individual misses are tolerated, sustained
//                          degradation is not);
//   * arrival-rate bound — sporadic activation rate in Hz over the last
//                          `window` arrivals.
//
// Checking is allocation-free: all window state is fixed-size and inline.
// A ContractMonitor is single-consumer — it is fed by the one executive
// worker that owns the component (components never migrate) — so its
// window counters need no synchronisation.
#pragma once

#include <cstdint>

#include "model/metamodel.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::monitor {

enum class ViolationKind { WcetOverrun, MissRatio, ArrivalRate };

const char* to_string(ViolationKind kind) noexcept;

/// One observed contract violation, passed to violation callbacks. The
/// struct is stack-allocated by the checker; callbacks must copy what they
/// keep (except `component`, which outlives the assembly).
struct Violation {
  const char* component = nullptr;
  ViolationKind kind{};
  /// Observed value: microseconds (WcetOverrun), ratio in [0,1]
  /// (MissRatio), or Hz (ArrivalRate).
  double observed = 0.0;
  /// The contract bound in the same unit.
  double bound = 0.0;
  /// Index of the observation window the violation was detected in.
  std::uint64_t window_index = 0;
};

/// What a completed observation window looked like; drives the governor's
/// sustained-violation / recovery streaks.
enum class WindowOutcome { Open, Clean, Violated };

/// Online checker for one component's TimingContract.
class ContractMonitor {
 public:
  ContractMonitor(const char* component,
                  const model::TimingContract& contract) noexcept;

  const model::TimingContract& contract() const noexcept { return contract_; }
  const char* component() const noexcept { return component_; }

  /// Feeds one completed release/activation. Returns the number of
  /// violations written to `out` (0..2: a WCET overrun and, when this
  /// release closes a window, a miss-ratio violation). `*outcome` reports
  /// whether this call closed an observation window and how it ended.
  int record_execution(rtsj::RelativeTime exec, bool deadline_missed,
                       Violation out[2], WindowOutcome* outcome) noexcept;

  /// Feeds one sporadic arrival at time `now`. Returns true when the
  /// observed arrival rate over the last `window` arrivals exceeds the
  /// bound, filling `*out`; the arrival history restarts after a violation
  /// so one burst reports once.
  bool record_arrival(rtsj::AbsoluteTime now, Violation* out) noexcept;

  std::uint64_t violations_total() const noexcept { return violations_; }
  std::uint64_t windows_closed() const noexcept { return window_index_; }

  /// Arrival-history capacity; windows larger than this are clamped for
  /// the rate check (execution windows are not).
  static constexpr std::uint32_t kMaxArrivalWindow = 64;

 private:
  const char* component_;
  model::TimingContract contract_;
  // Execution window state (single consumer, plain fields).
  std::uint32_t in_window_ = 0;
  std::uint32_t misses_in_window_ = 0;
  bool overrun_in_window_ = false;
  std::uint64_t window_index_ = 0;
  std::uint64_t violations_ = 0;
  // Arrival ring (timestamps of the last kMaxArrivalWindow arrivals).
  rtsj::AbsoluteTime arrivals_[kMaxArrivalWindow] = {};
  std::uint32_t arrival_count_ = 0;
  std::uint32_t arrival_head_ = 0;
};

}  // namespace rtcf::monitor
