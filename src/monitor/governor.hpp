// The overload governor: criticality-aware load shedding.
//
// When a component violates its stochastic timing contract for several
// consecutive observation windows, the assembly is overloaded and someone
// has to give. The governor implements the mixed-criticality answer: it
// degrades only components declared Criticality::Low — first rate-limiting
// them (admit one release in N), then shedding them outright — so
// high-criticality components keep meeting their deadlines. De-escalation
// is driven by the violating components themselves: once a component that
// triggered the overload delivers enough consecutive clean windows, the
// governor steps the degradation level back down. A fully shed violator
// can no longer produce windows, so a Shed level is sticky until reset()
// — the conservative safe-mode choice for a real-time system.
//
// Determinism: admit_release() depends only on the per-component admission
// sequence number and the current level, and level transitions depend only
// on the order of window outcomes fed in. Driving the same feed through
// the governor — wall-clock executive or virtual-time simulator — yields
// the same decision log, which is what makes governed behaviour replayable
// in sim::PreemptiveScheduler.
//
// Hot path (admit_release) is lock-free and allocation-free; level
// transitions are rare and take a small mutex only to append the decision
// log.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "model/metamodel.hpp"

namespace rtcf::monitor {

/// System-wide degradation level.
enum class GovernorLevel : int { Normal = 0, RateLimit = 1, Shed = 2 };

const char* to_string(GovernorLevel level) noexcept;

class OverloadGovernor {
 public:
  struct Options {
    /// Consecutive violated windows from one component before escalation.
    std::uint32_t sustain_windows = 2;
    /// Consecutive clean windows from a violating component before
    /// de-escalation.
    std::uint32_t clear_windows = 4;
    /// While rate-limited, a Low component runs one release in this many.
    std::uint32_t rate_limit_divisor = 2;
  };

  /// Verdict for one would-be release/activation.
  enum class Admission { Run, RateLimited, Shed };

  OverloadGovernor();
  explicit OverloadGovernor(Options options);

  /// Registers a component; returns its governor id. Registration happens
  /// at assembly time, before any execution.
  std::size_t add_component(const char* name, model::Criticality criticality);

  /// Hot path: admission decision for the next release of `id`. Lock-free;
  /// deterministic in the per-component call sequence and current level.
  Admission admit_release(std::size_t id) noexcept;

  /// Feeds one closed observation window of `id` (from its contract
  /// monitor). Not hot: called once per `window` releases.
  void on_window_violated(std::size_t id);
  void on_window_clean(std::size_t id);

  GovernorLevel level() const noexcept {
    return static_cast<GovernorLevel>(
        level_.load(std::memory_order_relaxed));
  }

  /// One level transition, for replay comparison and diagnostics.
  struct Decision {
    std::uint64_t seq = 0;          ///< Transition index (0-based).
    GovernorLevel level{};          ///< Level after the transition.
    const char* trigger = nullptr;  ///< Component whose windows drove it.
  };
  /// Snapshot of the decision log (copies under the transition mutex).
  std::vector<Decision> decisions() const;

  std::size_t component_count() const noexcept { return components_.size(); }
  const char* component_name(std::size_t id) const {
    return components_.at(id).name;
  }
  model::Criticality component_criticality(std::size_t id) const {
    return components_.at(id).criticality;
  }

  /// Operator escape hatch: clears every streak and returns to Normal
  /// (recorded in the decision log with trigger "reset").
  void reset();

 private:
  struct ComponentState {
    const char* name = nullptr;
    model::Criticality criticality = model::Criticality::High;
    /// Admission sequence; drives the deterministic rate-limit pattern.
    std::atomic<std::uint64_t> admissions{0};
    // Streaks are only touched by the worker that owns the component.
    std::uint32_t violated_streak = 0;
    std::uint32_t clean_streak = 0;
    /// Set once the component contributed to an escalation; only such
    /// components may drive de-escalation.
    std::atomic<bool> violator{false};

    ComponentState(const char* n, model::Criticality c)
        : name(n), criticality(c) {}
    ComponentState(ComponentState&& o) noexcept
        : name(o.name),
          criticality(o.criticality),
          admissions(o.admissions.load()),
          violated_streak(o.violated_streak),
          clean_streak(o.clean_streak),
          violator(o.violator.load()) {}
  };

  void transition(GovernorLevel to, const char* trigger);

  Options options_;
  std::vector<ComponentState> components_;
  std::atomic<int> level_{static_cast<int>(GovernorLevel::Normal)};
  mutable std::mutex transition_mutex_;
  std::vector<Decision> decisions_;
};

}  // namespace rtcf::monitor
