// The overload governor: criticality-aware, tenant-scoped load shedding.
//
// When a component violates its stochastic timing contract for several
// consecutive observation windows, its slice of the assembly is overloaded
// and someone has to give. The governor implements the mixed-criticality
// answer *per tenant*: it degrades only components of effective
// Criticality::Low — first rate-limiting them (admit one release in N),
// then shedding them outright — so high-criticality components keep
// meeting their deadlines. Since PR 7 the degradation level is per tenant:
// a violation in tenant A escalates only A's level, and only A's Low
// components are degraded — overload in one tenant can never shed a
// bystander tenant's releases. A tenant's declared criticality floor
// raises every member's effective criticality, so a High-floor tenant is
// never degraded at all. Components registered without a tenant share the
// implicit default tenant 0 (the pre-tenancy single-envelope behaviour).
//
// De-escalation is driven by the violating components themselves: once a
// component that triggered its tenant's overload delivers enough
// consecutive clean windows, the governor steps that tenant's level back
// down. A fully shed violator can no longer produce windows, so a Shed
// level is sticky until reset() — the conservative safe-mode choice for a
// real-time system.
//
// Determinism: admit_release() depends only on the per-component admission
// sequence number and the component's tenant level, and level transitions
// depend only on the order of window outcomes fed in. Driving the same
// feed through the governor — wall-clock executive or virtual-time
// simulator — yields the same decision log, which is what makes governed
// behaviour replayable in sim::PreemptiveScheduler.
//
// Hot path (admit_release) is lock-free and allocation-free; level
// transitions are rare and take a small mutex only to append the decision
// log.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "model/metamodel.hpp"

namespace rtcf::monitor {

/// Per-tenant degradation level.
enum class GovernorLevel : int { Normal = 0, RateLimit = 1, Shed = 2 };

const char* to_string(GovernorLevel level) noexcept;

class OverloadGovernor {
 public:
  struct Options {
    /// Consecutive violated windows from one component before escalation.
    std::uint32_t sustain_windows = 2;
    /// Consecutive clean windows from a violating component before
    /// de-escalation.
    std::uint32_t clear_windows = 4;
    /// While rate-limited, a Low component runs one release in this many.
    std::uint32_t rate_limit_divisor = 2;
  };

  /// Verdict for one would-be release/activation.
  enum class Admission { Run, RateLimited, Shed };

  OverloadGovernor();
  explicit OverloadGovernor(Options options);

  /// Registers a tenant envelope; returns its tenant id. The floor raises
  /// every member's effective criticality (a High floor makes the whole
  /// tenant undegradable). Registration happens at assembly time.
  std::size_t add_tenant(const char* name, model::Criticality floor);

  /// Registers a component under the implicit default tenant (id 0);
  /// returns its governor id. Registration happens at assembly time,
  /// before any execution.
  std::size_t add_component(const char* name, model::Criticality criticality);
  /// Registers a component under `tenant` (an id from add_tenant).
  std::size_t add_component(const char* name, model::Criticality criticality,
                            std::size_t tenant);

  /// Hot path: admission decision for the next release of `id`, against
  /// the component's tenant level. Lock-free; deterministic in the
  /// per-component call sequence and that level.
  Admission admit_release(std::size_t id) noexcept;

  /// Feeds one closed observation window of `id` (from its contract
  /// monitor). Not hot: called once per `window` releases. Escalation is
  /// scoped to the component's tenant.
  void on_window_violated(std::size_t id);
  void on_window_clean(std::size_t id);

  /// The assembly-wide level: the maximum across tenants (the pre-tenancy
  /// signal — node demotion watchers and single-tenant callers key on it).
  GovernorLevel level() const noexcept;
  /// One tenant's level.
  GovernorLevel tenant_level(std::size_t tenant) const noexcept;

  /// One level transition, for replay comparison and diagnostics.
  struct Decision {
    std::uint64_t seq = 0;          ///< Transition index (0-based).
    GovernorLevel level{};          ///< Level after the transition.
    const char* trigger = nullptr;  ///< Component whose windows drove it.
    const char* tenant = nullptr;   ///< Tenant whose level changed.
  };
  /// Snapshot of the decision log (copies under the transition mutex).
  std::vector<Decision> decisions() const;

  std::size_t component_count() const noexcept { return components_.size(); }
  const char* component_name(std::size_t id) const {
    return components_.at(id).name;
  }
  model::Criticality component_criticality(std::size_t id) const {
    return components_.at(id).criticality;
  }
  /// Tenant id the component was registered under (0 = default tenant).
  std::size_t component_tenant(std::size_t id) const {
    return components_.at(id).tenant;
  }
  std::size_t tenant_count() const noexcept { return tenants_.size(); }
  const char* tenant_name(std::size_t tenant) const {
    return tenants_.at(tenant).name;
  }

  /// Operator escape hatch: clears every streak and returns every tenant
  /// to Normal (recorded in the decision log with trigger "reset").
  void reset();

 private:
  struct TenantState {
    const char* name = nullptr;
    model::Criticality floor = model::Criticality::Low;
    std::atomic<int> level{static_cast<int>(GovernorLevel::Normal)};

    TenantState(const char* n, model::Criticality f) : name(n), floor(f) {}
    TenantState(TenantState&& o) noexcept
        : name(o.name), floor(o.floor), level(o.level.load()) {}
  };

  struct ComponentState {
    const char* name = nullptr;
    model::Criticality criticality = model::Criticality::High;
    std::size_t tenant = 0;
    /// Admission sequence; drives the deterministic rate-limit pattern.
    std::atomic<std::uint64_t> admissions{0};
    // Streaks are only touched by the worker that owns the component.
    std::uint32_t violated_streak = 0;
    std::uint32_t clean_streak = 0;
    /// Set once the component contributed to an escalation; only such
    /// components may drive de-escalation.
    std::atomic<bool> violator{false};

    ComponentState(const char* n, model::Criticality c, std::size_t t)
        : name(n), criticality(c), tenant(t) {}
    ComponentState(ComponentState&& o) noexcept
        : name(o.name),
          criticality(o.criticality),
          tenant(o.tenant),
          admissions(o.admissions.load()),
          violated_streak(o.violated_streak),
          clean_streak(o.clean_streak),
          violator(o.violator.load()) {}
  };

  /// Effective criticality of a component under its tenant's floor.
  model::Criticality effective_criticality(
      const ComponentState& c) const noexcept;

  void transition(std::size_t tenant, GovernorLevel to, const char* trigger);

  Options options_;
  std::vector<TenantState> tenants_;
  std::vector<ComponentState> components_;
  mutable std::mutex transition_mutex_;
  std::vector<Decision> decisions_;
};

}  // namespace rtcf::monitor
