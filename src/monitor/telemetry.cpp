#include "monitor/telemetry.hpp"

namespace rtcf::monitor {

std::uint64_t LatencyHistogram::percentile_upper_nanos(double p) const
    noexcept {
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const std::uint64_t n = count();
  if (n == 0) return 0;
  // Rank of the requested percentile (1-based, ceiling).
  const auto rank = static_cast<std::uint64_t>(
      (p / 100.0) * static_cast<double>(n) + 0.999999);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBins; ++i) {
    seen += bin(i);
    if (seen >= rank && seen > 0) {
      // Ceiling of bin i = floor of bin i+1.
      return i + 1 < kBins ? bin_floor(i + 1) : max_nanos();
    }
  }
  return max_nanos();
}

}  // namespace rtcf::monitor
