#include "monitor/contract.hpp"

namespace rtcf::monitor {

const char* to_string(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::WcetOverrun:
      return "wcet-overrun";
    case ViolationKind::MissRatio:
      return "miss-ratio";
    case ViolationKind::ArrivalRate:
      return "arrival-rate";
  }
  return "?";
}

ContractMonitor::ContractMonitor(
    const char* component, const model::TimingContract& contract) noexcept
    : component_(component), contract_(contract) {
  if (contract_.window == 0) contract_.window = 1;
}

int ContractMonitor::record_execution(rtsj::RelativeTime exec,
                                      bool deadline_missed, Violation out[2],
                                      WindowOutcome* outcome) noexcept {
  int fired = 0;
  if (outcome != nullptr) *outcome = WindowOutcome::Open;

  if (!contract_.wcet_budget.is_zero() && exec > contract_.wcet_budget) {
    overrun_in_window_ = true;
    ++violations_;
    out[fired++] = Violation{component_, ViolationKind::WcetOverrun,
                             exec.to_micros(),
                             contract_.wcet_budget.to_micros(),
                             window_index_};
  }

  ++in_window_;
  if (deadline_missed) ++misses_in_window_;
  if (in_window_ < contract_.window) return fired;

  // Window boundary: evaluate the stochastic bound and report the outcome.
  const double ratio = static_cast<double>(misses_in_window_) /
                       static_cast<double>(in_window_);
  const bool ratio_violated =
      contract_.miss_ratio_bound < 1.0 && ratio > contract_.miss_ratio_bound;
  if (ratio_violated) {
    ++violations_;
    out[fired++] = Violation{component_, ViolationKind::MissRatio, ratio,
                             contract_.miss_ratio_bound, window_index_};
  }
  if (outcome != nullptr) {
    *outcome = (ratio_violated || overrun_in_window_) ? WindowOutcome::Violated
                                                      : WindowOutcome::Clean;
  }
  ++window_index_;
  in_window_ = 0;
  misses_in_window_ = 0;
  overrun_in_window_ = false;
  return fired;
}

bool ContractMonitor::record_arrival(rtsj::AbsoluteTime now,
                                     Violation* out) noexcept {
  if (contract_.max_arrival_rate_hz <= 0.0) return false;
  std::uint32_t window = contract_.window;
  if (window > kMaxArrivalWindow) window = kMaxArrivalWindow;
  if (window < 2) window = 2;

  arrivals_[arrival_head_] = now;
  arrival_head_ = (arrival_head_ + 1) % window;
  if (arrival_count_ < window) {
    ++arrival_count_;
    return false;
  }
  // Ring is full: the slot arrival_head_ now points at is the oldest of the
  // last `window` arrivals.
  const rtsj::RelativeTime span = now - arrivals_[arrival_head_];
  if (span <= rtsj::RelativeTime::zero()) return false;
  const double rate_hz = static_cast<double>(window - 1) * 1e9 /
                         static_cast<double>(span.nanos());
  if (rate_hz <= contract_.max_arrival_rate_hz) return false;
  ++violations_;
  if (out != nullptr) {
    *out = Violation{component_, ViolationKind::ArrivalRate, rate_hz,
                     contract_.max_arrival_rate_hz, window_index_};
  }
  // Restart the history so one burst is reported once, not per arrival.
  arrival_count_ = 0;
  arrival_head_ = 0;
  return true;
}

}  // namespace rtcf::monitor
