#include "monitor/governor.hpp"

#include "util/assert.hpp"

namespace rtcf::monitor {

const char* to_string(GovernorLevel level) noexcept {
  switch (level) {
    case GovernorLevel::Normal:
      return "normal";
    case GovernorLevel::RateLimit:
      return "rate-limit";
    case GovernorLevel::Shed:
      return "shed";
  }
  return "?";
}

OverloadGovernor::OverloadGovernor() : OverloadGovernor(Options{}) {}

OverloadGovernor::OverloadGovernor(Options options) : options_(options) {
  if (options_.sustain_windows == 0) options_.sustain_windows = 1;
  if (options_.clear_windows == 0) options_.clear_windows = 1;
  if (options_.rate_limit_divisor < 2) options_.rate_limit_divisor = 2;
  decisions_.reserve(64);  // Transitions are rare; avoid hot-path growth.
  // Tenant 0: the implicit default envelope every pre-tenancy caller
  // registers into. A Low floor keeps the original semantics — declared
  // component criticality alone decides who is degradable.
  tenants_.emplace_back("", model::Criticality::Low);
}

std::size_t OverloadGovernor::add_tenant(const char* name,
                                         model::Criticality floor) {
  RTCF_REQUIRE(name != nullptr, "governor tenant needs a name");
  tenants_.emplace_back(name, floor);
  return tenants_.size() - 1;
}

std::size_t OverloadGovernor::add_component(const char* name,
                                            model::Criticality criticality) {
  return add_component(name, criticality, 0);
}

std::size_t OverloadGovernor::add_component(const char* name,
                                            model::Criticality criticality,
                                            std::size_t tenant) {
  RTCF_REQUIRE(name != nullptr, "governor component needs a name");
  RTCF_REQUIRE(tenant < tenants_.size(),
               "governor component registered under unknown tenant");
  components_.emplace_back(name, criticality, tenant);
  return components_.size() - 1;
}

model::Criticality OverloadGovernor::effective_criticality(
    const ComponentState& c) const noexcept {
  const model::Criticality floor = tenants_[c.tenant].floor;
  return floor == model::Criticality::High ? model::Criticality::High
                                           : c.criticality;
}

OverloadGovernor::Admission OverloadGovernor::admit_release(
    std::size_t id) noexcept {
  ComponentState& c = components_[id];
  const std::uint64_t seq =
      c.admissions.fetch_add(1, std::memory_order_relaxed);
  const auto level = static_cast<GovernorLevel>(
      tenants_[c.tenant].level.load(std::memory_order_relaxed));
  if (level == GovernorLevel::Normal ||
      effective_criticality(c) == model::Criticality::High) {
    return Admission::Run;
  }
  if (level == GovernorLevel::RateLimit) {
    return seq % options_.rate_limit_divisor == 0 ? Admission::Run
                                                  : Admission::RateLimited;
  }
  return Admission::Shed;
}

void OverloadGovernor::on_window_violated(std::size_t id) {
  ComponentState& c = components_[id];
  // A High-floor tenant has no degradable members: escalating its level
  // could never shed anything, so violations there stay telemetry-only
  // and the decision log records no phantom transitions.
  if (tenants_[c.tenant].floor == model::Criticality::High) return;
  c.clean_streak = 0;
  ++c.violated_streak;
  if (c.violated_streak < options_.sustain_windows) return;
  c.violated_streak = 0;  // Re-arm for the next escalation step.
  c.violator.store(true, std::memory_order_relaxed);
  const auto level = static_cast<GovernorLevel>(
      tenants_[c.tenant].level.load(std::memory_order_relaxed));
  if (level == GovernorLevel::Normal) {
    transition(c.tenant, GovernorLevel::RateLimit, c.name);
  } else if (level == GovernorLevel::RateLimit) {
    transition(c.tenant, GovernorLevel::Shed, c.name);
  }
}

void OverloadGovernor::on_window_clean(std::size_t id) {
  ComponentState& c = components_[id];
  c.violated_streak = 0;
  if (!c.violator.load(std::memory_order_relaxed)) return;
  ++c.clean_streak;
  if (c.clean_streak < options_.clear_windows) return;
  c.clean_streak = 0;
  const auto level = static_cast<GovernorLevel>(
      tenants_[c.tenant].level.load(std::memory_order_relaxed));
  if (level == GovernorLevel::Shed) {
    transition(c.tenant, GovernorLevel::RateLimit, c.name);
  } else if (level == GovernorLevel::RateLimit) {
    c.violator.store(false, std::memory_order_relaxed);
    transition(c.tenant, GovernorLevel::Normal, c.name);
  }
}

GovernorLevel OverloadGovernor::level() const noexcept {
  int max = static_cast<int>(GovernorLevel::Normal);
  for (const TenantState& t : tenants_) {
    const int level = t.level.load(std::memory_order_relaxed);
    if (level > max) max = level;
  }
  return static_cast<GovernorLevel>(max);
}

GovernorLevel OverloadGovernor::tenant_level(std::size_t tenant) const
    noexcept {
  if (tenant >= tenants_.size()) return GovernorLevel::Normal;
  return static_cast<GovernorLevel>(
      tenants_[tenant].level.load(std::memory_order_relaxed));
}

void OverloadGovernor::transition(std::size_t tenant, GovernorLevel to,
                                  const char* trigger) {
  const std::lock_guard<std::mutex> lock(transition_mutex_);
  TenantState& t = tenants_[tenant];
  const auto current =
      static_cast<GovernorLevel>(t.level.load(std::memory_order_relaxed));
  if (current == to) return;  // Lost a race with a concurrent transition.
  t.level.store(static_cast<int>(to), std::memory_order_relaxed);
  decisions_.push_back(Decision{decisions_.size(), to, trigger, t.name});
}

std::vector<OverloadGovernor::Decision> OverloadGovernor::decisions() const {
  const std::lock_guard<std::mutex> lock(transition_mutex_);
  return decisions_;
}

void OverloadGovernor::reset() {
  for (ComponentState& c : components_) {
    c.violated_streak = 0;
    c.clean_streak = 0;
    c.violator.store(false, std::memory_order_relaxed);
  }
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    if (tenant_level(t) != GovernorLevel::Normal) {
      transition(t, GovernorLevel::Normal, "reset");
    }
  }
}

}  // namespace rtcf::monitor
