#include "monitor/governor.hpp"

#include "util/assert.hpp"

namespace rtcf::monitor {

const char* to_string(GovernorLevel level) noexcept {
  switch (level) {
    case GovernorLevel::Normal:
      return "normal";
    case GovernorLevel::RateLimit:
      return "rate-limit";
    case GovernorLevel::Shed:
      return "shed";
  }
  return "?";
}

OverloadGovernor::OverloadGovernor() : OverloadGovernor(Options{}) {}

OverloadGovernor::OverloadGovernor(Options options) : options_(options) {
  if (options_.sustain_windows == 0) options_.sustain_windows = 1;
  if (options_.clear_windows == 0) options_.clear_windows = 1;
  if (options_.rate_limit_divisor < 2) options_.rate_limit_divisor = 2;
  decisions_.reserve(64);  // Transitions are rare; avoid hot-path growth.
}

std::size_t OverloadGovernor::add_component(const char* name,
                                            model::Criticality criticality) {
  RTCF_REQUIRE(name != nullptr, "governor component needs a name");
  components_.emplace_back(name, criticality);
  return components_.size() - 1;
}

OverloadGovernor::Admission OverloadGovernor::admit_release(
    std::size_t id) noexcept {
  ComponentState& c = components_[id];
  const std::uint64_t seq =
      c.admissions.fetch_add(1, std::memory_order_relaxed);
  const auto level =
      static_cast<GovernorLevel>(level_.load(std::memory_order_relaxed));
  if (level == GovernorLevel::Normal ||
      c.criticality == model::Criticality::High) {
    return Admission::Run;
  }
  if (level == GovernorLevel::RateLimit) {
    return seq % options_.rate_limit_divisor == 0 ? Admission::Run
                                                  : Admission::RateLimited;
  }
  return Admission::Shed;
}

void OverloadGovernor::on_window_violated(std::size_t id) {
  ComponentState& c = components_[id];
  c.clean_streak = 0;
  ++c.violated_streak;
  if (c.violated_streak < options_.sustain_windows) return;
  c.violated_streak = 0;  // Re-arm for the next escalation step.
  c.violator.store(true, std::memory_order_relaxed);
  const auto level =
      static_cast<GovernorLevel>(level_.load(std::memory_order_relaxed));
  if (level == GovernorLevel::Normal) {
    transition(GovernorLevel::RateLimit, c.name);
  } else if (level == GovernorLevel::RateLimit) {
    transition(GovernorLevel::Shed, c.name);
  }
}

void OverloadGovernor::on_window_clean(std::size_t id) {
  ComponentState& c = components_[id];
  c.violated_streak = 0;
  if (!c.violator.load(std::memory_order_relaxed)) return;
  ++c.clean_streak;
  if (c.clean_streak < options_.clear_windows) return;
  c.clean_streak = 0;
  const auto level =
      static_cast<GovernorLevel>(level_.load(std::memory_order_relaxed));
  if (level == GovernorLevel::Shed) {
    transition(GovernorLevel::RateLimit, c.name);
  } else if (level == GovernorLevel::RateLimit) {
    c.violator.store(false, std::memory_order_relaxed);
    transition(GovernorLevel::Normal, c.name);
  }
}

void OverloadGovernor::transition(GovernorLevel to, const char* trigger) {
  const std::lock_guard<std::mutex> lock(transition_mutex_);
  const auto current =
      static_cast<GovernorLevel>(level_.load(std::memory_order_relaxed));
  if (current == to) return;  // Lost a race with a concurrent transition.
  level_.store(static_cast<int>(to), std::memory_order_relaxed);
  decisions_.push_back(Decision{decisions_.size(), to, trigger});
}

std::vector<OverloadGovernor::Decision> OverloadGovernor::decisions() const {
  const std::lock_guard<std::mutex> lock(transition_mutex_);
  return decisions_;
}

void OverloadGovernor::reset() {
  for (ComponentState& c : components_) {
    c.violated_streak = 0;
    c.clean_streak = 0;
    c.violator.store(false, std::memory_order_relaxed);
  }
  if (level() != GovernorLevel::Normal) {
    transition(GovernorLevel::Normal, "reset");
  }
}

}  // namespace rtcf::monitor
