// The per-assembly runtime monitor: telemetry + contracts + governor.
//
// One RuntimeMonitor is built alongside every Application from the same
// plan the assembly is generated from: each functional component gets a
// ComponentTelemetry block allocated *inside its own RTSJ memory area*, a
// ContractMonitor when its metamodel declares a TimingContract, and a slot
// in the shared OverloadGovernor carrying its declared criticality.
//
// Feed paths:
//   * the wall-clock Launcher records completed periodic releases
//     (execution, response, lateness, deadline verdict) and asks the
//     governor for admission before each release;
//   * the SOLEIL membrane routes message-driven activations through a
//     TimingInterceptor whose record hook lands here (execution time and
//     arrival-rate contract checks for sporadic components);
//   * contract window outcomes drive the governor's escalation streaks,
//     and every violation is forwarded to the registered callback.
//
// All hot-path entry points are allocation-free; per-component contract
// state is single-consumer because components never migrate between
// executive workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/assembly_plan.hpp"
#include "model/metamodel.hpp"
#include "monitor/contract.hpp"
#include "monitor/governor.hpp"
#include "monitor/telemetry.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::monitor {

/// Gateway data-plane telemetry, fed by dist::DataPlane when a node
/// runtime owns the assembly (docs/DATAPLANE.md §7). All counters are
/// monotonic and relaxed-atomic: writers are the executive and serve
/// threads, readers are operator tooling polling across threads, and no
/// counter orders anything.
struct DataPlaneCounters {
  std::atomic<std::uint64_t> offered{0};    ///< Messages handed to offer().
  std::atomic<std::uint64_t> sent{0};       ///< Messages put on a channel.
  std::atomic<std::uint64_t> batches{0};    ///< BATCH frames written.
  std::atomic<std::uint64_t> legacy_sends{0};  ///< Per-message DATA frames
                                               ///< (v2 peers).
  std::atomic<std::uint64_t> size_flushes{0};  ///< Flushes on batch_max.
  std::atomic<std::uint64_t> deadline_flushes{0};  ///< Flushes on interval.
  std::atomic<std::uint64_t> overflow_drops{0};  ///< Route-queue drop-newest.
  std::atomic<std::uint64_t> send_failures{0};   ///< Channel writes refused.
  std::atomic<std::uint64_t> credits_granted{0};  ///< Credits sent entry-side.
  // Zero-copy path (docs/DATAPLANE.md "Zero-copy path"):
  std::atomic<std::uint64_t> ring_frames{0};  ///< Frames encoded in the ring.
  std::atomic<std::uint64_t> bytes_copied{0};  ///< Payload bytes staged in a
                                               ///< user-space buffer before
                                               ///< the transport.
  std::atomic<std::uint64_t> pool_hits{0};    ///< BufferPool freelist hits.
  std::atomic<std::uint64_t> pool_misses{0};  ///< BufferPool allocations.
  std::atomic<std::uint64_t> pool_high_water{0};  ///< Gauge: max buffers
                                                  ///< outstanding at once.

  /// A torn-free point read of every counter (plain integers).
  struct Snapshot {
    std::uint64_t offered = 0;
    std::uint64_t sent = 0;
    std::uint64_t batches = 0;
    std::uint64_t legacy_sends = 0;
    std::uint64_t size_flushes = 0;
    std::uint64_t deadline_flushes = 0;
    std::uint64_t overflow_drops = 0;
    std::uint64_t send_failures = 0;
    std::uint64_t credits_granted = 0;
    std::uint64_t ring_frames = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::uint64_t pool_high_water = 0;
  };

  /// Reads each counter once (relaxed; counters are independent).
  Snapshot snapshot() const noexcept {
    Snapshot s;
    s.offered = offered.load(std::memory_order_relaxed);
    s.sent = sent.load(std::memory_order_relaxed);
    s.batches = batches.load(std::memory_order_relaxed);
    s.legacy_sends = legacy_sends.load(std::memory_order_relaxed);
    s.size_flushes = size_flushes.load(std::memory_order_relaxed);
    s.deadline_flushes = deadline_flushes.load(std::memory_order_relaxed);
    s.overflow_drops = overflow_drops.load(std::memory_order_relaxed);
    s.send_failures = send_failures.load(std::memory_order_relaxed);
    s.credits_granted = credits_granted.load(std::memory_order_relaxed);
    s.ring_frames = ring_frames.load(std::memory_order_relaxed);
    s.bytes_copied = bytes_copied.load(std::memory_order_relaxed);
    s.pool_hits = pool_hits.load(std::memory_order_relaxed);
    s.pool_misses = pool_misses.load(std::memory_order_relaxed);
    s.pool_high_water = pool_high_water.load(std::memory_order_relaxed);
    return s;
  }
};

/// Control-plane telemetry, fed by dist::NodeRuntime's serve thread.
/// Counts what the two-phase handler does with frames that are *not*
/// protocol work for this node — silently dropping them hid real routing
/// bugs (a peer's HELLO looping back, a stale coordinator's decision).
/// Same discipline as DataPlaneCounters: monotonic, relaxed, read by
/// operator tooling across threads.
struct ControlPlaneCounters {
  /// Frames whose type is not addressed to a node (coordinator-bound
  /// replies, unknown types) and were dropped per PROTOCOL.md §7.
  std::atomic<std::uint64_t> ignored_frames{0};
  /// Prepare frames refused because the sending coordinator's epoch was
  /// below the highest this node has seen (docs/MEMBERSHIP.md §5).
  std::atomic<std::uint64_t> fenced_prepares{0};
  /// Commit/Abort frames dropped for the same staleness reason.
  std::atomic<std::uint64_t> fenced_decisions{0};
  /// Takeover frames accepted (the node raised its coordinator epoch).
  std::atomic<std::uint64_t> takeovers{0};

  /// A torn-free point read of every counter (plain integers).
  struct Snapshot {
    std::uint64_t ignored_frames = 0;
    std::uint64_t fenced_prepares = 0;
    std::uint64_t fenced_decisions = 0;
    std::uint64_t takeovers = 0;
  };

  /// Reads each counter once (relaxed; counters are independent).
  Snapshot snapshot() const noexcept {
    Snapshot s;
    s.ignored_frames = ignored_frames.load(std::memory_order_relaxed);
    s.fenced_prepares = fenced_prepares.load(std::memory_order_relaxed);
    s.fenced_decisions = fenced_decisions.load(std::memory_order_relaxed);
    s.takeovers = takeovers.load(std::memory_order_relaxed);
    return s;
  }
};

class RuntimeMonitor {
 public:
  /// Violation callback: function pointer + opaque arg, so firing from a
  /// worker thread allocates nothing. Fired for every contract violation
  /// after telemetry and governor bookkeeping.
  using ViolationFn = void (*)(void* arg, const Violation& violation);

  struct Entry {
    const char* name = nullptr;
    /// Area-allocated; owned by the component's memory area, not by us.
    ComponentTelemetry* telemetry = nullptr;
    /// Null for uncontracted components.
    ContractMonitor* contract = nullptr;
    std::size_t governor_id = 0;
    model::Criticality criticality = model::Criticality::High;
    /// Relative deadline for activation-path miss detection (the
    /// MIT-derived implicit deadline for sporadic components); zero
    /// disables the check.
    rtsj::RelativeTime deadline{};
    /// True for periodic components: their contract windows are fed by
    /// the launcher's release records (which carry the real deadline
    /// verdict), so activation-path records must not dilute them.
    bool release_driven = false;
    RuntimeMonitor* owner = nullptr;
  };

  explicit RuntimeMonitor(OverloadGovernor::Options options = {});

  RuntimeMonitor(const RuntimeMonitor&) = delete;
  RuntimeMonitor& operator=(const RuntimeMonitor&) = delete;

  /// Registers the plan's tenant envelopes with the governor and records
  /// which tenant each planned component belongs to, so subsequent
  /// add_component() calls land in their tenant's degradation scope.
  /// Idempotent per tenant name (re-adoption after a live reload only
  /// registers tenants the governor has not seen yet) — call it before
  /// registering the plan's components. Components outside every tenant
  /// stay in the governor's implicit default envelope.
  void adopt_tenants(const model::AssemblyPlan& plan);

  /// Registers one component: telemetry storage is carved from `area`
  /// (RTSJ newInstance), the contract checker from the heap (assembly
  /// time, not hot path). `deadline` enables activation-path miss
  /// detection; `release_driven` marks periodic components whose contract
  /// windows the launcher feeds instead. Returns a stable Entry reference.
  Entry& add_component(const char* name, rtsj::MemoryArea& area,
                       model::Criticality criticality,
                       const model::TimingContract* contract,
                       rtsj::RelativeTime deadline = rtsj::RelativeTime::zero(),
                       bool release_driven = false);

  /// Re-arms one component's contract checking — the mode-transition hook:
  /// the entry gets a *fresh* ContractMonitor for `contract` (or none when
  /// null), so window streaks, arrival history, and violation counts start
  /// clean in the new mode. Must be called at a quiescence point (no
  /// worker is feeding the entry); the old checker stays allocated so a
  /// stale pointer read cannot fault, it just stops being fed.
  void rearm(Entry& entry, const model::TimingContract* contract);

  Entry* find(const std::string& name) noexcept;
  const Entry* find(const std::string& name) const noexcept;
  const std::vector<std::unique_ptr<Entry>>& entries() const noexcept {
    return entries_;
  }

  OverloadGovernor& governor() noexcept { return governor_; }
  const OverloadGovernor& governor() const noexcept { return governor_; }

  /// Gateway data-plane counters. Stays all-zero on assemblies that are
  /// not hosted by a node runtime (nothing else feeds it).
  DataPlaneCounters& data_plane() noexcept { return data_plane_; }
  const DataPlaneCounters& data_plane() const noexcept { return data_plane_; }

  /// Control-plane counters (same ownership rule as data_plane()).
  ControlPlaneCounters& control_plane() noexcept { return control_plane_; }
  const ControlPlaneCounters& control_plane() const noexcept {
    return control_plane_;
  }

  void set_violation_callback(ViolationFn fn, void* arg) noexcept {
    violation_fn_ = fn;
    violation_arg_ = arg;
  }

  // ---- hot-path feeds ----------------------------------------------------

  /// Governor admission for one periodic release. A degraded verdict is
  /// already counted into telemetry (shed/rate_limited) before returning.
  OverloadGovernor::Admission admit_release(Entry& entry) noexcept;

  /// Same for one message-driven activation: returns false when the
  /// activation must be dropped (counted as shed).
  bool admit_activation(Entry& entry) noexcept;

  /// One completed periodic release (launcher).
  void record_release(Entry& entry, rtsj::RelativeTime exec,
                      rtsj::RelativeTime response,
                      rtsj::RelativeTime lateness, bool missed) noexcept;

  /// One message-driven activation (timing interceptor); checks the WCET
  /// budget and the arrival-rate bound.
  void record_activation(Entry& entry, std::uint64_t exec_nanos) noexcept;

  /// membrane::TimingInterceptor record hook (arg = Entry*).
  static void record_activation_trampoline(void* entry,
                                           std::uint64_t exec_nanos) noexcept;

  // ---- aggregates --------------------------------------------------------

  std::uint64_t violations_total() const noexcept;
  std::uint64_t shed_total() const noexcept;
  /// Bytes of telemetry storage carved from RTSJ areas (footprint metric).
  std::size_t telemetry_bytes() const noexcept { return telemetry_bytes_; }

 private:
  void apply_outcome(Entry& entry, WindowOutcome outcome) noexcept;
  void fire(Entry& entry, const Violation& violation) noexcept;

  std::vector<std::unique_ptr<Entry>> entries_;
  std::map<std::string, Entry*> by_name_;
  std::vector<std::unique_ptr<ContractMonitor>> contracts_;
  /// Stable storage for tenant name strings handed to the governor
  /// (which keeps only const char*); deque never relocates elements.
  std::deque<std::string> tenant_names_;
  /// Tenant name -> governor tenant id (for idempotent re-adoption).
  std::map<std::string, std::size_t> tenant_ids_;
  /// Component name -> governor tenant id of its owning tenant.
  std::map<std::string, std::size_t> component_tenants_;
  OverloadGovernor governor_;
  DataPlaneCounters data_plane_;
  ControlPlaneCounters control_plane_;
  ViolationFn violation_fn_ = nullptr;
  void* violation_arg_ = nullptr;
  std::size_t telemetry_bytes_ = 0;
};

}  // namespace rtcf::monitor
