// Allocation-free per-component runtime telemetry.
//
// The paper validates timing offline (design-time checks plus the Fig. 7
// measurements); a production deployment must also observe itself online.
// This layer gives every functional component a fixed-size telemetry block
// — execution-time / response-latency / release-jitter histograms plus
// release and deadline counters — that is
//
//   * carved out of the component's own RTSJ memory area at assembly time
//     (a Console deployed in a 28 KB scope keeps its telemetry in that
//     scope, exactly like its content), and
//   * updated lock-free from whichever executive worker runs the
//     component: the record path touches only relaxed atomics, never
//     allocates, and never takes a lock.
//
// Readers (dashboards, benches, the overload governor) tolerate the usual
// monotonic-counter semantics: totals are exact once the writers quiesce,
// and never lose increments while they run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace rtcf::monitor {

/// Lock-free histogram of nanosecond durations over fixed logarithmic bins
/// (bin i counts samples in [2^i, 2^(i+1)) ns; the last bin absorbs the
/// tail). Log bins give full dynamic range — sub-microsecond membrane hops
/// to multi-second stalls — in a fixed 48-slot footprint, which is what
/// lets the whole structure live inside a bounded RTSJ area.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBins = 48;

  /// Records one sample. Wait-free: two relaxed fetch_adds, one bounded CAS
  /// loop for the maximum, no allocation.
  void record(std::uint64_t nanos) noexcept {
    bins_[bin_index(nanos)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (nanos > prev &&
           !max_.compare_exchange_weak(prev, nanos,
                                       std::memory_order_relaxed)) {
    }
  }

  static std::size_t bin_index(std::uint64_t nanos) noexcept {
    if (nanos <= 1) return 0;
#if defined(__GNUC__) || defined(__clang__)
    const auto b =
        static_cast<std::size_t>(63 - __builtin_clzll(nanos));
#else
    std::size_t b = 0;
    while (nanos >>= 1) ++b;
    nanos = 0;
#endif
    return b < kBins - 1 ? b : kBins - 1;
  }
  /// Lower edge of bin `i` in nanoseconds.
  static std::uint64_t bin_floor(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << i;
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t bin(std::size_t i) const noexcept {
    return bins_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t max_nanos() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  double mean_nanos() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Upper bound (bin ceiling) of the p-th percentile, p in [0, 100].
  /// Coarse by construction (one bin = a factor of two) but allocation-free
  /// and exact enough to flag order-of-magnitude latency regressions.
  std::uint64_t percentile_upper_nanos(double p) const noexcept;

 private:
  std::atomic<std::uint64_t> bins_[kBins] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One component's telemetry block. Plain trivially-destructible data so it
/// can be placed in any RTSJ area (including scopes — no finalizer needed)
/// and read after the workers joined without teardown ordering concerns.
struct ComponentTelemetry {
  explicit ComponentTelemetry(const char* component) noexcept
      : name(component) {}

  /// Component name; points at the Architecture-owned string, which
  /// outlives every assembly built from it.
  const char* name;

  LatencyHistogram exec_ns;      ///< Per-activation execution time.
  LatencyHistogram response_ns;  ///< Release-to-completion latency.
  LatencyHistogram jitter_ns;    ///< Release start lateness.

  std::atomic<std::uint64_t> releases{0};         ///< Periodic dispatches.
  std::atomic<std::uint64_t> activations{0};      ///< Message-driven runs.
  std::atomic<std::uint64_t> deadline_misses{0};
  /// Releases/activations dropped by the overload governor, at any
  /// degradation level — the complete drop count for this component.
  std::atomic<std::uint64_t> shed{0};
  /// Subset of `shed` dropped while the governor was at RateLimit.
  std::atomic<std::uint64_t> rate_limited{0};
  std::atomic<std::uint64_t> contract_violations{0};

  /// Records one completed periodic release (launcher hot path).
  void record_release(std::uint64_t exec_nanos, std::uint64_t response_nanos,
                      std::uint64_t lateness_nanos, bool missed) noexcept {
    releases.fetch_add(1, std::memory_order_relaxed);
    exec_ns.record(exec_nanos);
    response_ns.record(response_nanos);
    jitter_ns.record(lateness_nanos);
    if (missed) deadline_misses.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one message-driven activation (membrane timing interceptor).
  void record_activation(std::uint64_t exec_nanos) noexcept {
    activations.fetch_add(1, std::memory_order_relaxed);
    exec_ns.record(exec_nanos);
  }
};

static_assert(std::is_trivially_destructible_v<ComponentTelemetry>,
              "telemetry must not need finalizers so it can live in any "
              "RTSJ memory area");

}  // namespace rtcf::monitor
