// The immutable assembly snapshot: everything the runtime needs to know
// about one planned assembly — components, bindings, partitions, contracts,
// modes — captured *by value*, with no pointers into the Architecture that
// produced it.
//
// The snapshot is the unit of live reconfiguration: the loader/planner
// produces one per <Architecture>, the running Application keeps the one it
// was assembled from, and reconfig::diff_plans() compares two snapshots to
// synthesize a reload transition. Because the snapshot owns its strings and
// mode declarations, a freshly loaded Architecture may be discarded as soon
// as it has been snapshotted — the running assembly never dangles into a
// dead object graph.
//
// Produced by soleil::snapshot_assembly() (the planner owns partition
// assignment and the RTSJ-pattern helpers); consumed by soleil::make_plan,
// reconfig::ModeManager, the plan-delta engine, and the sim mirror.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::model {

/// Value snapshot of one functional component.
struct ComponentSpec {
  /// Component name (unique within the assembly).
  std::string name;
  /// Active or Passive (non-functional composites are captured as the
  /// per-component deployment fields below, not as specs of their own).
  ComponentKind kind = ComponentKind::Passive;
  /// Activation policy of active components.
  ActivationKind activation = ActivationKind::Sporadic;
  /// Release period (periodic) / minimum interarrival (sporadic).
  rtsj::RelativeTime period{};
  /// Modeled per-release execution cost (simulator substrate).
  rtsj::RelativeTime cost{};
  /// Registered content-class name instantiated for this component.
  std::string content_class;
  /// Declared criticality (High when the designer did not classify).
  Criticality criticality = Criticality::High;
  /// Stochastic timing contract; empty means unmonitored.
  std::optional<TimingContract> contract;
  /// True when runtime reconfiguration may touch this component.
  bool swappable = false;
  /// Declared functional interfaces, in declaration order.
  std::vector<InterfaceDecl> interfaces;

  // -- deployment (the non-functional views, flattened) ---------------------
  /// Innermost enclosing MemoryArea component name; empty = heap.
  std::string memory_area;
  /// Type of the enclosing memory area (Heap when undeployed).
  AreaType area_type = AreaType::Heap;
  /// Enclosing ThreadDomain (active components); empty for passives.
  std::string thread_domain;
  /// Thread type of the enclosing domain.
  DomainType domain_type = DomainType::Regular;
  /// Priority of the enclosing domain's threads.
  int domain_priority = 1;
  /// True when the component's code executes on a no-heap real-time thread
  /// (its own domain, or — for passives — any synchronous caller's).
  bool executes_on_nhrt = false;

  /// Executive partition assigned by the planner.
  std::size_t partition = 0;

  /// True for components with their own thread of control.
  bool is_active() const noexcept { return kind == ComponentKind::Active; }
  /// The declared interface named `n`, or nullptr.
  const InterfaceDecl* find_interface(const std::string& n) const noexcept;

  /// Field-wise equality over every captured field — the round-trip-exact
  /// contract of the wire codec (dist/plan_codec.hpp) and the agreement
  /// check of the distributed coordinator.
  bool operator==(const ComponentSpec& o) const;
  /// Negation of operator==.
  bool operator!=(const ComponentSpec& o) const { return !(*this == o); }
};

/// Value snapshot of one binding, including the planner's RTSJ resolution
/// (pattern + area placement, by area-component name so a later assembly
/// can re-resolve them against its own substrate).
struct BindingSpec {
  /// Client end (component, interface) of the binding.
  BindingEnd client;
  /// Server end (component, interface) of the binding.
  BindingEnd server;
  /// Invocation protocol (synchronous request/response or asynchronous
  /// one-way).
  Protocol protocol = Protocol::Synchronous;
  /// Message-buffer capacity for asynchronous bindings.
  std::size_t buffer_size = 0;
  /// Resolved cross-scope communication pattern name (never empty after
  /// planning; planning fails where no RTSJ-legal pattern exists).
  std::string pattern;
  /// Staging-copy placement: a MemoryArea component name, or the sentinels
  /// "@immortal" / "@none" (direct and scope-enter patterns stage nothing).
  std::string staging_area = "@none";
  /// Message-buffer placement for asynchronous bindings ("@none" for sync).
  std::string buffer_area = "@none";
  /// True when client and server sit on different executive partitions.
  bool cross_partition = false;

  /// Field-wise equality over every captured field (see
  /// ComponentSpec::operator==).
  bool operator==(const BindingSpec& o) const;
  /// Negation of operator==.
  bool operator!=(const BindingSpec& o) const { return !(*this == o); }
};

/// Area-placement sentinel: no staged copy / no buffer.
inline constexpr const char* kAreaNone = "@none";
/// Area-placement sentinel: the immortal-memory singleton.
inline constexpr const char* kAreaImmortal = "@immortal";
/// Area-placement sentinel: the heap singleton.
inline constexpr const char* kAreaHeap = "@heap";

/// One declared MemoryArea of the assembly (the full inventory, including
/// areas no component currently occupies — a reload may deploy into them).
struct AreaSpec {
  /// MemoryArea component name.
  std::string name;
  /// RTSJ area type (immortal, scoped, or heap).
  AreaType type = AreaType::Heap;
  /// Declared byte size (immortal/scoped; 0 for heap).
  std::size_t size_bytes = 0;

  /// Field-wise equality.
  bool operator==(const AreaSpec& o) const {
    return name == o.name && type == o.type && size_bytes == o.size_bytes;
  }
  /// Negation of operator==.
  bool operator!=(const AreaSpec& o) const { return !(*this == o); }
};

/// Value snapshot of one tenant with its membership fully resolved: the
/// planner expands MemoryArea/ThreadDomain members into the functional
/// components they enclose, so downstream consumers (validator, admission
/// controller, governor wiring, sim mirror) never re-walk the component
/// DAG.
struct TenantSpec {
  /// Tenant name (unique within the assembly).
  std::string name;
  /// Declared resource envelope.
  TenantBudget budget;
  /// Criticality floor applied to every member for governor purposes.
  Criticality criticality_floor = Criticality::Low;
  /// Functional member components (expanded; sorted by name).
  std::vector<std::string> components;
  /// MemoryArea members (declared directly or enclosing a member; sorted).
  std::vector<std::string> areas;
  /// ThreadDomain members (declared directly or enclosing a member;
  /// sorted).
  std::vector<std::string> domains;
  /// Capabilities offered to other tenants.
  std::vector<CapabilityExport> exports;
  /// Capabilities consumed from other tenants.
  std::vector<CapabilityImport> imports;
  /// 1-based ADL source line of the `<Tenant>` element (0 when built
  /// programmatically). Diagnostic context only: excluded from operator==
  /// and from the wire codec, so it never perturbs plan agreement.
  int adl_line = 0;

  /// True when `component` is an (expanded) member.
  bool owns_component(const std::string& component) const noexcept;
  /// True when `area` is an owned MemoryArea.
  bool owns_area(const std::string& area) const noexcept;
  /// The export named `capability`, or nullptr.
  const CapabilityExport* find_export(
      const std::string& capability) const noexcept;
  /// The import named `capability`, or nullptr.
  const CapabilityImport* find_import(
      const std::string& capability) const noexcept;

  /// Field-wise equality over the resolved slice (adl_line excluded).
  bool operator==(const TenantSpec& o) const;
  /// Negation of operator==.
  bool operator!=(const TenantSpec& o) const { return !(*this == o); }
};

/// The immutable snapshot. Construction goes through the planner
/// (soleil::snapshot_assembly); everything here is plain value data.
class AssemblyPlan {
 public:
  /// An empty plan (the builder fills it in).
  AssemblyPlan() = default;

  /// Functional components, in declaration order.
  const std::vector<ComponentSpec>& components() const noexcept {
    return components_;
  }
  /// Bindings with their planner resolution, in declaration order.
  const std::vector<BindingSpec>& bindings() const noexcept {
    return bindings_;
  }
  /// Declared memory areas (the full inventory).
  const std::vector<AreaSpec>& areas() const noexcept { return areas_; }
  /// Operational modes, in declaration order.
  const std::vector<ModeDecl>& modes() const noexcept { return modes_; }
  /// Tenants with resolved membership, in declaration order (empty for a
  /// single-tenant assembly).
  const std::vector<TenantSpec>& tenants() const noexcept { return tenants_; }
  /// Number of executive partitions the components are assigned across.
  std::size_t partition_count() const noexcept { return partition_count_; }

  /// The component named `name`, or nullptr.
  const ComponentSpec* find(const std::string& name) const noexcept;
  /// The area named `name`, or nullptr.
  const AreaSpec* find_area(const std::string& name) const noexcept;
  /// The binding whose client end is (component, interface); nullptr when
  /// the port is unbound.
  const BindingSpec* binding_for(const BindingEnd& client) const noexcept;
  /// The mode named `name`, or nullptr.
  const ModeDecl* find_mode(const std::string& name) const noexcept;
  /// The mode flagged degraded, or nullptr.
  const ModeDecl* degraded_mode() const noexcept;
  /// True when `component` appears in at least one mode's component set.
  bool mode_managed(const std::string& component) const noexcept;
  /// The tenant named `name`, or nullptr.
  const TenantSpec* find_tenant(const std::string& name) const noexcept;
  /// The tenant owning `component`, or nullptr for tenantless components.
  const TenantSpec* tenant_of(const std::string& component) const noexcept;

  /// Deep field-wise equality (component, binding, area, mode, and tenant
  /// lists in order, plus the partition count). Two plans produced by the same
  /// planner inputs — or one plan round-tripped through the wire codec —
  /// compare equal.
  bool operator==(const AssemblyPlan& o) const;
  /// Negation of operator==.
  bool operator!=(const AssemblyPlan& o) const { return !(*this == o); }

 private:
  friend struct AssemblyPlanBuilder;
  std::vector<ComponentSpec> components_;
  std::vector<BindingSpec> bindings_;
  std::vector<AreaSpec> areas_;
  std::vector<ModeDecl> modes_;
  std::vector<TenantSpec> tenants_;
  std::size_t partition_count_ = 1;
};

/// Mutable access for the planner (and only the planner): the builder is
/// the single place an AssemblyPlan changes; everyone downstream sees the
/// const interface above.
struct AssemblyPlanBuilder {
  /// The plan under construction.
  AssemblyPlan& plan;

  /// Mutable component list.
  std::vector<ComponentSpec>& components() { return plan.components_; }
  /// Mutable binding list.
  std::vector<BindingSpec>& bindings() { return plan.bindings_; }
  /// Mutable area inventory.
  std::vector<AreaSpec>& areas() { return plan.areas_; }
  /// Mutable mode list.
  std::vector<ModeDecl>& modes() { return plan.modes_; }
  /// Mutable tenant list.
  std::vector<TenantSpec>& tenants() { return plan.tenants_; }
  /// Sets the executive partition count (0 is clamped to 1).
  void set_partition_count(std::size_t count) {
    plan.partition_count_ = count == 0 ? 1 : count;
  }
  /// Mutable lookup of the component named `name`, or nullptr.
  ComponentSpec* find(const std::string& name);
};

}  // namespace rtcf::model
