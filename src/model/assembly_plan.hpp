// The immutable assembly snapshot: everything the runtime needs to know
// about one planned assembly — components, bindings, partitions, contracts,
// modes — captured *by value*, with no pointers into the Architecture that
// produced it.
//
// The snapshot is the unit of live reconfiguration: the loader/planner
// produces one per <Architecture>, the running Application keeps the one it
// was assembled from, and reconfig::diff_plans() compares two snapshots to
// synthesize a reload transition. Because the snapshot owns its strings and
// mode declarations, a freshly loaded Architecture may be discarded as soon
// as it has been snapshotted — the running assembly never dangles into a
// dead object graph.
//
// Produced by soleil::snapshot_assembly() (the planner owns partition
// assignment and the RTSJ-pattern helpers); consumed by soleil::make_plan,
// reconfig::ModeManager, the plan-delta engine, and the sim mirror.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::model {

/// Value snapshot of one functional component.
struct ComponentSpec {
  std::string name;
  /// Active or Passive (non-functional composites are captured as the
  /// per-component deployment fields below, not as specs of their own).
  ComponentKind kind = ComponentKind::Passive;
  ActivationKind activation = ActivationKind::Sporadic;
  /// Release period (periodic) / minimum interarrival (sporadic).
  rtsj::RelativeTime period{};
  rtsj::RelativeTime cost{};
  std::string content_class;
  Criticality criticality = Criticality::High;
  std::optional<TimingContract> contract;
  bool swappable = false;
  std::vector<InterfaceDecl> interfaces;

  // -- deployment (the non-functional views, flattened) ---------------------
  /// Innermost enclosing MemoryArea component name; empty = heap.
  std::string memory_area;
  AreaType area_type = AreaType::Heap;
  /// Enclosing ThreadDomain (active components); empty for passives.
  std::string thread_domain;
  DomainType domain_type = DomainType::Regular;
  int domain_priority = 1;
  /// True when the component's code executes on a no-heap real-time thread
  /// (its own domain, or — for passives — any synchronous caller's).
  bool executes_on_nhrt = false;

  /// Executive partition assigned by the planner.
  std::size_t partition = 0;

  bool is_active() const noexcept { return kind == ComponentKind::Active; }
  const InterfaceDecl* find_interface(const std::string& n) const noexcept;
};

/// Value snapshot of one binding, including the planner's RTSJ resolution
/// (pattern + area placement, by area-component name so a later assembly
/// can re-resolve them against its own substrate).
struct BindingSpec {
  BindingEnd client;
  BindingEnd server;
  Protocol protocol = Protocol::Synchronous;
  std::size_t buffer_size = 0;
  /// Resolved cross-scope communication pattern name (never empty after
  /// planning; planning fails where no RTSJ-legal pattern exists).
  std::string pattern;
  /// Staging-copy placement: a MemoryArea component name, or the sentinels
  /// "@immortal" / "@none" (direct and scope-enter patterns stage nothing).
  std::string staging_area = "@none";
  /// Message-buffer placement for asynchronous bindings ("@none" for sync).
  std::string buffer_area = "@none";
  /// True when client and server sit on different executive partitions.
  bool cross_partition = false;
};

/// Area-placement sentinels used by BindingSpec.
inline constexpr const char* kAreaNone = "@none";
inline constexpr const char* kAreaImmortal = "@immortal";
inline constexpr const char* kAreaHeap = "@heap";

/// One declared MemoryArea of the assembly (the full inventory, including
/// areas no component currently occupies — a reload may deploy into them).
struct AreaSpec {
  std::string name;
  AreaType type = AreaType::Heap;
  std::size_t size_bytes = 0;
};

/// The immutable snapshot. Construction goes through the planner
/// (soleil::snapshot_assembly); everything here is plain value data.
class AssemblyPlan {
 public:
  AssemblyPlan() = default;

  const std::vector<ComponentSpec>& components() const noexcept {
    return components_;
  }
  const std::vector<BindingSpec>& bindings() const noexcept {
    return bindings_;
  }
  const std::vector<AreaSpec>& areas() const noexcept { return areas_; }
  const std::vector<ModeDecl>& modes() const noexcept { return modes_; }
  std::size_t partition_count() const noexcept { return partition_count_; }

  const ComponentSpec* find(const std::string& name) const noexcept;
  const AreaSpec* find_area(const std::string& name) const noexcept;
  /// The binding whose client end is (component, interface); nullptr when
  /// the port is unbound.
  const BindingSpec* binding_for(const BindingEnd& client) const noexcept;
  const ModeDecl* find_mode(const std::string& name) const noexcept;
  /// The mode flagged degraded, or nullptr.
  const ModeDecl* degraded_mode() const noexcept;
  /// True when `component` appears in at least one mode's component set.
  bool mode_managed(const std::string& component) const noexcept;

 private:
  friend struct AssemblyPlanBuilder;
  std::vector<ComponentSpec> components_;
  std::vector<BindingSpec> bindings_;
  std::vector<AreaSpec> areas_;
  std::vector<ModeDecl> modes_;
  std::size_t partition_count_ = 1;
};

/// Mutable access for the planner (and only the planner): the builder is
/// the single place an AssemblyPlan changes; everyone downstream sees the
/// const interface above.
struct AssemblyPlanBuilder {
  AssemblyPlan& plan;

  std::vector<ComponentSpec>& components() { return plan.components_; }
  std::vector<BindingSpec>& bindings() { return plan.bindings_; }
  std::vector<AreaSpec>& areas() { return plan.areas_; }
  std::vector<ModeDecl>& modes() { return plan.modes_; }
  void set_partition_count(std::size_t count) {
    plan.partition_count_ = count == 0 ? 1 : count;
  }
  ComponentSpec* find(const std::string& name);
};

}  // namespace rtcf::model
