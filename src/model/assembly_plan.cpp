#include "model/assembly_plan.hpp"

namespace rtcf::model {

const InterfaceDecl* ComponentSpec::find_interface(
    const std::string& n) const noexcept {
  for (const auto& itf : interfaces) {
    if (itf.name == n) return &itf;
  }
  return nullptr;
}

bool ComponentSpec::operator==(const ComponentSpec& o) const {
  return name == o.name && kind == o.kind && activation == o.activation &&
         period == o.period && cost == o.cost &&
         content_class == o.content_class && criticality == o.criticality &&
         contract == o.contract && swappable == o.swappable &&
         interfaces == o.interfaces && memory_area == o.memory_area &&
         area_type == o.area_type && thread_domain == o.thread_domain &&
         domain_type == o.domain_type &&
         domain_priority == o.domain_priority &&
         executes_on_nhrt == o.executes_on_nhrt && partition == o.partition;
}

bool BindingSpec::operator==(const BindingSpec& o) const {
  return client == o.client && server == o.server &&
         protocol == o.protocol && buffer_size == o.buffer_size &&
         pattern == o.pattern && staging_area == o.staging_area &&
         buffer_area == o.buffer_area && cross_partition == o.cross_partition;
}

bool TenantSpec::owns_component(const std::string& component) const noexcept {
  for (const auto& c : components) {
    if (c == component) return true;
  }
  return false;
}

bool TenantSpec::owns_area(const std::string& area) const noexcept {
  for (const auto& a : areas) {
    if (a == area) return true;
  }
  return false;
}

const CapabilityExport* TenantSpec::find_export(
    const std::string& capability) const noexcept {
  for (const auto& e : exports) {
    if (e.capability == capability) return &e;
  }
  return nullptr;
}

const CapabilityImport* TenantSpec::find_import(
    const std::string& capability) const noexcept {
  for (const auto& i : imports) {
    if (i.capability == capability) return &i;
  }
  return nullptr;
}

bool TenantSpec::operator==(const TenantSpec& o) const {
  return name == o.name && budget == o.budget &&
         criticality_floor == o.criticality_floor &&
         components == o.components && areas == o.areas &&
         domains == o.domains && exports == o.exports && imports == o.imports;
}

bool AssemblyPlan::operator==(const AssemblyPlan& o) const {
  return components_ == o.components_ && bindings_ == o.bindings_ &&
         areas_ == o.areas_ && modes_ == o.modes_ && tenants_ == o.tenants_ &&
         partition_count_ == o.partition_count_;
}

const ComponentSpec* AssemblyPlan::find(const std::string& name) const
    noexcept {
  for (const auto& c : components_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const AreaSpec* AssemblyPlan::find_area(const std::string& name) const
    noexcept {
  for (const auto& a : areas_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const BindingSpec* AssemblyPlan::binding_for(const BindingEnd& client) const
    noexcept {
  for (const auto& b : bindings_) {
    if (b.client == client) return &b;
  }
  return nullptr;
}

const ModeDecl* AssemblyPlan::find_mode(const std::string& name) const
    noexcept {
  for (const auto& m : modes_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const ModeDecl* AssemblyPlan::degraded_mode() const noexcept {
  for (const auto& m : modes_) {
    if (m.degraded) return &m;
  }
  return nullptr;
}

bool AssemblyPlan::mode_managed(const std::string& component) const noexcept {
  for (const auto& m : modes_) {
    if (m.find(component) != nullptr) return true;
  }
  return false;
}

const TenantSpec* AssemblyPlan::find_tenant(const std::string& name) const
    noexcept {
  for (const auto& t : tenants_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const TenantSpec* AssemblyPlan::tenant_of(const std::string& component) const
    noexcept {
  for (const auto& t : tenants_) {
    if (t.owns_component(component)) return &t;
  }
  return nullptr;
}

ComponentSpec* AssemblyPlanBuilder::find(const std::string& name) {
  for (auto& c : plan.components_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace rtcf::model
