#include "model/assembly_plan.hpp"

namespace rtcf::model {

const InterfaceDecl* ComponentSpec::find_interface(
    const std::string& n) const noexcept {
  for (const auto& itf : interfaces) {
    if (itf.name == n) return &itf;
  }
  return nullptr;
}

const ComponentSpec* AssemblyPlan::find(const std::string& name) const
    noexcept {
  for (const auto& c : components_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const AreaSpec* AssemblyPlan::find_area(const std::string& name) const
    noexcept {
  for (const auto& a : areas_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const BindingSpec* AssemblyPlan::binding_for(const BindingEnd& client) const
    noexcept {
  for (const auto& b : bindings_) {
    if (b.client == client) return &b;
  }
  return nullptr;
}

const ModeDecl* AssemblyPlan::find_mode(const std::string& name) const
    noexcept {
  for (const auto& m : modes_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const ModeDecl* AssemblyPlan::degraded_mode() const noexcept {
  for (const auto& m : modes_) {
    if (m.degraded) return &m;
  }
  return nullptr;
}

bool AssemblyPlan::mode_managed(const std::string& component) const noexcept {
  for (const auto& m : modes_) {
    if (m.find(component) != nullptr) return true;
  }
  return false;
}

ComponentSpec* AssemblyPlanBuilder::find(const std::string& name) {
  for (auto& c : plan.components_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace rtcf::model
