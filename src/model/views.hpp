// Design views (Fig. 3): the methodology that gradually introduces
// real-time concerns into an architecture.
//
//   1. BusinessView          — functional components, ports, bindings only;
//   2. ThreadManagementView  — creates ThreadDomains and deploys active
//                              components into them;
//   3. MemoryManagementView  — creates MemoryArea composites and deploys
//                              thread domains / passive components / nested
//                              areas into them.
//
// Each view is a restricted facade over the same Architecture, so the type
// system enforces the paper's separation: you cannot create a ThreadDomain
// from the business view or a binding from the memory view. The validator
// (src/validate) is run between stages by DesignFlow, giving the immediate
// feedback loop of Fig. 3.
#pragma once

#include "model/metamodel.hpp"

namespace rtcf::model {

/// Stage 1: functional architecture only.
class BusinessView {
 public:
  explicit BusinessView(Architecture& arch) : arch_(arch) {}

  ActiveComponent& active(std::string name, ActivationKind activation,
                          rtsj::RelativeTime period =
                              rtsj::RelativeTime::zero()) {
    return arch_.add_active(std::move(name), activation, period);
  }
  PassiveComponent& passive(std::string name) {
    return arch_.add_passive(std::move(name));
  }

  /// Declares a provided (server) interface on a component.
  void server_port(Component& c, std::string port, std::string signature) {
    c.add_interface({std::move(port), InterfaceRole::Server,
                     std::move(signature)});
  }
  /// Declares a required (client) interface on a component.
  void client_port(Component& c, std::string port, std::string signature) {
    c.add_interface({std::move(port), InterfaceRole::Client,
                     std::move(signature)});
  }

  /// Functional composition (hierarchy without real-time semantics).
  void compose(Component& parent, Component& child) {
    arch_.add_child(parent, child);
  }

  void bind_sync(const std::string& client_comp, const std::string& client_if,
                 const std::string& server_comp,
                 const std::string& server_if) {
    arch_.add_binding(Binding{{client_comp, client_if},
                              {server_comp, server_if},
                              BindingDesc{Protocol::Synchronous, 0, {}}});
  }
  void bind_async(const std::string& client_comp, const std::string& client_if,
                  const std::string& server_comp, const std::string& server_if,
                  std::size_t buffer_size) {
    arch_.add_binding(Binding{{client_comp, client_if},
                              {server_comp, server_if},
                              BindingDesc{Protocol::Asynchronous, buffer_size,
                                          {}}});
  }

 private:
  Architecture& arch_;
};

/// Stage 2: deploy active components into thread domains.
class ThreadManagementView {
 public:
  explicit ThreadManagementView(Architecture& arch) : arch_(arch) {}

  ThreadDomain& domain(std::string name, DomainType type, int priority) {
    return arch_.add_thread_domain(std::move(name), type, priority);
  }

  /// Deploys an active component into a domain. The RTSJ conformance of the
  /// resulting assembly (uniqueness, NHRT/heap exclusion, ...) is checked
  /// by the validator, not here — the view only records the decision.
  void deploy(ThreadDomain& domain, ActiveComponent& component) {
    arch_.add_child(domain, component);
  }

 private:
  Architecture& arch_;
};

/// Stage 3: deploy components into memory areas.
class MemoryManagementView {
 public:
  explicit MemoryManagementView(Architecture& arch) : arch_(arch) {}

  MemoryAreaComponent& area(std::string name, AreaType type,
                            std::size_t size_bytes,
                            std::string area_name = {}) {
    return arch_.add_memory_area(std::move(name), type, size_bytes,
                                 std::move(area_name));
  }

  /// Deploys a thread domain, passive component, or nested area into an
  /// area. MemoryAreas may nest arbitrarily (RTSJ scoped hierarchy);
  /// ThreadDomains may not — the validator enforces both.
  void deploy(MemoryAreaComponent& area, Component& component) {
    arch_.add_child(area, component);
  }

 private:
  Architecture& arch_;
};

}  // namespace rtcf::model
