// The real-time component metamodel (Fig. 2 of the paper).
//
// A hierarchical component model *with sharing*: every component has a set
// of sub-components (hierarchy) and a set of super-components (sharing).
// Functional building blocks are ActiveComponent (own thread of control;
// periodic or sporadic activation) and PassiveComponent (services).
// Non-functional composites are ThreadDomain — grouping active components
// whose threads share a type and priority — and MemoryArea — grouping
// components allocated in the same RTSJ memory area. A component's set of
// super-components therefore defines both its business role and its
// real-time role, which is what lets the design views (views.hpp) assemble
// real-time concerns independently of the functional architecture.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rtsj/time/time.hpp"

namespace rtcf::model {

class Architecture;

/// Concrete metamodel entity kinds.
enum class ComponentKind { Active, Passive, ThreadDomain, MemoryArea };

/// Activation policy of an active component (the ADL `type` attribute).
enum class ActivationKind { Periodic, Sporadic };

/// Functional interface direction.
enum class InterfaceRole { Client, Server };

/// Binding protocol (the ADL `BindDesc protocol` attribute).
enum class Protocol { Synchronous, Asynchronous };

/// ThreadDomain thread type (the ADL `DomainDesc type` attribute).
enum class DomainType { NoHeapRealtime, Realtime, Regular };

/// MemoryArea type (the ADL `AreaDesc type` attribute).
enum class AreaType { Immortal, Scoped, Heap };

/// Importance of an active component to the assembly's mission (the ADL
/// `criticality` attribute). The overload governor (src/monitor) may shed
/// or rate-limit Low components under sustained contract violation; High
/// components are never degraded. Undeclared components are treated as
/// High — nothing is shed unless the designer opted it in.
enum class Criticality { Low, High };

/// Stochastic timing contract on an active component (the ADL
/// `<TimingContract>` element), checked online by the runtime monitor.
/// Each bound is optional: a zero/neutral value disables that check.
struct TimingContract {
  /// Per-release execution-time budget; exceeding it is a WCET overrun.
  /// Zero disables the check.
  rtsj::RelativeTime wcet_budget{};
  /// Upper bound on the deadline-miss ratio per observation window, in
  /// [0, 1]. 1 disables the check.
  double miss_ratio_bound = 1.0;
  /// Upper bound on the sporadic arrival rate in Hz. 0 disables the check.
  double max_arrival_rate_hz = 0.0;
  /// Releases per observation window for the stochastic bounds.
  std::uint32_t window = 32;

  /// Field-wise equality (contracts are value data; the plan-delta engine
  /// and the wire codec compare them member by member).
  bool operator==(const TimingContract& o) const {
    return wcet_budget == o.wcet_budget &&
           miss_ratio_bound == o.miss_ratio_bound &&
           max_arrival_rate_hz == o.max_arrival_rate_hz && window == o.window;
  }
  /// Negation of operator==.
  bool operator!=(const TimingContract& o) const { return !(*this == o); }
};

/// Per-mode configuration of one component enabled in that mode (the ADL
/// `<Mode><Component>` element). Listing a component in a mode enables it
/// there; overrides default to the component's declared attributes.
struct ModeComponentConfig {
  std::string component;
  /// Release-rate override (period / minimum interarrival) for this mode;
  /// zero keeps the declared rate.
  rtsj::RelativeTime period{};
  /// Timing-contract override for this mode; empty keeps the declared
  /// contract.
  std::optional<TimingContract> contract;

  /// Field-wise equality (mode entries are value data for the wire codec).
  bool operator==(const ModeComponentConfig& o) const {
    return component == o.component && period == o.period &&
           contract == o.contract;
  }
  /// Negation of operator==.
  bool operator!=(const ModeComponentConfig& o) const {
    return !(*this == o);
  }
};

/// A client-port redirection applied on entry to a mode (the ADL
/// `<Mode><Rebind>` element). Leaving the mode restores the binding that
/// the architecture declares for the port.
struct ModeRebind {
  std::string client;
  std::string port;
  std::string server;

  /// Field-wise equality.
  bool operator==(const ModeRebind& o) const {
    return client == o.client && port == o.port && server == o.server;
  }
  /// Negation of operator==.
  bool operator!=(const ModeRebind& o) const { return !(*this == o); }
};

/// An operational mode (the ADL `<Mode>` element): the set of active
/// components enabled while the mode is in force, their per-mode rates and
/// contracts, and the bindings redirected for the mode's duration.
///
/// Components listed in at least one mode are *mode-managed*: a managed
/// component absent from the current mode is quiesced (its releases stop
/// and its membrane lifecycle is stopped). Components never listed are
/// untouched by mode transitions. The validator requires every mode to be
/// independently schedulable and every component whose configuration
/// differs between modes to be declared swappable.
struct ModeDecl {
  std::string name;
  /// Marks the mode the overload governor demotes into under sustained
  /// contract violation (at most one mode may carry the flag).
  bool degraded = false;
  std::vector<ModeComponentConfig> components;
  std::vector<ModeRebind> rebinds;

  const ModeComponentConfig* find(const std::string& component) const noexcept;

  /// Field-wise equality (declaration order of entries is significant).
  bool operator==(const ModeDecl& o) const {
    return name == o.name && degraded == o.degraded &&
           components == o.components && rebinds == o.rebinds;
  }
  /// Negation of operator==.
  bool operator!=(const ModeDecl& o) const { return !(*this == o); }
};

/// Resource envelope of one tenant (the ADL `<Tenant><Budget>` element).
/// The validator's TENANT-BUDGET-BOUNDS rule checks the declared envelope
/// against the tenant's members, and the per-tenant overload governor
/// enforces it at runtime: a tenant that exceeds its envelope is degraded
/// strictly within its own member set.
struct TenantBudget {
  /// CPU budget as a utilization fraction (sum of member cost/period must
  /// fit). Zero means unbudgeted — the tenant may use whatever RTA admits.
  double cpu_utilization = 0.0;
  /// Memory budget in bytes (sum of owned area sizes must fit). Zero means
  /// unbudgeted.
  std::size_t memory_bytes = 0;

  /// Field-wise equality (budgets are value data for the wire codec).
  bool operator==(const TenantBudget& o) const {
    return cpu_utilization == o.cpu_utilization &&
           memory_bytes == o.memory_bytes;
  }
  /// Negation of operator==.
  bool operator!=(const TenantBudget& o) const { return !(*this == o); }
};

/// A capability a tenant offers to other tenants (the ADL
/// `<Tenant><Export>` element): a named route to one server interface of a
/// member component. Cross-tenant bindings are only legal through a
/// matching export/import pair (TENANT-CAPABILITY-ROUTED).
struct CapabilityExport {
  /// Capability name, unique within the exporting tenant.
  std::string capability;
  /// Member component providing the capability.
  std::string component;
  /// Server interface on that component.
  std::string interface;

  /// Field-wise equality.
  bool operator==(const CapabilityExport& o) const {
    return capability == o.capability && component == o.component &&
           interface == o.interface;
  }
  /// Negation of operator==.
  bool operator!=(const CapabilityExport& o) const { return !(*this == o); }
};

/// A capability a tenant consumes from another tenant (the ADL
/// `<Tenant><Import>` element). The named tenant must export a capability
/// of the same name; members of the importing tenant may then bind to the
/// exported interface.
struct CapabilityImport {
  /// Capability name, matching an export of `from_tenant`.
  std::string capability;
  /// Exporting tenant.
  std::string from_tenant;

  /// Field-wise equality.
  bool operator==(const CapabilityImport& o) const {
    return capability == o.capability && from_tenant == o.from_tenant;
  }
  /// Negation of operator==.
  bool operator!=(const CapabilityImport& o) const { return !(*this == o); }
};

/// One tenant of a multi-tenant assembly (the ADL `<Tenant>` element): a
/// named slice of the architecture — member components, memory areas, and
/// thread domains — with a resource budget, a criticality floor, and the
/// capabilities it exports to / imports from other tenants.
///
/// Members are listed by component name; listing a MemoryArea or
/// ThreadDomain pulls every component it encloses into the tenant.
/// Components never listed belong to no tenant (the "operator" slice) and
/// keep the pre-tenancy free-binding semantics among themselves.
struct TenantDecl {
  /// Tenant name (unique within the assembly).
  std::string name;
  /// Declared resource envelope.
  TenantBudget budget;
  /// Criticality floor: members run at at least this criticality for
  /// governor purposes, whatever they individually declare.
  Criticality criticality_floor = Criticality::Low;
  /// Member names (functional components, MemoryAreas, ThreadDomains).
  std::vector<std::string> members;
  /// Capabilities offered to other tenants.
  std::vector<CapabilityExport> exports;
  /// Capabilities consumed from other tenants.
  std::vector<CapabilityImport> imports;
  /// 1-based ADL source line of the `<Tenant>` element (0 when the tenant
  /// was built programmatically). Diagnostic only: excluded from
  /// operator== so it never perturbs plan agreement.
  int adl_line = 0;

  /// True when `component` is listed as a direct member.
  bool has_member(const std::string& component) const noexcept;
  /// The export named `capability`, or nullptr.
  const CapabilityExport* find_export(
      const std::string& capability) const noexcept;
  /// The import named `capability`, or nullptr.
  const CapabilityImport* find_import(
      const std::string& capability) const noexcept;

  /// Field-wise equality over the declaration (adl_line excluded — it is
  /// diagnostic context, not identity).
  bool operator==(const TenantDecl& o) const {
    return name == o.name && budget == o.budget &&
           criticality_floor == o.criticality_floor && members == o.members &&
           exports == o.exports && imports == o.imports;
  }
  /// Negation of operator==.
  bool operator!=(const TenantDecl& o) const { return !(*this == o); }
};

const char* to_string(ComponentKind k) noexcept;
const char* to_string(ActivationKind k) noexcept;
const char* to_string(InterfaceRole r) noexcept;
const char* to_string(Protocol p) noexcept;
const char* to_string(DomainType t) noexcept;
const char* to_string(AreaType t) noexcept;
const char* to_string(Criticality c) noexcept;

/// A functional interface declared on a component.
struct InterfaceDecl {
  std::string name;       ///< Port name, e.g. "iMonitor".
  InterfaceRole role{};   ///< Client (required) or server (provided).
  std::string signature;  ///< Interface type name, e.g. "IMonitor".

  /// Field-wise equality.
  bool operator==(const InterfaceDecl& o) const {
    return name == o.name && role == o.role && signature == o.signature;
  }
  /// Negation of operator==.
  bool operator!=(const InterfaceDecl& o) const { return !(*this == o); }
};

/// Abstract component (metamodel root).
class Component {
 public:
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const noexcept { return name_; }
  ComponentKind kind() const noexcept { return kind_; }
  bool is_functional() const noexcept {
    return kind_ == ComponentKind::Active || kind_ == ComponentKind::Passive;
  }

  const std::vector<Component*>& subs() const noexcept { return subs_; }
  const std::vector<Component*>& supers() const noexcept { return supers_; }

  /// True when `ancestor` is reachable via the super-component relation
  /// (any number of hops; sharing makes this a DAG, not a tree).
  bool has_ancestor(const Component* ancestor) const;

  const std::vector<InterfaceDecl>& interfaces() const noexcept {
    return interfaces_;
  }
  /// Declares a functional interface; name must be unique per component.
  void add_interface(InterfaceDecl decl);
  const InterfaceDecl* find_interface(const std::string& name) const noexcept;

  /// True when the designer allows mode transitions to touch this
  /// component (quiesce it, change its rate or contract, rebind its
  /// ports). The validator rejects modes that reconfigure non-swappable
  /// components — the static part of the assembly is contractually
  /// untouched by runtime reconfiguration.
  bool swappable() const noexcept { return swappable_; }
  void set_swappable(bool swappable) noexcept { swappable_ = swappable; }

 protected:
  Component(std::string name, ComponentKind kind)
      : name_(std::move(name)), kind_(kind) {}

 private:
  friend class Architecture;
  std::string name_;
  ComponentKind kind_;
  bool swappable_ = false;
  std::vector<Component*> subs_;
  std::vector<Component*> supers_;
  std::vector<InterfaceDecl> interfaces_;
};

/// A component with its own thread of control.
class ActiveComponent final : public Component {
 public:
  ActiveComponent(std::string name, ActivationKind activation,
                  rtsj::RelativeTime period = rtsj::RelativeTime::zero())
      : Component(std::move(name), ComponentKind::Active),
        activation_(activation),
        period_(period) {}

  ActivationKind activation() const noexcept { return activation_; }
  /// Release period (periodic) or minimum interarrival time (sporadic);
  /// zero when unconstrained.
  rtsj::RelativeTime period() const noexcept { return period_; }
  /// Name of the user-implemented content class (ADL `content class`).
  const std::string& content_class() const noexcept { return content_class_; }
  void set_content_class(std::string cls) { content_class_ = std::move(cls); }
  /// Modeled per-release execution cost, used by the simulator substrate.
  rtsj::RelativeTime cost() const noexcept { return cost_; }
  void set_cost(rtsj::RelativeTime cost) noexcept { cost_ = cost; }
  /// Declared criticality; empty when the designer did not classify the
  /// component (the monitor then defaults to High).
  const std::optional<Criticality>& criticality() const noexcept {
    return criticality_;
  }
  void set_criticality(Criticality c) noexcept { criticality_ = c; }
  /// Stochastic timing contract; empty means unmonitored.
  const std::optional<TimingContract>& timing_contract() const noexcept {
    return contract_;
  }
  void set_timing_contract(TimingContract contract) noexcept {
    contract_ = contract;
  }

 private:
  ActivationKind activation_;
  rtsj::RelativeTime period_;
  rtsj::RelativeTime cost_{};
  std::optional<Criticality> criticality_;
  std::optional<TimingContract> contract_;
  std::string content_class_;
};

/// A service component without its own thread of control.
class PassiveComponent final : public Component {
 public:
  explicit PassiveComponent(std::string name)
      : Component(std::move(name), ComponentKind::Passive) {}

  const std::string& content_class() const noexcept { return content_class_; }
  void set_content_class(std::string cls) { content_class_ = std::move(cls); }

 private:
  std::string content_class_;
};

/// Non-functional composite grouping active components whose threads share
/// a type and priority. Exclusively composite: it has no functional
/// behaviour of its own (§3.1).
class ThreadDomain final : public Component {
 public:
  ThreadDomain(std::string name, DomainType type, int priority)
      : Component(std::move(name), ComponentKind::ThreadDomain),
        type_(type),
        priority_(priority) {}

  DomainType type() const noexcept { return type_; }
  int priority() const noexcept { return priority_; }

 private:
  DomainType type_;
  int priority_;
};

/// Non-functional composite grouping components allocated in one RTSJ
/// memory area. MemoryAreas may nest (RTSJ scoped-memory hierarchy);
/// ThreadDomains may not.
class MemoryAreaComponent final : public Component {
 public:
  MemoryAreaComponent(std::string name, AreaType type, std::size_t size_bytes,
                      std::string area_name = {})
      : Component(std::move(name), ComponentKind::MemoryArea),
        type_(type),
        size_bytes_(size_bytes),
        area_name_(std::move(area_name)) {}

  AreaType type() const noexcept { return type_; }
  /// Declared byte size (immortal/scoped); 0 for heap.
  std::size_t size_bytes() const noexcept { return size_bytes_; }
  /// RTSJ-level area name (ADL `AreaDesc name`), may differ from the
  /// component name.
  const std::string& area_name() const noexcept { return area_name_; }

 private:
  AreaType type_;
  std::size_t size_bytes_;
  std::string area_name_;
};

/// One endpoint of a binding: (component name, interface name).
struct BindingEnd {
  std::string component;
  std::string interface;
  bool operator==(const BindingEnd& o) const {
    return component == o.component && interface == o.interface;
  }
  bool operator!=(const BindingEnd& o) const { return !(*this == o); }
};

/// Binding attributes (ADL `BindDesc`).
struct BindingDesc {
  Protocol protocol = Protocol::Synchronous;
  /// Message buffer capacity for asynchronous bindings.
  std::size_t buffer_size = 0;
  /// Cross-scope communication pattern selected at design time; empty lets
  /// the planner choose (see membrane/patterns.hpp for the catalog).
  std::string pattern;
};

/// A client->server connection between functional interfaces.
struct Binding {
  BindingEnd client;
  BindingEnd server;
  BindingDesc desc;
};

/// A complete component assembly: owns all components, records hierarchy,
/// sharing, and bindings. This is the "RT System Architecture" of Fig. 3/4
/// once the three design views have been merged.
class Architecture {
 public:
  Architecture() = default;
  Architecture(Architecture&&) noexcept = default;
  Architecture& operator=(Architecture&&) noexcept = default;

  // ---- construction -----------------------------------------------------
  ActiveComponent& add_active(std::string name, ActivationKind activation,
                              rtsj::RelativeTime period =
                                  rtsj::RelativeTime::zero());
  PassiveComponent& add_passive(std::string name);
  ThreadDomain& add_thread_domain(std::string name, DomainType type,
                                  int priority);
  MemoryAreaComponent& add_memory_area(std::string name, AreaType type,
                                       std::size_t size_bytes,
                                       std::string area_name = {});

  /// Records `child` as a sub-component of `parent` (and `parent` as a
  /// super of `child`). Sharing = calling this with several parents.
  void add_child(Component& parent, Component& child);

  void add_binding(Binding binding);

  /// Declares an operational mode. Declaration order is significant: the
  /// first mode is the initial mode of a launched assembly.
  ModeDecl& add_mode(ModeDecl mode);

  /// Declares a tenant. Tenant names must be unique; membership rules
  /// (exclusivity, area/domain scoping) are the validator's TENANT-*
  /// family, not construction-time checks.
  TenantDecl& add_tenant(TenantDecl tenant);

  // ---- queries ----------------------------------------------------------
  Component* find(const std::string& name) const noexcept;
  /// find() + kind check; throws std::invalid_argument on mismatch.
  template <typename T>
  T* find_as(const std::string& name) const {
    auto* c = find(name);
    return dynamic_cast<T*>(c);
  }

  const std::vector<std::unique_ptr<Component>>& components() const noexcept {
    return components_;
  }
  const std::vector<Binding>& bindings() const noexcept { return bindings_; }
  std::vector<Binding>& mutable_bindings() noexcept { return bindings_; }

  /// All components of a given concrete type, in registration order.
  template <typename T>
  std::vector<T*> all_of() const {
    std::vector<T*> out;
    for (const auto& c : components_) {
      if (auto* t = dynamic_cast<T*>(c.get())) out.push_back(t);
    }
    return out;
  }

  /// The unique ThreadDomain enclosing `c` (direct or transitive super), or
  /// nullptr. Multiple enclosing domains are an architecture error that the
  /// validator reports; this query returns the first found.
  ThreadDomain* thread_domain_of(const Component& c) const;
  /// All ThreadDomains enclosing `c` (for validator diagnostics).
  std::vector<ThreadDomain*> thread_domains_of(const Component& c) const;
  /// The innermost MemoryArea enclosing `c`, or nullptr.
  MemoryAreaComponent* memory_area_of(const Component& c) const;
  /// All MemoryAreas enclosing `c`, innermost-first.
  std::vector<MemoryAreaComponent*> memory_areas_of(const Component& c) const;

  /// Components with no super-component (the roots of the DAG).
  std::vector<Component*> roots() const;

  const std::vector<ModeDecl>& modes() const noexcept { return modes_; }
  const ModeDecl* find_mode(const std::string& name) const noexcept;
  /// The mode flagged `degraded`, or nullptr. Multiple degraded modes are
  /// an architecture error the validator reports; this returns the first.
  const ModeDecl* degraded_mode() const noexcept;
  /// True when `component` appears in at least one mode's component set —
  /// i.e. mode transitions may quiesce or reconfigure it.
  bool mode_managed(const std::string& component) const noexcept;

  /// Declared tenants, in declaration order.
  const std::vector<TenantDecl>& tenants() const noexcept { return tenants_; }
  /// The tenant named `name`, or nullptr.
  const TenantDecl* find_tenant(const std::string& name) const noexcept;
  /// The tenant owning `component` — directly, or through an enclosing
  /// MemoryArea/ThreadDomain member — or nullptr for tenantless components.
  const TenantDecl* tenant_of(const std::string& component) const noexcept;

 private:
  template <typename T, typename... Args>
  T& emplace(Args&&... args);

  std::vector<std::unique_ptr<Component>> components_;
  std::vector<Binding> bindings_;
  std::vector<ModeDecl> modes_;
  std::vector<TenantDecl> tenants_;
};

}  // namespace rtcf::model
