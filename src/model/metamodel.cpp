#include "model/metamodel.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rtcf::model {

const char* to_string(ComponentKind k) noexcept {
  switch (k) {
    case ComponentKind::Active:
      return "ActiveComponent";
    case ComponentKind::Passive:
      return "PassiveComponent";
    case ComponentKind::ThreadDomain:
      return "ThreadDomain";
    case ComponentKind::MemoryArea:
      return "MemoryArea";
  }
  return "?";
}

const char* to_string(ActivationKind k) noexcept {
  return k == ActivationKind::Periodic ? "periodic" : "sporadic";
}

const char* to_string(InterfaceRole r) noexcept {
  return r == InterfaceRole::Client ? "client" : "server";
}

const char* to_string(Protocol p) noexcept {
  return p == Protocol::Synchronous ? "synchronous" : "asynchronous";
}

const char* to_string(DomainType t) noexcept {
  switch (t) {
    case DomainType::NoHeapRealtime:
      return "NHRT";
    case DomainType::Realtime:
      return "RT";
    case DomainType::Regular:
      return "Regular";
  }
  return "?";
}

const char* to_string(AreaType t) noexcept {
  switch (t) {
    case AreaType::Immortal:
      return "immortal";
    case AreaType::Scoped:
      return "scope";
    case AreaType::Heap:
      return "heap";
  }
  return "?";
}

const char* to_string(Criticality c) noexcept {
  switch (c) {
    case Criticality::Low:
      return "low";
    case Criticality::High:
      return "high";
  }
  return "?";
}

const ModeComponentConfig* ModeDecl::find(
    const std::string& component) const noexcept {
  for (const auto& cfg : components) {
    if (cfg.component == component) return &cfg;
  }
  return nullptr;
}

bool TenantDecl::has_member(const std::string& component) const noexcept {
  return std::find(members.begin(), members.end(), component) != members.end();
}

const CapabilityExport* TenantDecl::find_export(
    const std::string& capability) const noexcept {
  for (const auto& e : exports) {
    if (e.capability == capability) return &e;
  }
  return nullptr;
}

const CapabilityImport* TenantDecl::find_import(
    const std::string& capability) const noexcept {
  for (const auto& i : imports) {
    if (i.capability == capability) return &i;
  }
  return nullptr;
}

bool Component::has_ancestor(const Component* ancestor) const {
  for (const Component* super : supers_) {
    if (super == ancestor || super->has_ancestor(ancestor)) return true;
  }
  return false;
}

void Component::add_interface(InterfaceDecl decl) {
  RTCF_REQUIRE(find_interface(decl.name) == nullptr,
               "duplicate interface '" + decl.name + "' on component '" +
                   name_ + "'");
  interfaces_.push_back(std::move(decl));
}

const InterfaceDecl* Component::find_interface(
    const std::string& name) const noexcept {
  for (const auto& i : interfaces_) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

template <typename T, typename... Args>
T& Architecture::emplace(Args&&... args) {
  auto owned = std::make_unique<T>(std::forward<Args>(args)...);
  RTCF_REQUIRE(find(owned->name()) == nullptr,
               "duplicate component name '" + owned->name() + "'");
  T& ref = *owned;
  components_.push_back(std::move(owned));
  return ref;
}

ActiveComponent& Architecture::add_active(std::string name,
                                          ActivationKind activation,
                                          rtsj::RelativeTime period) {
  return emplace<ActiveComponent>(std::move(name), activation, period);
}

PassiveComponent& Architecture::add_passive(std::string name) {
  return emplace<PassiveComponent>(std::move(name));
}

ThreadDomain& Architecture::add_thread_domain(std::string name,
                                              DomainType type, int priority) {
  return emplace<ThreadDomain>(std::move(name), type, priority);
}

MemoryAreaComponent& Architecture::add_memory_area(std::string name,
                                                   AreaType type,
                                                   std::size_t size_bytes,
                                                   std::string area_name) {
  if (area_name.empty()) area_name = name;
  return emplace<MemoryAreaComponent>(std::move(name), type, size_bytes,
                                      std::move(area_name));
}

void Architecture::add_child(Component& parent, Component& child) {
  RTCF_REQUIRE(&parent != &child, "component cannot contain itself");
  RTCF_REQUIRE(!parent.has_ancestor(&child),
               "containment cycle between '" + parent.name() + "' and '" +
                   child.name() + "'");
  if (std::find(parent.subs_.begin(), parent.subs_.end(), &child) !=
      parent.subs_.end()) {
    return;  // Idempotent.
  }
  parent.subs_.push_back(&child);
  child.supers_.push_back(&parent);
}

void Architecture::add_binding(Binding binding) {
  bindings_.push_back(std::move(binding));
}

ModeDecl& Architecture::add_mode(ModeDecl mode) {
  RTCF_REQUIRE(!mode.name.empty(), "mode needs a name");
  RTCF_REQUIRE(find_mode(mode.name) == nullptr,
               "duplicate mode name '" + mode.name + "'");
  modes_.push_back(std::move(mode));
  return modes_.back();
}

TenantDecl& Architecture::add_tenant(TenantDecl tenant) {
  RTCF_REQUIRE(!tenant.name.empty(), "tenant needs a name");
  RTCF_REQUIRE(find_tenant(tenant.name) == nullptr,
               "duplicate tenant name '" + tenant.name + "'");
  tenants_.push_back(std::move(tenant));
  return tenants_.back();
}

const TenantDecl* Architecture::find_tenant(
    const std::string& name) const noexcept {
  for (const auto& tenant : tenants_) {
    if (tenant.name == name) return &tenant;
  }
  return nullptr;
}

const TenantDecl* Architecture::tenant_of(
    const std::string& component) const noexcept {
  for (const auto& tenant : tenants_) {
    if (tenant.has_member(component)) return &tenant;
  }
  // Indirect membership: a component enclosed by a member MemoryArea or
  // ThreadDomain belongs to that composite's tenant.
  const Component* c = find(component);
  if (c == nullptr) return nullptr;
  for (const auto& tenant : tenants_) {
    for (const auto& member : tenant.members) {
      const Component* composite = find(member);
      if (composite == nullptr || composite->is_functional()) continue;
      if (c->has_ancestor(composite)) return &tenant;
    }
  }
  return nullptr;
}

const ModeDecl* Architecture::find_mode(
    const std::string& name) const noexcept {
  for (const auto& mode : modes_) {
    if (mode.name == name) return &mode;
  }
  return nullptr;
}

const ModeDecl* Architecture::degraded_mode() const noexcept {
  for (const auto& mode : modes_) {
    if (mode.degraded) return &mode;
  }
  return nullptr;
}

bool Architecture::mode_managed(const std::string& component) const noexcept {
  for (const auto& mode : modes_) {
    if (mode.find(component) != nullptr) return true;
  }
  return false;
}

Component* Architecture::find(const std::string& name) const noexcept {
  for (const auto& c : components_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

ThreadDomain* Architecture::thread_domain_of(const Component& c) const {
  auto domains = thread_domains_of(c);
  return domains.empty() ? nullptr : domains.front();
}

std::vector<ThreadDomain*> Architecture::thread_domains_of(
    const Component& c) const {
  std::vector<ThreadDomain*> out;
  for (const auto& owned : components_) {
    auto* domain = dynamic_cast<ThreadDomain*>(owned.get());
    if (domain == nullptr) continue;
    if (std::find(domain->subs().begin(), domain->subs().end(), &c) !=
            domain->subs().end() ||
        c.has_ancestor(domain)) {
      out.push_back(domain);
    }
  }
  return out;
}

MemoryAreaComponent* Architecture::memory_area_of(const Component& c) const {
  // Walk supers breadth-first so the *innermost* enclosing area wins.
  std::vector<const Component*> frontier{&c};
  while (!frontier.empty()) {
    std::vector<const Component*> next;
    for (const auto* node : frontier) {
      for (Component* super : node->supers()) {
        if (auto* area = dynamic_cast<MemoryAreaComponent*>(super)) {
          return area;
        }
        next.push_back(super);
      }
    }
    frontier = std::move(next);
  }
  return nullptr;
}

std::vector<MemoryAreaComponent*> Architecture::memory_areas_of(
    const Component& c) const {
  std::vector<MemoryAreaComponent*> out;
  std::vector<const Component*> frontier{&c};
  while (!frontier.empty()) {
    std::vector<const Component*> next;
    for (const auto* node : frontier) {
      for (Component* super : node->supers()) {
        if (auto* area = dynamic_cast<MemoryAreaComponent*>(super)) {
          if (std::find(out.begin(), out.end(), area) == out.end()) {
            out.push_back(area);
          }
          next.push_back(super);
        } else {
          next.push_back(super);
        }
      }
    }
    frontier = std::move(next);
  }
  return out;
}

std::vector<Component*> Architecture::roots() const {
  std::vector<Component*> out;
  for (const auto& c : components_) {
    if (c->supers().empty()) out.push_back(c.get());
  }
  return out;
}

}  // namespace rtcf::model
