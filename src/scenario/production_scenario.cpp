#include "scenario/production_scenario.hpp"

#include "model/views.hpp"
#include "runtime/content_registry.hpp"
#include "soleil/application.hpp"

namespace rtcf::scenario {

using comm::Message;

void ProductionLineImpl::on_release() {
  Measurement m;
  m.seq = seq_;
  m.value = measurement_value(seq_);
  ++seq_;
  Message msg;
  msg.type_id = kMeasurementType;
  msg.sequence = m.seq;
  msg.store(m);
  port(0).send(msg);  // iMonitor
}

void MonitoringSystemImpl::on_message(const Message& message) {
  const auto m = message.load<Measurement>();
  ++processed_;
  const bool anomaly = m.value > kAnomalyThreshold;
  if (anomaly) {
    ++anomalies_;
    Alarm alarm{m.value, m.seq};
    Message request;
    request.type_id = kAlarmType;
    request.sequence = m.seq;
    request.store(alarm);
    (void)port(0).call(request);  // iConsole, synchronous
  }
  AuditRecord record{m.value, m.seq, anomaly};
  Message audit;
  audit.type_id = kAuditType;
  audit.sequence = m.seq;
  audit.store(record);
  port(1).send(audit);  // iAudit
}

Message ConsoleImpl::on_invoke(const Message& request) {
  const auto alarm = request.load<Alarm>();
  ++reports_;
  checksum_ += alarm.value;
  Message ack;
  ack.type_id = kAckType;
  ack.sequence = request.sequence;
  return ack;
}

void AuditLogImpl::on_message(const Message& message) {
  const auto record = message.load<AuditRecord>();
  ++records_;
  checksum_ += record.value;
}

RTCF_REGISTER_CONTENT(ProductionLineImpl)
RTCF_REGISTER_CONTENT(MonitoringSystemImpl)
RTCF_REGISTER_CONTENT(ConsoleImpl)
RTCF_REGISTER_CONTENT(AuditLogImpl)

model::Architecture make_production_architecture() {
  using namespace model;
  Architecture arch;

  // 1. Business view: functional components, ports, bindings.
  BusinessView business(arch);
  auto& pl = business.active("ProductionLine", ActivationKind::Periodic,
                             rtsj::RelativeTime::milliseconds(10));
  pl.set_content_class("ProductionLineImpl");
  pl.set_cost(rtsj::RelativeTime::microseconds(200));
  pl.set_criticality(Criticality::High);
  // Stochastic contract for the runtime monitor: the bounds are generous
  // relative to the 10 ms period (a healthy host runs a release in
  // microseconds), so violations mean genuine overload, not noise.
  TimingContract pl_contract;
  pl_contract.wcet_budget = rtsj::RelativeTime::milliseconds(8);
  pl_contract.miss_ratio_bound = 0.5;
  pl_contract.window = 16;
  pl.set_timing_contract(pl_contract);
  business.client_port(pl, "iMonitor", "IMonitor");

  // Fig. 4 declares MonitoringSystem simply as sporadic (no minimum
  // interarrival time): its releases are driven by message arrivals.
  auto& ms = business.active("MonitoringSystem", ActivationKind::Sporadic,
                             rtsj::RelativeTime::zero());
  ms.set_content_class("MonitoringSystemImpl");
  ms.set_cost(rtsj::RelativeTime::microseconds(150));
  ms.set_criticality(Criticality::High);
  business.server_port(ms, "iMonitor", "IMonitor");
  business.client_port(ms, "iConsole", "IConsole");
  business.client_port(ms, "iAudit", "IAudit");

  auto& console = business.passive("Console");
  console.set_content_class("ConsoleImpl");
  business.server_port(console, "iConsole", "IConsole");

  // The audit trail is best-effort: the one component the overload
  // governor may shed to protect the NHRT pipeline.
  auto& audit = business.active("AuditLog", ActivationKind::Sporadic,
                                rtsj::RelativeTime::zero());
  audit.set_content_class("AuditLogImpl");
  audit.set_cost(rtsj::RelativeTime::microseconds(300));
  audit.set_criticality(Criticality::Low);
  business.server_port(audit, "iAudit", "IAudit");

  business.bind_async("ProductionLine", "iMonitor", "MonitoringSystem",
                      "iMonitor", 10);
  business.bind_sync("MonitoringSystem", "iConsole", "Console", "iConsole");
  business.bind_async("MonitoringSystem", "iAudit", "AuditLog", "iAudit", 10);

  // 2. Thread management view: NHRT1/NHRT2 for the hard real-time pair,
  //    a regular domain for the audit trail.
  ThreadManagementView threads(arch);
  auto& nhrt1 = threads.domain("NHRT1", DomainType::NoHeapRealtime, 30);
  auto& nhrt2 = threads.domain("NHRT2", DomainType::NoHeapRealtime, 25);
  auto& reg1 = threads.domain("reg1", DomainType::Regular, 5);
  threads.deploy(nhrt1, pl);
  threads.deploy(nhrt2, ms);
  threads.deploy(reg1, audit);

  // 3. Memory management view: Imm1 (600 KB immortal) holds both NHRT
  //    domains, S1 is the console's 28 KB scope, H1 is the heap.
  MemoryManagementView memory(arch);
  auto& imm1 = memory.area("Imm1", AreaType::Immortal, 600 * 1024);
  auto& s1 = memory.area("S1", AreaType::Scoped, 28 * 1024, "cscope");
  auto& h1 = memory.area("H1", AreaType::Heap, 0);
  memory.deploy(imm1, nhrt1);
  memory.deploy(imm1, nhrt2);
  memory.deploy(s1, console);
  memory.deploy(h1, reg1);

  return arch;
}

model::Architecture make_moded_production_architecture() {
  using namespace model;
  Architecture arch = make_production_architecture();

  // Standby console: same content class, own instance, immortal memory so
  // the NHRT monitoring system may call it synchronously.
  auto& standby = arch.add_passive("StandbyConsole");
  standby.set_content_class("ConsoleImpl");
  standby.add_interface(
      {"iConsole", InterfaceRole::Server, "IConsole"});
  arch.add_child(*arch.find("Imm1"), standby);

  arch.find("ProductionLine")->set_swappable(true);
  arch.find("MonitoringSystem")->set_swappable(true);

  ModeDecl normal;
  normal.name = "Normal";
  normal.components.push_back({"ProductionLine", {}, {}});
  normal.components.push_back({"MonitoringSystem", {}, {}});
  normal.components.push_back({"AuditLog", {}, {}});
  arch.add_mode(std::move(normal));

  ModeDecl degraded;
  degraded.name = "Degraded";
  degraded.degraded = true;
  ModeComponentConfig slow_pl;
  slow_pl.component = "ProductionLine";
  slow_pl.period = rtsj::RelativeTime::milliseconds(40);
  TimingContract relaxed;
  relaxed.wcet_budget = rtsj::RelativeTime::milliseconds(32);
  relaxed.miss_ratio_bound = 0.9;
  relaxed.window = 8;
  slow_pl.contract = relaxed;
  degraded.components.push_back(std::move(slow_pl));
  degraded.components.push_back({"MonitoringSystem", {}, {}});
  degraded.components.push_back({"AuditLog", {}, {}});
  degraded.rebinds.push_back(
      {"MonitoringSystem", "iConsole", "StandbyConsole"});
  arch.add_mode(std::move(degraded));

  ModeDecl maintenance;
  maintenance.name = "Maintenance";
  maintenance.components.push_back({"MonitoringSystem", {}, {}});
  maintenance.components.push_back({"AuditLog", {}, {}});
  arch.add_mode(std::move(maintenance));

  return arch;
}

const char* production_adl() {
  return R"(<Architecture>
  <!-- Functional components -->
  <ActiveComponent name="ProductionLine" type="periodic" periodicity="10ms"
                   cost="200us" criticality="high">
    <interface name="iMonitor" role="client" signature="IMonitor"/>
    <content class="ProductionLineImpl"/>
    <TimingContract wcet="8ms" missRatioBound="0.5" window="16"/>
  </ActiveComponent>
  <ActiveComponent name="MonitoringSystem" type="sporadic" cost="150us"
                   criticality="high">
    <interface name="iMonitor" role="server" signature="IMonitor"/>
    <interface name="iConsole" role="client" signature="IConsole"/>
    <interface name="iAudit" role="client" signature="IAudit"/>
    <content class="MonitoringSystemImpl"/>
  </ActiveComponent>
  <PassiveComponent name="Console">
    <interface name="iConsole" role="server" signature="IConsole"/>
    <content class="ConsoleImpl"/>
  </PassiveComponent>
  <ActiveComponent name="AuditLog" type="sporadic" cost="300us"
                   criticality="low">
    <interface name="iAudit" role="server" signature="IAudit"/>
    <content class="AuditLogImpl"/>
  </ActiveComponent>
  <!-- Bindings -->
  <Binding>
    <client cname="ProductionLine" iname="iMonitor"/>
    <server cname="MonitoringSystem" iname="iMonitor"/>
    <BindDesc protocol="asynchronous" bufferSize="10"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iConsole"/>
    <server cname="Console" iname="iConsole"/>
    <BindDesc protocol="synchronous"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iAudit"/>
    <server cname="AuditLog" iname="iAudit"/>
    <BindDesc protocol="asynchronous" bufferSize="10"/>
  </Binding>
  <!-- Non-functional components -->
  <MemoryArea name="Imm1">
    <ThreadDomain name="NHRT1">
      <ActiveComp name="ProductionLine"/>
      <DomainDesc type="NHRT" priority="30"/>
    </ThreadDomain>
    <ThreadDomain name="NHRT2">
      <ActiveComp name="MonitoringSystem"/>
      <DomainDesc type="NHRT" priority="25"/>
    </ThreadDomain>
    <AreaDesc type="immortal" size="600KB"/>
  </MemoryArea>
  <MemoryArea name="S1">
    <PassiveComp name="Console"/>
    <AreaDesc type="scope" name="cscope" size="28KB"/>
  </MemoryArea>
  <MemoryArea name="H1">
    <ThreadDomain name="reg1">
      <ActiveComp name="AuditLog"/>
      <DomainDesc type="Regular" priority="5"/>
    </ThreadDomain>
    <AreaDesc type="heap"/>
  </MemoryArea>
</Architecture>
)";
}

ScenarioCounters collect_counters(const soleil::Application& app) {
  ScenarioCounters c;
  const auto* pl = dynamic_cast<const ProductionLineImpl*>(
      app.content("ProductionLine"));
  const auto* ms = dynamic_cast<const MonitoringSystemImpl*>(
      app.content("MonitoringSystem"));
  const auto* console =
      dynamic_cast<const ConsoleImpl*>(app.content("Console"));
  const auto* audit =
      dynamic_cast<const AuditLogImpl*>(app.content("AuditLog"));
  if (pl != nullptr) c.produced = pl->produced();
  if (ms != nullptr) {
    c.processed = ms->processed();
    c.anomalies = ms->anomalies();
  }
  if (console != nullptr) {
    c.console_reports = console->reports();
    c.console_checksum = console->checksum();
  }
  if (audit != nullptr) {
    c.audit_records = audit->records();
    c.audit_checksum = audit->checksum();
  }
  return c;
}

}  // namespace rtcf::scenario
