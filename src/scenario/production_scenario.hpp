// The paper's motivation example (§2.2, Fig. 1/4): a factory production
// line monitored under hard real-time constraints.
//
//   ProductionLine   periodic 10 ms, NHRT prio 30, immortal memory
//     --async(10)--> MonitoringSystem   sporadic, NHRT prio 25, immortal
//                      --sync--> Console    passive, 28 KB scope
//                      --async(10)--> AuditLog  sporadic, regular thread, heap
//
// One *iteration* (the unit Fig. 7 measures) = ProductionLine produces a
// measurement -> MonitoringSystem evaluates it -> possibly reports an
// anomaly to the Console synchronously -> always sends an audit record ->
// AuditLog consumes it.
//
// The same content classes drive all three generation modes; the OO
// baseline (src/baseline) re-implements the orchestration by hand but
// shares the payload types and business computations defined here, so the
// four variants differ only in infrastructure.
#pragma once

#include <cstdint>

#include "comm/content.hpp"
#include "model/metamodel.hpp"

namespace rtcf::scenario {

// ---- payloads ------------------------------------------------------------

struct Measurement {
  double value = 0.0;
  std::uint64_t seq = 0;
};

struct Alarm {
  double value = 0.0;
  std::uint64_t seq = 0;
};

struct AuditRecord {
  double value = 0.0;
  std::uint64_t seq = 0;
  bool anomaly = false;
};

inline constexpr std::uint32_t kMeasurementType = 1;
inline constexpr std::uint32_t kAlarmType = 2;
inline constexpr std::uint32_t kAuditType = 3;
inline constexpr std::uint32_t kAckType = 4;

/// Measurements above this value are anomalies (~5 % of the stream).
inline constexpr double kAnomalyThreshold = 0.95;

/// Deterministic pseudo-measurement: the fractional part of seq * phi is
/// uniformly distributed, so anomaly episodes are reproducible across all
/// variants and runs.
inline double measurement_value(std::uint64_t seq) noexcept {
  const double x = static_cast<double>(seq) * 0.6180339887498949;
  return x - static_cast<std::uint64_t>(x);
}

// ---- content classes (framework variants) ---------------------------------

/// Periodic producer: one measurement per release through port "iMonitor".
class ProductionLineImpl final : public comm::Content {
 public:
  void on_release() override;
  std::uint64_t produced() const noexcept { return seq_; }

 private:
  std::uint64_t seq_ = 0;
};

/// Sporadic evaluator: threshold check, synchronous anomaly report through
/// "iConsole", audit record through "iAudit".
class MonitoringSystemImpl final : public comm::Content {
 public:
  void on_message(const comm::Message& message) override;
  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t anomalies() const noexcept { return anomalies_; }

 private:
  std::uint64_t processed_ = 0;
  std::uint64_t anomalies_ = 0;
};

/// Passive worker console: acknowledges anomaly reports.
class ConsoleImpl final : public comm::Content {
 public:
  comm::Message on_invoke(const comm::Message& request) override;
  std::uint64_t reports() const noexcept { return reports_; }
  double checksum() const noexcept { return checksum_; }

 private:
  std::uint64_t reports_ = 0;
  double checksum_ = 0.0;
};

/// Regular-thread audit log: accumulates every record.
class AuditLogImpl final : public comm::Content {
 public:
  void on_message(const comm::Message& message) override;
  std::uint64_t records() const noexcept { return records_; }
  double checksum() const noexcept { return checksum_; }

 private:
  std::uint64_t records_ = 0;
  double checksum_ = 0.0;
};

// ---- architecture ---------------------------------------------------------

/// Builds the Fig. 4 architecture programmatically (business view ->
/// thread view -> memory view, as the design methodology prescribes).
model::Architecture make_production_architecture();

/// The same architecture as ADL text (the XML of Fig. 4).
const char* production_adl();

/// Fig. 4 extended with operational modes (src/reconfig) and a standby
/// console in immortal memory as a hot-swap target:
///
///   Normal      everything at declared rates, primary console;
///   Degraded    ProductionLine slowed to 40 ms with a relaxed contract,
///               anomaly reports redirected to the standby console — the
///               overload governor's demotion target (degraded="true");
///   Maintenance the production source quiesced; the monitoring pipeline
///               stays up to drain whatever is still in flight.
///
/// ProductionLine and MonitoringSystem are declared swappable (their
/// configuration differs between modes); the audit trail is identical in
/// every mode and stays non-swappable.
model::Architecture make_moded_production_architecture();

/// Aggregated functional counters, for asserting that every variant
/// computes exactly the same thing.
struct ScenarioCounters {
  std::uint64_t produced = 0;
  std::uint64_t processed = 0;
  std::uint64_t anomalies = 0;
  std::uint64_t console_reports = 0;
  std::uint64_t audit_records = 0;
  double console_checksum = 0.0;
  double audit_checksum = 0.0;

  bool operator==(const ScenarioCounters& o) const {
    return produced == o.produced && processed == o.processed &&
           anomalies == o.anomalies && console_reports == o.console_reports &&
           audit_records == o.audit_records &&
           console_checksum == o.console_checksum &&
           audit_checksum == o.audit_checksum;
  }
  bool operator!=(const ScenarioCounters& o) const { return !(*this == o); }
};

}  // namespace rtcf::scenario

namespace rtcf::soleil {
class Application;
}

namespace rtcf::scenario {

/// Reads the counters out of a framework-assembled application (any mode).
ScenarioCounters collect_counters(const soleil::Application& app);

}  // namespace rtcf::scenario
