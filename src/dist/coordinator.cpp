#include "dist/coordinator.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "dist/plan_codec.hpp"
#include "dist/slice.hpp"
#include "reconfig/plan_delta.hpp"
#include "soleil/plan.hpp"
#include "validate/validator.hpp"

namespace rtcf::dist {

using model::AssemblyPlan;
using validate::NodeMap;
using validate::Severity;

ReconfigCoordinator::ReconfigCoordinator(NodeMap map)
    : ReconfigCoordinator(std::move(map), Options()) {}

ReconfigCoordinator::ReconfigCoordinator(NodeMap map, Options options)
    : options_(std::move(options)) {
  view_.map = std::move(map);
}

void ReconfigCoordinator::attach(const std::string& node,
                                 std::shared_ptr<comm::Channel> channel,
                                 const model::Architecture& global) {
  if (!view_.map.has_node(node)) {
    throw std::invalid_argument("attach: undeclared node '" + node + "'");
  }
  Peer peer;
  peer.channel = std::move(channel);
  peer.snapshot =
      soleil::snapshot_assembly(slice_architecture(global, view_.map, node),
                                /*partitions=*/1);
  peers_[node] = std::move(peer);
}

void ReconfigCoordinator::stage_candidate(
    const std::string& node, std::shared_ptr<comm::Channel> channel) {
  candidates_[node] = std::move(channel);
}

void ReconfigCoordinator::resync(const std::string& node,
                                 std::shared_ptr<comm::Channel> channel,
                                 model::AssemblyPlan snapshot,
                                 std::uint64_t resync_epoch) {
  if (!view_.map.has_node(node)) {
    throw std::invalid_argument("resync: undeclared node '" + node + "'");
  }
  Peer peer;
  peer.channel = std::move(channel);
  peer.snapshot = std::move(snapshot);
  peer.epoch = resync_epoch;
  peers_[node] = std::move(peer);
}

void ReconfigCoordinator::attach_standby(
    std::shared_ptr<comm::Channel> channel) {
  standby_ = std::move(channel);
}

const AssemblyPlan& ReconfigCoordinator::node_snapshot(
    const std::string& node) const {
  auto it = peers_.find(node);
  if (it == peers_.end()) {
    throw std::invalid_argument("node_snapshot: unattached node '" + node +
                                "'");
  }
  return it->second.snapshot;
}

bool ReconfigCoordinator::await_reply(const std::string& node,
                                      std::uint64_t txn,
                                      NodeReplyPayload& payload,
                                      std::uint16_t& type,
                                      rtsj::AbsoluteTime deadline) {
  Peer& peer = peers_.at(node);
  auto& clock = rtsj::SteadyClock::instance();
  for (;;) {
    const rtsj::AbsoluteTime now = clock.now();
    if (now >= deadline) return false;
    comm::Frame frame;
    if (!peer.channel->receive(frame, deadline - now)) return false;
    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::DemoteRequest:
        try {
          demote_queue_.push_back(parse_demote(frame));
        } catch (const WireError&) {
        }
        continue;
      case FrameType::Join:
        try {
          const JoinPayload join = parse_join(frame);
          membership_queue_.push_back(
              {true, join.node, join.resync_epoch, std::string()});
        } catch (const WireError&) {
        }
        continue;
      case FrameType::Leave:
        try {
          const LeavePayload leave = parse_leave(frame);
          membership_queue_.push_back({false, leave.node, 0, leave.reason});
        } catch (const WireError&) {
        }
        continue;
      case FrameType::Hello:
        continue;  // attach-time greeting, no state
      case FrameType::PrepareOk:
      case FrameType::PrepareFail:
      case FrameType::Committed:
      case FrameType::Aborted:
        try {
          payload = parse_node_reply(frame);
        } catch (const WireError&) {
          continue;
        }
        if (payload.txn != txn) {
          // A straggler of an earlier transaction (late vote, unsolicited
          // presumed-abort notice): record the epoch, drop the frame —
          // it must never be mistaken for the current transaction's
          // reply.
          peer.epoch = payload.epoch;
          continue;
        }
        type = frame.type;
        peer.epoch = payload.epoch;
        return true;
      default:
        continue;  // not coordinator-bound; skip
    }
  }
}

ReconfigCoordinator::Outcome ReconfigCoordinator::coordinate_reload(
    const model::Architecture& global_target) {
  return reload_under(global_target, view_.map, std::nullopt);
}

ReconfigCoordinator::Outcome ReconfigCoordinator::reshard(
    const model::Architecture& global_target, NodeMap target_map) {
  const validate::MembershipView proposed =
      view_.reshard(std::move(target_map));
  const validate::Report member_report = validate_membership(view_, proposed);
  if (!member_report.ok()) {
    Outcome outcome;
    outcome.report = member_report;
    outcome.reason = "membership validation failed";
    return outcome;
  }
  return reload_under(global_target, proposed.map, proposed);
}

ReconfigCoordinator::Outcome ReconfigCoordinator::admit_node(
    const std::string& node, const model::Architecture& global_target,
    NodeMap target_map) {
  Outcome outcome;
  auto candidate = candidates_.find(node);
  if (candidate == candidates_.end()) {
    outcome.reason = "no staged candidate '" + node + "'";
    return outcome;
  }
  const validate::MembershipView admitted = view_.admit(node);
  outcome.report = validate_membership(view_, admitted);
  if (!outcome.report.ok()) {
    outcome.reason = "membership validation failed";
    return outcome;
  }
  // Admission itself is epoch-advancing and unconditional: the joiner
  // becomes a member holding the empty slice — exactly the baseline the
  // re-shard below diffs its target against.
  view_ = admitted;
  Peer peer;
  peer.channel = std::move(candidate->second);
  peer.snapshot = soleil::snapshot_assembly(
      slice_architecture(global_target, view_.map, node), /*partitions=*/1);
  peers_[node] = std::move(peer);
  candidates_.erase(candidate);
  return reshard(global_target, std::move(target_map));
}

ReconfigCoordinator::Outcome ReconfigCoordinator::drain_node(
    const std::string& node, const model::Architecture& global_target,
    NodeMap drained_map) {
  Outcome outcome;
  if (!view_.map.has_node(node)) {
    outcome.reason = "drain_node: '" + node + "' is not a member";
    return outcome;
  }
  for (const auto& [component, owner] : drained_map.assignment) {
    if (owner == node) {
      outcome.reason = "drained map still assigns '" + component + "' to '" +
                       node + "'";
      return outcome;
    }
  }
  // Step 1: re-shard the departing node's slice away (it stays a member
  // so the two-phase reload still reaches it and empties it).
  outcome = reshard(global_target, std::move(drained_map));
  if (!outcome.committed) return outcome;
  // Step 2: evict the drained member — a pure view change, no slices
  // move. MEMBER-DRAIN-FIRST is satisfied by construction now.
  view_ = view_.evict(node);
  peers_.erase(node);
  return outcome;
}

ReconfigCoordinator::Outcome ReconfigCoordinator::reload_under(
    const model::Architecture& global_target, const NodeMap& map,
    const std::optional<validate::MembershipView>& adopt_on_commit) {
  Outcome outcome;
  outcome.txn = next_txn_++;
  crashed_ = false;  // a new transition = a (re)started coordinator
  staged_view_ = adopt_on_commit;
  txn_map_ = &map;

  // Phase 0: global validation — the full rule engine on the target
  // architecture, plus the DIST-* cut rules under the node map.
  outcome.report = validate::validate(global_target);
  const AssemblyPlan global_plan =
      soleil::snapshot_assembly(global_target, /*partitions=*/1);
  const validate::Report dist_report =
      validate_distribution(global_plan, map);
  for (const auto& d : dist_report.diagnostics()) {
    outcome.report.add(d.severity, d.rule, d.subject, d.message);
  }
  if (!outcome.report.ok()) {
    outcome.reason = "global validation failed";
    staged_view_.reset();
    txn_map_ = nullptr;
    return outcome;
  }

  // Every node must be attached *before* the first PREPARE goes out: a
  // transition partially announced and then dropped would leave the
  // early nodes parked at the rendezvous with nobody to decide.
  for (const std::string& node : map.nodes) {
    if (peers_.find(node) == peers_.end()) {
      outcome.reason = "node '" + node + "' is not attached";
      staged_view_.reset();
      txn_map_ = nullptr;
      return outcome;
    }
  }

  // Phase 1: slice, diff, PREPARE. The staged snapshots become the new
  // baseline only when the whole cluster commits.
  staged_.clear();
  const std::vector<GatewayRoute> routes =
      compute_routes(global_target, map);
  bool any_delta = false;
  std::vector<std::string> participants;
  for (const std::string& node : map.nodes) {
    auto it = peers_.find(node);
    AssemblyPlan target = soleil::snapshot_assembly(
        slice_architecture(global_target, map, node), /*partitions=*/1);
    const reconfig::PlanDelta delta =
        reconfig::diff_plans(it->second.snapshot, target);
    if (!delta.empty()) any_delta = true;
    PrepareReloadPayload payload;
    payload.txn = outcome.txn;
    payload.expect_epoch = it->second.epoch;  // 0 before the first reply
    payload.plan = encode_plan(target);
    payload.delta = encode_delta(delta);
    payload.routes = routes;
    payload.coord_epoch = coord_epoch_;
    staged_[node] = std::move(target);
    participants.push_back(node);
    NodeResult result;
    result.node = node;
    outcome.nodes.push_back(std::move(result));
    if (hooks_ != nullptr && !crashed_ && hooks_->before_prepare &&
        !hooks_->before_prepare(node, outcome.txn)) {
      crashed_ = true;
      outcome.reason = "coordinator crashed mid-PREPARE";
    }
    if (crashed_) continue;
    if (!it->second.channel->send(make_prepare_reload(payload))) {
      outcome.reason = "node '" + node + "' is unreachable";
    }
  }
  if (!any_delta && outcome.reason.empty()) {
    // Cluster-wide no-op: abort the already-sent prepares and say so.
    outcome.reason = "empty delta on every node (no-op reload)";
  }
  decide(outcome, participants);
  if (outcome.committed && staged_view_.has_value()) {
    view_ = std::move(*staged_view_);
  }
  staged_view_.reset();
  txn_map_ = nullptr;
  return outcome;
}

ReconfigCoordinator::Outcome ReconfigCoordinator::coordinate_transition(
    const std::string& mode) {
  Outcome outcome;
  outcome.txn = next_txn_++;
  crashed_ = false;  // a new transition = a (re)started coordinator
  staged_.clear();  // mode transitions do not move snapshots
  staged_view_.reset();
  txn_map_ = &view_.map;

  // All-attached check before the first PREPARE (see coordinate_reload).
  for (const std::string& node : view_.map.nodes) {
    if (peers_.find(node) == peers_.end()) {
      outcome.reason = "node '" + node + "' is not attached";
      txn_map_ = nullptr;
      return outcome;
    }
  }
  std::vector<std::string> participants;
  for (const std::string& node : view_.map.nodes) {
    auto it = peers_.find(node);
    PrepareModePayload payload;
    payload.txn = outcome.txn;
    payload.mode = mode;
    payload.coord_epoch = coord_epoch_;
    participants.push_back(node);
    NodeResult result;
    result.node = node;
    outcome.nodes.push_back(std::move(result));
    if (hooks_ != nullptr && !crashed_ && hooks_->before_prepare &&
        !hooks_->before_prepare(node, outcome.txn)) {
      crashed_ = true;
      outcome.reason = "coordinator crashed mid-PREPARE";
    }
    if (crashed_) continue;
    if (!it->second.channel->send(make_prepare_mode(payload))) {
      outcome.reason = "node '" + node + "' is unreachable";
    }
  }
  decide(outcome, participants);
  txn_map_ = nullptr;
  return outcome;
}

void ReconfigCoordinator::decide(Outcome& outcome,
                                 const std::vector<std::string>& participants) {
  if (crashed_) {
    // The coordinator died during the PREPARE sweep: no decision exists,
    // nothing more is sent or awaited. Prepared nodes presumed-abort on
    // their own; the staged snapshots never become a baseline.
    outcome.committed = false;
    staged_.clear();
    return;
  }
  auto& clock = rtsj::SteadyClock::instance();
  const rtsj::AbsoluteTime prepare_deadline =
      clock.now() + options_.prepare_timeout;

  // Collect every vote — even when the transition is already doomed (a
  // launch failure or a cluster no-op), nodes that prepared must be
  // aborted below and their votes must not linger in the channels.
  bool all_prepared = outcome.reason.empty();
  for (std::size_t i = 0; i < participants.size(); ++i) {
    NodeResult& result = outcome.nodes[i];
    NodeReplyPayload payload;
    std::uint16_t type = 0;
    if (!await_reply(participants[i], outcome.txn, payload, type,
                     prepare_deadline)) {
      all_prepared = false;
      if (outcome.reason.empty()) {
        outcome.reason =
            "straggler: node '" + participants[i] + "' missed the deadline";
      }
      result.detail = "no vote before the prepare deadline";
      continue;
    }
    result.epoch = payload.epoch;
    if (type == static_cast<std::uint16_t>(FrameType::PrepareOk)) {
      result.prepared = true;
    } else {
      all_prepared = false;
      result.detail = payload.reason;
      if (outcome.reason.empty()) {
        outcome.reason = "node '" + participants[i] +
                         "' rejected the prepare: " + payload.reason;
      }
    }
  }

  // Decide.
  DecisionPayload decision;
  decision.txn = outcome.txn;
  decision.coord_epoch = coord_epoch_;
  const FrameType verdict =
      all_prepared ? FrameType::Commit : FrameType::Abort;
  if (!all_prepared) decision.reason = outcome.reason;
  // Decision durable first: the standby's log record goes out before any
  // decision frame, so a coordinator that dies mid-sweep leaves a record
  // the promoted standby can redrive (docs/MEMBERSHIP.md §4).
  stream_decision(outcome, all_prepared, participants);
  for (const std::string& node : participants) {
    if (hooks_ != nullptr && !crashed_ && hooks_->before_decision &&
        !hooks_->before_decision(node, outcome.txn, all_prepared)) {
      crashed_ = true;
    }
    if (crashed_) break;
    peers_.at(node).channel->send(make_decision(verdict, decision));
  }
  if (crashed_) {
    // Died mid-decision sweep: the already-sent frames are out (those
    // nodes apply or release), the rest presumed-abort — the divergence
    // the next transition's delta-agreement votes detect. Nothing more is
    // awaited and no snapshot advances.
    outcome.committed = false;
    if (outcome.reason.empty()) {
      outcome.reason = "coordinator crashed mid-decision";
    }
    staged_.clear();
    return;
  }
  const rtsj::AbsoluteTime decision_deadline =
      clock.now() + options_.decision_timeout;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    NodeResult& result = outcome.nodes[i];
    NodeReplyPayload payload;
    std::uint16_t type = 0;
    if (!await_reply(participants[i], outcome.txn, payload, type,
                     decision_deadline)) {
      if (result.detail.empty()) {
        result.detail = "no decision acknowledgement";
      }
      continue;
    }
    result.epoch = payload.epoch;
    if (all_prepared &&
        type == static_cast<std::uint16_t>(FrameType::Committed)) {
      result.committed = true;
      result.drained = payload.drained;
      result.latency_ns = payload.latency_ns;
    } else if (result.detail.empty()) {
      result.detail = payload.reason;
    }
  }

  outcome.committed = all_prepared;
  for (const NodeResult& result : outcome.nodes) {
    if (!result.committed) outcome.committed = false;
  }
  if (all_prepared) {
    // The COMMIT decision is made the moment it is sent: a node whose
    // acknowledgement merely missed the deadline has still applied (the
    // channel is reliable), so its staged snapshot must advance — or
    // every later reload would diff against a stale baseline and abort
    // on the delta-agreement check forever. Only an explicit ABORTED
    // reply (the lapsed-quiescence edge) proves the node did not apply
    // and keeps its old snapshot.
    for (std::size_t i = 0; i < participants.size(); ++i) {
      NodeResult& result = outcome.nodes[i];
      const bool node_aborted =
          !result.committed && !result.detail.empty() &&
          result.detail != "no decision acknowledgement";
      if (node_aborted) continue;
      auto staged = staged_.find(participants[i]);
      if (staged != staged_.end()) {
        Peer& peer = peers_.at(participants[i]);
        peer.snapshot = std::move(staged->second);
        if (!result.committed) {
          // Epoch unknown until the node is heard from again; 0 skips
          // the stale-epoch check on the next PREPARE.
          peer.epoch = 0;
        }
      }
    }
  }
  staged_.clear();
}

void ReconfigCoordinator::stream_decision(
    const Outcome& outcome, bool commit,
    const std::vector<std::string>& participants) {
  if (standby_ == nullptr) return;
  StandbySyncPayload record;
  record.txn = outcome.txn;
  record.committed = commit ? 1 : 0;
  record.reason = outcome.reason;
  record.coord_epoch = coord_epoch_;
  record.membership_epoch =
      staged_view_.has_value() ? staged_view_->epoch : view_.epoch;
  record.members = participants;
  const NodeMap& map = txn_map_ != nullptr ? *txn_map_ : view_.map;
  for (const auto& [component, owner] : map.assignment) {
    record.assignment.emplace_back(component, owner);
  }
  for (const std::string& node : participants) {
    auto peer = peers_.find(node);
    if (peer == peers_.end()) continue;
    StandbyNodeRecord entry;
    entry.node = node;
    entry.epoch = peer->second.epoch;
    // On commit the staged snapshot is what every node is about to run;
    // on abort the old baseline stands.
    auto staged = staged_.find(node);
    entry.snapshot = encode_plan(commit && staged != staged_.end()
                                     ? staged->second
                                     : peer->second.snapshot);
    record.nodes.push_back(std::move(entry));
  }
  standby_->send(make_standby_sync(record));
}

void ReconfigCoordinator::announce_takeover(const std::string& name,
                                            rtsj::RelativeTime wait) {
  // Sweep every queued frame first: a predecessor that died mid-PREPARE
  // never collected votes, so attach-time greetings, votes, and
  // presumed-abort notices of its transaction may still be queued. The
  // channels are FIFO, so everything stale precedes the HELLO each node
  // sends in reply to the TAKEOVER below — draining now guarantees the
  // wait loop adopts that reply and not a leftover greeting, and that no
  // stale vote can be mistaken for a reply to a reused transaction id.
  for (auto& [node, peer] : peers_) {
    (void)node;
    comm::Frame stale;
    while (peer.channel->receive(stale, rtsj::RelativeTime::zero())) {
      if (stale.type ==
          static_cast<std::uint16_t>(FrameType::DemoteRequest)) {
        try {
          demote_queue_.push_back(parse_demote(stale));
        } catch (const WireError&) {
        }
      }
    }
  }
  TakeoverPayload takeover;
  takeover.coordinator = name;
  takeover.coord_epoch = coord_epoch_;
  for (auto& [node, peer] : peers_) {
    (void)node;
    peer.channel->send(make_takeover(takeover));
  }
  auto& clock = rtsj::SteadyClock::instance();
  for (auto& [node, peer] : peers_) {
    (void)node;
    const rtsj::AbsoluteTime deadline = clock.now() + wait;
    for (;;) {
      const rtsj::AbsoluteTime now = clock.now();
      if (now >= deadline) break;
      comm::Frame frame;
      if (!peer.channel->receive(frame, deadline - now)) break;
      if (frame.type == static_cast<std::uint16_t>(FrameType::Hello)) {
        try {
          peer.epoch = parse_hello_info(frame).resync_epoch;
        } catch (const WireError&) {
        }
        break;
      }
      if (frame.type ==
          static_cast<std::uint16_t>(FrameType::DemoteRequest)) {
        try {
          demote_queue_.push_back(parse_demote(frame));
        } catch (const WireError&) {
        }
      }
      // Anything else is a straggler of the fenced coordinator's
      // transaction — dropped; the node re-announces itself below.
    }
  }
}

ReconfigCoordinator::Outcome ReconfigCoordinator::redrive_decision(
    std::uint64_t txn, bool commit, const std::string& reason) {
  Outcome outcome;
  outcome.txn = txn;
  outcome.reason = reason;
  if (next_txn_ <= txn) next_txn_ = txn + 1;
  DecisionPayload decision;
  decision.txn = txn;
  decision.reason = reason;
  decision.coord_epoch = coord_epoch_;
  const FrameType verdict = commit ? FrameType::Commit : FrameType::Abort;
  std::vector<std::string> participants;
  for (const std::string& node : view_.map.nodes) {
    auto it = peers_.find(node);
    if (it == peers_.end()) continue;
    participants.push_back(node);
    NodeResult result;
    result.node = node;
    outcome.nodes.push_back(std::move(result));
    it->second.channel->send(make_decision(verdict, decision));
  }
  auto& clock = rtsj::SteadyClock::instance();
  const rtsj::AbsoluteTime deadline =
      clock.now() + options_.decision_timeout;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    NodeResult& result = outcome.nodes[i];
    NodeReplyPayload payload;
    std::uint16_t type = 0;
    if (!await_reply(participants[i], txn, payload, type, deadline)) {
      result.detail = "no decision acknowledgement";
      continue;
    }
    result.epoch = payload.epoch;
    if (commit && type == static_cast<std::uint16_t>(FrameType::Committed)) {
      result.committed = true;
      result.drained = payload.drained;
      result.latency_ns = payload.latency_ns;
    } else {
      // "no such prepared transaction" = the node already handled (or
      // presumed-aborted) the decision — the idempotent absorb.
      result.detail = payload.reason;
    }
  }
  // The verdict was durable before the original coordinator died; the
  // redrive only re-distributes it.
  outcome.committed = commit;
  return outcome;
}

std::optional<ReconfigCoordinator::MembershipRequest>
ReconfigCoordinator::poll_membership_request(rtsj::RelativeTime wait) {
  const auto pop = [this]() -> std::optional<MembershipRequest> {
    if (membership_queue_.empty()) return std::nullopt;
    MembershipRequest request = membership_queue_.front();
    membership_queue_.pop_front();
    return request;
  };
  if (auto request = pop()) return request;
  auto& clock = rtsj::SteadyClock::instance();
  const rtsj::AbsoluteTime deadline = clock.now() + wait;
  for (;;) {
    bool any = false;
    const auto pump = [&](comm::Channel& channel) {
      comm::Frame frame;
      while (channel.receive(frame, rtsj::RelativeTime::zero())) {
        any = true;
        switch (static_cast<FrameType>(frame.type)) {
          case FrameType::Join:
            try {
              const JoinPayload join = parse_join(frame);
              membership_queue_.push_back(
                  {true, join.node, join.resync_epoch, std::string()});
            } catch (const WireError&) {
            }
            break;
          case FrameType::Leave:
            try {
              const LeavePayload leave = parse_leave(frame);
              membership_queue_.push_back(
                  {false, leave.node, 0, leave.reason});
            } catch (const WireError&) {
            }
            break;
          case FrameType::DemoteRequest:
            try {
              demote_queue_.push_back(parse_demote(frame));
            } catch (const WireError&) {
            }
            break;
          default:
            break;  // greetings and stale replies carry no state here
        }
      }
    };
    for (auto& [node, peer] : peers_) {
      (void)node;
      pump(*peer.channel);
    }
    for (auto& [node, channel] : candidates_) {
      (void)node;
      pump(*channel);
    }
    if (auto request = pop()) return request;
    if (clock.now() >= deadline) return std::nullopt;
    if (!any) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

std::optional<DemotePayload> ReconfigCoordinator::poll_demote_request(
    rtsj::RelativeTime wait) {
  if (!demote_queue_.empty()) {
    DemotePayload payload = demote_queue_.front();
    demote_queue_.pop_front();
    return payload;
  }
  auto& clock = rtsj::SteadyClock::instance();
  const rtsj::AbsoluteTime deadline = clock.now() + wait;
  for (;;) {
    bool any = false;
    for (auto& [node, peer] : peers_) {
      (void)node;
      comm::Frame frame;
      while (peer.channel->receive(frame, rtsj::RelativeTime::zero())) {
        any = true;
        if (frame.type ==
            static_cast<std::uint16_t>(FrameType::DemoteRequest)) {
          try {
            demote_queue_.push_back(parse_demote(frame));
          } catch (const WireError&) {
          }
        } else if (frame.type ==
                   static_cast<std::uint16_t>(FrameType::Join)) {
          try {
            const JoinPayload join = parse_join(frame);
            membership_queue_.push_back(
                {true, join.node, join.resync_epoch, std::string()});
          } catch (const WireError&) {
          }
        } else if (frame.type ==
                   static_cast<std::uint16_t>(FrameType::Leave)) {
          try {
            const LeavePayload leave = parse_leave(frame);
            membership_queue_.push_back({false, leave.node, 0, leave.reason});
          } catch (const WireError&) {
          }
        }
      }
    }
    if (!demote_queue_.empty()) {
      DemotePayload payload = demote_queue_.front();
      demote_queue_.pop_front();
      return payload;
    }
    if (clock.now() >= deadline) return std::nullopt;
    if (!any) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace rtcf::dist
