#include "dist/coordinator.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "dist/plan_codec.hpp"
#include "dist/slice.hpp"
#include "reconfig/plan_delta.hpp"
#include "soleil/plan.hpp"
#include "validate/validator.hpp"

namespace rtcf::dist {

using model::AssemblyPlan;
using validate::NodeMap;
using validate::Severity;

ReconfigCoordinator::ReconfigCoordinator(NodeMap map)
    : ReconfigCoordinator(std::move(map), Options()) {}

ReconfigCoordinator::ReconfigCoordinator(NodeMap map, Options options)
    : map_(std::move(map)), options_(std::move(options)) {}

void ReconfigCoordinator::attach(const std::string& node,
                                 std::shared_ptr<comm::Channel> channel,
                                 const model::Architecture& global) {
  if (!map_.has_node(node)) {
    throw std::invalid_argument("attach: undeclared node '" + node + "'");
  }
  Peer peer;
  peer.channel = std::move(channel);
  peer.snapshot =
      soleil::snapshot_assembly(slice_architecture(global, map_, node),
                                /*partitions=*/1);
  peers_[node] = std::move(peer);
}

const AssemblyPlan& ReconfigCoordinator::node_snapshot(
    const std::string& node) const {
  auto it = peers_.find(node);
  if (it == peers_.end()) {
    throw std::invalid_argument("node_snapshot: unattached node '" + node +
                                "'");
  }
  return it->second.snapshot;
}

bool ReconfigCoordinator::await_reply(const std::string& node,
                                      std::uint64_t txn,
                                      NodeReplyPayload& payload,
                                      std::uint16_t& type,
                                      rtsj::AbsoluteTime deadline) {
  Peer& peer = peers_.at(node);
  auto& clock = rtsj::SteadyClock::instance();
  for (;;) {
    const rtsj::AbsoluteTime now = clock.now();
    if (now >= deadline) return false;
    comm::Frame frame;
    if (!peer.channel->receive(frame, deadline - now)) return false;
    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::DemoteRequest:
        try {
          demote_queue_.push_back(parse_demote(frame));
        } catch (const WireError&) {
        }
        continue;
      case FrameType::Hello:
        continue;  // attach-time greeting, no state
      case FrameType::PrepareOk:
      case FrameType::PrepareFail:
      case FrameType::Committed:
      case FrameType::Aborted:
        try {
          payload = parse_node_reply(frame);
        } catch (const WireError&) {
          continue;
        }
        if (payload.txn != txn) {
          // A straggler of an earlier transaction (late vote, unsolicited
          // presumed-abort notice): record the epoch, drop the frame —
          // it must never be mistaken for the current transaction's
          // reply.
          peer.epoch = payload.epoch;
          continue;
        }
        type = frame.type;
        peer.epoch = payload.epoch;
        return true;
      default:
        continue;  // not coordinator-bound; skip
    }
  }
}

ReconfigCoordinator::Outcome ReconfigCoordinator::coordinate_reload(
    const model::Architecture& global_target) {
  Outcome outcome;
  outcome.txn = next_txn_++;
  crashed_ = false;  // a new transition = a (re)started coordinator

  // Phase 0: global validation — the full rule engine on the target
  // architecture, plus the DIST-* cut rules under the node map.
  outcome.report = validate::validate(global_target);
  const AssemblyPlan global_plan =
      soleil::snapshot_assembly(global_target, /*partitions=*/1);
  const validate::Report dist_report =
      validate_distribution(global_plan, map_);
  for (const auto& d : dist_report.diagnostics()) {
    outcome.report.add(d.severity, d.rule, d.subject, d.message);
  }
  if (!outcome.report.ok()) {
    outcome.reason = "global validation failed";
    return outcome;
  }

  // Every node must be attached *before* the first PREPARE goes out: a
  // transition partially announced and then dropped would leave the
  // early nodes parked at the rendezvous with nobody to decide.
  for (const std::string& node : map_.nodes) {
    if (peers_.find(node) == peers_.end()) {
      outcome.reason = "node '" + node + "' is not attached";
      return outcome;
    }
  }

  // Phase 1: slice, diff, PREPARE. The staged snapshots become the new
  // baseline only when the whole cluster commits.
  staged_.clear();
  const std::vector<GatewayRoute> routes =
      compute_routes(global_target, map_);
  bool any_delta = false;
  std::vector<std::string> participants;
  for (const std::string& node : map_.nodes) {
    auto it = peers_.find(node);
    AssemblyPlan target = soleil::snapshot_assembly(
        slice_architecture(global_target, map_, node), /*partitions=*/1);
    const reconfig::PlanDelta delta =
        reconfig::diff_plans(it->second.snapshot, target);
    if (!delta.empty()) any_delta = true;
    PrepareReloadPayload payload;
    payload.txn = outcome.txn;
    payload.expect_epoch = it->second.epoch;  // 0 before the first reply
    payload.plan = encode_plan(target);
    payload.delta = encode_delta(delta);
    payload.routes = routes;
    staged_[node] = std::move(target);
    participants.push_back(node);
    NodeResult result;
    result.node = node;
    outcome.nodes.push_back(std::move(result));
    if (hooks_ != nullptr && !crashed_ && hooks_->before_prepare &&
        !hooks_->before_prepare(node, outcome.txn)) {
      crashed_ = true;
      outcome.reason = "coordinator crashed mid-PREPARE";
    }
    if (crashed_) continue;
    if (!it->second.channel->send(make_prepare_reload(payload))) {
      outcome.reason = "node '" + node + "' is unreachable";
    }
  }
  if (!any_delta && outcome.reason.empty()) {
    // Cluster-wide no-op: abort the already-sent prepares and say so.
    outcome.reason = "empty delta on every node (no-op reload)";
  }
  decide(outcome, participants);
  return outcome;
}

ReconfigCoordinator::Outcome ReconfigCoordinator::coordinate_transition(
    const std::string& mode) {
  Outcome outcome;
  outcome.txn = next_txn_++;
  crashed_ = false;  // a new transition = a (re)started coordinator
  staged_.clear();  // mode transitions do not move snapshots

  // All-attached check before the first PREPARE (see coordinate_reload).
  for (const std::string& node : map_.nodes) {
    if (peers_.find(node) == peers_.end()) {
      outcome.reason = "node '" + node + "' is not attached";
      return outcome;
    }
  }
  std::vector<std::string> participants;
  for (const std::string& node : map_.nodes) {
    auto it = peers_.find(node);
    PrepareModePayload payload;
    payload.txn = outcome.txn;
    payload.mode = mode;
    participants.push_back(node);
    NodeResult result;
    result.node = node;
    outcome.nodes.push_back(std::move(result));
    if (hooks_ != nullptr && !crashed_ && hooks_->before_prepare &&
        !hooks_->before_prepare(node, outcome.txn)) {
      crashed_ = true;
      outcome.reason = "coordinator crashed mid-PREPARE";
    }
    if (crashed_) continue;
    if (!it->second.channel->send(make_prepare_mode(payload))) {
      outcome.reason = "node '" + node + "' is unreachable";
    }
  }
  decide(outcome, participants);
  return outcome;
}

void ReconfigCoordinator::decide(Outcome& outcome,
                                 const std::vector<std::string>& participants) {
  if (crashed_) {
    // The coordinator died during the PREPARE sweep: no decision exists,
    // nothing more is sent or awaited. Prepared nodes presumed-abort on
    // their own; the staged snapshots never become a baseline.
    outcome.committed = false;
    staged_.clear();
    return;
  }
  auto& clock = rtsj::SteadyClock::instance();
  const rtsj::AbsoluteTime prepare_deadline =
      clock.now() + options_.prepare_timeout;

  // Collect every vote — even when the transition is already doomed (a
  // launch failure or a cluster no-op), nodes that prepared must be
  // aborted below and their votes must not linger in the channels.
  bool all_prepared = outcome.reason.empty();
  for (std::size_t i = 0; i < participants.size(); ++i) {
    NodeResult& result = outcome.nodes[i];
    NodeReplyPayload payload;
    std::uint16_t type = 0;
    if (!await_reply(participants[i], outcome.txn, payload, type,
                     prepare_deadline)) {
      all_prepared = false;
      if (outcome.reason.empty()) {
        outcome.reason =
            "straggler: node '" + participants[i] + "' missed the deadline";
      }
      result.detail = "no vote before the prepare deadline";
      continue;
    }
    result.epoch = payload.epoch;
    if (type == static_cast<std::uint16_t>(FrameType::PrepareOk)) {
      result.prepared = true;
    } else {
      all_prepared = false;
      result.detail = payload.reason;
      if (outcome.reason.empty()) {
        outcome.reason = "node '" + participants[i] +
                         "' rejected the prepare: " + payload.reason;
      }
    }
  }

  // Decide.
  DecisionPayload decision;
  decision.txn = outcome.txn;
  const FrameType verdict =
      all_prepared ? FrameType::Commit : FrameType::Abort;
  if (!all_prepared) decision.reason = outcome.reason;
  for (const std::string& node : participants) {
    if (hooks_ != nullptr && !crashed_ && hooks_->before_decision &&
        !hooks_->before_decision(node, outcome.txn, all_prepared)) {
      crashed_ = true;
    }
    if (crashed_) break;
    peers_.at(node).channel->send(make_decision(verdict, decision));
  }
  if (crashed_) {
    // Died mid-decision sweep: the already-sent frames are out (those
    // nodes apply or release), the rest presumed-abort — the divergence
    // the next transition's delta-agreement votes detect. Nothing more is
    // awaited and no snapshot advances.
    outcome.committed = false;
    if (outcome.reason.empty()) {
      outcome.reason = "coordinator crashed mid-decision";
    }
    staged_.clear();
    return;
  }
  const rtsj::AbsoluteTime decision_deadline =
      clock.now() + options_.decision_timeout;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    NodeResult& result = outcome.nodes[i];
    NodeReplyPayload payload;
    std::uint16_t type = 0;
    if (!await_reply(participants[i], outcome.txn, payload, type,
                     decision_deadline)) {
      if (result.detail.empty()) {
        result.detail = "no decision acknowledgement";
      }
      continue;
    }
    result.epoch = payload.epoch;
    if (all_prepared &&
        type == static_cast<std::uint16_t>(FrameType::Committed)) {
      result.committed = true;
      result.drained = payload.drained;
      result.latency_ns = payload.latency_ns;
    } else if (result.detail.empty()) {
      result.detail = payload.reason;
    }
  }

  outcome.committed = all_prepared;
  for (const NodeResult& result : outcome.nodes) {
    if (!result.committed) outcome.committed = false;
  }
  if (all_prepared) {
    // The COMMIT decision is made the moment it is sent: a node whose
    // acknowledgement merely missed the deadline has still applied (the
    // channel is reliable), so its staged snapshot must advance — or
    // every later reload would diff against a stale baseline and abort
    // on the delta-agreement check forever. Only an explicit ABORTED
    // reply (the lapsed-quiescence edge) proves the node did not apply
    // and keeps its old snapshot.
    for (std::size_t i = 0; i < participants.size(); ++i) {
      NodeResult& result = outcome.nodes[i];
      const bool node_aborted =
          !result.committed && !result.detail.empty() &&
          result.detail != "no decision acknowledgement";
      if (node_aborted) continue;
      auto staged = staged_.find(participants[i]);
      if (staged != staged_.end()) {
        Peer& peer = peers_.at(participants[i]);
        peer.snapshot = std::move(staged->second);
        if (!result.committed) {
          // Epoch unknown until the node is heard from again; 0 skips
          // the stale-epoch check on the next PREPARE.
          peer.epoch = 0;
        }
      }
    }
  }
  staged_.clear();
}

std::optional<DemotePayload> ReconfigCoordinator::poll_demote_request(
    rtsj::RelativeTime wait) {
  if (!demote_queue_.empty()) {
    DemotePayload payload = demote_queue_.front();
    demote_queue_.pop_front();
    return payload;
  }
  auto& clock = rtsj::SteadyClock::instance();
  const rtsj::AbsoluteTime deadline = clock.now() + wait;
  for (;;) {
    bool any = false;
    for (auto& [node, peer] : peers_) {
      (void)node;
      comm::Frame frame;
      while (peer.channel->receive(frame, rtsj::RelativeTime::zero())) {
        any = true;
        if (frame.type ==
            static_cast<std::uint16_t>(FrameType::DemoteRequest)) {
          try {
            demote_queue_.push_back(parse_demote(frame));
          } catch (const WireError&) {
          }
        }
      }
    }
    if (!demote_queue_.empty()) {
      DemotePayload payload = demote_queue_.front();
      demote_queue_.pop_front();
      return payload;
    }
    if (clock.now() >= deadline) return std::nullopt;
    if (!any) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace rtcf::dist
