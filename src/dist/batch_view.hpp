// Zero-copy views over the v3 data-plane payloads (docs/DATAPLANE.md
// "Zero-copy path"). The structs in dist/protocol.hpp (`BatchPayload`,
// `DataPayload`) materialize every route name and message into owned
// containers — fine for the control plane, too expensive at data-plane
// rates. This header provides the same encodings without the containers:
//
//   * size accounting (`*_wire_bytes`) so a caller can reserve exactly the
//     right span in a transport (shm ring reservation, pooled buffer);
//   * `BatchSpanEncoder` / `encode_data_payload` / `encode_credit_payload`
//     that write directly into that span, byte-identical to
//     make_batch/make_data/make_credit (pinned by the `zerocopy` golden
//     tests);
//   * `BatchView`, an in-place decoder that yields route names as
//     string_views into the receive buffer and copies each message once,
//     straight into the caller's `comm::Message` — no per-message vector,
//     no per-route strings.
//
// Every message block encodes to exactly kMessageWireBytes because
// comm::Message payloads are fixed-capacity; that is what lets senders
// size a BATCH before writing a single byte.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "comm/message.hpp"
#include "dist/wire.hpp"

namespace rtcf::dist {

/// Encoded size of one message block: u32 block length + u32 type_id +
/// u32 size + i64 timestamp + u64 sequence + u32-prefixed fixed-capacity
/// payload.
inline constexpr std::size_t kMessageWireBytes =
    4 + 4 + 4 + 8 + 8 + 4 + comm::Message::kPayloadCapacity;

/// Encoded size of a BATCH payload's leading route count.
inline constexpr std::size_t kBatchHeaderBytes = 4;

/// Encoded size of one BATCH route block holding `messages` messages.
inline std::size_t batch_route_wire_bytes(std::string_view client,
                                          std::string_view port,
                                          std::size_t messages) {
  return 4 /* block length */ + 4 + client.size() + 4 + port.size() +
         4 /* message count */ + messages * kMessageWireBytes;
}

/// Encoded size of a DATA payload.
inline std::size_t data_payload_wire_bytes(std::string_view client,
                                           std::string_view port) {
  return 4 + client.size() + 4 + port.size() + kMessageWireBytes;
}

/// Encoded size of a CREDIT payload.
inline std::size_t credit_payload_wire_bytes(std::string_view client,
                                             std::string_view port) {
  return 4 + client.size() + 4 + port.size() + 8;
}

/// Writes one message block; byte-identical to the block make_batch and
/// make_data emit. Throws WireError if the span cannot hold it.
void write_message_into(SpanWriter& w, const comm::Message& m);

/// Writes a DATA payload into `w`; byte-identical to make_data's payload.
void encode_data_payload(SpanWriter& w, std::string_view client,
                         std::string_view port, const comm::Message& m);

/// Writes a CREDIT payload into `w`; byte-identical to make_credit's.
void encode_credit_payload(SpanWriter& w, std::string_view client,
                           std::string_view port, std::uint64_t credits);

/// Encodes a BATCH payload directly into caller-provided memory, route by
/// route, message by message — the sender drains its route queues straight
/// into transport memory with no BatchPayload in between. The caller
/// promises the span is at least kBatchHeaderBytes plus the sum of
/// batch_route_wire_bytes over the routes it will stage; overflow throws
/// WireError.
class BatchSpanEncoder {
 public:
  /// Starts a BATCH of exactly `route_count` routes in `span`.
  BatchSpanEncoder(WireSpan span, std::uint32_t route_count);

  /// Opens the next route block. Must not already be inside a route.
  void begin_route(std::string_view client, std::string_view port,
                   std::uint32_t messages);
  /// Appends one message to the open route.
  void add_message(const comm::Message& m);
  /// Closes the open route block.
  void end_route();

  /// Bytes encoded so far (the final payload size once every announced
  /// route has been written).
  std::size_t used() const noexcept { return writer_.used(); }

 private:
  SpanWriter writer_;
  std::size_t route_token_ = 0;
  bool in_route_ = false;
};

/// In-place decoder of a BATCH payload. Iterate routes with next_route,
/// then call next_message exactly `Route::messages` times per route. The
/// route name views alias the payload buffer and die with it; messages are
/// copied out (one 96-byte copy — the same copy inject() would make).
/// Truncated or malformed input throws WireError, rejecting the frame as a
/// whole, exactly like parse_batch.
class BatchView {
 public:
  /// One route block's header, viewed in place.
  struct Route {
    std::string_view client;      ///< Logical client component (aliased).
    std::string_view port;        ///< Client port name (aliased).
    std::uint32_t messages = 0;   ///< Message blocks that follow.
  };

  /// Decodes `size` bytes at `data` (not owned; must outlive the view).
  BatchView(const std::uint8_t* data, std::size_t size);
  /// Decodes a frame payload vector (not owned; must outlive the view).
  explicit BatchView(const std::vector<std::uint8_t>& payload)
      : BatchView(payload.data(), payload.size()) {}

  /// Routes announced by the payload header.
  std::uint32_t route_count() const noexcept { return route_count_; }
  /// Advances to the next route; false once every route was returned.
  /// Unread messages of the previous route are skipped (their bytes were
  /// bounds-checked when the route block was entered).
  bool next_route(Route& out);
  /// Decodes the next message of the current route into `out`.
  void next_message(comm::Message& out);

 private:
  WireReader reader_;
  WireReader route_reader_{nullptr, 0};
  std::uint32_t route_count_ = 0;
  std::uint32_t routes_left_ = 0;
  std::uint32_t messages_left_ = 0;
};

/// Fully validates a BATCH payload and returns its total message count.
/// Throws WireError on any truncation or implausible count — the receive
/// path calls this once at enqueue time so a frame deferred for in-place
/// decoding can never fail later on the executive thread.
std::size_t batch_message_count(const std::uint8_t* data, std::size_t size);

}  // namespace rtcf::dist
