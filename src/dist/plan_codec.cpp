#include "dist/plan_codec.hpp"

namespace rtcf::dist {

using model::AssemblyPlan;
using model::AssemblyPlanBuilder;
using model::BindingEnd;
using model::BindingSpec;
using model::ComponentSpec;
using model::ModeDecl;
using model::TimingContract;
using reconfig::PlanDelta;
using reconfig::RebindDelta;
using reconfig::SettingDelta;

namespace {

/// Guards a decoded element count before any reserve()/loop: each element
/// occupies at least `min_each` bytes, so a count the remaining input
/// cannot possibly hold is corrupt — reject it as WireError instead of
/// letting a hostile u32 drive a multi-gigabyte reserve into bad_alloc
/// (which would escape the WireError-only handlers).
void require_count(const WireReader& r, std::uint32_t count,
                   std::size_t min_each, const char* what) {
  if (static_cast<std::uint64_t>(count) * min_each > r.remaining()) {
    throw WireError(std::string("implausible ") + what + " count " +
                    std::to_string(count) + " for " +
                    std::to_string(r.remaining()) + " remaining bytes");
  }
}

void write_time(WireWriter& w, rtsj::RelativeTime t) { w.i64(t.nanos()); }

rtsj::RelativeTime read_time(WireReader& r) {
  return rtsj::RelativeTime::nanoseconds(r.i64());
}

void write_contract(WireWriter& w, const TimingContract& c) {
  write_time(w, c.wcet_budget);
  w.f64(c.miss_ratio_bound);
  w.f64(c.max_arrival_rate_hz);
  w.u32(c.window);
}

TimingContract read_contract(WireReader& r) {
  TimingContract c;
  c.wcet_budget = read_time(r);
  c.miss_ratio_bound = r.f64();
  c.max_arrival_rate_hz = r.f64();
  c.window = r.u32();
  return c;
}

void write_opt_contract(WireWriter& w,
                        const std::optional<TimingContract>& c) {
  w.u8(c.has_value() ? 1 : 0);
  if (c) write_contract(w, *c);
}

std::optional<TimingContract> read_opt_contract(WireReader& r) {
  if (r.u8() == 0) return std::nullopt;
  return read_contract(r);
}

void write_end(WireWriter& w, const BindingEnd& end) {
  w.str(end.component);
  w.str(end.interface);
}

BindingEnd read_end(WireReader& r) {
  BindingEnd end;
  end.component = r.str();
  end.interface = r.str();
  return end;
}

void write_header(WireWriter& w, std::uint32_t magic) {
  w.u32(magic);
  w.u16(kCodecVersion);
  w.u16(0);  // flags, reserved
}

void read_header(WireReader& r, std::uint32_t magic, const char* what) {
  if (r.u32() != magic) {
    throw WireError(std::string("bad magic for ") + what);
  }
  const std::uint16_t version = r.u16();
  if (version != kCodecVersion) {
    throw WireError(std::string("unsupported codec version ") +
                    std::to_string(version) + " for " + what);
  }
  r.u16();  // flags, reserved
}

void write_mode(WireWriter& w, const ModeDecl& mode) {
  const std::size_t block = w.begin_block();
  w.str(mode.name);
  w.u8(mode.degraded ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(mode.components.size()));
  for (const auto& cfg : mode.components) {
    const std::size_t entry = w.begin_block();
    w.str(cfg.component);
    write_time(w, cfg.period);
    write_opt_contract(w, cfg.contract);
    w.end_block(entry);
  }
  w.u32(static_cast<std::uint32_t>(mode.rebinds.size()));
  for (const auto& rebind : mode.rebinds) {
    const std::size_t entry = w.begin_block();
    w.str(rebind.client);
    w.str(rebind.port);
    w.str(rebind.server);
    w.end_block(entry);
  }
  w.end_block(block);
}

ModeDecl read_mode(WireReader& r) {
  WireReader b = r.block();
  ModeDecl mode;
  mode.name = b.str();
  mode.degraded = b.u8() != 0;
  const std::uint32_t components = b.u32();
  require_count(b, components, 4, "mode entry");
  mode.components.reserve(components);
  for (std::uint32_t i = 0; i < components; ++i) {
    WireReader e = b.block();
    model::ModeComponentConfig cfg;
    cfg.component = e.str();
    cfg.period = read_time(e);
    cfg.contract = read_opt_contract(e);
    mode.components.push_back(std::move(cfg));
  }
  const std::uint32_t rebinds = b.u32();
  require_count(b, rebinds, 4, "mode rebind");
  mode.rebinds.reserve(rebinds);
  for (std::uint32_t i = 0; i < rebinds; ++i) {
    WireReader e = b.block();
    model::ModeRebind rebind;
    rebind.client = e.str();
    rebind.port = e.str();
    rebind.server = e.str();
    mode.rebinds.push_back(std::move(rebind));
  }
  return mode;
}

void write_string_list(WireWriter& w, const std::vector<std::string>& list) {
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const auto& s : list) w.str(s);
}

std::vector<std::string> read_string_list(WireReader& r, const char* what) {
  const std::uint32_t count = r.u32();
  require_count(r, count, 4, what);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(r.str());
  return out;
}

void write_tenant(WireWriter& w, const model::TenantSpec& tenant) {
  const std::size_t block = w.begin_block();
  w.str(tenant.name);
  w.f64(tenant.budget.cpu_utilization);
  w.u64(tenant.budget.memory_bytes);
  w.u8(static_cast<std::uint8_t>(tenant.criticality_floor));
  write_string_list(w, tenant.components);
  write_string_list(w, tenant.areas);
  write_string_list(w, tenant.domains);
  w.u32(static_cast<std::uint32_t>(tenant.exports.size()));
  for (const auto& e : tenant.exports) {
    const std::size_t entry = w.begin_block();
    w.str(e.capability);
    w.str(e.component);
    w.str(e.interface);
    w.end_block(entry);
  }
  w.u32(static_cast<std::uint32_t>(tenant.imports.size()));
  for (const auto& i : tenant.imports) {
    const std::size_t entry = w.begin_block();
    w.str(i.capability);
    w.str(i.from_tenant);
    w.end_block(entry);
  }
  // adl_line is deliberately not encoded: it is diagnostic source context,
  // and keeping it out preserves byte-agreement between a freshly planned
  // tenant and one round-tripped through the wire.
  w.end_block(block);
}

model::TenantSpec read_tenant(WireReader& r) {
  WireReader b = r.block();
  model::TenantSpec tenant;
  tenant.name = b.str();
  tenant.budget.cpu_utilization = b.f64();
  tenant.budget.memory_bytes = static_cast<std::size_t>(b.u64());
  tenant.criticality_floor = static_cast<model::Criticality>(b.u8());
  tenant.components = read_string_list(b, "tenant component");
  tenant.areas = read_string_list(b, "tenant area");
  tenant.domains = read_string_list(b, "tenant domain");
  const std::uint32_t exports = b.u32();
  require_count(b, exports, 4, "tenant export");
  tenant.exports.reserve(exports);
  for (std::uint32_t i = 0; i < exports; ++i) {
    WireReader e = b.block();
    model::CapabilityExport x;
    x.capability = e.str();
    x.component = e.str();
    x.interface = e.str();
    tenant.exports.push_back(std::move(x));
  }
  const std::uint32_t imports = b.u32();
  require_count(b, imports, 4, "tenant import");
  tenant.imports.reserve(imports);
  for (std::uint32_t i = 0; i < imports; ++i) {
    WireReader e = b.block();
    model::CapabilityImport x;
    x.capability = e.str();
    x.from_tenant = e.str();
    tenant.imports.push_back(std::move(x));
  }
  return tenant;
}

void write_setting(WireWriter& w, const SettingDelta& s) {
  const std::size_t block = w.begin_block();
  w.str(s.component);
  w.u8(s.period_changed ? 1 : 0);
  write_time(w, s.new_period);
  w.u8(s.contract_changed ? 1 : 0);
  write_opt_contract(w, s.contract);
  w.end_block(block);
}

SettingDelta read_setting(WireReader& r) {
  WireReader b = r.block();
  SettingDelta s;
  s.component = b.str();
  s.period_changed = b.u8() != 0;
  s.new_period = read_time(b);
  s.contract_changed = b.u8() != 0;
  s.contract = read_opt_contract(b);
  return s;
}

void write_rebind(WireWriter& w, const RebindDelta& rb) {
  const std::size_t block = w.begin_block();
  write_end(w, rb.client);
  w.str(rb.old_server);
  w.str(rb.new_server);
  w.u8(static_cast<std::uint8_t>(rb.protocol));
  write_binding(w, rb.target);
  w.end_block(block);
}

RebindDelta read_rebind(WireReader& r) {
  WireReader b = r.block();
  RebindDelta rb;
  rb.client = read_end(b);
  rb.old_server = b.str();
  rb.new_server = b.str();
  rb.protocol = static_cast<model::Protocol>(b.u8());
  rb.target = read_binding(b);
  return rb;
}

}  // namespace

void write_component(WireWriter& w, const ComponentSpec& spec) {
  const std::size_t block = w.begin_block();
  w.str(spec.name);
  w.u8(static_cast<std::uint8_t>(spec.kind));
  w.u8(static_cast<std::uint8_t>(spec.activation));
  write_time(w, spec.period);
  write_time(w, spec.cost);
  w.str(spec.content_class);
  w.u8(static_cast<std::uint8_t>(spec.criticality));
  write_opt_contract(w, spec.contract);
  w.u8(spec.swappable ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(spec.interfaces.size()));
  for (const auto& itf : spec.interfaces) {
    const std::size_t entry = w.begin_block();
    w.str(itf.name);
    w.u8(static_cast<std::uint8_t>(itf.role));
    w.str(itf.signature);
    w.end_block(entry);
  }
  w.str(spec.memory_area);
  w.u8(static_cast<std::uint8_t>(spec.area_type));
  w.str(spec.thread_domain);
  w.u8(static_cast<std::uint8_t>(spec.domain_type));
  w.i64(spec.domain_priority);
  w.u8(spec.executes_on_nhrt ? 1 : 0);
  w.u64(spec.partition);
  w.end_block(block);
}

ComponentSpec read_component(WireReader& r) {
  WireReader b = r.block();
  ComponentSpec spec;
  spec.name = b.str();
  spec.kind = static_cast<model::ComponentKind>(b.u8());
  spec.activation = static_cast<model::ActivationKind>(b.u8());
  spec.period = read_time(b);
  spec.cost = read_time(b);
  spec.content_class = b.str();
  spec.criticality = static_cast<model::Criticality>(b.u8());
  spec.contract = read_opt_contract(b);
  spec.swappable = b.u8() != 0;
  const std::uint32_t interfaces = b.u32();
  require_count(b, interfaces, 4, "interface");
  spec.interfaces.reserve(interfaces);
  for (std::uint32_t i = 0; i < interfaces; ++i) {
    WireReader e = b.block();
    model::InterfaceDecl itf;
    itf.name = e.str();
    itf.role = static_cast<model::InterfaceRole>(e.u8());
    itf.signature = e.str();
    spec.interfaces.push_back(std::move(itf));
  }
  spec.memory_area = b.str();
  spec.area_type = static_cast<model::AreaType>(b.u8());
  spec.thread_domain = b.str();
  spec.domain_type = static_cast<model::DomainType>(b.u8());
  spec.domain_priority = static_cast<int>(b.i64());
  spec.executes_on_nhrt = b.u8() != 0;
  spec.partition = static_cast<std::size_t>(b.u64());
  return spec;
}

void write_binding(WireWriter& w, const BindingSpec& spec) {
  const std::size_t block = w.begin_block();
  write_end(w, spec.client);
  write_end(w, spec.server);
  w.u8(static_cast<std::uint8_t>(spec.protocol));
  w.u64(spec.buffer_size);
  w.str(spec.pattern);
  w.str(spec.staging_area);
  w.str(spec.buffer_area);
  w.u8(spec.cross_partition ? 1 : 0);
  w.end_block(block);
}

BindingSpec read_binding(WireReader& r) {
  WireReader b = r.block();
  BindingSpec spec;
  spec.client = read_end(b);
  spec.server = read_end(b);
  spec.protocol = static_cast<model::Protocol>(b.u8());
  spec.buffer_size = static_cast<std::size_t>(b.u64());
  spec.pattern = b.str();
  spec.staging_area = b.str();
  spec.buffer_area = b.str();
  spec.cross_partition = b.u8() != 0;
  return spec;
}

std::vector<std::uint8_t> encode_plan(const AssemblyPlan& plan) {
  WireWriter w;
  write_header(w, kPlanMagic);
  w.u32(static_cast<std::uint32_t>(plan.components().size()));
  for (const auto& spec : plan.components()) write_component(w, spec);
  w.u32(static_cast<std::uint32_t>(plan.bindings().size()));
  for (const auto& spec : plan.bindings()) write_binding(w, spec);
  w.u32(static_cast<std::uint32_t>(plan.areas().size()));
  for (const auto& area : plan.areas()) {
    const std::size_t block = w.begin_block();
    w.str(area.name);
    w.u8(static_cast<std::uint8_t>(area.type));
    w.u64(area.size_bytes);
    w.end_block(block);
  }
  w.u32(static_cast<std::uint32_t>(plan.modes().size()));
  for (const auto& mode : plan.modes()) write_mode(w, mode);
  w.u32(static_cast<std::uint32_t>(plan.tenants().size()));
  for (const auto& tenant : plan.tenants()) write_tenant(w, tenant);
  w.u64(plan.partition_count());
  return w.take();
}

AssemblyPlan decode_plan(const std::vector<std::uint8_t>& data) {
  WireReader r(data);
  read_header(r, kPlanMagic, "AssemblyPlan");
  AssemblyPlan plan;
  AssemblyPlanBuilder builder{plan};
  const std::uint32_t components = r.u32();
  require_count(r, components, 4, "component");
  builder.components().reserve(components);
  for (std::uint32_t i = 0; i < components; ++i) {
    builder.components().push_back(read_component(r));
  }
  const std::uint32_t bindings = r.u32();
  require_count(r, bindings, 4, "binding");
  builder.bindings().reserve(bindings);
  for (std::uint32_t i = 0; i < bindings; ++i) {
    builder.bindings().push_back(read_binding(r));
  }
  const std::uint32_t areas = r.u32();
  require_count(r, areas, 4, "area");
  builder.areas().reserve(areas);
  for (std::uint32_t i = 0; i < areas; ++i) {
    WireReader b = r.block();
    model::AreaSpec area;
    area.name = b.str();
    area.type = static_cast<model::AreaType>(b.u8());
    area.size_bytes = static_cast<std::size_t>(b.u64());
    builder.areas().push_back(std::move(area));
  }
  const std::uint32_t modes = r.u32();
  require_count(r, modes, 4, "mode");
  builder.modes().reserve(modes);
  for (std::uint32_t i = 0; i < modes; ++i) {
    builder.modes().push_back(read_mode(r));
  }
  const std::uint32_t tenants = r.u32();
  require_count(r, tenants, 4, "tenant");
  builder.tenants().reserve(tenants);
  for (std::uint32_t i = 0; i < tenants; ++i) {
    builder.tenants().push_back(read_tenant(r));
  }
  builder.set_partition_count(static_cast<std::size_t>(r.u64()));
  return plan;
}

std::vector<std::uint8_t> encode_delta(const PlanDelta& delta) {
  WireWriter w;
  write_header(w, kDeltaMagic);
  w.u32(static_cast<std::uint32_t>(delta.add_components.size()));
  for (const auto& spec : delta.add_components) write_component(w, spec);
  w.u32(static_cast<std::uint32_t>(delta.remove_components.size()));
  for (const auto& spec : delta.remove_components) write_component(w, spec);
  w.u32(static_cast<std::uint32_t>(delta.add_bindings.size()));
  for (const auto& spec : delta.add_bindings) write_binding(w, spec);
  w.u32(static_cast<std::uint32_t>(delta.remove_bindings.size()));
  for (const auto& end : delta.remove_bindings) write_end(w, end);
  w.u32(static_cast<std::uint32_t>(delta.rebinds.size()));
  for (const auto& rb : delta.rebinds) write_rebind(w, rb);
  w.u32(static_cast<std::uint32_t>(delta.settings.size()));
  for (const auto& s : delta.settings) write_setting(w, s);
  w.u32(static_cast<std::uint32_t>(delta.protocol_changes.size()));
  for (const auto& end : delta.protocol_changes) write_end(w, end);
  return w.take();
}

PlanDelta decode_delta(const std::vector<std::uint8_t>& data) {
  WireReader r(data);
  read_header(r, kDeltaMagic, "PlanDelta");
  PlanDelta delta;
  const std::uint32_t adds = r.u32();
  require_count(r, adds, 4, "added component");
  for (std::uint32_t i = 0; i < adds; ++i) {
    delta.add_components.push_back(read_component(r));
  }
  const std::uint32_t removes = r.u32();
  require_count(r, removes, 4, "removed component");
  for (std::uint32_t i = 0; i < removes; ++i) {
    delta.remove_components.push_back(read_component(r));
  }
  const std::uint32_t add_bindings = r.u32();
  require_count(r, add_bindings, 4, "added binding");
  for (std::uint32_t i = 0; i < add_bindings; ++i) {
    delta.add_bindings.push_back(read_binding(r));
  }
  const std::uint32_t remove_bindings = r.u32();
  require_count(r, remove_bindings, 8, "removed binding");
  for (std::uint32_t i = 0; i < remove_bindings; ++i) {
    delta.remove_bindings.push_back(read_end(r));
  }
  const std::uint32_t rebinds = r.u32();
  require_count(r, rebinds, 4, "rebind");
  for (std::uint32_t i = 0; i < rebinds; ++i) {
    delta.rebinds.push_back(read_rebind(r));
  }
  const std::uint32_t settings = r.u32();
  require_count(r, settings, 4, "setting");
  for (std::uint32_t i = 0; i < settings; ++i) {
    delta.settings.push_back(read_setting(r));
  }
  const std::uint32_t protocol_changes = r.u32();
  require_count(r, protocol_changes, 8, "protocol change");
  for (std::uint32_t i = 0; i < protocol_changes; ++i) {
    delta.protocol_changes.push_back(read_end(r));
  }
  return delta;
}

}  // namespace rtcf::dist
