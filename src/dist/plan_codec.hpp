// Versioned binary serialization of the reconfiguration value types:
// model::AssemblyPlan (the cluster's unit of agreement) and
// reconfig::PlanDelta (one node's slice of a distributed transition).
//
// Design goals, in order:
//
//   1. *Round-trip exact*: decode(encode(p)) == p for every field the
//      snapshot captures — the coordinator and the nodes must agree on the
//      same plan bit for bit, and the canonical encoding doubles as the
//      agreement check (two peers compare encoded bytes instead of
//      implementing a second deep-equality).
//   2. *Truncation-safe*: any torn buffer throws WireError; a half-decoded
//      plan can never leak into a transition.
//   3. *Forward-compatible*: every record is a length-prefixed block, so a
//      version-1 decoder reads the fields it knows and skips trailing
//      fields a newer encoder appended. Incompatible changes bump
//      kCodecVersion, which the decoder rejects outright.
//
// The byte layout is specified normatively in docs/PROTOCOL.md; this
// header is the reference implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/wire.hpp"
#include "model/assembly_plan.hpp"
#include "reconfig/plan_delta.hpp"

namespace rtcf::dist {

/// Codec version stamped after the magic of every encoded plan/delta.
/// Decoders reject other versions; *compatible* evolution appends fields
/// inside existing blocks instead of bumping this. Version 2 added the
/// tenant table to encoded plans (a new top-level count, so version-1
/// decoders cannot skip it).
inline constexpr std::uint16_t kCodecVersion = 2;

/// Magic tag opening an encoded AssemblyPlan ("RTAP", little-endian).
inline constexpr std::uint32_t kPlanMagic = 0x50415452u;
/// Magic tag opening an encoded PlanDelta ("RTAD", little-endian).
inline constexpr std::uint32_t kDeltaMagic = 0x44415452u;

/// Encodes a plan into its canonical byte form.
std::vector<std::uint8_t> encode_plan(const model::AssemblyPlan& plan);
/// Decodes a plan; throws WireError on truncation, bad magic, or an
/// unsupported codec version.
model::AssemblyPlan decode_plan(const std::vector<std::uint8_t>& data);

/// Encodes a delta into its canonical byte form.
std::vector<std::uint8_t> encode_delta(const reconfig::PlanDelta& delta);
/// Decodes a delta; throws WireError on truncation, bad magic, or an
/// unsupported codec version.
reconfig::PlanDelta decode_delta(const std::vector<std::uint8_t>& data);

/// Appends one ComponentSpec block to `w` (exposed for the protocol
/// payloads that embed specs outside a whole plan).
void write_component(WireWriter& w, const model::ComponentSpec& spec);
/// Reads one ComponentSpec block.
model::ComponentSpec read_component(WireReader& r);
/// Appends one BindingSpec block to `w`.
void write_binding(WireWriter& w, const model::BindingSpec& spec);
/// Reads one BindingSpec block.
model::BindingSpec read_binding(WireReader& r);

}  // namespace rtcf::dist
