#include "dist/cluster_sim.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "dist/gateway.hpp"
#include "dist/slice.hpp"
#include "util/assert.hpp"

namespace rtcf::dist {

std::vector<NodeMirror> map_cluster(const model::Architecture& global,
                                    const validate::NodeMap& map,
                                    sim::PreemptiveScheduler& scheduler,
                                    rtsj::RelativeTime link_latency,
                                    LinkPolicy chaos) {
  RTCF_REQUIRE(scheduler.cpu_count() >= map.nodes.size(),
               "cluster mirror needs one simulated CPU per node");
  std::vector<NodeMirror> mirrors;
  mirrors.reserve(map.nodes.size());
  // Slices are mapped one node at a time; the slice architectures only
  // have to live until their tasks are registered.
  std::vector<model::Architecture> slices;
  slices.reserve(map.nodes.size());
  for (std::size_t k = 0; k < map.nodes.size(); ++k) {
    slices.push_back(slice_architecture(global, map, map.nodes[k]));
    NodeMirror mirror;
    mirror.node = map.nodes[k];
    mirror.cpu = k;
    mirror.mapping = sim::map_architecture(
        slices.back(), scheduler,
        [k](const std::string&) { return k; });
    mirrors.push_back(std::move(mirror));
  }
  // Chain bridged bindings: the exit task's completion posts an arrival
  // to the remote server task, link_latency later — one virtual clock,
  // so the cluster-wide causality is exact and replayable. The chaos
  // policy sees each delivery keyed by (route index, per-route sequence):
  // the key is stable across runs, which keeps fault schedules replayable.
  const std::vector<GatewayRoute> routes = compute_routes(global, map);
  for (std::size_t r = 0; r < routes.size(); ++r) {
    const GatewayRoute& route = routes[r];
    const std::size_t client_idx = map.node_index(route.client_node);
    const std::size_t server_idx = map.node_index(route.server_node);
    if (client_idx >= mirrors.size() || server_idx >= mirrors.size()) {
      continue;
    }
    const std::string exit_name =
        gateway_exit_name(route.client, route.port);
    if (!mirrors[client_idx].mapping.has(exit_name) ||
        !mirrors[server_idx].mapping.has(route.server)) {
      continue;  // passive endpoints map to no task
    }
    const sim::TaskId exit_task = mirrors[client_idx].mapping.task(exit_name);
    const sim::TaskId server_task =
        mirrors[server_idx].mapping.task(route.server);
    scheduler.set_on_complete(
        exit_task,
        [&scheduler, server_task, link_latency, chaos, r,
         seq = std::make_shared<std::uint64_t>(0)](
            rtsj::AbsoluteTime completion) {
          LinkFault fault;
          if (chaos) fault = chaos(r, (*seq)++);
          if (fault.drop) return;
          const rtsj::AbsoluteTime arrival =
              completion + link_latency + fault.extra_delay;
          const std::uint32_t copies = std::max<std::uint32_t>(fault.copies, 1);
          for (std::uint32_t c = 0; c < copies; ++c) {
            scheduler.post_arrival(server_task, arrival);
          }
        });
  }
  return mirrors;
}

void schedule_node_delta(sim::PreemptiveScheduler& scheduler,
                         reconfig::PlanDelta delta, NodeMirror& mirror,
                         rtsj::AbsoluteTime t, rtsj::AbsoluteTime anchor) {
  // The slice's partition numbers are node-local (single-partition
  // slices); on the shared scheduler the node's CPU is its identity.
  for (model::ComponentSpec& spec : delta.add_components) {
    spec.partition = mirror.cpu;
  }
  reconfig::schedule_plan_delta(scheduler, delta, mirror.mapping, t, anchor);
}

}  // namespace rtcf::dist
