#include "dist/cluster_sim.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>

#include "dist/gateway.hpp"
#include "dist/slice.hpp"
#include "util/assert.hpp"

namespace rtcf::dist {

namespace {

/// One bridged route's mirrored data-plane state, shared between the
/// exit-completion closure and the flush/replenish callbacks it plants.
struct SimRoute {
  sim::PreemptiveScheduler* scheduler = nullptr;
  sim::TaskId server_task = 0;
  rtsj::RelativeTime link_latency{};
  LinkPolicy chaos;
  std::size_t index = 0;
  SimDataPlane cfg;                       ///< Knobs (starvations filtered).
  std::deque<LinkFault> queue;            ///< Accepted, awaiting flush.
  std::uint64_t credits = 0;
  std::uint64_t seq = 0;
  bool armed = false;                     ///< A deadline flush is planted.

  RouteSimStats* stats() {
    return cfg.stats == nullptr ? nullptr : &(*cfg.stats)[index];
  }

  /// Starvation windows push a replenish instant to their far edge.
  rtsj::AbsoluteTime defer_past_starvation(rtsj::AbsoluteTime t) const {
    for (const SimStarvation& window : cfg.starvations) {
      if (window.route == index && t >= window.from && t < window.to) {
        t = window.to;
      }
    }
    return t;
  }

  void offer(std::shared_ptr<SimRoute> self, rtsj::AbsoluteTime t) {
    RouteSimStats* st = stats();
    if (st != nullptr) ++st->offered;
    LinkFault fault;
    if (chaos) fault = chaos(index, seq++);
    if (fault.drop) {
      if (st != nullptr) ++st->chaos_dropped;
      return;
    }
    if (cfg.route_queue_cap > 0 && queue.size() >= cfg.route_queue_cap) {
      if (st != nullptr) ++st->overflow_dropped;
      return;
    }
    queue.push_back(fault);
    if (st != nullptr) st->queued = queue.size();
    if (queue.size() >= cfg.batch_max &&
        (cfg.credit_window == 0 || credits > 0)) {
      flush(self, t);
    } else if (!armed) {
      arm(self, t);
    }
  }

  void arm(std::shared_ptr<SimRoute> self, rtsj::AbsoluteTime t) {
    armed = true;
    scheduler->schedule_callback(t + cfg.flush_interval, [self] {
      self->armed = false;
      if (!self->queue.empty()) {
        self->flush(self, self->scheduler->now());
      }
    });
  }

  void flush(std::shared_ptr<SimRoute> self, rtsj::AbsoluteTime t) {
    const std::uint64_t allowance =
        cfg.credit_window == 0
            ? queue.size()
            : std::min<std::uint64_t>(credits, queue.size());
    std::uint64_t sent = 0;
    for (; sent < allowance; ++sent) {
      const LinkFault fault = queue.front();
      queue.pop_front();
      const rtsj::AbsoluteTime arrival =
          t + link_latency + fault.extra_delay;
      const std::uint32_t copies = std::max<std::uint32_t>(fault.copies, 1);
      for (std::uint32_t c = 0; c < copies; ++c) {
        scheduler->post_arrival(server_task, arrival);
      }
    }
    RouteSimStats* st = stats();
    if (st != nullptr) st->queued = queue.size();
    if (sent > 0) {
      if (st != nullptr) {
        st->delivered += sent;
        ++st->batches;
      }
      if (cfg.credit_window > 0) {
        credits -= sent;
        // The entry side grants back what it consumed, one round trip
        // later — unless a starvation window holds the grant hostage.
        const rtsj::AbsoluteTime replenish =
            defer_past_starvation(t + link_latency + cfg.credit_rtt);
        scheduler->schedule_callback(replenish, [self, sent] {
          self->credits += sent;
          if (!self->queue.empty() && !self->armed) {
            self->arm(self, self->scheduler->now());
          }
        });
      }
    }
    // Credit-starved leftovers re-arm so the deadline path retries.
    if (!queue.empty() && !armed) arm(self, t);
  }
};

}  // namespace

std::vector<NodeMirror> map_cluster(const model::Architecture& global,
                                    const validate::NodeMap& map,
                                    sim::PreemptiveScheduler& scheduler,
                                    rtsj::RelativeTime link_latency,
                                    LinkPolicy chaos,
                                    SimDataPlane data_plane) {
  RTCF_REQUIRE(scheduler.cpu_count() >= map.nodes.size(),
               "cluster mirror needs one simulated CPU per node");
  std::vector<NodeMirror> mirrors;
  mirrors.reserve(map.nodes.size());
  // Slices are mapped one node at a time; the slice architectures only
  // have to live until their tasks are registered.
  std::vector<model::Architecture> slices;
  slices.reserve(map.nodes.size());
  for (std::size_t k = 0; k < map.nodes.size(); ++k) {
    slices.push_back(slice_architecture(global, map, map.nodes[k]));
    NodeMirror mirror;
    mirror.node = map.nodes[k];
    mirror.cpu = k;
    mirror.mapping = sim::map_architecture(
        slices.back(), scheduler,
        [k](const std::string&) { return k; });
    mirrors.push_back(std::move(mirror));
  }
  // Chain bridged bindings: the exit task's completion posts an arrival
  // to the remote server task, link_latency later — one virtual clock,
  // so the cluster-wide causality is exact and replayable. The chaos
  // policy sees each delivery keyed by (route index, per-route sequence):
  // the key is stable across runs, which keeps fault schedules replayable.
  const std::vector<GatewayRoute> routes = compute_routes(global, map);
  if (data_plane.stats != nullptr) {
    data_plane.stats->assign(routes.size(), RouteSimStats{});
  }
  for (std::size_t r = 0; r < routes.size(); ++r) {
    const GatewayRoute& route = routes[r];
    const std::size_t client_idx = map.node_index(route.client_node);
    const std::size_t server_idx = map.node_index(route.server_node);
    if (client_idx >= mirrors.size() || server_idx >= mirrors.size()) {
      continue;
    }
    const std::string exit_name =
        gateway_exit_name(route.client, route.port);
    if (!mirrors[client_idx].mapping.has(exit_name) ||
        !mirrors[server_idx].mapping.has(route.server)) {
      continue;  // passive endpoints map to no task
    }
    const sim::TaskId exit_task = mirrors[client_idx].mapping.task(exit_name);
    const sim::TaskId server_task =
        mirrors[server_idx].mapping.task(route.server);
    if (data_plane.batched()) {
      // The mirrored data plane: batching, credits, and the bounded
      // queue replayed in virtual time through scheduler callbacks.
      auto state = std::make_shared<SimRoute>();
      state->scheduler = &scheduler;
      state->server_task = server_task;
      state->link_latency = link_latency;
      state->chaos = chaos;
      state->index = r;
      state->cfg = data_plane;
      state->credits = data_plane.credit_window;
      scheduler.set_on_complete(
          exit_task, [state](rtsj::AbsoluteTime completion) {
            state->offer(state, completion);
          });
      continue;
    }
    scheduler.set_on_complete(
        exit_task,
        [&scheduler, server_task, link_latency, chaos, r,
         stats = data_plane.stats,
         seq = std::make_shared<std::uint64_t>(0)](
            rtsj::AbsoluteTime completion) {
          RouteSimStats* st = stats == nullptr ? nullptr : &(*stats)[r];
          if (st != nullptr) ++st->offered;
          LinkFault fault;
          if (chaos) fault = chaos(r, (*seq)++);
          if (fault.drop) {
            if (st != nullptr) ++st->chaos_dropped;
            return;
          }
          const rtsj::AbsoluteTime arrival =
              completion + link_latency + fault.extra_delay;
          const std::uint32_t copies = std::max<std::uint32_t>(fault.copies, 1);
          for (std::uint32_t c = 0; c < copies; ++c) {
            scheduler.post_arrival(server_task, arrival);
          }
          if (st != nullptr) ++st->delivered;
        });
  }
  return mirrors;
}

void schedule_node_delta(sim::PreemptiveScheduler& scheduler,
                         reconfig::PlanDelta delta, NodeMirror& mirror,
                         rtsj::AbsoluteTime t, rtsj::AbsoluteTime anchor) {
  // The slice's partition numbers are node-local (single-partition
  // slices); on the shared scheduler the node's CPU is its identity.
  for (model::ComponentSpec& spec : delta.add_components) {
    spec.partition = mirror.cpu;
  }
  reconfig::schedule_plan_delta(scheduler, delta, mirror.mapping, t, anchor);
}

void schedule_node_down(sim::PreemptiveScheduler& scheduler,
                        const NodeMirror& mirror, rtsj::AbsoluteTime at) {
  std::vector<sim::PreemptiveScheduler::TaskMod> mods;
  mods.reserve(mirror.mapping.tasks.size());
  for (const auto& [name, id] : mirror.mapping.tasks) {
    (void)name;
    sim::PreemptiveScheduler::TaskMod mod;
    mod.task = id;
    mod.enabled = false;
    mods.push_back(mod);
  }
  scheduler.schedule_mode_change(at, mods);
}

}  // namespace rtcf::dist
