// Virtual-time mirror of a distributed assembly: per-node mirrors sharing
// one virtual clock.
//
// Each node's slice is mapped onto its own simulated CPU of a single
// sim::PreemptiveScheduler — one clock, N nodes — so a coordinated
// transition replays as one deterministic trace: every node's PlanChange /
// ModeChange event carries the same virtual commit instant, and the
// cluster-wide schedule is bit-for-bit reproducible. Cross-node bridged
// bindings are chained through completion callbacks with a configurable
// link latency, the virtual-time stand-in for the DATA hop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "reconfig/plan_delta.hpp"
#include "reconfig/sim_mirror.hpp"
#include "sim/architecture_sim.hpp"
#include "sim/scheduler.hpp"
#include "validate/distribution.hpp"

namespace rtcf::dist {

/// One node's share of a cluster mirror.
struct NodeMirror {
  std::string node;          ///< Node name.
  std::size_t cpu = 0;       ///< Simulated CPU (= node index).
  sim::SimMapping mapping;   ///< Task ids of the node's slice.
};

/// One bridged message's fate under a chaos policy.
struct LinkFault {
  bool drop = false;                 ///< Lose the message entirely.
  std::uint32_t copies = 1;          ///< Delivered copies (2 = duplicate).
  rtsj::RelativeTime extra_delay{};  ///< Added on top of the link latency.
};

/// Per-message chaos hook for the adversity drills: consulted once per
/// bridged delivery with the route's index (compute_routes order) and the
/// message sequence number on that route. Null = a perfect network.
using LinkPolicy =
    std::function<LinkFault(std::size_t route_index, std::uint64_t seq)>;

/// Per-route counters of the mirrored data plane. The live terms form
/// the DATA-CONSERVATION identity the drills audit at any instant:
///
///   offered == delivered + chaos_dropped + overflow_dropped + queued
struct RouteSimStats {
  std::uint64_t offered = 0;     ///< Exit completions handed to the route.
  std::uint64_t delivered = 0;   ///< Messages posted to the server task
                                 ///< (a duplicated message counts once).
  std::uint64_t chaos_dropped = 0;     ///< Lost to the LinkPolicy.
  std::uint64_t overflow_dropped = 0;  ///< Drop-newest at a full queue.
  std::uint64_t batches = 0;           ///< Flushes that delivered > 0.
  std::uint64_t queued = 0;            ///< In the route queue right now.
};

/// A credit-starvation window: replenishments for `route` that would
/// land inside [from, to) arrive at `to` instead — the deterministic
/// mirror of an entry node too overloaded to grant credits.
struct SimStarvation {
  std::size_t route = 0;     ///< Route index (compute_routes order).
  rtsj::AbsoluteTime from{};
  rtsj::AbsoluteTime to{};
};

/// The virtual-time mirror of dist::DataPlane (docs/DATAPLANE.md §8):
/// per-route batching, credit windows, and bounded queues replayed on
/// the shared virtual clock. The default-constructed value reproduces
/// the historical immediate-delivery behaviour bit-for-bit (no callback
/// events, identical traces).
struct SimDataPlane {
  /// Queue depth at which a route flushes immediately; <= 1 delivers
  /// each message as it completes (the legacy path).
  std::size_t batch_max = 1;
  /// Deadline flush: a non-empty queue flushes this long after its
  /// oldest message arrived (and re-arms while credit-starved).
  rtsj::RelativeTime flush_interval{};
  /// Sender credit window; 0 = uncredited (never blocks on credit).
  std::uint64_t credit_window = 0;
  /// Credit round trip: a flush's credits return this long after the
  /// messages arrive at the server's node.
  rtsj::RelativeTime credit_rtt{};
  /// Route queue bound (drop-newest when full); 0 = unbounded.
  std::size_t route_queue_cap = 0;
  /// Credit-starvation windows (CreditStarvation drill faults).
  std::vector<SimStarvation> starvations;
  /// When set, resized to the route count and updated live.
  std::shared_ptr<std::vector<RouteSimStats>> stats;

  /// True when any knob leaves the legacy immediate-delivery path.
  bool batched() const noexcept {
    return batch_max > 1 || credit_window > 0 || route_queue_cap > 0;
  }
};

/// Maps every node's slice of `global` onto `scheduler` (which must have
/// at least map.nodes.size() CPUs): node k's tasks — including its
/// gateway exits — run on CPU k. Cross-node asynchronous bindings are
/// chained exit -> remote server with `link_latency` added to the arrival
/// instant; `chaos` (when set) may drop, duplicate, or further delay each
/// bridged message, consulted at offer time keyed by (route index, seq)
/// so fault schedules replay identically whatever the batching knobs.
/// `data_plane` mirrors the wall-clock batching/credit machinery; the
/// default reproduces immediate delivery bit-for-bit. Returns the
/// per-node mirrors in cluster order.
std::vector<NodeMirror> map_cluster(
    const model::Architecture& global, const validate::NodeMap& map,
    sim::PreemptiveScheduler& scheduler,
    rtsj::RelativeTime link_latency = rtsj::RelativeTime::zero(),
    LinkPolicy chaos = nullptr, SimDataPlane data_plane = {});

/// Schedules one node's slice delta at virtual time `t` on its mirror —
/// the virtual-time half of a coordinated commit: call it for every node
/// with the same `t` (the commit instant) and `anchor` (the run start) to
/// replay the cluster transition atomically. Added tasks are pinned to
/// the mirror's CPU.
void schedule_node_delta(sim::PreemptiveScheduler& scheduler,
                         reconfig::PlanDelta delta, NodeMirror& mirror,
                         rtsj::AbsoluteTime t, rtsj::AbsoluteTime anchor);

/// Disables every task of `mirror`'s slice at virtual time `at` — the
/// replay of an endpoint going away, whether a crash or an orderly
/// drain-leave. Arrivals after `at` are counted as disabled, which keeps
/// the conservation audit exact (no message silently lost).
void schedule_node_down(sim::PreemptiveScheduler& scheduler,
                        const NodeMirror& mirror, rtsj::AbsoluteTime at);

}  // namespace rtcf::dist
