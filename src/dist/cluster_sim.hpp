// Virtual-time mirror of a distributed assembly: per-node mirrors sharing
// one virtual clock.
//
// Each node's slice is mapped onto its own simulated CPU of a single
// sim::PreemptiveScheduler — one clock, N nodes — so a coordinated
// transition replays as one deterministic trace: every node's PlanChange /
// ModeChange event carries the same virtual commit instant, and the
// cluster-wide schedule is bit-for-bit reproducible. Cross-node bridged
// bindings are chained through completion callbacks with a configurable
// link latency, the virtual-time stand-in for the DATA hop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "reconfig/plan_delta.hpp"
#include "reconfig/sim_mirror.hpp"
#include "sim/architecture_sim.hpp"
#include "sim/scheduler.hpp"
#include "validate/distribution.hpp"

namespace rtcf::dist {

/// One node's share of a cluster mirror.
struct NodeMirror {
  std::string node;          ///< Node name.
  std::size_t cpu = 0;       ///< Simulated CPU (= node index).
  sim::SimMapping mapping;   ///< Task ids of the node's slice.
};

/// One bridged message's fate under a chaos policy.
struct LinkFault {
  bool drop = false;                 ///< Lose the message entirely.
  std::uint32_t copies = 1;          ///< Delivered copies (2 = duplicate).
  rtsj::RelativeTime extra_delay{};  ///< Added on top of the link latency.
};

/// Per-message chaos hook for the adversity drills: consulted once per
/// bridged delivery with the route's index (compute_routes order) and the
/// message sequence number on that route. Null = a perfect network.
using LinkPolicy =
    std::function<LinkFault(std::size_t route_index, std::uint64_t seq)>;

/// Maps every node's slice of `global` onto `scheduler` (which must have
/// at least map.nodes.size() CPUs): node k's tasks — including its
/// gateway exits — run on CPU k. Cross-node asynchronous bindings are
/// chained exit -> remote server with `link_latency` added to the arrival
/// instant; `chaos` (when set) may drop, duplicate, or further delay each
/// bridged message. Returns the per-node mirrors in cluster order.
std::vector<NodeMirror> map_cluster(
    const model::Architecture& global, const validate::NodeMap& map,
    sim::PreemptiveScheduler& scheduler,
    rtsj::RelativeTime link_latency = rtsj::RelativeTime::zero(),
    LinkPolicy chaos = nullptr);

/// Schedules one node's slice delta at virtual time `t` on its mirror —
/// the virtual-time half of a coordinated commit: call it for every node
/// with the same `t` (the commit instant) and `anchor` (the run start) to
/// replay the cluster transition atomically. Added tasks are pinned to
/// the mirror's CPU.
void schedule_node_delta(sim::PreemptiveScheduler& scheduler,
                         reconfig::PlanDelta delta, NodeMirror& mirror,
                         rtsj::AbsoluteTime t, rtsj::AbsoluteTime anchor);

}  // namespace rtcf::dist
