#include "dist/batch_view.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace rtcf::dist {

void write_message_into(SpanWriter& w, const comm::Message& m) {
  const std::size_t block = w.begin_block();
  w.u32(m.type_id);
  w.u32(m.size);
  w.i64(m.timestamp_ns);
  w.u64(m.sequence);
  w.u32(static_cast<std::uint32_t>(comm::Message::kPayloadCapacity));
  w.raw(reinterpret_cast<const std::uint8_t*>(m.payload),
        comm::Message::kPayloadCapacity);
  w.end_block(block);
}

namespace {

void write_str_view(SpanWriter& w, std::string_view v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  w.raw(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
}

comm::Message decode_message(WireReader& r) {
  WireReader b = r.block();
  comm::Message m;
  m.type_id = b.u32();
  m.size = b.u32();
  m.timestamp_ns = b.i64();
  m.sequence = b.u64();
  const std::uint32_t length = b.u32();
  const std::uint8_t* payload = b.raw(length);
  const std::size_t count =
      std::min<std::size_t>(length, comm::Message::kPayloadCapacity);
  std::memcpy(m.payload, payload, count);
  return m;
}

}  // namespace

void encode_data_payload(SpanWriter& w, std::string_view client,
                         std::string_view port, const comm::Message& m) {
  write_str_view(w, client);
  write_str_view(w, port);
  write_message_into(w, m);
}

void encode_credit_payload(SpanWriter& w, std::string_view client,
                           std::string_view port, std::uint64_t credits) {
  write_str_view(w, client);
  write_str_view(w, port);
  w.u64(credits);
}

BatchSpanEncoder::BatchSpanEncoder(WireSpan span, std::uint32_t route_count)
    : writer_(span) {
  writer_.u32(route_count);
}

void BatchSpanEncoder::begin_route(std::string_view client,
                                   std::string_view port,
                                   std::uint32_t messages) {
  route_token_ = writer_.begin_block();
  write_str_view(writer_, client);
  write_str_view(writer_, port);
  writer_.u32(messages);
  in_route_ = true;
}

void BatchSpanEncoder::add_message(const comm::Message& m) {
  write_message_into(writer_, m);
}

void BatchSpanEncoder::end_route() {
  writer_.end_block(route_token_);
  in_route_ = false;
}

BatchView::BatchView(const std::uint8_t* data, std::size_t size)
    : reader_(data, size) {
  route_count_ = reader_.u32();
  if (static_cast<std::uint64_t>(route_count_) * 4 > reader_.remaining()) {
    throw WireError("implausible batch route count " +
                    std::to_string(route_count_));
  }
  routes_left_ = route_count_;
}

bool BatchView::next_route(Route& out) {
  if (routes_left_ == 0) return false;
  --routes_left_;
  route_reader_ = reader_.block();
  out.client = route_reader_.str_view();
  out.port = route_reader_.str_view();
  out.messages = route_reader_.u32();
  if (static_cast<std::uint64_t>(out.messages) * 4 >
      route_reader_.remaining()) {
    throw WireError("implausible batch message count " +
                    std::to_string(out.messages));
  }
  messages_left_ = out.messages;
  return true;
}

void BatchView::next_message(comm::Message& out) {
  if (messages_left_ == 0) {
    throw WireError("batch route has no further messages");
  }
  --messages_left_;
  out = decode_message(route_reader_);
}

std::size_t batch_message_count(const std::uint8_t* data, std::size_t size) {
  // Walks every field a real decode would read but copies nothing: the
  // point is to reject a malformed frame before it is deferred, not to
  // produce messages.
  WireReader r(data, size);
  const std::uint32_t routes = r.u32();
  if (static_cast<std::uint64_t>(routes) * 4 > r.remaining()) {
    throw WireError("implausible batch route count " + std::to_string(routes));
  }
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < routes; ++i) {
    WireReader b = r.block();
    b.str_view();
    b.str_view();
    const std::uint32_t messages = b.u32();
    if (static_cast<std::uint64_t>(messages) * 4 > b.remaining()) {
      throw WireError("implausible batch message count " +
                      std::to_string(messages));
    }
    for (std::uint32_t m = 0; m < messages; ++m) {
      WireReader mb = b.block();
      mb.u32();
      mb.u32();
      mb.i64();
      mb.u64();
      mb.raw(mb.u32());
    }
    total += messages;
  }
  return total;
}

}  // namespace rtcf::dist
