// The gateway data plane: per-route batching and credit-based flow
// control for bridged asynchronous bindings (docs/DATAPLANE.md is the
// normative spec).
//
// PR-sized history: the first data plane sent one DATA frame — one
// channel write, one syscall on TCP — per forwarded message. This class
// replaces that hot path. Exit gateways offer() messages into bounded
// per-route queues; flush() coalesces everything pending toward a peer
// into one BATCH frame per channel, triggered by queue depth (batch_max)
// or age (flush_interval). A per-route credit window caps how many
// messages may be on the wire ahead of the consuming entry gateway: the
// entry side grants credits back (CREDIT frames) as it injects, so a slow
// node backpressures the bridge into the route queue, and overflow is
// decided *at the route* (drop-newest, mirroring the local bounded
// buffer's policy) instead of inside a wedged TCP write.
//
// Peers that never announced protocol version 3 in their HELLO fall back
// to the per-message DATA path — no batching, no credits — so a v3 node
// interoperates with a v2 cluster frame-for-frame.
//
// Threading discipline (the channel contracts depend on it): every
// channel WRITE — batch flush, legacy DATA send, CREDIT grant — happens
// on the executive thread (offer/flush from the launcher boundary hook,
// note_injected from the inbox drain, or the single-threaded stop()
// drain). The serve thread only tops up credits (on_credit) and version
// facts (set_peer_version) under the internal mutex. One writer per
// channel is exactly what keeps the shm-ring transport SPSC.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "comm/buffer_pool.hpp"
#include "comm/channel.hpp"
#include "comm/message.hpp"
#include "dist/protocol.hpp"
#include "monitor/runtime_monitor.hpp"

namespace rtcf::dist {

/// Data-plane tuning knobs (docs/DATAPLANE.md §6 is the runbook).
struct DataPlaneConfig {
  /// Queue depth at which a route flushes immediately (size flush).
  std::size_t batch_max = 32;
  /// Maximum age of a queued message before the next flush(false) sends
  /// it (deadline flush) — the latency bound batching may add.
  rtsj::RelativeTime flush_interval = rtsj::RelativeTime::microseconds(200);
  /// Initial per-route sender credit: messages allowed on the wire ahead
  /// of the entry side's grants. Zero disables sending entirely (useful
  /// only in tests).
  std::uint64_t credit_window = 256;
  /// Bound on a route's send queue; the newest message is dropped when
  /// it is full (the bounded-buffer drop-newest policy, decided here).
  std::size_t route_queue_cap = 1024;
};

/// Point-in-time counter snapshot (also mirrored into the runtime
/// monitor's DataPlaneCounters when attached).
struct DataPlaneStats {
  std::uint64_t offered = 0;        ///< Messages handed to offer().
  std::uint64_t sent = 0;           ///< Messages put on a channel.
  std::uint64_t batches = 0;        ///< BATCH frames written.
  std::uint64_t legacy_sends = 0;   ///< Per-message DATA frames (v2 peers).
  std::uint64_t size_flushes = 0;   ///< Route flushes on batch_max.
  std::uint64_t deadline_flushes = 0;  ///< Route flushes on flush_interval.
  std::uint64_t overflow_drops = 0;    ///< Drop-newest at a full queue.
  std::uint64_t send_failures = 0;     ///< Channel writes refused.
  std::uint64_t credits_granted = 0;   ///< Credits granted entry-side.
  std::uint64_t peak_queue_depth = 0;  ///< Largest single-route queue seen.
  std::uint64_t queued = 0;            ///< Messages queued right now.
  // Zero-copy path (docs/DATAPLANE.md "Zero-copy path"):
  std::uint64_t ring_frames = 0;   ///< Frames encoded directly in a ring.
  std::uint64_t bytes_copied = 0;  ///< Payload bytes staged in a user-space
                                   ///< buffer before the transport (0 for
                                   ///< in-ring frames).
  std::uint64_t pool_hits = 0;       ///< BufferPool freelist hits.
  std::uint64_t pool_misses = 0;     ///< BufferPool allocations.
  std::uint64_t pool_high_water = 0; ///< Max pool buffers outstanding.
};

/// The per-node data plane: exit routes (sending side) and entry routes
/// (credit-granting side), owned by the NodeRuntime.
class DataPlane {
 public:
  /// What became of an offered message.
  enum class Offer {
    Sent,     ///< On the wire (flushed immediately or legacy DATA).
    Queued,   ///< Accepted, waiting for a flush or for credit.
    Dropped,  ///< Unrouted, queue full, or the channel refused it.
  };

  /// A data plane with the given knobs.
  explicit DataPlane(DataPlaneConfig config = {}) : config_(config) {}

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  /// Attaches the runtime monitor's counter block; every stat increment
  /// is mirrored there from now on. Pass nullptr to detach.
  void set_counters(monitor::DataPlaneCounters* counters);

  /// Records the protocol version `peer` announced in its HELLO. Routes
  /// toward unannounced peers assume version 2 (per-message DATA).
  void set_peer_version(const std::string& peer, std::uint16_t version);
  /// The recorded version of `peer` (2 when never announced).
  std::uint16_t peer_version(const std::string& peer) const;

  /// Deactivates every route (null channel) without forgetting it: queued
  /// messages and credit balances survive a route-table refresh, and
  /// add_route() with the same (client, port) re-activates in place.
  void clear_routes();
  /// Registers/re-activates the exit route for (client, port) toward
  /// `peer` over `channel` (null = stays inactive). Returns the stable
  /// route id offer() takes.
  std::size_t add_route(const std::string& client, const std::string& port,
                        std::shared_ptr<comm::Channel> channel,
                        const std::string& peer);
  /// Registers/re-activates the entry route for (client, port): grants
  /// flow back toward `peer` over `reverse` (the channel to the client's
  /// node). Returns the id note_injected() takes.
  std::size_t add_entry_route(const std::string& client,
                              const std::string& port,
                              std::shared_ptr<comm::Channel> reverse,
                              const std::string& peer);

  /// Offers one message to an exit route (executive thread). May write
  /// the channel (legacy path, or a size-triggered flush).
  Offer offer(std::size_t route, const comm::Message& message);

  /// Flushes pending queues (executive thread): every route whose oldest
  /// queued message is older than flush_interval — or every route with
  /// anything pending when `force` — sends up to its credit balance
  /// (`force` ignores credits: the stop() drain must empty the node).
  /// Routes flushing toward the same channel share one BATCH frame.
  /// Returns the number of messages put on the wire.
  std::size_t flush(bool force);

  /// Credits granted by a peer's entry side (serve thread; no sends).
  void on_credit(const CreditPayload& credit);

  /// Records `n` messages consumed from the wire on an entry route
  /// (executive thread); sends a CREDIT grant once enough accumulate
  /// (max(1, credit_window / 2) — replenish-on-consume).
  void note_injected(std::size_t entry_route, std::uint64_t n = 1);

  /// Sends every pending grant regardless of threshold (stop() drain).
  /// Returns the number of CREDIT frames written.
  std::size_t grant_all();

  /// Counter snapshot (any thread).
  DataPlaneStats stats() const;
  /// The knobs this plane runs with.
  const DataPlaneConfig& config() const noexcept { return config_; }
  /// The payload buffer pool (shared with the owning runtime's receive
  /// path so send and inbox buffers recycle through one arena).
  comm::BufferPool& pool() noexcept { return pool_; }

 private:
  struct ExitRoute {
    std::string client;
    std::string port;
    std::string peer;
    std::shared_ptr<comm::Channel> channel;
    std::deque<comm::Message> queue;
    std::uint64_t credits = 0;
    rtsj::AbsoluteTime oldest{};  ///< Enqueue time of queue.front().
    bool active = false;
    /// The peer's announced protocol version, cached here so offer()
    /// never does a map lookup per message; refreshed by add_route() and
    /// set_peer_version().
    std::uint16_t protocol = 2;
  };

  struct EntryRoute {
    std::string client;
    std::string port;
    std::string peer;
    std::shared_ptr<comm::Channel> reverse;
    std::uint64_t pending = 0;  ///< Consumed but not yet granted.
    bool active = false;
  };

  /// One route's share of a staged flush: which route and how many
  /// messages from its queue front. Routes are staged by *index* — route
  /// storage may move if add_route grows exits_, indices are stable.
  struct StagedRoute {
    std::size_t route = 0;
    std::size_t take = 0;
  };

  /// One channel's share of a flush: every staged route that will encode
  /// into a single BATCH frame (mutex held). The group vector and its
  /// route vectors are reused across flushes so steady-state flushing
  /// does not allocate.
  struct FlushGroup {
    std::shared_ptr<comm::Channel> channel;
    std::vector<StagedRoute> routes;
    std::size_t messages = 0;
    std::size_t payload_bytes = 0;  ///< Sum of the routes' encoded sizes.
  };

  /// The active flush group for `channel`, creating one if needed
  /// (mutex held).
  FlushGroup& group_for(const std::shared_ptr<comm::Channel>& channel);
  /// Stages up to `limit` messages of `route` into its channel's group
  /// (mutex held): books credits/queued, but leaves the messages on the
  /// queue until send_groups() encodes them straight into the frame.
  /// Returns how many it staged.
  std::size_t stage_route(std::size_t route_index, std::size_t limit);
  /// Encodes and sends one BATCH frame per staged group — into reserved
  /// transport memory when the channel supports it, else through a pooled
  /// buffer — and books the stats (mutex held). Returns messages sent.
  std::size_t send_groups();
  /// Encodes one frame of `payload_size` bytes via `encode(WireSpan) ->
  /// used` and sends it with zero avoidable copies: reserved transport
  /// memory first, pooled buffer + scatter-gather send as the fallback
  /// (mutex held).
  template <typename Encode>
  bool send_encoded(comm::Channel& channel, FrameType type,
                    std::size_t payload_size, Encode&& encode);
  /// Sends one entry route's pending grant (mutex held). True on success.
  bool send_grant(EntryRoute& route);
  /// Mirrors the pool's counters into the attached monitor (mutex held).
  void sync_pool_counters();

  const DataPlaneConfig config_;
  mutable std::mutex mutex_;
  std::vector<ExitRoute> exits_;
  std::vector<EntryRoute> entries_;
  std::map<std::pair<std::string, std::string>, std::size_t> exit_index_;
  std::map<std::pair<std::string, std::string>, std::size_t> entry_index_;
  std::map<std::string, std::uint16_t> peer_versions_;
  /// Staged flush groups; `group_count_` of them are live. Elements keep
  /// their vector capacity between flushes (a clear() would free it).
  std::vector<FlushGroup> groups_;
  std::size_t group_count_ = 0;
  comm::BufferPool pool_;
  DataPlaneStats stats_;
  monitor::DataPlaneCounters* counters_ = nullptr;
};

}  // namespace rtcf::dist
