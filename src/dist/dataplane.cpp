#include "dist/dataplane.hpp"

#include <algorithm>

namespace rtcf::dist {

namespace {
constexpr std::uint16_t kLegacyVersion = 2;
}  // namespace

void DataPlane::set_counters(monitor::DataPlaneCounters* counters) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_ = counters;
}

void DataPlane::set_peer_version(const std::string& peer,
                                 std::uint16_t version) {
  const std::lock_guard<std::mutex> lock(mutex_);
  peer_versions_[peer] = version;
}

std::uint16_t DataPlane::peer_version(const std::string& peer) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = peer_versions_.find(peer);
  return it == peer_versions_.end() ? kLegacyVersion : it->second;
}

void DataPlane::clear_routes() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (ExitRoute& route : exits_) {
    route.active = false;
    route.channel = nullptr;
  }
  for (EntryRoute& route : entries_) {
    route.active = false;
    route.reverse = nullptr;
  }
}

std::size_t DataPlane::add_route(const std::string& client,
                                 const std::string& port,
                                 std::shared_ptr<comm::Channel> channel,
                                 const std::string& peer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(client, port);
  auto it = exit_index_.find(key);
  if (it == exit_index_.end()) {
    ExitRoute route;
    route.client = client;
    route.port = port;
    route.credits = config_.credit_window;
    exits_.push_back(std::move(route));
    it = exit_index_.emplace(key, exits_.size() - 1).first;
  }
  ExitRoute& route = exits_[it->second];
  route.peer = peer;
  route.channel = std::move(channel);
  route.active = route.channel != nullptr;
  return it->second;
}

std::size_t DataPlane::add_entry_route(const std::string& client,
                                       const std::string& port,
                                       std::shared_ptr<comm::Channel> reverse,
                                       const std::string& peer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(client, port);
  auto it = entry_index_.find(key);
  if (it == entry_index_.end()) {
    EntryRoute route;
    route.client = client;
    route.port = port;
    entries_.push_back(std::move(route));
    it = entry_index_.emplace(key, entries_.size() - 1).first;
  }
  EntryRoute& route = entries_[it->second];
  route.peer = peer;
  route.reverse = std::move(reverse);
  route.active = route.reverse != nullptr;
  return it->second;
}

DataPlane::Offer DataPlane::offer(std::size_t route_id,
                                  const comm::Message& message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.offered += 1;
  if (counters_ != nullptr) {
    counters_->offered.fetch_add(1, std::memory_order_relaxed);
  }
  if (route_id >= exits_.size()) return Offer::Dropped;
  ExitRoute& route = exits_[route_id];
  if (!route.active || route.channel == nullptr) return Offer::Dropped;

  const auto vit = peer_versions_.find(route.peer);
  const std::uint16_t version =
      vit == peer_versions_.end() ? kLegacyVersion : vit->second;
  if (version < kProtocolVersion) {
    // Pre-v3 peer: the original one-frame-per-message path, verbatim.
    DataPayload payload;
    payload.client = route.client;
    payload.port = route.port;
    payload.message = message;
    if (!route.channel->send(make_data(payload))) {
      stats_.send_failures += 1;
      if (counters_ != nullptr) {
        counters_->send_failures.fetch_add(1, std::memory_order_relaxed);
      }
      return Offer::Dropped;
    }
    stats_.sent += 1;
    stats_.legacy_sends += 1;
    if (counters_ != nullptr) {
      counters_->sent.fetch_add(1, std::memory_order_relaxed);
      counters_->legacy_sends.fetch_add(1, std::memory_order_relaxed);
    }
    return Offer::Sent;
  }

  if (route.queue.size() >= config_.route_queue_cap) {
    // Overflow is decided here, at the route: drop-newest, the same
    // policy the local bounded buffer applies (docs/DATAPLANE.md §4).
    stats_.overflow_drops += 1;
    if (counters_ != nullptr) {
      counters_->overflow_drops.fetch_add(1, std::memory_order_relaxed);
    }
    return Offer::Dropped;
  }
  if (route.queue.empty()) {
    route.oldest = rtsj::SteadyClock::instance().now();
  }
  route.queue.push_back(message);
  stats_.queued += 1;
  stats_.peak_queue_depth =
      std::max<std::uint64_t>(stats_.peak_queue_depth, route.queue.size());
  if (route.queue.size() >= config_.batch_max && route.credits > 0) {
    stats_.size_flushes += 1;
    if (counters_ != nullptr) {
      counters_->size_flushes.fetch_add(1, std::memory_order_relaxed);
    }
    std::map<comm::Channel*, PendingFlush> groups;
    stage_route(route, route.credits, groups);
    send_groups(groups);
    return route.queue.empty() ? Offer::Sent : Offer::Queued;
  }
  return Offer::Queued;
}

std::size_t DataPlane::stage_route(
    ExitRoute& route, std::size_t limit,
    std::map<comm::Channel*, PendingFlush>& groups) {
  const std::size_t take = std::min(route.queue.size(), limit);
  if (take == 0) return 0;
  PendingFlush& group = groups[route.channel.get()];
  group.channel = route.channel;
  BatchRoute entry;
  entry.client = route.client;
  entry.port = route.port;
  entry.messages.assign(route.queue.begin(),
                        route.queue.begin() +
                            static_cast<std::ptrdiff_t>(take));
  group.payload.routes.push_back(std::move(entry));
  group.messages += take;
  route.queue.erase(route.queue.begin(),
                    route.queue.begin() + static_cast<std::ptrdiff_t>(take));
  route.credits -= std::min<std::uint64_t>(route.credits, take);
  stats_.queued -= take;
  if (!route.queue.empty()) {
    route.oldest = rtsj::SteadyClock::instance().now();
  }
  return take;
}

std::size_t DataPlane::send_groups(
    std::map<comm::Channel*, PendingFlush>& groups) {
  std::size_t sent = 0;
  for (auto& [raw, group] : groups) {
    (void)raw;
    if (group.channel->send(make_batch(group.payload))) {
      sent += group.messages;
      stats_.sent += group.messages;
      stats_.batches += 1;
      if (counters_ != nullptr) {
        counters_->sent.fetch_add(group.messages, std::memory_order_relaxed);
        counters_->batches.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      stats_.send_failures += 1;
      if (counters_ != nullptr) {
        counters_->send_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return sent;
}

std::size_t DataPlane::flush(bool force) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const rtsj::AbsoluteTime now = rtsj::SteadyClock::instance().now();
  std::map<comm::Channel*, PendingFlush> groups;
  for (ExitRoute& route : exits_) {
    if (route.queue.empty() || route.channel == nullptr) continue;
    if (!force && now - route.oldest < config_.flush_interval) continue;
    // The stop() drain (`force`) must empty the node even when the peer's
    // grants are still in flight, so it ignores the credit balance; a
    // deadline flush respects it — that is the backpressure.
    const std::size_t limit =
        force ? route.queue.size()
              : static_cast<std::size_t>(
                    std::min<std::uint64_t>(route.credits, route.queue.size()));
    if (limit == 0) continue;
    if (!force) {
      stats_.deadline_flushes += 1;
      if (counters_ != nullptr) {
        counters_->deadline_flushes.fetch_add(1, std::memory_order_relaxed);
      }
    }
    stage_route(route, limit, groups);
  }
  return send_groups(groups);
}

void DataPlane::on_credit(const CreditPayload& credit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = exit_index_.find({credit.client, credit.port});
  if (it == exit_index_.end()) return;
  exits_[it->second].credits += credit.credits;
}

void DataPlane::note_injected(std::size_t entry_route, std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (entry_route >= entries_.size()) return;
  EntryRoute& route = entries_[entry_route];
  route.pending += n;
  const std::uint64_t threshold =
      std::max<std::uint64_t>(1, config_.credit_window / 2);
  if (route.pending >= threshold && route.active &&
      route.reverse != nullptr) {
    send_grant(route);
  }
}

std::size_t DataPlane::grant_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t grants = 0;
  for (EntryRoute& route : entries_) {
    if (route.pending == 0 || route.reverse == nullptr) continue;
    if (send_grant(route)) ++grants;
  }
  return grants;
}

bool DataPlane::send_grant(EntryRoute& route) {
  CreditPayload payload;
  payload.client = route.client;
  payload.port = route.port;
  payload.credits = route.pending;
  if (!route.reverse->send(make_credit(payload))) {
    stats_.send_failures += 1;
    if (counters_ != nullptr) {
      counters_->send_failures.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  stats_.credits_granted += route.pending;
  if (counters_ != nullptr) {
    counters_->credits_granted.fetch_add(route.pending,
                                         std::memory_order_relaxed);
  }
  route.pending = 0;
  return true;
}

DataPlaneStats DataPlane::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rtcf::dist
