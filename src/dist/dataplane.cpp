#include "dist/dataplane.hpp"

#include <algorithm>

#include "dist/batch_view.hpp"

namespace rtcf::dist {

namespace {
constexpr std::uint16_t kLegacyVersion = 2;
}  // namespace

void DataPlane::set_counters(monitor::DataPlaneCounters* counters) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_ = counters;
}

void DataPlane::set_peer_version(const std::string& peer,
                                 std::uint16_t version) {
  const std::lock_guard<std::mutex> lock(mutex_);
  peer_versions_[peer] = version;
  // Refresh the cached copy on every route toward this peer — a HELLO
  // can upgrade a peer mid-run (the unannounced-peer-upgrades test) and
  // offer() only ever reads the cache.
  for (ExitRoute& route : exits_) {
    if (route.peer == peer) route.protocol = version;
  }
}

std::uint16_t DataPlane::peer_version(const std::string& peer) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = peer_versions_.find(peer);
  return it == peer_versions_.end() ? kLegacyVersion : it->second;
}

void DataPlane::clear_routes() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (ExitRoute& route : exits_) {
    route.active = false;
    route.channel = nullptr;
  }
  for (EntryRoute& route : entries_) {
    route.active = false;
    route.reverse = nullptr;
  }
}

std::size_t DataPlane::add_route(const std::string& client,
                                 const std::string& port,
                                 std::shared_ptr<comm::Channel> channel,
                                 const std::string& peer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(client, port);
  auto it = exit_index_.find(key);
  if (it == exit_index_.end()) {
    ExitRoute route;
    route.client = client;
    route.port = port;
    route.credits = config_.credit_window;
    exits_.push_back(std::move(route));
    it = exit_index_.emplace(key, exits_.size() - 1).first;
  }
  ExitRoute& route = exits_[it->second];
  route.peer = peer;
  route.channel = std::move(channel);
  route.active = route.channel != nullptr;
  const auto vit = peer_versions_.find(peer);
  route.protocol = vit == peer_versions_.end() ? kLegacyVersion : vit->second;
  return it->second;
}

std::size_t DataPlane::add_entry_route(const std::string& client,
                                       const std::string& port,
                                       std::shared_ptr<comm::Channel> reverse,
                                       const std::string& peer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(client, port);
  auto it = entry_index_.find(key);
  if (it == entry_index_.end()) {
    EntryRoute route;
    route.client = client;
    route.port = port;
    entries_.push_back(std::move(route));
    it = entry_index_.emplace(key, entries_.size() - 1).first;
  }
  EntryRoute& route = entries_[it->second];
  route.peer = peer;
  route.reverse = std::move(reverse);
  route.active = route.reverse != nullptr;
  return it->second;
}

template <typename Encode>
bool DataPlane::send_encoded(comm::Channel& channel, FrameType type,
                             std::size_t payload_size, Encode&& encode) {
  const std::uint16_t type16 = static_cast<std::uint16_t>(type);
  comm::FrameReservation reservation;
  if (channel.reserve_frame(type16, payload_size, reservation)) {
    // The frame is encoded where the transport wants it — in the shm
    // ring itself when the reservation did not wrap. commit publishes it.
    const std::size_t used =
        encode(WireSpan{reservation.data, reservation.size});
    const bool ok = channel.commit_frame(used);
    if (ok) {
      if (reservation.in_place) {
        stats_.ring_frames += 1;
        if (counters_ != nullptr) {
          counters_->ring_frames.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        stats_.bytes_copied += used;
        if (counters_ != nullptr) {
          counters_->bytes_copied.fetch_add(used, std::memory_order_relaxed);
        }
      }
    }
    return ok;
  }
  // No reservations on this transport: encode into a pooled buffer and
  // hand the span to the scatter-gather send — one staging copy total,
  // zero allocations once the pool is warm.
  std::vector<std::uint8_t> buffer = pool_.acquire(payload_size);
  const std::size_t used = encode(WireSpan{buffer.data(), buffer.size()});
  const comm::ByteSpan span{buffer.data(), used};
  const bool ok = channel.send_spans(type16, &span, 1);
  stats_.bytes_copied += used;
  if (counters_ != nullptr) {
    counters_->bytes_copied.fetch_add(used, std::memory_order_relaxed);
  }
  pool_.release(std::move(buffer));
  sync_pool_counters();
  return ok;
}

void DataPlane::sync_pool_counters() {
  if (counters_ == nullptr) return;
  const comm::BufferPool::Stats pool = pool_.stats();
  counters_->pool_hits.store(pool.hits, std::memory_order_relaxed);
  counters_->pool_misses.store(pool.misses, std::memory_order_relaxed);
  counters_->pool_high_water.store(pool.high_water,
                                   std::memory_order_relaxed);
}

DataPlane::Offer DataPlane::offer(std::size_t route_id,
                                  const comm::Message& message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.offered += 1;
  if (counters_ != nullptr) {
    counters_->offered.fetch_add(1, std::memory_order_relaxed);
  }
  if (route_id >= exits_.size()) return Offer::Dropped;
  ExitRoute& route = exits_[route_id];
  if (!route.active || route.channel == nullptr) return Offer::Dropped;

  if (route.protocol < kBatchProtocolVersion) {
    // Pre-v3 peer: the original one-frame-per-message path — same wire
    // bytes, but encoded into a pooled buffer instead of a fresh vector.
    const bool ok = send_encoded(
        *route.channel, FrameType::Data,
        data_payload_wire_bytes(route.client, route.port),
        [&](WireSpan span) {
          SpanWriter w(span);
          encode_data_payload(w, route.client, route.port, message);
          return w.used();
        });
    if (!ok) {
      stats_.send_failures += 1;
      if (counters_ != nullptr) {
        counters_->send_failures.fetch_add(1, std::memory_order_relaxed);
      }
      return Offer::Dropped;
    }
    stats_.sent += 1;
    stats_.legacy_sends += 1;
    if (counters_ != nullptr) {
      counters_->sent.fetch_add(1, std::memory_order_relaxed);
      counters_->legacy_sends.fetch_add(1, std::memory_order_relaxed);
    }
    return Offer::Sent;
  }

  if (route.queue.size() >= config_.route_queue_cap) {
    // Overflow is decided here, at the route: drop-newest, the same
    // policy the local bounded buffer applies (docs/DATAPLANE.md §4).
    stats_.overflow_drops += 1;
    if (counters_ != nullptr) {
      counters_->overflow_drops.fetch_add(1, std::memory_order_relaxed);
    }
    return Offer::Dropped;
  }
  if (route.queue.empty()) {
    route.oldest = rtsj::SteadyClock::instance().now();
  }
  route.queue.push_back(message);
  stats_.queued += 1;
  stats_.peak_queue_depth =
      std::max<std::uint64_t>(stats_.peak_queue_depth, route.queue.size());
  if (route.queue.size() >= config_.batch_max && route.credits > 0) {
    stats_.size_flushes += 1;
    if (counters_ != nullptr) {
      counters_->size_flushes.fetch_add(1, std::memory_order_relaxed);
    }
    stage_route(route_id, route.credits);
    send_groups();
    return exits_[route_id].queue.empty() ? Offer::Sent : Offer::Queued;
  }
  return Offer::Queued;
}

DataPlane::FlushGroup& DataPlane::group_for(
    const std::shared_ptr<comm::Channel>& channel) {
  for (std::size_t i = 0; i < group_count_; ++i) {
    if (groups_[i].channel.get() == channel.get()) return groups_[i];
  }
  if (group_count_ == groups_.size()) groups_.emplace_back();
  FlushGroup& group = groups_[group_count_++];
  group.channel = channel;
  group.routes.clear();
  group.messages = 0;
  group.payload_bytes = 0;
  return group;
}

std::size_t DataPlane::stage_route(std::size_t route_index,
                                   std::size_t limit) {
  ExitRoute& route = exits_[route_index];
  const std::size_t take = std::min(route.queue.size(), limit);
  if (take == 0) return 0;
  FlushGroup& group = group_for(route.channel);
  group.routes.push_back(StagedRoute{route_index, take});
  group.messages += take;
  group.payload_bytes +=
      batch_route_wire_bytes(route.client, route.port, take);
  route.credits -= std::min<std::uint64_t>(route.credits, take);
  stats_.queued -= take;
  return take;
}

std::size_t DataPlane::send_groups() {
  std::size_t sent = 0;
  for (std::size_t gi = 0; gi < group_count_; ++gi) {
    FlushGroup& group = groups_[gi];
    const bool ok = send_encoded(
        *group.channel, FrameType::Batch,
        kBatchHeaderBytes + group.payload_bytes, [&](WireSpan span) {
          // Drain each staged route's queue front straight into the
          // frame: the message's only copy is queue -> transport memory.
          BatchSpanEncoder enc(span,
                               static_cast<std::uint32_t>(
                                   group.routes.size()));
          for (const StagedRoute& staged : group.routes) {
            ExitRoute& route = exits_[staged.route];
            enc.begin_route(route.client, route.port,
                            static_cast<std::uint32_t>(staged.take));
            for (std::size_t i = 0; i < staged.take; ++i) {
              enc.add_message(route.queue[i]);
            }
            enc.end_route();
            route.queue.erase(route.queue.begin(),
                              route.queue.begin() +
                                  static_cast<std::ptrdiff_t>(staged.take));
            if (!route.queue.empty()) {
              route.oldest = rtsj::SteadyClock::instance().now();
            }
          }
          return enc.used();
        });
    if (ok) {
      sent += group.messages;
      stats_.sent += group.messages;
      stats_.batches += 1;
      if (counters_ != nullptr) {
        counters_->sent.fetch_add(group.messages, std::memory_order_relaxed);
        counters_->batches.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      stats_.send_failures += 1;
      if (counters_ != nullptr) {
        counters_->send_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    group.channel.reset();
  }
  group_count_ = 0;
  return sent;
}

std::size_t DataPlane::flush(bool force) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const rtsj::AbsoluteTime now = rtsj::SteadyClock::instance().now();
  for (std::size_t i = 0; i < exits_.size(); ++i) {
    ExitRoute& route = exits_[i];
    if (route.queue.empty() || route.channel == nullptr) continue;
    if (!force && now - route.oldest < config_.flush_interval) continue;
    // The stop() drain (`force`) must empty the node even when the peer's
    // grants are still in flight, so it ignores the credit balance; a
    // deadline flush respects it — that is the backpressure.
    const std::size_t limit =
        force ? route.queue.size()
              : static_cast<std::size_t>(
                    std::min<std::uint64_t>(route.credits, route.queue.size()));
    if (limit == 0) continue;
    if (!force) {
      stats_.deadline_flushes += 1;
      if (counters_ != nullptr) {
        counters_->deadline_flushes.fetch_add(1, std::memory_order_relaxed);
      }
    }
    stage_route(i, limit);
  }
  return send_groups();
}

void DataPlane::on_credit(const CreditPayload& credit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = exit_index_.find({credit.client, credit.port});
  if (it == exit_index_.end()) return;
  exits_[it->second].credits += credit.credits;
}

void DataPlane::note_injected(std::size_t entry_route, std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (entry_route >= entries_.size()) return;
  EntryRoute& route = entries_[entry_route];
  route.pending += n;
  const std::uint64_t threshold =
      std::max<std::uint64_t>(1, config_.credit_window / 2);
  if (route.pending >= threshold && route.active &&
      route.reverse != nullptr) {
    send_grant(route);
  }
}

std::size_t DataPlane::grant_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t grants = 0;
  for (EntryRoute& route : entries_) {
    if (route.pending == 0 || route.reverse == nullptr) continue;
    if (send_grant(route)) ++grants;
  }
  return grants;
}

bool DataPlane::send_grant(EntryRoute& route) {
  const bool ok = send_encoded(
      *route.reverse, FrameType::Credit,
      credit_payload_wire_bytes(route.client, route.port),
      [&](WireSpan span) {
        SpanWriter w(span);
        encode_credit_payload(w, route.client, route.port, route.pending);
        return w.used();
      });
  if (!ok) {
    stats_.send_failures += 1;
    if (counters_ != nullptr) {
      counters_->send_failures.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  stats_.credits_granted += route.pending;
  if (counters_ != nullptr) {
    counters_->credits_granted.fetch_add(route.pending,
                                         std::memory_order_relaxed);
  }
  route.pending = 0;
  return true;
}

DataPlaneStats DataPlane::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  DataPlaneStats s = stats_;
  const comm::BufferPool::Stats pool = pool_.stats();
  s.pool_hits = pool.hits;
  s.pool_misses = pool.misses;
  s.pool_high_water = pool.high_water;
  return s;
}

}  // namespace rtcf::dist
