// Gateway components: the synthesized bridge endpoints of cross-node
// asynchronous bindings.
//
// A cross-node binding client@A.port -> server@B.iface never appears
// verbatim in either node's slice. The slicer (dist/slice.hpp) replaces it
// with two node-local halves built from ordinary framework machinery:
//
//   node A:  client.port --async--> __gw.out.<client>.<port>   (exit)
//   node B:  __gw.in.<client>.<port> --async--> server.iface   (entry)
//
// The *exit* is an active sporadic component whose content forwards every
// delivered message as a DATA frame to the peer node. The *entry* is a
// passive component whose only job is owning a client port wired — through
// the ordinary membrane path, with its buffer, activation entry, and
// timing interceptors — into the real server; the node runtime injects
// received DATA frames by sending on that port from an executive thread.
//
// Because both halves are real components in the slice, a distributed
// reload that re-shapes cross-node wiring is just a normal plan delta per
// node (gateways appear, disappear, and rebind through the existing
// DELTA-* machinery); only the route table (which peer, which remote end)
// is distribution-specific, and the node runtime re-applies it at commit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "comm/channel.hpp"
#include "comm/content.hpp"

namespace rtcf::dist {

class DataPlane;

/// Content-class name of gateway exits (registered at static-init time).
inline constexpr const char* kGatewayExitClass = "DistGatewayExit";
/// Content-class name of gateway entries (registered at static-init time).
inline constexpr const char* kGatewayEntryClass = "DistGatewayEntry";

/// Component name of the exit half of the bridge for (client, port).
std::string gateway_exit_name(const std::string& client,
                              const std::string& port);
/// Component name of the entry half of the bridge for (client, port).
std::string gateway_entry_name(const std::string& client,
                               const std::string& port);

/// Exit content: offers every delivered message to the node's DataPlane,
/// which batches it toward the peer (or falls back to one DATA frame for
/// a v2 peer) addressed by the logical client end (client, port) — the
/// stable identity of the bridged binding. Unrouted exits (before the node
/// runtime configures them, or after an abort discarded a staged route)
/// count drops instead of sending.
class GatewayExitContent final : public comm::Content {
 public:
  /// Installs the route: messages are offered to `plane` under
  /// `route_id`. Pass a null plane to un-route.
  void set_route(DataPlane* plane, std::size_t route_id);

  /// Forwards one message (the sporadic activation body).
  void on_message(const comm::Message& message) override;

  /// Messages accepted by the data plane so far (sent or queued).
  std::uint64_t forwarded() const noexcept { return forwarded_; }
  /// Messages dropped because no route was configured, the route queue
  /// overflowed, or the channel rejected the send.
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  DataPlane* plane_ = nullptr;
  std::size_t route_id_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Entry content: a port-holder. The node runtime delivers remote messages
/// by calling inject(), which sends on the entry's single client port and
/// rides the ordinary local async path into the real server.
class GatewayEntryContent final : public comm::Content {
 public:
  /// Delivers one remote message into the local server via `port_name`.
  /// Returns false (counting a drop) when the port is unknown or unbound.
  bool inject(const std::string& port_name, const comm::Message& message);

  /// Messages injected into the local assembly so far.
  std::uint64_t injected() const noexcept { return injected_; }
  /// Messages dropped on an unknown or unbound port.
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::uint64_t injected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rtcf::dist
