// Node slicing: from one global architecture + NodeMap to per-node
// architectures with synthesized gateway bridges.
//
// The slice of node N contains:
//   * every functional component mapped to N, with its declared
//     attributes, interfaces, contract, and swappability;
//   * every non-functional composite (ThreadDomain / MemoryArea) that
//     contains at least one of those components, with the global
//     hierarchy edges between included composites preserved;
//   * every binding whose two ends live on N, verbatim;
//   * for every cross-node asynchronous binding: the node-local bridge
//     half (exit on the client's node, entry on the server's node — see
//     dist/gateway.hpp), deployed in a synthesized immortal area
//     `__gw.area` (exits in the regular-priority domain `__gw.domain`);
//   * every mode declaration, with component entries and rebinds filtered
//     to N (cluster transitions address modes by name, so every node keeps
//     every mode — possibly with an empty local component set, which is
//     how a cluster demotion shuts a whole node's components down);
//   * cross-node *synchronous* bindings are omitted — DIST-SYNC-CROSS-NODE
//     already rejects them at the global level.
//
// Determinism matters: the coordinator and the nodes both derive slices
// (at launch and per reload), and the plan-delta agreement check compares
// canonical encodings, so slicing is strictly declaration-ordered.
#pragma once

#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "model/metamodel.hpp"
#include "validate/distribution.hpp"

namespace rtcf::dist {

/// Name of the synthesized immortal area holding gateway components.
inline constexpr const char* kGatewayArea = "__gw.area";
/// Name of the synthesized regular-priority domain of gateway exits.
inline constexpr const char* kGatewayDomain = "__gw.domain";

/// Builds the slice of `global` for `node` under `map`. The result is
/// self-contained (owns all its components) and independent of `global`'s
/// lifetime. Throws std::invalid_argument for an undeclared node.
model::Architecture slice_architecture(const model::Architecture& global,
                                       const validate::NodeMap& map,
                                       const std::string& node);

/// The route table of `global` under `map`: one entry per cross-node
/// asynchronous binding, in declaration order. Shared by launch-time
/// bridge wiring and the PrepareReload payload.
std::vector<GatewayRoute> compute_routes(const model::Architecture& global,
                                         const validate::NodeMap& map);

}  // namespace rtcf::dist
