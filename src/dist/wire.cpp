#include "dist/wire.hpp"

#include <cstring>

namespace rtcf::dist {

void WireWriter::u8(std::uint8_t v) { data_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  data_.push_back(static_cast<std::uint8_t>(v));
  data_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    data_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    data_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  data_.insert(data_.end(), v.begin(), v.end());
}

void WireWriter::bytes(const std::vector<std::uint8_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  data_.insert(data_.end(), v.begin(), v.end());
}

void WireWriter::raw(const std::uint8_t* data, std::size_t count) {
  data_.insert(data_.end(), data, data + count);
}

std::size_t WireWriter::begin_block() {
  const std::size_t token = data_.size();
  u32(0);  // patched by end_block
  return token;
}

void WireWriter::end_block(std::size_t token) {
  const std::uint32_t length =
      static_cast<std::uint32_t>(data_.size() - token - 4);
  data_[token] = static_cast<std::uint8_t>(length);
  data_[token + 1] = static_cast<std::uint8_t>(length >> 8);
  data_[token + 2] = static_cast<std::uint8_t>(length >> 16);
  data_[token + 3] = static_cast<std::uint8_t>(length >> 24);
}

void SpanWriter::require(std::size_t count) const {
  if (size_ - pos_ < count) {
    throw WireError("span overflow (need " + std::to_string(count) +
                    " bytes, have " + std::to_string(size_ - pos_) + ")");
  }
}

void SpanWriter::u8(std::uint8_t v) {
  require(1);
  data_[pos_++] = v;
}

void SpanWriter::u16(std::uint16_t v) {
  require(2);
  data_[pos_] = static_cast<std::uint8_t>(v);
  data_[pos_ + 1] = static_cast<std::uint8_t>(v >> 8);
  pos_ += 2;
}

void SpanWriter::u32(std::uint32_t v) {
  require(4);
  for (int i = 0; i < 4; ++i) {
    data_[pos_ + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  pos_ += 4;
}

void SpanWriter::u64(std::uint64_t v) {
  require(8);
  for (int i = 0; i < 8; ++i) {
    data_[pos_ + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  pos_ += 8;
}

void SpanWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void SpanWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void SpanWriter::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  require(v.size());
  std::memcpy(data_ + pos_, v.data(), v.size());
  pos_ += v.size();
}

void SpanWriter::bytes(const std::uint8_t* data, std::size_t count) {
  u32(static_cast<std::uint32_t>(count));
  raw(data, count);
}

void SpanWriter::raw(const std::uint8_t* data, std::size_t count) {
  require(count);
  std::memcpy(data_ + pos_, data, count);
  pos_ += count;
}

std::size_t SpanWriter::begin_block() {
  const std::size_t token = pos_;
  u32(0);  // patched by end_block
  return token;
}

void SpanWriter::end_block(std::size_t token) {
  const std::uint32_t length = static_cast<std::uint32_t>(pos_ - token - 4);
  data_[token] = static_cast<std::uint8_t>(length);
  data_[token + 1] = static_cast<std::uint8_t>(length >> 8);
  data_[token + 2] = static_cast<std::uint8_t>(length >> 16);
  data_[token + 3] = static_cast<std::uint8_t>(length >> 24);
}

void WireReader::require(std::size_t count) const {
  if (size_ - pos_ < count) {
    throw WireError("truncated input (need " + std::to_string(count) +
                    " bytes, have " + std::to_string(size_ - pos_) + ")");
  }
}

std::uint8_t WireReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[pos_]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_ + 1])
                                 << 8));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t WireReader::i64() { return static_cast<std::int64_t>(u64()); }

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t length = u32();
  require(length);
  std::string v(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return v;
}

std::string_view WireReader::str_view() {
  const std::uint32_t length = u32();
  require(length);
  std::string_view v(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return v;
}

const std::uint8_t* WireReader::raw(std::size_t count) {
  require(count);
  const std::uint8_t* p = data_ + pos_;
  pos_ += count;
  return p;
}

std::vector<std::uint8_t> WireReader::bytes() {
  const std::uint32_t length = u32();
  require(length);
  std::vector<std::uint8_t> v(data_ + pos_, data_ + pos_ + length);
  pos_ += length;
  return v;
}

WireReader WireReader::block() {
  const std::uint32_t length = u32();
  require(length);
  WireReader sub(data_ + pos_, length);
  pos_ += length;
  return sub;
}

}  // namespace rtcf::dist
