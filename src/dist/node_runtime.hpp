// One node of a distributed assembly: a sliced Application under its own
// ModeManager and wall-clock Launcher, speaking the control protocol.
//
// The NodeRuntime owns the node-local half of everything the coordinator
// orchestrates:
//
//   * it slices the global architecture for its node (dist/slice.hpp),
//     validates the slice, and assembles it in SOLEIL mode on a
//     single-partition executive (the distributed dimension replaces the
//     intra-node partitioning dimension at this layer);
//   * its *serve loop* (one background thread) pumps the control channel
//     — answering PREPARE with a validated vote and a parked executive,
//     COMMIT by applying the staged transition on the caller side of the
//     rendezvous, ABORT by releasing the workers with the old epoch
//     intact — and the peer data channels, queueing DATA frames into an
//     inbox;
//   * the launcher's *boundary hook* drains that inbox on the executive
//     thread at every dispatch boundary, injecting remote messages
//     through the entry gateways' ordinary ports (so remote delivery
//     rides the same buffer/activation/monitor path as local traffic,
//     and never races a swap — the hook does not run while the worker is
//     parked at a rendezvous);
//   * sustained overload escalating the governor to `demote_at` is
//     reported to the coordinator as a DEMOTE_REQUEST instead of being
//     demoted locally — the cluster form of the governor hook, where one
//     node's overload can shut down whole nodes' components via a
//     coordinated transition into the degraded mode.
//
// A node that voted PREPARE_OK but hears no decision within
// `decision_timeout` aborts unilaterally (presumed abort) so a dead
// coordinator can never wedge the executive at the rendezvous.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/channel.hpp"
#include "dist/dataplane.hpp"
#include "dist/gateway.hpp"
#include "dist/protocol.hpp"
#include "dist/slice.hpp"
#include "monitor/governor.hpp"
#include "reconfig/mode_manager.hpp"
#include "runtime/launcher.hpp"
#include "soleil/application.hpp"
#include "validate/distribution.hpp"

namespace rtcf::dist {

/// Drives one node of a distributed assembly.
class NodeRuntime {
 public:
  /// Node behaviour knobs (all have production-shaped defaults).
  struct Options {
    /// Wall-clock horizon of one start() executive run.
    rtsj::RelativeTime run_duration = rtsj::RelativeTime::milliseconds(500);
    /// Serve-loop and launcher poll cadence.
    rtsj::RelativeTime poll_interval = rtsj::RelativeTime::microseconds(200);
    /// PREPARE: how long to wait for the local executive to park before
    /// voting PREPARE_FAIL (the coordinator sees a straggler either way).
    rtsj::RelativeTime quiesce_timeout = rtsj::RelativeTime::milliseconds(500);
    /// Prepared but undecided: unilateral abort after this long.
    rtsj::RelativeTime decision_timeout =
        rtsj::RelativeTime::milliseconds(2000);
    /// Report sustained overload to the coordinator (cluster demotion)
    /// instead of demoting locally.
    bool cluster_demotion = true;
    /// Governor level at (or above) which the demote request is sent.
    monitor::GovernorLevel demote_at = monitor::GovernorLevel::Shed;
    /// Starting mode; empty selects the first declared mode.
    std::string initial_mode;
    /// Data-plane batching/credit knobs (docs/DATAPLANE.md §6).
    DataPlaneConfig data_plane;
    /// Non-empty enables the shm-ring transport toward co-located peers:
    /// both nodes configured with the same namespace derive the same
    /// region token per peer pair and negotiate it at HELLO time
    /// (docs/DATAPLANE.md §5). Empty disables the offer.
    std::string shm_namespace;
    /// Data bytes per direction of a negotiated shm ring.
    std::size_t shm_capacity = std::size_t{1} << 20;
  };

  /// Aggregate gateway counters (zero-loss audit input).
  struct GatewayStats {
    std::uint64_t forwarded = 0;  ///< Exit messages sent to peers.
    std::uint64_t exit_dropped = 0;   ///< Exit messages with no route.
    std::uint64_t injected = 0;   ///< Remote messages delivered locally.
    std::uint64_t entry_dropped = 0;  ///< Remote messages with no entry.
  };

  /// Slices `global` for `node` under `map`, validates the slice, and
  /// assembles it (SOLEIL, one partition) with default options. Throws
  /// std::invalid_argument on an undeclared node or a slice that fails
  /// validation.
  NodeRuntime(const model::Architecture& global, const validate::NodeMap& map,
              const std::string& node);
  /// Same, with explicit options.
  NodeRuntime(const model::Architecture& global, const validate::NodeMap& map,
              const std::string& node, Options options);
  /// Stops and joins everything still running.
  ~NodeRuntime();

  /// Not copyable (owns threads and the assembled application).
  NodeRuntime(const NodeRuntime&) = delete;
  /// Not assignable.
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Attaches the control channel and sends HELLO. Call before serve().
  void attach_control(std::shared_ptr<comm::Channel> channel);
  /// Attaches the data channel to `peer` (bridged bindings route by the
  /// server's node name). Call before start().
  void connect_peer(const std::string& peer,
                    std::shared_ptr<comm::Channel> channel);

  /// Starts the executive (one launcher run of Options::run_duration) and
  /// the serve loop, both on background threads.
  void start();
  /// Stops serving, joins both threads (waiting out the executive run),
  /// drains every in-flight remote message, and stops the assembly.
  void stop();
  /// Blocks until the executive run finished (the serve loop keeps
  /// running so post-run transitions still apply inline).
  void join_executive();

  /// Test/ops fault injection: the next PREPARE is rejected with
  /// `reason` (a drill for the cluster-wide abort path).
  void fail_next_prepare(std::string reason);

  /// Sends JOIN on the control channel: ask the coordinator to admit
  /// this node into the live membership, announcing the plan epoch of
  /// the snapshot it restarted from. False when no control channel is
  /// attached or the send failed.
  bool request_join();
  /// Sends LEAVE on the control channel: ask the coordinator to drain
  /// this node's slice away and remove it from the membership.
  bool request_leave(const std::string& reason);
  /// Highest coordinator epoch this node has seen (frames from lower
  /// epochs are fenced; 0 until a v4 coordinator speaks).
  std::uint64_t coord_epoch_seen() const noexcept {
    return coord_epoch_seen_.load(std::memory_order_relaxed);
  }

  /// Node name.
  const std::string& name() const noexcept { return node_; }
  /// The running node-local assembly.
  soleil::Application& application() noexcept { return *app_; }
  /// The node-local mode manager (plan_epoch() is the node epoch the
  /// protocol reports).
  reconfig::ModeManager& mode_manager() noexcept { return *mode_manager_; }
  /// The node-local wall-clock executive.
  runtime::Launcher& launcher() noexcept { return *launcher_; }
  /// The node's slice architecture (owned; outlives the application).
  const model::Architecture& slice() const noexcept { return slice_; }

  /// Aggregated gateway counters, plus inbox drops.
  GatewayStats gateway_stats() const;
  /// Remote messages still queued in the inbox (0 after stop()).
  std::size_t inbox_depth() const;
  /// The node's data plane (batching/credit counters for tests and ops;
  /// the same numbers feed the runtime monitor's DataPlaneCounters).
  const DataPlane& data_plane() const noexcept { return dataplane_; }
  /// True when the data path toward `peer` runs over a negotiated
  /// shm ring instead of the attached channel.
  bool shm_linked(const std::string& peer) const;

 private:
  void serve_loop();
  void executive_loop();
  void boundary();  // launcher hook: inbox drain + flush + governor
  /// One frame off a peer data channel: DATA/BATCH to the inbox, CREDIT
  /// to the data plane, HELLO to version/shm negotiation; unknown types
  /// are ignored (docs/PROTOCOL.md §7). Serve thread, or the stop drain.
  /// Takes the frame by mutable reference: a BATCH payload is *moved*
  /// into the inbox (validated, decoded in place at drain time) and the
  /// frame gets a recycled pool buffer back so the receive loop keeps
  /// its capacity-reuse property.
  void handle_peer_frame(const std::string& peer, comm::Frame& frame);
  /// Peer HELLO: records the announced version and, when both sides
  /// offered the same shm token, establishes the ring (the
  /// lexicographically smaller node creates, the larger attaches).
  void handle_peer_hello(const std::string& peer, const HelloInfo& info);
  /// The shm region token shared with `peer` ("" when shm is disabled).
  std::string shm_token_for(const std::string& peer) const;
  /// One attach attempt toward `peer`'s region; true once linked.
  bool try_shm_attach(const std::string& peer);
  void handle_control(const comm::Frame& frame);
  void handle_prepare_reload(const comm::Frame& frame);
  void handle_prepare_mode(const comm::Frame& frame);
  void handle_decision(const comm::Frame& frame);
  /// TAKEOVER: adopt the (not-lower) coordinator epoch and answer with
  /// HELLO carrying this node's resync epoch (docs/MEMBERSHIP.md §5).
  void handle_takeover(const comm::Frame& frame);
  /// True (and counted) when `coord_epoch` is below the highest seen; a
  /// non-zero higher epoch is adopted first.
  bool fenced(std::uint64_t coord_epoch,
              std::atomic<std::uint64_t>& counter);
  void reply(FrameType type, std::uint64_t txn, const std::string& reason,
             std::uint64_t drained, std::int64_t latency_ns);
  /// Applies `routes` to the gateway contents (exit channels + entry
  /// map). Single-threaded by construction: at build time, or from the
  /// boundary hook on the executive thread.
  void apply_routes(const std::vector<GatewayRoute>& routes);
  void drain_inbox();
  void watch_governor();

  std::string node_;
  Options options_;
  model::Architecture slice_;
  std::unique_ptr<soleil::Application> app_;
  std::unique_ptr<reconfig::ModeManager> mode_manager_;
  std::unique_ptr<runtime::Launcher> launcher_;

  std::shared_ptr<comm::Channel> control_;
  std::map<std::string, std::shared_ptr<comm::Channel>> peers_;
  /// Negotiated shm rings by peer (guarded by mutex_ once serving; the
  /// serve thread inserts, apply_routes points routes at them).
  std::map<std::string, std::shared_ptr<comm::Channel>> shm_links_;
  /// Peers whose region we could not attach yet (serve thread only;
  /// retried every tick until the creator wins the race).
  std::vector<std::string> pending_shm_attach_;

  DataPlane dataplane_;

  std::thread serve_thread_;
  std::thread executive_thread_;
  std::atomic<bool> serving_{false};
  std::atomic<bool> executive_done_{true};

  /// One inbox entry: either a legacy DATA payload (batch empty) or a
  /// whole BATCH frame payload held raw. BATCH frames are validated once
  /// on the serve thread (batch_message_count) and decoded *in place* by
  /// the executive's drain — entry gateways inject straight out of the
  /// receive buffer, no per-message DataPayload materialization.
  struct InboxItem {
    DataPayload data;                 ///< Legacy DATA (batch empty).
    std::vector<std::uint8_t> batch;  ///< Raw BATCH payload bytes.
    std::size_t batch_messages = 0;   ///< Messages inside `batch`.
  };

  mutable std::mutex mutex_;
  // Guarded by mutex_: inbox, staged transaction, route state, fault
  // injection.
  std::deque<InboxItem> inbox_;
  std::vector<GatewayRoute> routes_;         ///< In force.
  std::vector<GatewayRoute> staged_routes_;  ///< Applied at commit.
  bool routes_dirty_ = false;
  std::uint64_t staged_txn_ = 0;
  bool staged_ = false;
  bool staged_is_reload_ = false;
  rtsj::AbsoluteTime decision_deadline_{};
  std::string forced_failure_;
  std::uint64_t entry_drops_ = 0;
  /// One-shot demote latch: set by the executive thread's governor watch,
  /// reset by the serve thread on a committed transition — atomic, the
  /// two threads never share a lock here.
  std::atomic<bool> demote_sent_{false};
  /// Highest coordinator epoch seen on the control channel (serve thread
  /// writes, tests/ops read — atomic, no lock shared).
  std::atomic<std::uint64_t> coord_epoch_seen_{0};

  /// Entry-gateway lookup: (client, port) -> content + port name + the
  /// data plane's entry route (credit grants).
  struct EntrySlot {
    GatewayEntryContent* content = nullptr;
    std::string port_name;
    std::size_t entry_route = 0;
  };
  std::map<std::pair<std::string, std::string>, EntrySlot> entries_;
};

}  // namespace rtcf::dist
