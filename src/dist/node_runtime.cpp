#include "dist/node_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "comm/shm_ring.hpp"
#include "dist/batch_view.hpp"
#include "dist/plan_codec.hpp"
#include "validate/validator.hpp"

namespace rtcf::dist {

using reconfig::ModeManager;
using reconfig::ReloadPlan;

namespace {
const rtsj::RelativeTime kPollZero = rtsj::RelativeTime::zero();

/// Application::content() throws for unknown names; routing treats those
/// as "not on this node" instead.
comm::Content* find_content(soleil::Application& app,
                            const std::string& name) {
  if (app.assembly().find(name) == nullptr) return nullptr;
  try {
    return app.content(name);
  } catch (const std::invalid_argument&) {
    return nullptr;
  }
}

}  // namespace

NodeRuntime::NodeRuntime(const model::Architecture& global,
                         const validate::NodeMap& map,
                         const std::string& node)
    : NodeRuntime(global, map, node, Options()) {}

NodeRuntime::NodeRuntime(const model::Architecture& global,
                         const validate::NodeMap& map,
                         const std::string& node, Options options)
    : node_(node),
      options_(std::move(options)),
      slice_(slice_architecture(global, map, node)),
      dataplane_(options_.data_plane) {
  const validate::Report report = validate::validate(slice_);
  if (!report.ok()) {
    throw std::invalid_argument("node '" + node +
                                "' slice fails validation:\n" +
                                report.to_string());
  }
  app_ = soleil::build_application(slice_, soleil::Mode::Soleil,
                                   /*partitions=*/1);
  app_->start();
  ModeManager::Options mm_options;
  mm_options.initial_mode = options_.initial_mode;
  // Demotion is a cluster decision here: the governor watch reports to
  // the coordinator instead of transitioning locally.
  mm_options.governor_demotion = !options_.cluster_demotion;
  mode_manager_ = std::make_unique<ModeManager>(*app_, mm_options);
  launcher_ = std::make_unique<runtime::Launcher>(*app_);
  dataplane_.set_counters(&app_->monitor().data_plane());
  routes_ = compute_routes(global, map);
  apply_routes(routes_);
}

NodeRuntime::~NodeRuntime() {
  if (serving_.load() || serve_thread_.joinable() ||
      executive_thread_.joinable()) {
    stop();
  }
}

void NodeRuntime::attach_control(std::shared_ptr<comm::Channel> channel) {
  control_ = std::move(channel);
  // The resync epoch tells a coordinator recovering this node which plan
  // snapshot the node restarted from (docs/MEMBERSHIP.md §3).
  control_->send(make_hello(node_, std::string(), mode_manager_->plan_epoch()));
}

bool NodeRuntime::request_join() {
  if (control_ == nullptr) return false;
  JoinPayload payload;
  payload.node = node_;
  payload.resync_epoch = mode_manager_->plan_epoch();
  return control_->send(make_join(payload));
}

bool NodeRuntime::request_leave(const std::string& reason) {
  if (control_ == nullptr) return false;
  LeavePayload payload;
  payload.node = node_;
  payload.reason = reason;
  return control_->send(make_leave(payload));
}

void NodeRuntime::connect_peer(const std::string& peer,
                               std::shared_ptr<comm::Channel> channel) {
  peers_[peer] = std::move(channel);
  // Announce ourselves on the data channel: the version (and any shm
  // offer) a v3 peer needs to switch this link off the per-message path.
  peers_[peer]->send(make_hello(node_, shm_token_for(peer)));
  // Exits routed before the peer channel existed pick it up now.
  apply_routes(routes_);
}

void NodeRuntime::start() {
  if (!executive_done_.load()) return;
  // A previous run may have finished without an intervening stop();
  // reap its (joinable, already-exited) thread before starting anew.
  if (executive_thread_.joinable()) executive_thread_.join();
  executive_done_.store(false);
  executive_thread_ = std::thread([this] { executive_loop(); });
  if (!serving_.load()) {
    serving_.store(true);
    serve_thread_ = std::thread([this] { serve_loop(); });
  }
}

void NodeRuntime::join_executive() {
  if (executive_thread_.joinable()) executive_thread_.join();
}

void NodeRuntime::stop() {
  join_executive();
  serving_.store(false);
  if (serve_thread_.joinable()) serve_thread_.join();

  // Final drain: whatever is still in flight — peer queues, batched
  // route queues, the inbox, local activation credits — is delivered
  // single-threaded (both threads joined), so the conservation audit
  // sees every message. The forced flush ignores credit balances: the
  // peer's remaining grants may never arrive once it stops serving.
  bool moved = true;
  while (moved) {
    moved = false;
    comm::Frame frame;
    const auto pump = [&](const std::string& peer, comm::Channel& channel) {
      while (channel.receive(frame, kPollZero)) {
        handle_peer_frame(peer, frame);
        moved = true;
      }
    };
    for (auto& [peer, channel] : peers_) pump(peer, *channel);
    for (auto& [peer, channel] : shm_links_) pump(peer, *channel);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (routes_dirty_) {
        routes_dirty_ = false;
        apply_routes(routes_);
      }
      if (!inbox_.empty()) moved = true;
    }
    drain_inbox();
    if (dataplane_.flush(/*force=*/true) > 0) moved = true;
    if (dataplane_.grant_all() > 0) moved = true;
    if (!app_->activation_manager().idle()) {
      app_->pump();
      moved = true;
    }
  }
  app_->stop();
}

void NodeRuntime::fail_next_prepare(std::string reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  forced_failure_ = std::move(reason);
}

NodeRuntime::GatewayStats NodeRuntime::gateway_stats() const {
  GatewayStats stats;
  for (const auto& spec : app_->assembly().components()) {
    comm::Content* content = find_content(*app_, spec.name);
    if (content == nullptr) continue;
    if (const auto* exit = dynamic_cast<const GatewayExitContent*>(content)) {
      stats.forwarded += exit->forwarded();
      stats.exit_dropped += exit->dropped();
    } else if (const auto* entry =
                   dynamic_cast<const GatewayEntryContent*>(content)) {
      stats.injected += entry->injected();
      stats.entry_dropped += entry->dropped();
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  stats.entry_dropped += entry_drops_;
  return stats;
}

std::size_t NodeRuntime::inbox_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t depth = 0;
  for (const InboxItem& item : inbox_) {
    depth += item.batch.empty() ? 1 : item.batch_messages;
  }
  return depth;
}

void NodeRuntime::executive_loop() {
  runtime::Launcher::Options opts;
  opts.duration = options_.run_duration;
  opts.workers = 1;
  opts.poll_interval = options_.poll_interval;
  opts.mode_manager = mode_manager_.get();
  opts.boundary_hook = [this] { boundary(); };
  launcher_->run(opts);
  executive_done_.store(true);
}

void NodeRuntime::serve_loop() {
  const auto poll =
      std::chrono::nanoseconds(options_.poll_interval.nanos());
  while (serving_.load()) {
    bool any = false;
    comm::Frame frame;
    if (control_ != nullptr) {
      while (control_->receive(frame, kPollZero)) {
        handle_control(frame);
        any = true;
      }
    }
    for (auto& [peer, channel] : peers_) {
      while (channel->receive(frame, kPollZero)) {
        handle_peer_frame(peer, frame);
        any = true;
      }
    }
    {
      // Negotiated rings are pumped like any other data channel. Copy
      // the list out so handle_peer_frame never runs under mutex_.
      std::vector<std::pair<std::string, std::shared_ptr<comm::Channel>>>
          links;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        links.assign(shm_links_.begin(), shm_links_.end());
      }
      for (auto& [peer, channel] : links) {
        while (channel->receive(frame, kPollZero)) {
          handle_peer_frame(peer, frame);
          any = true;
        }
      }
    }
    // Attach retries: the creator may still be racing us to the region.
    pending_shm_attach_.erase(
        std::remove_if(pending_shm_attach_.begin(), pending_shm_attach_.end(),
                       [&](const std::string& peer) {
                         return try_shm_attach(peer);
                       }),
        pending_shm_attach_.end());
    // Presumed abort: prepared but undecided past the deadline — release
    // the executive unilaterally so a dead coordinator cannot wedge it.
    {
      std::uint64_t stale_txn = 0;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (staged_ &&
            rtsj::SteadyClock::instance().now() > decision_deadline_) {
          stale_txn = staged_txn_;
          staged_ = false;
          staged_routes_.clear();
        }
      }
      if (stale_txn != 0) {
        mode_manager_->abort_prepared();
        reply(FrameType::Aborted, stale_txn, "decision timeout", 0, 0);
      }
    }
    if (!any) std::this_thread::sleep_for(poll);
  }
}

void NodeRuntime::boundary() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (routes_dirty_) {
      routes_dirty_ = false;
      apply_routes(routes_);
    }
  }
  drain_inbox();
  // Deadline flushes ride the dispatch boundary: this is the only place
  // (besides offer itself and the stop drain) that writes data channels,
  // which keeps every transport single-writer.
  dataplane_.flush(/*force=*/false);
  watch_governor();
}

void NodeRuntime::apply_routes(const std::vector<GatewayRoute>& routes) {
  entries_.clear();
  // Un-route every exit first: a refresh must not leave a retired exit
  // holding a route id the table below no longer assigns.
  for (const auto& spec : app_->assembly().components()) {
    comm::Content* content = find_content(*app_, spec.name);
    if (auto* exit = dynamic_cast<GatewayExitContent*>(content)) {
      exit->set_route(nullptr, 0);
    }
  }
  dataplane_.clear_routes();
  // Data-plane channel per peer: a negotiated shm ring wins over the
  // attached channel (that is the whole point of negotiating it).
  const auto data_channel =
      [this](const std::string& peer) -> std::shared_ptr<comm::Channel> {
    const auto shm = shm_links_.find(peer);
    if (shm != shm_links_.end()) return shm->second;
    const auto tcp = peers_.find(peer);
    return tcp == peers_.end() ? nullptr : tcp->second;
  };
  for (const GatewayRoute& route : routes) {
    if (route.client_node == node_) {
      comm::Content* content =
          find_content(*app_, gateway_exit_name(route.client, route.port));
      if (auto* exit = dynamic_cast<GatewayExitContent*>(content)) {
        const std::size_t id =
            dataplane_.add_route(route.client, route.port,
                                 data_channel(route.server_node),
                                 route.server_node);
        exit->set_route(&dataplane_, id);
      }
    }
    if (route.server_node == node_) {
      comm::Content* content =
          find_content(*app_, gateway_entry_name(route.client, route.port));
      if (auto* entry = dynamic_cast<GatewayEntryContent*>(content)) {
        // The entry's single client port is named after the *client's*
        // port (see slice_architecture), not the server's interface.
        const std::size_t id = dataplane_.add_entry_route(
            route.client, route.port, data_channel(route.client_node),
            route.client_node);
        entries_[{route.client, route.port}] =
            EntrySlot{entry, route.port, id};
      }
    }
  }
}

void NodeRuntime::drain_inbox() {
  std::deque<InboxItem> batch;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(inbox_);
  }
  for (InboxItem& item : batch) {
    if (item.batch.empty()) {
      const DataPayload& data = item.data;
      auto it = entries_.find({data.client, data.port});
      if (it == entries_.end() || it->second.content == nullptr) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++entry_drops_;
        continue;
      }
      it->second.content->inject(it->second.port_name, data.message);
      // Consumed from the wire either way — replenish the sender's window
      // (an unbound port is the entry's drop to count, not backpressure).
      dataplane_.note_injected(it->second.entry_route);
      continue;
    }
    // Deferred BATCH: decode in place, injecting straight out of the
    // receive buffer. The payload was fully validated at enqueue time,
    // so a WireError here is impossible by construction — the view's
    // bounds checks stay on as a backstop.
    BatchView view(item.batch);
    BatchView::Route route;
    comm::Message message;
    while (view.next_route(route)) {
      const auto it = entries_.find(
          {std::string(route.client), std::string(route.port)});
      if (it == entries_.end() || it->second.content == nullptr) {
        const std::lock_guard<std::mutex> lock(mutex_);
        entry_drops_ += route.messages;
        for (std::uint32_t i = 0; i < route.messages; ++i) {
          view.next_message(message);
        }
        continue;
      }
      for (std::uint32_t i = 0; i < route.messages; ++i) {
        view.next_message(message);
        it->second.content->inject(it->second.port_name, message);
      }
      dataplane_.note_injected(it->second.entry_route, route.messages);
    }
    // The buffer goes back to the shared pool, where the receive loop's
    // replacement buffers come from.
    dataplane_.pool().release(std::move(item.batch));
  }
}

void NodeRuntime::handle_peer_frame(const std::string& peer,
                                    comm::Frame& frame) {
  try {
    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::Data: {
        InboxItem item;
        item.data = parse_data(frame);
        const std::lock_guard<std::mutex> lock(mutex_);
        inbox_.push_back(std::move(item));
        break;
      }
      case FrameType::Batch: {
        // Validate now (truncation throws out of this scope), defer the
        // decode: the executive injects from these bytes in place.
        InboxItem item;
        item.batch_messages =
            batch_message_count(frame.payload.data(), frame.payload.size());
        item.batch = std::move(frame.payload);
        // Re-arm the receive frame with a recycled buffer of the same
        // class so the channel's capacity-reuse keeps working.
        frame.payload = dataplane_.pool().acquire(item.batch.size());
        frame.payload.clear();
        const std::lock_guard<std::mutex> lock(mutex_);
        inbox_.push_back(std::move(item));
        break;
      }
      case FrameType::Credit:
        dataplane_.on_credit(parse_credit(frame));
        break;
      case FrameType::Hello:
        handle_peer_hello(peer, parse_hello_info(frame));
        break;
      default:
        break;  // Unknown data-plane types are ignored (PROTOCOL.md §7).
    }
  } catch (const WireError&) {
    // A malformed frame is dropped; the framing layer stays in sync.
  }
}

void NodeRuntime::handle_peer_hello(const std::string& peer,
                                    const HelloInfo& info) {
  dataplane_.set_peer_version(peer, info.protocol_version);
  if (info.protocol_version < kBatchProtocolVersion) return;
  const std::string token = shm_token_for(peer);
  if (token.empty() || token != info.shm_token) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shm_links_.count(peer) != 0) return;
  }
  if (node_ < peer) {
    auto ring = comm::ShmRingChannel::create(token, options_.shm_capacity);
    if (ring != nullptr) {
      const std::lock_guard<std::mutex> lock(mutex_);
      shm_links_[peer] = std::move(ring);
      routes_dirty_ = true;
    }
  } else if (!try_shm_attach(peer)) {
    pending_shm_attach_.push_back(peer);
  }
}

std::string NodeRuntime::shm_token_for(const std::string& peer) const {
  if (options_.shm_namespace.empty()) return std::string();
  const std::string& a = std::min(node_, peer);
  const std::string& b = std::max(node_, peer);
  return "/" + options_.shm_namespace + "." + a + "." + b;
}

bool NodeRuntime::try_shm_attach(const std::string& peer) {
  auto ring = comm::ShmRingChannel::attach(shm_token_for(peer));
  if (ring == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  shm_links_[peer] = std::move(ring);
  routes_dirty_ = true;
  return true;
}

bool NodeRuntime::shm_linked(const std::string& peer) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shm_links_.count(peer) != 0;
}

void NodeRuntime::watch_governor() {
  if (!options_.cluster_demotion ||
      demote_sent_.load(std::memory_order_relaxed) || control_ == nullptr) {
    return;
  }
  const monitor::GovernorLevel level = app_->monitor().governor().level();
  if (static_cast<int>(level) < static_cast<int>(options_.demote_at)) return;
  const model::ModeDecl* degraded = mode_manager_->degraded_mode();
  if (degraded == nullptr) return;
  if (mode_manager_->current_mode() == degraded->name) return;
  DemotePayload payload;
  payload.node = node_;
  payload.mode = degraded->name;
  payload.level = static_cast<std::uint8_t>(level);
  control_->send(make_demote(payload));
  demote_sent_.store(true, std::memory_order_relaxed);
}

void NodeRuntime::reply(FrameType type, std::uint64_t txn,
                        const std::string& reason, std::uint64_t drained,
                        std::int64_t latency_ns) {
  if (control_ == nullptr) return;
  NodeReplyPayload payload;
  payload.txn = txn;
  payload.node = node_;
  payload.epoch = mode_manager_->plan_epoch();
  payload.reason = reason;
  payload.drained = drained;
  payload.latency_ns = latency_ns;
  control_->send(make_node_reply(type, payload));
}

void NodeRuntime::handle_control(const comm::Frame& frame) {
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::PrepareReload:
      handle_prepare_reload(frame);
      break;
    case FrameType::PrepareMode:
      handle_prepare_mode(frame);
      break;
    case FrameType::Commit:
    case FrameType::Abort:
      handle_decision(frame);
      break;
    case FrameType::Data: {
      // Star topologies may relay data over the control channel.
      InboxItem item;
      item.data = parse_data(frame);
      const std::lock_guard<std::mutex> lock(mutex_);
      inbox_.push_back(std::move(item));
      break;
    }
    case FrameType::Takeover:
      handle_takeover(frame);
      break;
    default:
      // Hello/replies are coordinator-bound; count the drop so a
      // misrouted control plane is visible in the monitor instead of
      // silently swallowed.
      app_->monitor().control_plane().ignored_frames.fetch_add(
          1, std::memory_order_relaxed);
      break;
  }
}

bool NodeRuntime::fenced(std::uint64_t coord_epoch,
                         std::atomic<std::uint64_t>& counter) {
  if (coord_epoch == 0) return false;  // pre-v4 coordinator: never fenced
  const std::uint64_t seen = coord_epoch_seen_.load(std::memory_order_relaxed);
  if (coord_epoch < seen) {
    counter.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (coord_epoch > seen) {
    coord_epoch_seen_.store(coord_epoch, std::memory_order_relaxed);
  }
  return false;
}

void NodeRuntime::handle_takeover(const comm::Frame& frame) {
  TakeoverPayload payload;
  try {
    payload = parse_takeover(frame);
  } catch (const WireError&) {
    return;
  }
  auto& counters = app_->monitor().control_plane();
  const std::uint64_t seen = coord_epoch_seen_.load(std::memory_order_relaxed);
  if (payload.coord_epoch < seen) {
    // A stale pretender announcing itself after a newer coordinator has
    // already spoken: the fence holds, no reply.
    counters.ignored_frames.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  coord_epoch_seen_.store(payload.coord_epoch, std::memory_order_relaxed);
  counters.takeovers.fetch_add(1, std::memory_order_relaxed);
  // Answer with HELLO so the promoted coordinator learns this node's
  // current plan epoch — the resync half of the takeover handshake.
  if (control_ != nullptr) {
    control_->send(
        make_hello(node_, std::string(), mode_manager_->plan_epoch()));
  }
}

void NodeRuntime::handle_prepare_reload(const comm::Frame& frame) {
  PrepareReloadPayload payload;
  try {
    payload = parse_prepare_reload(frame);
  } catch (const WireError& e) {
    reply(FrameType::PrepareFail, 0, e.what(), 0, 0);
    return;
  }
  const auto fail = [&](const std::string& reason) {
    reply(FrameType::PrepareFail, payload.txn, reason, 0, 0);
  };
  if (fenced(payload.coord_epoch,
             app_->monitor().control_plane().fenced_prepares)) {
    fail("fenced: stale coordinator epoch " +
         std::to_string(payload.coord_epoch));
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (staged_) {
      fail("another transition is already prepared");
      return;
    }
    if (!forced_failure_.empty()) {
      const std::string reason = forced_failure_;
      forced_failure_.clear();
      fail(reason);
      return;
    }
  }
  if (payload.expect_epoch != 0 &&
      payload.expect_epoch != mode_manager_->plan_epoch()) {
    fail("stale epoch: coordinator diffed against epoch " +
         std::to_string(payload.expect_epoch) + ", node is at " +
         std::to_string(mode_manager_->plan_epoch()));
    return;
  }
  ReloadPlan plan;
  try {
    plan.target = decode_plan(payload.plan);
    // Agreement check: the node re-diffs its own running snapshot against
    // the received target; the canonical delta encoding must match the
    // coordinator's byte for byte, or its view of this node is stale.
    plan.delta = reconfig::diff_plans(app_->assembly(), plan.target);
    if (encode_delta(plan.delta) != payload.delta) {
      fail("delta disagreement: coordinator view of this node is stale");
      return;
    }
  } catch (const WireError& e) {
    fail(e.what());
    return;
  }
  // The node-local half of the rule engine: DELTA-* over the slice.
  reconfig::check_delta_rules(plan.delta, app_->assembly(), plan.target,
                              plan.report);
  validate::Report report;
  if (!mode_manager_->prepare_reload(std::move(plan), &report)) {
    fail("slice rejected:\n" + report.to_string());
    return;
  }
  if (!mode_manager_->wait_prepared(options_.quiesce_timeout)) {
    mode_manager_->abort_prepared();
    fail("quiescence timeout: executive did not park in time");
    return;
  }
  // Every worker is parked, so no exit can enqueue again before the
  // decision: force-flush the queued tail now, before the vote. The
  // boundary's deadline flush may have left messages younger than the
  // flush age queued when the executive parked; two-phase ordering turns
  // this flush into a cluster-wide barrier — no peer can commit (and
  // retire its old entry table) until every node has voted — so
  // everything flushed here is drained through the old entries at commit
  // time and a committed re-shard loses nothing. Single-writer holds: the
  // parked executive cannot touch the transports (same argument as the
  // stop() drain).
  dataplane_.flush(/*force=*/true);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    staged_ = true;
    staged_is_reload_ = true;
    staged_txn_ = payload.txn;
    staged_routes_ = payload.routes;
    decision_deadline_ =
        rtsj::SteadyClock::instance().now() + options_.decision_timeout;
  }
  reply(FrameType::PrepareOk, payload.txn, "", 0, 0);
}

void NodeRuntime::handle_prepare_mode(const comm::Frame& frame) {
  PrepareModePayload payload;
  try {
    payload = parse_prepare_mode(frame);
  } catch (const WireError& e) {
    reply(FrameType::PrepareFail, 0, e.what(), 0, 0);
    return;
  }
  const auto fail = [&](const std::string& reason) {
    reply(FrameType::PrepareFail, payload.txn, reason, 0, 0);
  };
  if (fenced(payload.coord_epoch,
             app_->monitor().control_plane().fenced_prepares)) {
    fail("fenced: stale coordinator epoch " +
         std::to_string(payload.coord_epoch));
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (staged_) {
      fail("another transition is already prepared");
      return;
    }
    if (!forced_failure_.empty()) {
      const std::string reason = forced_failure_;
      forced_failure_.clear();
      fail(reason);
      return;
    }
  }
  if (!mode_manager_->prepare_transition(payload.mode, "dist-mode")) {
    fail("unknown mode '" + payload.mode + "' (or a transition is pending)");
    return;
  }
  if (!mode_manager_->wait_prepared(options_.quiesce_timeout)) {
    mode_manager_->abort_prepared();
    fail("quiescence timeout: executive did not park in time");
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    staged_ = true;
    staged_is_reload_ = false;
    staged_txn_ = payload.txn;
    staged_routes_.clear();
    decision_deadline_ =
        rtsj::SteadyClock::instance().now() + options_.decision_timeout;
  }
  reply(FrameType::PrepareOk, payload.txn, "", 0, 0);
}

void NodeRuntime::handle_decision(const comm::Frame& frame) {
  DecisionPayload payload;
  try {
    payload = parse_decision(frame);
  } catch (const WireError&) {
    return;
  }
  if (fenced(payload.coord_epoch,
             app_->monitor().control_plane().fenced_decisions)) {
    // A decision from a fenced coordinator is dropped without a reply:
    // answering would let the stale coordinator believe it still drives
    // the cluster (docs/MEMBERSHIP.md §5).
    return;
  }
  bool known = false;
  bool is_reload = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    known = staged_ && staged_txn_ == payload.txn;
    is_reload = staged_is_reload_;
  }
  if (!known) {
    // Unknown or already-timed-out transaction: decisions are idempotent,
    // report the (unchanged) state.
    reply(FrameType::Aborted, payload.txn, "no such prepared transaction",
          0, 0);
    return;
  }
  if (frame.type == static_cast<std::uint16_t>(FrameType::Commit)) {
    // Deliver everything the old wiring still owes before the swap. A
    // peer's executive flushes its route queues at the boundary where it
    // parks, so a data frame can be in the channel (or already in the
    // inbox) when the decision arrives; committing first would retire
    // the old entry table and count that in-flight tail as entry drops.
    // The executive is parked at the rendezvous, so this thread owns the
    // inbox and the entries exactly as the stop() drain does.
    {
      comm::Frame data;
      std::vector<std::pair<std::string, std::shared_ptr<comm::Channel>>>
          links;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        links.assign(shm_links_.begin(), shm_links_.end());
      }
      for (auto& [peer, channel] : peers_) {
        while (channel->receive(data, kPollZero)) {
          handle_peer_frame(peer, data);
        }
      }
      for (auto& [peer, channel] : links) {
        while (channel->receive(data, kPollZero)) {
          handle_peer_frame(peer, data);
        }
      }
    }
    drain_inbox();
    const bool applied = mode_manager_->commit_prepared();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      staged_ = false;
      if (applied && is_reload) {
        // Adopt the staged table even when it is empty: a reload that
        // removes the last cross-node binding must clear the old routes
        // and entry map, or late DATA frames would be injected into
        // retired gateways.
        routes_ = std::move(staged_routes_);
        routes_dirty_ = true;
      }
      staged_routes_.clear();
      // A committed transition answered whatever overload triggered a
      // demote request; allow a future escalation to report again.
      if (applied) demote_sent_.store(false, std::memory_order_relaxed);
    }
    if (applied && executive_done_.load()) {
      // No executive thread to run the boundary hook; apply routes here
      // (single-threaded: the launcher run is over).
      const std::lock_guard<std::mutex> lock(mutex_);
      if (routes_dirty_) {
        routes_dirty_ = false;
        apply_routes(routes_);
      }
    }
    const std::int64_t latency_ns =
        mode_manager_->last_transition().latency.nanos();
    if (applied) {
      reply(FrameType::Committed, payload.txn, "",
            is_reload ? mode_manager_->last_drain_audit() : 0, latency_ns);
    } else {
      // Commit arrived while quiescence had lapsed (e.g. a new launcher
      // run started between the vote and the decision): the staged
      // transition must be released, or the manager stays pending
      // forever and wedges every later rendezvous.
      mode_manager_->abort_prepared();
      reply(FrameType::Aborted, payload.txn, "commit without quiescence", 0,
            0);
    }
  } else {
    mode_manager_->abort_prepared();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      staged_ = false;
      staged_routes_.clear();
    }
    reply(FrameType::Aborted, payload.txn, payload.reason, 0, 0);
  }
}

}  // namespace rtcf::dist
