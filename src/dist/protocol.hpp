// Frame types and payload helpers of the distributed reconfiguration
// protocol. docs/PROTOCOL.md is the normative spec; this header is the
// reference implementation of the payload encodings.
//
// The protocol has two planes sharing one frame format:
//
//   * control plane (coordinator <-> node): HELLO, the two-phase
//     PREPARE/COMMIT/ABORT exchange, DEMOTE_REQUEST, and — since v4 —
//     the membership plane: JOIN/LEAVE requests, STANDBY_SYNC decision
//     records, and TAKEOVER fencing (docs/MEMBERSHIP.md);
//   * data plane (node <-> node): DATA frames carrying one comm::Message
//     across a bridged asynchronous binding, or — between v3 peers —
//     BATCH frames coalescing many messages per route and CREDIT frames
//     replenishing the per-route flow-control window (docs/DATAPLANE.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "comm/channel.hpp"
#include "comm/message.hpp"
#include "dist/wire.hpp"

namespace rtcf::dist {

/// Wire-format version announced in HELLO (docs/PROTOCOL.md §1). Version 3
/// adds the BATCH/CREDIT data plane and the shm-ring transport offer;
/// version 4 adds the membership plane (JOIN/LEAVE/STANDBY_SYNC/TAKEOVER,
/// the HELLO resync epoch, and coordinator-epoch fencing). A peer whose
/// HELLO carries no version field is treated as version 2 (per-message
/// DATA, no credits). The u16 in the frame *header* is the framing version
/// (comm::kWireVersion) and is unchanged.
inline constexpr std::uint16_t kProtocolVersion = 4;

/// First protocol version with the BATCH/CREDIT data plane and the shm
/// transport offer — the gate for batching toward a peer. Kept separate
/// from kProtocolVersion so later dialect bumps (v4 membership) never
/// silently downgrade a v3 peer to per-message DATA.
inline constexpr std::uint16_t kBatchProtocolVersion = 3;

/// Frame type discriminators (comm::Frame::type).
enum class FrameType : std::uint16_t {
  /// Node -> coordinator on attach: node name + codec version.
  Hello = 1,
  /// Coordinator -> node: stage a reload slice and park at quiescence.
  PrepareReload = 2,
  /// Coordinator -> node: stage a mode transition and park at quiescence.
  PrepareMode = 3,
  /// Node -> coordinator: the slice validated and the node is quiescent.
  PrepareOk = 4,
  /// Node -> coordinator: the slice was rejected (reason enclosed).
  PrepareFail = 5,
  /// Coordinator -> node: apply the prepared transition.
  Commit = 6,
  /// Node -> coordinator: the transition applied (epoch, audit, latency).
  Committed = 7,
  /// Coordinator -> node: release the prepared transition unapplied.
  Abort = 8,
  /// Node -> coordinator: the transition was released; epoch unchanged.
  Aborted = 9,
  /// Node -> node: one message of a bridged asynchronous binding.
  Data = 10,
  /// Node -> coordinator: sustained overload; please demote the cluster.
  DemoteRequest = 11,
  /// Node -> node (v3): coalesced data-plane messages, grouped per route.
  Batch = 12,
  /// Node -> node (v3): replenish a route's sender credit window.
  Credit = 13,
  /// Node -> coordinator (v4): admit me into the live membership.
  Join = 14,
  /// Node -> coordinator (v4): drain my slice and remove me.
  Leave = 15,
  /// Coordinator -> standby (v4): one durable decision-log record.
  StandbySync = 16,
  /// Promoted standby -> node (v4): fence older coordinator epochs.
  Takeover = 17,
};

/// One cross-node binding's routing entry: where the logical client end
/// (client, port) lives, and which server it feeds on which node.
struct GatewayRoute {
  std::string client;  ///< Global client component (the exit's node).
  std::string port;    ///< Client port name (the binding's identity).
  std::string client_node;  ///< Node hosting the client and the exit.
  std::string server;  ///< Global server component (the entry's node).
  std::string iface;   ///< Server interface name.
  std::string server_node;  ///< Node hosting the server and the entry.

  /// Field-wise equality.
  bool operator==(const GatewayRoute& o) const {
    return client == o.client && port == o.port &&
           client_node == o.client_node && server == o.server &&
           iface == o.iface && server_node == o.server_node;
  }
};

/// Payload of PrepareReload.
struct PrepareReloadPayload {
  std::uint64_t txn = 0;          ///< Transaction id (coordinator-unique).
  std::uint64_t expect_epoch = 0; ///< Node plan epoch the slice was diffed
                                  ///< against (stale-epoch guard).
  std::vector<std::uint8_t> plan;  ///< encode_plan() of the target slice.
  std::vector<std::uint8_t> delta; ///< encode_delta() of the slice delta.
  std::vector<GatewayRoute> routes;  ///< Full post-commit route table.
  /// Coordinator epoch of the sender (appended in v4; 0 from older
  /// coordinators, which nodes never fence).
  std::uint64_t coord_epoch = 0;
};

/// Payload of PrepareMode.
struct PrepareModePayload {
  std::uint64_t txn = 0;  ///< Transaction id.
  std::string mode;       ///< Target mode name (declared on every node).
  /// Coordinator epoch of the sender (appended in v4; 0 = never fenced).
  std::uint64_t coord_epoch = 0;
};

/// Payload of PrepareOk / PrepareFail / Committed / Aborted.
struct NodeReplyPayload {
  std::uint64_t txn = 0;     ///< Transaction id echoed back.
  std::string node;          ///< Replying node.
  std::uint64_t epoch = 0;   ///< Node plan epoch after handling the frame.
  std::string reason;        ///< PrepareFail: why the slice was rejected.
  std::uint64_t drained = 0; ///< Committed: apply-time drain audit.
  std::int64_t latency_ns = 0;  ///< Committed: prepare-to-commit latency.
};

/// Payload of Commit / Abort.
struct DecisionPayload {
  std::uint64_t txn = 0;  ///< Transaction id.
  std::string reason;     ///< Abort: why (straggler timeout, veto, ...).
  /// Coordinator epoch of the sender (appended in v4; 0 = never fenced).
  std::uint64_t coord_epoch = 0;
};

/// Payload of Data.
struct DataPayload {
  std::string client;   ///< Logical client end: component...
  std::string port;     ///< ...and port (addresses the entry gateway).
  comm::Message message;  ///< The bridged message, verbatim.
};

/// One route's share of a BATCH frame: the logical client end that
/// addresses the entry gateway, plus its coalesced messages in send order.
struct BatchRoute {
  std::string client;  ///< Logical client component of the bridged binding.
  std::string port;    ///< Client port name.
  std::vector<comm::Message> messages;  ///< Coalesced messages, in order.
};

/// Payload of Batch: every route the sender flushed toward this peer in
/// one frame — one channel write however many messages were pending.
struct BatchPayload {
  std::vector<BatchRoute> routes;  ///< Flushed routes (each non-empty).
};

/// Payload of Credit: the entry side has consumed `credits` messages of
/// the route and the sender may put that many more on the wire.
struct CreditPayload {
  std::string client;          ///< Logical client end: component...
  std::string port;            ///< ...and port (the route's identity).
  std::uint64_t credits = 0;   ///< Messages newly permitted on the wire.
};

/// Everything a HELLO announces. Version-2 peers stop after
/// `codec_version`; version-3 peers append the wire-format version and an
/// optional shm-ring transport offer (docs/DATAPLANE.md §5).
struct HelloInfo {
  std::string node;                 ///< Announcing endpoint's node name.
  std::uint16_t codec_version = 0;  ///< Plan codec (kCodecVersion).
  /// Announced wire-format version; 2 when the HELLO carried no version
  /// field (a pre-v3 peer).
  std::uint16_t protocol_version = 2;
  /// Shm-ring region name the sender is willing to share with a
  /// co-located peer; empty = no offer.
  std::string shm_token;
  /// Plan epoch of the sender's committed snapshot (appended in v4) — a
  /// rejoining node announces where its resync must start from; 0 from
  /// pre-v4 peers and fresh joiners.
  std::uint64_t resync_epoch = 0;
};

/// Payload of DemoteRequest.
struct DemotePayload {
  std::string node;   ///< Overloaded node.
  std::string mode;   ///< Its declared degraded mode.
  std::uint8_t level = 0;  ///< monitor::GovernorLevel at request time.
};

/// Payload of Join: a running node asks the coordinator to admit it into
/// the live membership. Admission is an ordinary two-phase re-shard — the
/// joiner's baseline is the empty slice (docs/MEMBERSHIP.md §2).
struct JoinPayload {
  std::string node;  ///< Joining node's name (its HELLO identity).
  /// Plan epoch of the committed snapshot the joiner restarted from; 0
  /// for a node that has never held a slice.
  std::uint64_t resync_epoch = 0;
};

/// Payload of Leave: a node asks the coordinator to drain its slice away
/// and remove it from the membership.
struct LeavePayload {
  std::string node;    ///< Departing node's name.
  std::string reason;  ///< Operator-visible reason (maintenance, ...).
};

/// One node's share of a STANDBY_SYNC decision record: the canonical
/// plan-codec snapshot and plan epoch the coordinator holds for it.
struct StandbyNodeRecord {
  std::string node;          ///< Node name.
  std::uint64_t epoch = 0;   ///< Node plan epoch after the decision.
  std::vector<std::uint8_t> snapshot;  ///< encode_plan() of its slice.
};

/// Payload of StandbySync: one durable decision-log record, streamed to
/// the standby *before* the decision frames go out so a promoted standby
/// can re-drive the last decision (docs/MEMBERSHIP.md §4).
struct StandbySyncPayload {
  std::uint64_t txn = 0;        ///< Decided transaction id.
  std::uint8_t committed = 0;   ///< 1 = Commit, 0 = Abort.
  std::string reason;           ///< Abort reason (empty on commit).
  std::uint64_t coord_epoch = 0;  ///< Epoch of the deciding coordinator.
  std::uint64_t membership_epoch = 0;  ///< Membership view version.
  std::vector<std::string> members;    ///< Member nodes at decision time.
  /// Component-to-node assignment at decision time (the NodeMap body).
  std::vector<std::pair<std::string, std::string>> assignment;
  std::vector<StandbyNodeRecord> nodes;  ///< Per-node snapshots/epochs.
};

/// Payload of Takeover: a promoted standby announces a raised coordinator
/// epoch. Nodes fence every lower-epoch coordinator from then on and
/// answer with HELLO carrying their resync epoch (docs/MEMBERSHIP.md §5).
struct TakeoverPayload {
  std::string coordinator;        ///< Promoted coordinator's name.
  std::uint64_t coord_epoch = 0;  ///< Newly claimed epoch (monotonic).
};

/// Encodes a route table (shared by PrepareReload and tooling).
void write_routes(WireWriter& w, const std::vector<GatewayRoute>& routes);
/// Decodes a route table.
std::vector<GatewayRoute> read_routes(WireReader& r);

/// Builds a PrepareReload frame.
comm::Frame make_prepare_reload(const PrepareReloadPayload& payload);
/// Parses a PrepareReload frame payload (throws WireError on truncation).
PrepareReloadPayload parse_prepare_reload(const comm::Frame& frame);

/// Builds a PrepareMode frame.
comm::Frame make_prepare_mode(const PrepareModePayload& payload);
/// Parses a PrepareMode frame payload.
PrepareModePayload parse_prepare_mode(const comm::Frame& frame);

/// Builds a node reply frame of the given type (PrepareOk, PrepareFail,
/// Committed, or Aborted).
comm::Frame make_node_reply(FrameType type, const NodeReplyPayload& payload);
/// Parses a node reply frame payload.
NodeReplyPayload parse_node_reply(const comm::Frame& frame);

/// Builds a Commit or Abort frame.
comm::Frame make_decision(FrameType type, const DecisionPayload& payload);
/// Parses a Commit/Abort frame payload.
DecisionPayload parse_decision(const comm::Frame& frame);

/// Builds a Data frame.
comm::Frame make_data(const DataPayload& payload);
/// Parses a Data frame payload.
DataPayload parse_data(const comm::Frame& frame);

/// Builds a Batch frame.
comm::Frame make_batch(const BatchPayload& payload);
/// Parses a Batch frame payload (throws WireError on truncation).
BatchPayload parse_batch(const comm::Frame& frame);

/// Builds a Credit frame.
comm::Frame make_credit(const CreditPayload& payload);
/// Parses a Credit frame payload.
CreditPayload parse_credit(const comm::Frame& frame);

/// Builds a Hello frame announcing the node name, codec version, wire
/// version kProtocolVersion, (when non-empty) a shm-ring offer, and the
/// sender's resync epoch. Version-2 receivers read the leading fields and
/// ignore the rest — HELLO extension is append-only (docs/PROTOCOL.md §7).
comm::Frame make_hello(const std::string& node,
                       const std::string& shm_token = std::string(),
                       std::uint64_t resync_epoch = 0);
/// Parses a Hello frame payload; returns the node name (the codec version
/// is checked and a mismatch throws WireError).
std::string parse_hello(const comm::Frame& frame);
/// Parses every field a Hello carries, tolerating version-2 frames (the
/// trailing version/shm fields default as documented on HelloInfo). A
/// codec mismatch still throws WireError.
HelloInfo parse_hello_info(const comm::Frame& frame);

/// Builds a DemoteRequest frame.
comm::Frame make_demote(const DemotePayload& payload);
/// Parses a DemoteRequest frame payload.
DemotePayload parse_demote(const comm::Frame& frame);

/// Builds a Join frame.
comm::Frame make_join(const JoinPayload& payload);
/// Parses a Join frame payload.
JoinPayload parse_join(const comm::Frame& frame);

/// Builds a Leave frame.
comm::Frame make_leave(const LeavePayload& payload);
/// Parses a Leave frame payload.
LeavePayload parse_leave(const comm::Frame& frame);

/// Builds a StandbySync frame.
comm::Frame make_standby_sync(const StandbySyncPayload& payload);
/// Parses a StandbySync frame payload (throws WireError on truncation).
StandbySyncPayload parse_standby_sync(const comm::Frame& frame);

/// Builds a Takeover frame.
comm::Frame make_takeover(const TakeoverPayload& payload);
/// Parses a Takeover frame payload.
TakeoverPayload parse_takeover(const comm::Frame& frame);

}  // namespace rtcf::dist
