// Frame types and payload helpers of the distributed reconfiguration
// protocol. docs/PROTOCOL.md is the normative spec; this header is the
// reference implementation of the payload encodings.
//
// The protocol has two planes sharing one frame format:
//
//   * control plane (coordinator <-> node): HELLO, the two-phase
//     PREPARE/COMMIT/ABORT exchange, and DEMOTE_REQUEST;
//   * data plane (node <-> node): DATA frames carrying one comm::Message
//     across a bridged asynchronous binding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "comm/message.hpp"
#include "dist/wire.hpp"

namespace rtcf::dist {

/// Frame type discriminators (comm::Frame::type).
enum class FrameType : std::uint16_t {
  /// Node -> coordinator on attach: node name + codec version.
  Hello = 1,
  /// Coordinator -> node: stage a reload slice and park at quiescence.
  PrepareReload = 2,
  /// Coordinator -> node: stage a mode transition and park at quiescence.
  PrepareMode = 3,
  /// Node -> coordinator: the slice validated and the node is quiescent.
  PrepareOk = 4,
  /// Node -> coordinator: the slice was rejected (reason enclosed).
  PrepareFail = 5,
  /// Coordinator -> node: apply the prepared transition.
  Commit = 6,
  /// Node -> coordinator: the transition applied (epoch, audit, latency).
  Committed = 7,
  /// Coordinator -> node: release the prepared transition unapplied.
  Abort = 8,
  /// Node -> coordinator: the transition was released; epoch unchanged.
  Aborted = 9,
  /// Node -> node: one message of a bridged asynchronous binding.
  Data = 10,
  /// Node -> coordinator: sustained overload; please demote the cluster.
  DemoteRequest = 11,
};

/// One cross-node binding's routing entry: where the logical client end
/// (client, port) lives, and which server it feeds on which node.
struct GatewayRoute {
  std::string client;  ///< Global client component (the exit's node).
  std::string port;    ///< Client port name (the binding's identity).
  std::string client_node;  ///< Node hosting the client and the exit.
  std::string server;  ///< Global server component (the entry's node).
  std::string iface;   ///< Server interface name.
  std::string server_node;  ///< Node hosting the server and the entry.

  /// Field-wise equality.
  bool operator==(const GatewayRoute& o) const {
    return client == o.client && port == o.port &&
           client_node == o.client_node && server == o.server &&
           iface == o.iface && server_node == o.server_node;
  }
};

/// Payload of PrepareReload.
struct PrepareReloadPayload {
  std::uint64_t txn = 0;          ///< Transaction id (coordinator-unique).
  std::uint64_t expect_epoch = 0; ///< Node plan epoch the slice was diffed
                                  ///< against (stale-epoch guard).
  std::vector<std::uint8_t> plan;  ///< encode_plan() of the target slice.
  std::vector<std::uint8_t> delta; ///< encode_delta() of the slice delta.
  std::vector<GatewayRoute> routes;  ///< Full post-commit route table.
};

/// Payload of PrepareMode.
struct PrepareModePayload {
  std::uint64_t txn = 0;  ///< Transaction id.
  std::string mode;       ///< Target mode name (declared on every node).
};

/// Payload of PrepareOk / PrepareFail / Committed / Aborted.
struct NodeReplyPayload {
  std::uint64_t txn = 0;     ///< Transaction id echoed back.
  std::string node;          ///< Replying node.
  std::uint64_t epoch = 0;   ///< Node plan epoch after handling the frame.
  std::string reason;        ///< PrepareFail: why the slice was rejected.
  std::uint64_t drained = 0; ///< Committed: apply-time drain audit.
  std::int64_t latency_ns = 0;  ///< Committed: prepare-to-commit latency.
};

/// Payload of Commit / Abort.
struct DecisionPayload {
  std::uint64_t txn = 0;  ///< Transaction id.
  std::string reason;     ///< Abort: why (straggler timeout, veto, ...).
};

/// Payload of Data.
struct DataPayload {
  std::string client;   ///< Logical client end: component...
  std::string port;     ///< ...and port (addresses the entry gateway).
  comm::Message message;  ///< The bridged message, verbatim.
};

/// Payload of DemoteRequest.
struct DemotePayload {
  std::string node;   ///< Overloaded node.
  std::string mode;   ///< Its declared degraded mode.
  std::uint8_t level = 0;  ///< monitor::GovernorLevel at request time.
};

/// Encodes a route table (shared by PrepareReload and tooling).
void write_routes(WireWriter& w, const std::vector<GatewayRoute>& routes);
/// Decodes a route table.
std::vector<GatewayRoute> read_routes(WireReader& r);

/// Builds a PrepareReload frame.
comm::Frame make_prepare_reload(const PrepareReloadPayload& payload);
/// Parses a PrepareReload frame payload (throws WireError on truncation).
PrepareReloadPayload parse_prepare_reload(const comm::Frame& frame);

/// Builds a PrepareMode frame.
comm::Frame make_prepare_mode(const PrepareModePayload& payload);
/// Parses a PrepareMode frame payload.
PrepareModePayload parse_prepare_mode(const comm::Frame& frame);

/// Builds a node reply frame of the given type (PrepareOk, PrepareFail,
/// Committed, or Aborted).
comm::Frame make_node_reply(FrameType type, const NodeReplyPayload& payload);
/// Parses a node reply frame payload.
NodeReplyPayload parse_node_reply(const comm::Frame& frame);

/// Builds a Commit or Abort frame.
comm::Frame make_decision(FrameType type, const DecisionPayload& payload);
/// Parses a Commit/Abort frame payload.
DecisionPayload parse_decision(const comm::Frame& frame);

/// Builds a Data frame.
comm::Frame make_data(const DataPayload& payload);
/// Parses a Data frame payload.
DataPayload parse_data(const comm::Frame& frame);

/// Builds a Hello frame carrying the node name and codec version.
comm::Frame make_hello(const std::string& node);
/// Parses a Hello frame payload; returns the node name (the codec version
/// is checked and a mismatch throws WireError).
std::string parse_hello(const comm::Frame& frame);

/// Builds a DemoteRequest frame.
comm::Frame make_demote(const DemotePayload& payload);
/// Parses a DemoteRequest frame payload.
DemotePayload parse_demote(const comm::Frame& frame);

}  // namespace rtcf::dist
