#include "dist/standby.hpp"

#include <utility>

#include "dist/plan_codec.hpp"

namespace rtcf::dist {

StandbyCoordinator::StandbyCoordinator(std::string name,
                                       validate::MembershipView initial)
    : StandbyCoordinator(std::move(name), std::move(initial), Options{}) {}

StandbyCoordinator::StandbyCoordinator(std::string name,
                                       validate::MembershipView initial,
                                       Options options)
    : name_(std::move(name)),
      initial_(std::move(initial)),
      options_(std::move(options)) {}

void StandbyCoordinator::attach_feed(std::shared_ptr<comm::Channel> channel) {
  feed_ = std::move(channel);
  last_heard_ = rtsj::SteadyClock::instance().now();
}

void StandbyCoordinator::attach_node(const std::string& node,
                                     std::shared_ptr<comm::Channel> channel) {
  node_channels_[node] = std::move(channel);
}

std::size_t StandbyCoordinator::pump(rtsj::RelativeTime wait) {
  if (feed_ == nullptr) return 0;
  std::size_t consumed = 0;
  auto& clock = rtsj::SteadyClock::instance();
  const rtsj::AbsoluteTime deadline = clock.now() + wait;
  for (;;) {
    const rtsj::AbsoluteTime now = clock.now();
    comm::Frame frame;
    const rtsj::RelativeTime budget =
        now < deadline ? deadline - now : rtsj::RelativeTime::zero();
    if (!feed_->receive(frame, budget)) break;
    if (frame.type != static_cast<std::uint16_t>(FrameType::StandbySync)) {
      continue;  // unknown frame types are ignored (PROTOCOL.md §7)
    }
    try {
      last_record_ = parse_standby_sync(frame);
    } catch (const WireError&) {
      continue;  // a torn record is dropped whole
    }
    ++records_seen_;
    ++consumed;
    last_heard_ = clock.now();
    if (last_record_->coord_epoch > observed_epoch_) {
      observed_epoch_ = last_record_->coord_epoch;
    }
    if (clock.now() >= deadline) break;
  }
  return consumed;
}

bool StandbyCoordinator::lease_expired() const {
  return rtsj::SteadyClock::instance().now() > last_heard_ + options_.lease;
}

ReconfigCoordinator& StandbyCoordinator::promote(
    const model::Architecture& global, rtsj::RelativeTime takeover_wait) {
  if (promoted_ != nullptr) return *promoted_;
  // One last drain: a record already in flight must not be lost to the
  // promotion race (the active streamed it before any decision frame).
  pump(rtsj::RelativeTime::zero());

  validate::MembershipView view;
  if (last_record_.has_value()) {
    view.epoch = last_record_->membership_epoch;
    view.map.nodes = last_record_->members;
    for (const auto& [component, owner] : last_record_->assignment) {
      view.map.assignment.emplace(component, owner);
    }
  } else {
    view = initial_;
  }

  promoted_ = std::make_unique<ReconfigCoordinator>(view.map,
                                                    options_.coordinator);
  promoted_->set_membership(view);
  promoted_->set_coord_epoch(observed_epoch_ + 1);
  if (last_record_.has_value()) {
    promoted_->set_next_txn(last_record_->txn + 1);
  }
  for (const std::string& node : view.map.nodes) {
    auto channel = node_channels_.find(node);
    if (channel == node_channels_.end()) continue;  // unreachable member
    const StandbyNodeRecord* record = nullptr;
    if (last_record_.has_value()) {
      for (const StandbyNodeRecord& entry : last_record_->nodes) {
        if (entry.node == node) {
          record = &entry;
          break;
        }
      }
    }
    if (record != nullptr) {
      // The record's snapshot is the canonical plan-codec byte sequence
      // of what the node runs after the recorded decision — the resync
      // baseline. Epoch 0 until the TAKEOVER sweep refreshes it.
      promoted_->resync(node, channel->second, decode_plan(record->snapshot),
                        0);
    } else {
      promoted_->attach(node, channel->second, global);
    }
  }
  promoted_->announce_takeover(name_, takeover_wait);
  return *promoted_;
}

std::optional<ReconfigCoordinator::Outcome> StandbyCoordinator::redrive_last() {
  if (promoted_ == nullptr || !last_record_.has_value()) return std::nullopt;
  return promoted_->redrive_decision(last_record_->txn,
                                     last_record_->committed != 0,
                                     last_record_->reason);
}

}  // namespace rtcf::dist
