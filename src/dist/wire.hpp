// Primitive wire encoding for the distributed reconfiguration protocol.
//
// Everything the cluster agrees on — assembly plans, plan deltas, frame
// payloads — is encoded with these two classes, so docs/PROTOCOL.md only
// has to specify one set of primitives:
//
//   * fixed-width little-endian integers (u8..u64, i64), IEEE-754 doubles
//     transported as their u64 bit pattern;
//   * strings and byte arrays as a u32 length followed by the raw bytes;
//   * *blocks*: a u32 byte length followed by the block contents. Every
//     versioned record is wrapped in a block, which is what buys forward
//     compatibility: a reader that understands fewer fields than the
//     writer reads what it knows and skips to the block end, so newer
//     encoders interoperate with older decoders (exercised by the
//     unknown-field tests under `ctest -L dist`).
//
// Decoding is strict about truncation: any read past the end of the buffer
// (or past the enclosing block) throws WireError, so a torn or corrupt
// frame is rejected as a whole instead of yielding a half-decoded plan.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rtcf::dist {

/// Raised by WireReader on truncated or malformed input.
class WireError : public std::runtime_error {
 public:
  /// An error with a "wire: "-prefixed description.
  explicit WireError(const std::string& message)
      : std::runtime_error("wire: " + message) {}
};

/// A non-owning mutable byte span: where a zero-copy encoder writes. The
/// memory is caller-provided — a transport's reserved ring region, a
/// pooled buffer — and must outlive every writer over it.
struct WireSpan {
  std::uint8_t* data = nullptr;  ///< First writable byte.
  std::size_t size = 0;          ///< Writable bytes.
};

/// Append-only encoder over a growable byte vector.
class WireWriter {
 public:
  /// Appends one unsigned byte.
  void u8(std::uint8_t v);
  /// Appends a 16-bit little-endian unsigned integer.
  void u16(std::uint16_t v);
  /// Appends a 32-bit little-endian unsigned integer.
  void u32(std::uint32_t v);
  /// Appends a 64-bit little-endian unsigned integer.
  void u64(std::uint64_t v);
  /// Appends a 64-bit little-endian two's-complement integer.
  void i64(std::int64_t v);
  /// Appends an IEEE-754 double as its 64-bit bit pattern.
  void f64(double v);
  /// Appends a u32 length followed by the string bytes (no terminator).
  void str(const std::string& v);
  /// Appends a u32 length followed by the raw bytes.
  void bytes(const std::vector<std::uint8_t>& v);
  /// Appends `count` raw bytes with no length prefix. For callers that
  /// emit a hand-rolled length (zero-copy encoders staging fixed-layout
  /// records); the result must stay byte-identical to the prefixed forms.
  void raw(const std::uint8_t* data, std::size_t count);

  /// Opens a length-prefixed block; returns a token for end_block. Blocks
  /// may nest.
  std::size_t begin_block();
  /// Closes the innermost open block, patching its u32 length prefix.
  void end_block(std::size_t token);

  /// The encoded bytes so far.
  const std::vector<std::uint8_t>& data() const noexcept { return data_; }
  /// Moves the encoded bytes out (the writer is empty afterwards).
  std::vector<std::uint8_t> take() { return std::move(data_); }

 private:
  std::vector<std::uint8_t> data_;
};

/// Fixed-capacity encoder over a caller-provided WireSpan. Emits the exact
/// byte sequence WireWriter would (same primitives, same block framing) but
/// never allocates: the destination is transport memory — a shm ring
/// reservation or a pooled buffer — and overflow throws WireError instead
/// of growing. Callers size the span with the *_wire_bytes helpers first,
/// so an overflow is a logic error surfaced loudly, not a truncated frame.
class SpanWriter {
 public:
  /// Writes into `span` (not owned; must outlive the writer).
  explicit SpanWriter(WireSpan span) : data_(span.data), size_(span.size) {}

  /// Appends one unsigned byte.
  void u8(std::uint8_t v);
  /// Appends a 16-bit little-endian unsigned integer.
  void u16(std::uint16_t v);
  /// Appends a 32-bit little-endian unsigned integer.
  void u32(std::uint32_t v);
  /// Appends a 64-bit little-endian unsigned integer.
  void u64(std::uint64_t v);
  /// Appends a 64-bit little-endian two's-complement integer.
  void i64(std::int64_t v);
  /// Appends an IEEE-754 double as its 64-bit bit pattern.
  void f64(double v);
  /// Appends a u32 length followed by the string bytes (no terminator).
  void str(const std::string& v);
  /// Appends a u32 length followed by the raw bytes.
  void bytes(const std::uint8_t* data, std::size_t count);
  /// Appends `count` raw bytes with no length prefix.
  void raw(const std::uint8_t* data, std::size_t count);

  /// Opens a length-prefixed block; returns a token for end_block. Blocks
  /// may nest.
  std::size_t begin_block();
  /// Closes the innermost open block, patching its u32 length prefix.
  void end_block(std::size_t token);

  /// Bytes written so far.
  std::size_t used() const noexcept { return pos_; }
  /// Bytes still available in the span.
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void require(std::size_t count) const;

  std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Bounds-checked decoder over a byte span. Every accessor throws WireError
/// on truncation; block() returns a sub-reader confined to the block so a
/// record's unknown trailing fields are skipped, not misread.
class WireReader {
 public:
  /// Reads from `size` bytes at `data` (not owned; must outlive the
  /// reader).
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  /// Reads from a byte vector (not owned; must outlive the reader).
  explicit WireReader(const std::vector<std::uint8_t>& data)
      : WireReader(data.data(), data.size()) {}

  /// Reads one unsigned byte.
  std::uint8_t u8();
  /// Reads a 16-bit little-endian unsigned integer.
  std::uint16_t u16();
  /// Reads a 32-bit little-endian unsigned integer.
  std::uint32_t u32();
  /// Reads a 64-bit little-endian unsigned integer.
  std::uint64_t u64();
  /// Reads a 64-bit little-endian two's-complement integer.
  std::int64_t i64();
  /// Reads an IEEE-754 double from its 64-bit bit pattern.
  double f64();
  /// Reads a u32-length-prefixed string.
  std::string str();
  /// Reads a u32-length-prefixed string as a view into the underlying
  /// buffer — no copy. The view is valid only while the buffer lives.
  std::string_view str_view();
  /// Reads a u32-length-prefixed byte array.
  std::vector<std::uint8_t> bytes();
  /// Reads `count` raw bytes with no length prefix and returns a pointer
  /// into the underlying buffer — no copy. Valid while the buffer lives.
  const std::uint8_t* raw(std::size_t count);

  /// Reads a block header and returns a sub-reader confined to the block's
  /// bytes; this reader advances past the whole block regardless of how
  /// much of it the caller consumes (unknown-field tolerance).
  WireReader block();

  /// Bytes not yet consumed.
  std::size_t remaining() const noexcept { return size_ - pos_; }
  /// True when every byte has been consumed.
  bool at_end() const noexcept { return pos_ == size_; }

 private:
  void require(std::size_t count) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace rtcf::dist
