// The reconfiguration coordinator: one logical transition across N nodes.
//
// The coordinator owns the cluster-level half of the protocol
// (docs/PROTOCOL.md):
//
//   1. *Plan.* A coordinated reload validates the global target
//      architecture with the full rule engine plus the DIST-* cut rules,
//      slices it per node (dist/slice.hpp), and diffs every slice against
//      its view of that node's running snapshot. The canonical plan and
//      delta encodings (dist/plan_codec.hpp) are the unit of agreement.
//   2. *Prepare.* Every node receives its slice + delta + the post-commit
//      route table, re-validates the delta locally (DELTA-* rules, the
//      byte-exact agreement check), parks its executive at the quiescence
//      rendezvous, and votes. A PREPARE_FAIL or a straggler that misses
//      `Options::prepare_timeout` turns the transition into a clean
//      global abort — every prepared node releases with its old epoch.
//   3. *Decide.* On unanimous PREPARE_OK the coordinator commits: each
//      node applies its slice on the decision thread while its workers
//      stay parked, reports its drain audit and epoch, and resumes. The
//      coordinator's per-node snapshots advance only on COMMITTED.
//
// Coordinated *mode transitions* ride the same two-phase machinery with a
// mode name instead of a slice (a node whose filtered mode has no local
// components quiesces everything it manages — how a cluster demotion
// shuts down a whole node). DEMOTE_REQUEST frames from overloaded nodes
// are queued during waits and surfaced via poll_demote_request().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "dist/protocol.hpp"
#include "model/assembly_plan.hpp"
#include "model/metamodel.hpp"
#include "validate/distribution.hpp"
#include "validate/report.hpp"

namespace rtcf::dist {

/// Runs two-phase transitions across the attached nodes.
class ReconfigCoordinator {
 public:
  /// Coordinator knobs.
  struct Options {
    /// PREPARE phase deadline: a node that has not voted by then is a
    /// straggler and the transition aborts globally.
    rtsj::RelativeTime prepare_timeout =
        rtsj::RelativeTime::milliseconds(1000);
    /// COMMIT/ABORT acknowledgement deadline (bookkeeping only — the
    /// decision is already durable when it is sent).
    rtsj::RelativeTime decision_timeout =
        rtsj::RelativeTime::milliseconds(1000);
  };

  /// One node's verdict inside an Outcome.
  struct NodeResult {
    std::string node;          ///< Node name.
    bool prepared = false;     ///< Voted PREPARE_OK.
    bool committed = false;    ///< Acknowledged COMMIT.
    std::uint64_t epoch = 0;   ///< Node plan epoch after the transition.
    std::uint64_t drained = 0; ///< Apply-time drain audit (reloads).
    std::int64_t latency_ns = 0;  ///< Prepare-to-commit latency.
    std::string detail;        ///< Failure reason / abort acknowledgement.
  };

  /// The result of one coordinated transition.
  struct Outcome {
    bool committed = false;    ///< True when every node committed.
    std::uint64_t txn = 0;     ///< Transaction id.
    std::string reason;        ///< Why the transition aborted (when it did).
    validate::Report report;   ///< Global validation (reloads).
    std::vector<NodeResult> nodes;  ///< Per-node results, cluster order.
  };

  /// A cluster over `map` with default options (every map node must be
  /// attached before the first transition).
  explicit ReconfigCoordinator(validate::NodeMap map);
  /// A cluster over `map` with explicit options.
  ReconfigCoordinator(validate::NodeMap map, Options options);

  /// Attaches `node`'s control channel and records its launch-time
  /// snapshot: the slice of `global` assembled when the node started
  /// (the baseline every later reload is diffed against).
  void attach(const std::string& node, std::shared_ptr<comm::Channel> channel,
              const model::Architecture& global);

  /// Coordinates one atomic cluster reload onto `global_target`. Returns
  /// without touching any node when global validation (rule engine +
  /// DIST-* rules) fails or a slice has no delta *anywhere* (a cluster
  /// no-op).
  Outcome coordinate_reload(const model::Architecture& global_target);

  /// Coordinates one atomic cluster mode transition.
  Outcome coordinate_transition(const std::string& mode);

  /// Fault-injection points for the adversity drills. Each hook is
  /// consulted immediately before the named frame is sent; returning
  /// false simulates the coordinator process dying at that instant — no
  /// further frames are sent and no replies are awaited for the rest of
  /// the transition (the next coordinate_* call acts as the restarted
  /// coordinator, which must resynchronize diverged nodes via attach()).
  struct FaultHooks {
    /// Before PREPARE is sent to `node` for transaction `txn`.
    std::function<bool(const std::string& node, std::uint64_t txn)>
        before_prepare;
    /// Before the decision frame is sent to `node`; `commit` says which
    /// verdict is being distributed.
    std::function<bool(const std::string& node, std::uint64_t txn,
                       bool commit)>
        before_decision;
  };

  /// Installs (nullptr clears) the fault hooks; the pointee must outlive
  /// every coordinate_* call made while installed. When unset, the send
  /// paths pay exactly one raw-pointer null check and nothing else —
  /// audited by bench_dist_reconfig_latency.
  void set_fault_hooks(FaultHooks* hooks) noexcept { hooks_ = hooks; }

  /// Returns the oldest queued DEMOTE_REQUEST (scanning the channels for
  /// up to `wait`), or nullopt. The caller answers it with
  /// coordinate_transition(payload.mode).
  std::optional<DemotePayload> poll_demote_request(rtsj::RelativeTime wait);

  /// The coordinator's view of `node`'s running snapshot (advanced on
  /// COMMITTED). Exposed for tests and tooling.
  const model::AssemblyPlan& node_snapshot(const std::string& node) const;

  /// The node map this cluster was built over.
  const validate::NodeMap& node_map() const noexcept { return map_; }

 private:
  struct Peer {
    std::shared_ptr<comm::Channel> channel;
    model::AssemblyPlan snapshot;   ///< Last committed slice snapshot.
    std::uint64_t epoch = 0;        ///< Last epoch the node reported.
  };

  /// Runs the decision phase shared by reloads and transitions: collects
  /// PREPARE votes until `deadline`, then commits or aborts everywhere.
  void decide(Outcome& outcome,
              const std::vector<std::string>& participants);
  /// Receives the next reply for transaction `txn` from `node` (stashing
  /// demote requests, dropping replies of earlier transactions) until
  /// `deadline`; false on timeout.
  bool await_reply(const std::string& node, std::uint64_t txn,
                   NodeReplyPayload& payload, std::uint16_t& type,
                   rtsj::AbsoluteTime deadline);

  validate::NodeMap map_;
  Options options_;
  std::map<std::string, Peer> peers_;
  std::deque<DemotePayload> demote_queue_;
  std::uint64_t next_txn_ = 1;
  /// Unset in production: the send paths only null-check it.
  FaultHooks* hooks_ = nullptr;
  /// A hook reported the coordinator dead mid-transition; cleared when
  /// the next transition starts (= coordinator restart).
  bool crashed_ = false;
  /// Staged post-commit snapshots of the transition in flight.
  std::map<std::string, model::AssemblyPlan> staged_;
};

}  // namespace rtcf::dist
