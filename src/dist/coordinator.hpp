// The reconfiguration coordinator: one logical transition across N nodes.
//
// The coordinator owns the cluster-level half of the protocol
// (docs/PROTOCOL.md):
//
//   1. *Plan.* A coordinated reload validates the global target
//      architecture with the full rule engine plus the DIST-* cut rules,
//      slices it per node (dist/slice.hpp), and diffs every slice against
//      its view of that node's running snapshot. The canonical plan and
//      delta encodings (dist/plan_codec.hpp) are the unit of agreement.
//   2. *Prepare.* Every node receives its slice + delta + the post-commit
//      route table, re-validates the delta locally (DELTA-* rules, the
//      byte-exact agreement check), parks its executive at the quiescence
//      rendezvous, and votes. A PREPARE_FAIL or a straggler that misses
//      `Options::prepare_timeout` turns the transition into a clean
//      global abort — every prepared node releases with its old epoch.
//   3. *Decide.* On unanimous PREPARE_OK the coordinator commits: each
//      node applies its slice on the decision thread while its workers
//      stay parked, reports its drain audit and epoch, and resumes. The
//      coordinator's per-node snapshots advance only on COMMITTED.
//
// Coordinated *mode transitions* ride the same two-phase machinery with a
// mode name instead of a slice (a node whose filtered mode has no local
// components quiesces everything it manages — how a cluster demotion
// shuts down a whole node). DEMOTE_REQUEST frames from overloaded nodes
// are queued during waits and surfaced via poll_demote_request().
//
// Live membership (docs/MEMBERSHIP.md) rides the same machinery too: the
// coordinator holds an epoch-versioned validate::MembershipView instead
// of a frozen NodeMap, admits a joiner by re-slicing under the proposed
// map and driving an ordinary two-phase reload (the joiner's baseline is
// the empty slice), and drains a leaver symmetrically. Every decision is
// streamed as a durable STANDBY_SYNC record *before* the decision frames
// go out, so a promoted standby can redrive the last decision under a
// raised coordinator epoch; nodes fence anything older.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "dist/protocol.hpp"
#include "model/assembly_plan.hpp"
#include "model/metamodel.hpp"
#include "validate/distribution.hpp"
#include "validate/report.hpp"

namespace rtcf::dist {

/// Runs two-phase transitions across the attached nodes.
class ReconfigCoordinator {
 public:
  /// Coordinator knobs.
  struct Options {
    /// PREPARE phase deadline: a node that has not voted by then is a
    /// straggler and the transition aborts globally.
    rtsj::RelativeTime prepare_timeout =
        rtsj::RelativeTime::milliseconds(1000);
    /// COMMIT/ABORT acknowledgement deadline (bookkeeping only — the
    /// decision is already durable when it is sent).
    rtsj::RelativeTime decision_timeout =
        rtsj::RelativeTime::milliseconds(1000);
  };

  /// One node's verdict inside an Outcome.
  struct NodeResult {
    std::string node;          ///< Node name.
    bool prepared = false;     ///< Voted PREPARE_OK.
    bool committed = false;    ///< Acknowledged COMMIT.
    std::uint64_t epoch = 0;   ///< Node plan epoch after the transition.
    std::uint64_t drained = 0; ///< Apply-time drain audit (reloads).
    std::int64_t latency_ns = 0;  ///< Prepare-to-commit latency.
    std::string detail;        ///< Failure reason / abort acknowledgement.
  };

  /// The result of one coordinated transition.
  struct Outcome {
    bool committed = false;    ///< True when every node committed.
    std::uint64_t txn = 0;     ///< Transaction id.
    std::string reason;        ///< Why the transition aborted (when it did).
    validate::Report report;   ///< Global validation (reloads).
    std::vector<NodeResult> nodes;  ///< Per-node results, cluster order.
  };

  /// A cluster over `map` with default options (every map node must be
  /// attached before the first transition).
  explicit ReconfigCoordinator(validate::NodeMap map);
  /// A cluster over `map` with explicit options.
  ReconfigCoordinator(validate::NodeMap map, Options options);

  /// Attaches `node`'s control channel and records its launch-time
  /// snapshot: the slice of `global` assembled when the node started
  /// (the baseline every later reload is diffed against).
  void attach(const std::string& node, std::shared_ptr<comm::Channel> channel,
              const model::Architecture& global);

  /// Coordinates one atomic cluster reload onto `global_target`. Returns
  /// without touching any node when global validation (rule engine +
  /// DIST-* rules) fails or a slice has no delta *anywhere* (a cluster
  /// no-op).
  Outcome coordinate_reload(const model::Architecture& global_target);

  /// Coordinates one atomic cluster mode transition.
  Outcome coordinate_transition(const std::string& mode);

  /// Fault-injection points for the adversity drills. Each hook is
  /// consulted immediately before the named frame is sent; returning
  /// false simulates the coordinator process dying at that instant — no
  /// further frames are sent and no replies are awaited for the rest of
  /// the transition (the next coordinate_* call acts as the restarted
  /// coordinator, which must resynchronize diverged nodes via attach()).
  struct FaultHooks {
    /// Before PREPARE is sent to `node` for transaction `txn`.
    std::function<bool(const std::string& node, std::uint64_t txn)>
        before_prepare;
    /// Before the decision frame is sent to `node`; `commit` says which
    /// verdict is being distributed.
    std::function<bool(const std::string& node, std::uint64_t txn,
                       bool commit)>
        before_decision;
  };

  /// Installs (nullptr clears) the fault hooks; the pointee must outlive
  /// every coordinate_* call made while installed. When unset, the send
  /// paths pay exactly one raw-pointer null check and nothing else —
  /// audited by bench_dist_reconfig_latency.
  void set_fault_hooks(FaultHooks* hooks) noexcept { hooks_ = hooks; }

  /// Returns the oldest queued DEMOTE_REQUEST (scanning the channels for
  /// up to `wait`), or nullopt. The caller answers it with
  /// coordinate_transition(payload.mode).
  std::optional<DemotePayload> poll_demote_request(rtsj::RelativeTime wait);

  /// One queued membership request: a candidate's JOIN or a member's
  /// LEAVE, surfaced by poll_membership_request().
  struct MembershipRequest {
    bool join = false;              ///< True for JOIN, false for LEAVE.
    std::string node;               ///< Requesting node.
    std::uint64_t resync_epoch = 0; ///< JOIN: the joiner's snapshot epoch.
    std::string reason;             ///< LEAVE: operator-visible reason.
  };

  /// Registers a not-yet-admitted node's control channel so its JOIN can
  /// be received; admit_node() adopts the channel on admission.
  void stage_candidate(const std::string& node,
                       std::shared_ptr<comm::Channel> channel);

  /// Returns the oldest queued JOIN/LEAVE (scanning member and candidate
  /// channels for up to `wait`), or nullopt. The caller answers a JOIN
  /// with admit_node() and a LEAVE with drain_node().
  std::optional<MembershipRequest> poll_membership_request(
      rtsj::RelativeTime wait);

  /// Admits a staged candidate: validates the single-step membership
  /// transition (MEMBER-* rules), adopts the candidate's channel with an
  /// empty-slice baseline, then drives an ordinary two-phase reload of
  /// `global_target` under `target_map` (which may assign components to
  /// the joiner — the re-shard). The membership view advances even when
  /// the re-shard aborts: the node is then a member holding the empty
  /// slice, and a later reload re-shards onto it.
  Outcome admit_node(const std::string& node,
                     const model::Architecture& global_target,
                     validate::NodeMap target_map);

  /// Drains a member out of the cluster: two-phase reload of
  /// `global_target` under `drained_map` — which must still declare the
  /// node but assign it nothing — then, on commit, evicts the node from
  /// the membership view and detaches it. On abort the node keeps its
  /// slice and its membership.
  Outcome drain_node(const std::string& node,
                     const model::Architecture& global_target,
                     validate::NodeMap drained_map);

  /// Re-shards the cluster onto `target_map` (same member set) with a
  /// two-phase reload of `global_target`; the membership epoch advances
  /// only on commit.
  Outcome reshard(const model::Architecture& global_target,
                  validate::NodeMap target_map);

  /// Re-attaches a restarted node from its replicated canonical snapshot
  /// (dist/plan_codec bytes, decoded by the caller): the decoded plan
  /// becomes the diff baseline and `resync_epoch` (from the node's HELLO)
  /// its epoch. The resync path of docs/MEMBERSHIP.md §3.
  void resync(const std::string& node, std::shared_ptr<comm::Channel> channel,
              model::AssemblyPlan snapshot, std::uint64_t resync_epoch);

  /// Attaches the standby coordinator's feed channel. Every decision is
  /// streamed to it as a STANDBY_SYNC record before the decision frames
  /// go out (decision durable first).
  void attach_standby(std::shared_ptr<comm::Channel> channel);

  /// Fences every older coordinator: sends TAKEOVER carrying this
  /// coordinator's epoch to all attached nodes and adopts the resync
  /// epoch each node answers with (HELLO), waiting up to `wait` per node.
  /// Called by a promoted standby before redriving the last decision.
  void announce_takeover(const std::string& name, rtsj::RelativeTime wait);

  /// Re-distributes a durable decision after fail-over (presumed-abort
  /// recovery): sends COMMIT/ABORT for `txn` to every node and collects
  /// acknowledgements. Nodes that already handled or presumed-aborted the
  /// transaction answer Aborted("no such prepared transaction") — the
  /// idempotent absorb.
  Outcome redrive_decision(std::uint64_t txn, bool commit,
                           const std::string& reason);

  /// The coordinator's view of `node`'s running snapshot (advanced on
  /// COMMITTED). Exposed for tests and tooling.
  const model::AssemblyPlan& node_snapshot(const std::string& node) const;

  /// The node map this cluster currently agrees on.
  const validate::NodeMap& node_map() const noexcept { return view_.map; }

  /// The epoch-versioned membership view (docs/MEMBERSHIP.md §1).
  const validate::MembershipView& membership() const noexcept {
    return view_;
  }

  /// This coordinator's fencing epoch, stamped into every v4 frame.
  std::uint64_t coord_epoch() const noexcept { return coord_epoch_; }
  /// Raises the fencing epoch — the promotion step of a standby takeover.
  void set_coord_epoch(std::uint64_t epoch) noexcept { coord_epoch_ = epoch; }
  /// Continues the transaction sequence of a failed predecessor.
  void set_next_txn(std::uint64_t txn) noexcept { next_txn_ = txn; }
  /// Replaces the membership view — a promoted standby installs the view
  /// from the last durable decision record.
  void set_membership(validate::MembershipView view) {
    view_ = std::move(view);
  }

 private:
  struct Peer {
    std::shared_ptr<comm::Channel> channel;
    model::AssemblyPlan snapshot;   ///< Last committed slice snapshot.
    std::uint64_t epoch = 0;        ///< Last epoch the node reported.
  };

  /// The shared two-phase body: slice `global_target` under `map`, diff,
  /// PREPARE, decide. When `adopt_on_commit` is set, the committed
  /// transition installs it as the new membership view.
  Outcome reload_under(const model::Architecture& global_target,
                       const validate::NodeMap& map,
                       const std::optional<validate::MembershipView>&
                           adopt_on_commit);
  /// Runs the decision phase shared by reloads and transitions: collects
  /// PREPARE votes until `deadline`, then commits or aborts everywhere.
  void decide(Outcome& outcome,
              const std::vector<std::string>& participants);
  /// Streams the decided verdict to the standby feed (no-op when none).
  void stream_decision(const Outcome& outcome, bool commit,
                       const std::vector<std::string>& participants);
  /// Receives the next reply for transaction `txn` from `node` (stashing
  /// demote and membership requests, dropping replies of earlier
  /// transactions) until `deadline`; false on timeout.
  bool await_reply(const std::string& node, std::uint64_t txn,
                   NodeReplyPayload& payload, std::uint16_t& type,
                   rtsj::AbsoluteTime deadline);

  validate::MembershipView view_;
  Options options_;
  std::map<std::string, Peer> peers_;
  /// Not-yet-admitted candidates' control channels (stage_candidate).
  std::map<std::string, std::shared_ptr<comm::Channel>> candidates_;
  std::deque<DemotePayload> demote_queue_;
  std::deque<MembershipRequest> membership_queue_;
  /// The standby coordinator's feed; null when no standby shadows us.
  std::shared_ptr<comm::Channel> standby_;
  std::uint64_t next_txn_ = 1;
  /// Fencing epoch (docs/MEMBERSHIP.md §5); the first coordinator of a
  /// cluster is epoch 1, every promotion claims a higher one.
  std::uint64_t coord_epoch_ = 1;
  /// Unset in production: the send paths only null-check it.
  FaultHooks* hooks_ = nullptr;
  /// A hook reported the coordinator dead mid-transition; cleared when
  /// the next transition starts (= coordinator restart).
  bool crashed_ = false;
  /// Staged post-commit snapshots of the transition in flight.
  std::map<std::string, model::AssemblyPlan> staged_;
  /// Membership view the in-flight transition installs on commit.
  std::optional<validate::MembershipView> staged_view_;
  /// Assignment the in-flight transition runs under (for STANDBY_SYNC).
  const validate::NodeMap* txn_map_ = nullptr;
};

}  // namespace rtcf::dist
