#include "dist/protocol.hpp"

#include <algorithm>
#include <cstring>

#include "dist/plan_codec.hpp"

namespace rtcf::dist {

namespace {

comm::Frame finish(FrameType type, WireWriter& w) {
  comm::Frame frame;
  frame.type = static_cast<std::uint16_t>(type);
  frame.payload = w.take();
  return frame;
}

void check_type(const comm::Frame& frame, FrameType expected,
                const char* what) {
  if (frame.type != static_cast<std::uint16_t>(expected)) {
    throw WireError(std::string("frame is not a ") + what);
  }
}

void write_message(WireWriter& w, const comm::Message& m) {
  const std::size_t block = w.begin_block();
  w.u32(m.type_id);
  w.u32(m.size);
  w.i64(m.timestamp_ns);
  w.u64(m.sequence);
  w.u32(static_cast<std::uint32_t>(comm::Message::kPayloadCapacity));
  w.raw(reinterpret_cast<const std::uint8_t*>(m.payload),
        comm::Message::kPayloadCapacity);
  w.end_block(block);
}

comm::Message read_message(WireReader& r) {
  WireReader b = r.block();
  comm::Message m;
  m.type_id = b.u32();
  m.size = b.u32();
  m.timestamp_ns = b.i64();
  m.sequence = b.u64();
  const std::uint32_t length = b.u32();
  const std::uint8_t* payload = b.raw(length);
  const std::size_t count =
      std::min<std::size_t>(length, comm::Message::kPayloadCapacity);
  std::memcpy(m.payload, payload, count);
  return m;
}

}  // namespace

void write_routes(WireWriter& w, const std::vector<GatewayRoute>& routes) {
  w.u32(static_cast<std::uint32_t>(routes.size()));
  for (const GatewayRoute& route : routes) {
    const std::size_t block = w.begin_block();
    w.str(route.client);
    w.str(route.port);
    w.str(route.client_node);
    w.str(route.server);
    w.str(route.iface);
    w.str(route.server_node);
    w.end_block(block);
  }
}

std::vector<GatewayRoute> read_routes(WireReader& r) {
  const std::uint32_t count = r.u32();
  // Bound the reserve by what the input could possibly hold (a route
  // block is at least its 4-byte length prefix) — a corrupt count must
  // fail as WireError, not bad_alloc.
  if (static_cast<std::uint64_t>(count) * 4 > r.remaining()) {
    throw WireError("implausible route count " + std::to_string(count));
  }
  std::vector<GatewayRoute> routes;
  routes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireReader b = r.block();
    GatewayRoute route;
    route.client = b.str();
    route.port = b.str();
    route.client_node = b.str();
    route.server = b.str();
    route.iface = b.str();
    route.server_node = b.str();
    routes.push_back(std::move(route));
  }
  return routes;
}

comm::Frame make_prepare_reload(const PrepareReloadPayload& payload) {
  WireWriter w;
  w.u64(payload.txn);
  w.u64(payload.expect_epoch);
  w.bytes(payload.plan);
  w.bytes(payload.delta);
  write_routes(w, payload.routes);
  // Version-4 extension, append-only: pre-v4 receivers stop at the route
  // table and treat the sender as epoch 0 (never fenced).
  w.u64(payload.coord_epoch);
  return finish(FrameType::PrepareReload, w);
}

PrepareReloadPayload parse_prepare_reload(const comm::Frame& frame) {
  check_type(frame, FrameType::PrepareReload, "PrepareReload");
  WireReader r(frame.payload);
  PrepareReloadPayload payload;
  payload.txn = r.u64();
  payload.expect_epoch = r.u64();
  payload.plan = r.bytes();
  payload.delta = r.bytes();
  payload.routes = read_routes(r);
  if (r.at_end()) return payload;  // pre-v4 coordinator
  payload.coord_epoch = r.u64();
  return payload;
}

comm::Frame make_prepare_mode(const PrepareModePayload& payload) {
  WireWriter w;
  w.u64(payload.txn);
  w.str(payload.mode);
  // Version-4 extension, append-only (see make_prepare_reload).
  w.u64(payload.coord_epoch);
  return finish(FrameType::PrepareMode, w);
}

PrepareModePayload parse_prepare_mode(const comm::Frame& frame) {
  check_type(frame, FrameType::PrepareMode, "PrepareMode");
  WireReader r(frame.payload);
  PrepareModePayload payload;
  payload.txn = r.u64();
  payload.mode = r.str();
  if (r.at_end()) return payload;  // pre-v4 coordinator
  payload.coord_epoch = r.u64();
  return payload;
}

comm::Frame make_node_reply(FrameType type, const NodeReplyPayload& payload) {
  WireWriter w;
  w.u64(payload.txn);
  w.str(payload.node);
  w.u64(payload.epoch);
  w.str(payload.reason);
  w.u64(payload.drained);
  w.i64(payload.latency_ns);
  return finish(type, w);
}

NodeReplyPayload parse_node_reply(const comm::Frame& frame) {
  WireReader r(frame.payload);
  NodeReplyPayload payload;
  payload.txn = r.u64();
  payload.node = r.str();
  payload.epoch = r.u64();
  payload.reason = r.str();
  payload.drained = r.u64();
  payload.latency_ns = r.i64();
  return payload;
}

comm::Frame make_decision(FrameType type, const DecisionPayload& payload) {
  WireWriter w;
  w.u64(payload.txn);
  w.str(payload.reason);
  // Version-4 extension, append-only (see make_prepare_reload).
  w.u64(payload.coord_epoch);
  return finish(type, w);
}

DecisionPayload parse_decision(const comm::Frame& frame) {
  WireReader r(frame.payload);
  DecisionPayload payload;
  payload.txn = r.u64();
  payload.reason = r.str();
  if (r.at_end()) return payload;  // pre-v4 coordinator
  payload.coord_epoch = r.u64();
  return payload;
}

comm::Frame make_data(const DataPayload& payload) {
  WireWriter w;
  w.str(payload.client);
  w.str(payload.port);
  write_message(w, payload.message);
  return finish(FrameType::Data, w);
}

DataPayload parse_data(const comm::Frame& frame) {
  check_type(frame, FrameType::Data, "Data");
  WireReader r(frame.payload);
  DataPayload payload;
  payload.client = r.str();
  payload.port = r.str();
  payload.message = read_message(r);
  return payload;
}

comm::Frame make_batch(const BatchPayload& payload) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(payload.routes.size()));
  for (const BatchRoute& route : payload.routes) {
    const std::size_t block = w.begin_block();
    w.str(route.client);
    w.str(route.port);
    w.u32(static_cast<std::uint32_t>(route.messages.size()));
    for (const comm::Message& m : route.messages) {
      write_message(w, m);
    }
    w.end_block(block);
  }
  return finish(FrameType::Batch, w);
}

BatchPayload parse_batch(const comm::Frame& frame) {
  check_type(frame, FrameType::Batch, "Batch");
  WireReader r(frame.payload);
  BatchPayload payload;
  const std::uint32_t count = r.u32();
  if (static_cast<std::uint64_t>(count) * 4 > r.remaining()) {
    throw WireError("implausible batch route count " + std::to_string(count));
  }
  payload.routes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireReader b = r.block();
    BatchRoute route;
    route.client = b.str();
    route.port = b.str();
    const std::uint32_t messages = b.u32();
    if (static_cast<std::uint64_t>(messages) * 4 > b.remaining()) {
      throw WireError("implausible batch message count " +
                      std::to_string(messages));
    }
    route.messages.reserve(messages);
    for (std::uint32_t m = 0; m < messages; ++m) {
      route.messages.push_back(read_message(b));
    }
    payload.routes.push_back(std::move(route));
  }
  return payload;
}

comm::Frame make_credit(const CreditPayload& payload) {
  WireWriter w;
  w.str(payload.client);
  w.str(payload.port);
  w.u64(payload.credits);
  return finish(FrameType::Credit, w);
}

CreditPayload parse_credit(const comm::Frame& frame) {
  check_type(frame, FrameType::Credit, "Credit");
  WireReader r(frame.payload);
  CreditPayload payload;
  payload.client = r.str();
  payload.port = r.str();
  payload.credits = r.u64();
  return payload;
}

comm::Frame make_hello(const std::string& node,
                       const std::string& shm_token,
                       std::uint64_t resync_epoch) {
  WireWriter w;
  w.str(node);
  w.u16(kCodecVersion);
  // Version-3 extension, append-only: version-2 receivers stop after the
  // codec version and never see these fields.
  w.u16(kProtocolVersion);
  w.str(shm_token);
  // Version-4 extension, append-only: version-3 receivers stop after the
  // shm offer and treat the sender as resync epoch 0.
  w.u64(resync_epoch);
  return finish(FrameType::Hello, w);
}

std::string parse_hello(const comm::Frame& frame) {
  check_type(frame, FrameType::Hello, "Hello");
  WireReader r(frame.payload);
  std::string node = r.str();
  const std::uint16_t version = r.u16();
  if (version != kCodecVersion) {
    throw WireError("peer speaks codec version " + std::to_string(version));
  }
  return node;
}

HelloInfo parse_hello_info(const comm::Frame& frame) {
  check_type(frame, FrameType::Hello, "Hello");
  WireReader r(frame.payload);
  HelloInfo info;
  info.node = r.str();
  info.codec_version = r.u16();
  if (info.codec_version != kCodecVersion) {
    throw WireError("peer speaks codec version " +
                    std::to_string(info.codec_version));
  }
  // A version-2 HELLO ends here; the defaults (protocol_version = 2, no
  // shm offer) describe such a peer exactly.
  if (r.at_end()) return info;
  info.protocol_version = r.u16();
  info.shm_token = r.str();
  // A version-3 HELLO ends here; the default (resync_epoch = 0)
  // describes a peer that never held a committed slice.
  if (r.at_end()) return info;
  info.resync_epoch = r.u64();
  return info;
}

comm::Frame make_demote(const DemotePayload& payload) {
  WireWriter w;
  w.str(payload.node);
  w.str(payload.mode);
  w.u8(payload.level);
  return finish(FrameType::DemoteRequest, w);
}

DemotePayload parse_demote(const comm::Frame& frame) {
  check_type(frame, FrameType::DemoteRequest, "DemoteRequest");
  WireReader r(frame.payload);
  DemotePayload payload;
  payload.node = r.str();
  payload.mode = r.str();
  payload.level = r.u8();
  return payload;
}

comm::Frame make_join(const JoinPayload& payload) {
  WireWriter w;
  w.str(payload.node);
  w.u64(payload.resync_epoch);
  return finish(FrameType::Join, w);
}

JoinPayload parse_join(const comm::Frame& frame) {
  check_type(frame, FrameType::Join, "Join");
  WireReader r(frame.payload);
  JoinPayload payload;
  payload.node = r.str();
  payload.resync_epoch = r.u64();
  return payload;
}

comm::Frame make_leave(const LeavePayload& payload) {
  WireWriter w;
  w.str(payload.node);
  w.str(payload.reason);
  return finish(FrameType::Leave, w);
}

LeavePayload parse_leave(const comm::Frame& frame) {
  check_type(frame, FrameType::Leave, "Leave");
  WireReader r(frame.payload);
  LeavePayload payload;
  payload.node = r.str();
  payload.reason = r.str();
  return payload;
}

comm::Frame make_standby_sync(const StandbySyncPayload& payload) {
  WireWriter w;
  w.u64(payload.txn);
  w.u8(payload.committed);
  w.str(payload.reason);
  w.u64(payload.coord_epoch);
  w.u64(payload.membership_epoch);
  w.u32(static_cast<std::uint32_t>(payload.members.size()));
  for (const std::string& member : payload.members) {
    w.str(member);
  }
  w.u32(static_cast<std::uint32_t>(payload.assignment.size()));
  for (const auto& [component, node] : payload.assignment) {
    w.str(component);
    w.str(node);
  }
  w.u32(static_cast<std::uint32_t>(payload.nodes.size()));
  for (const StandbyNodeRecord& record : payload.nodes) {
    const std::size_t block = w.begin_block();
    w.str(record.node);
    w.u64(record.epoch);
    w.bytes(record.snapshot);
    w.end_block(block);
  }
  return finish(FrameType::StandbySync, w);
}

StandbySyncPayload parse_standby_sync(const comm::Frame& frame) {
  check_type(frame, FrameType::StandbySync, "StandbySync");
  WireReader r(frame.payload);
  StandbySyncPayload payload;
  payload.txn = r.u64();
  payload.committed = r.u8();
  payload.reason = r.str();
  payload.coord_epoch = r.u64();
  payload.membership_epoch = r.u64();
  const std::uint32_t members = r.u32();
  if (static_cast<std::uint64_t>(members) * 4 > r.remaining()) {
    throw WireError("implausible member count " + std::to_string(members));
  }
  payload.members.reserve(members);
  for (std::uint32_t i = 0; i < members; ++i) {
    payload.members.push_back(r.str());
  }
  const std::uint32_t assignments = r.u32();
  if (static_cast<std::uint64_t>(assignments) * 8 > r.remaining()) {
    throw WireError("implausible assignment count " +
                    std::to_string(assignments));
  }
  payload.assignment.reserve(assignments);
  for (std::uint32_t i = 0; i < assignments; ++i) {
    std::string component = r.str();
    std::string node = r.str();
    payload.assignment.emplace_back(std::move(component), std::move(node));
  }
  const std::uint32_t nodes = r.u32();
  if (static_cast<std::uint64_t>(nodes) * 4 > r.remaining()) {
    throw WireError("implausible node record count " + std::to_string(nodes));
  }
  payload.nodes.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    WireReader b = r.block();
    StandbyNodeRecord record;
    record.node = b.str();
    record.epoch = b.u64();
    record.snapshot = b.bytes();
    payload.nodes.push_back(std::move(record));
  }
  return payload;
}

comm::Frame make_takeover(const TakeoverPayload& payload) {
  WireWriter w;
  w.str(payload.coordinator);
  w.u64(payload.coord_epoch);
  return finish(FrameType::Takeover, w);
}

TakeoverPayload parse_takeover(const comm::Frame& frame) {
  check_type(frame, FrameType::Takeover, "Takeover");
  WireReader r(frame.payload);
  TakeoverPayload payload;
  payload.coordinator = r.str();
  payload.coord_epoch = r.u64();
  return payload;
}

}  // namespace rtcf::dist
