// The standby coordinator: a warm spare that shadows the active
// coordinator's decisions and takes over without a cluster restart.
//
// While the active coordinator is healthy it streams one STANDBY_SYNC
// record per decided transaction over the feed channel *before* the
// decision frames go out (decision durable first). The standby pumps the
// feed, renewing a lease on every record; when the lease lapses it
// promotes itself (docs/MEMBERSHIP.md §4):
//
//   1. rebuild a ReconfigCoordinator from the last durable record — the
//      membership view and every node's canonical plan-codec snapshot are
//      in the record, so no node has to be asked anything;
//   2. claim coordinator epoch = (highest observed) + 1 and fence the
//      predecessor with a TAKEOVER sweep; nodes answer HELLO with their
//      resync epoch;
//   3. redrive the last durable decision. Nodes that already handled it
//      answer Aborted("no such prepared transaction") — the idempotent
//      absorb — and nodes still parked apply or release. A transaction
//      the dead coordinator never decided has no record, so its nodes
//      presumed-abort on their own: exactly the presumed-abort rule the
//      two-phase protocol already guarantees.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "comm/channel.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"

namespace rtcf::dist {

/// Shadows an active ReconfigCoordinator and promotes on lease expiry.
class StandbyCoordinator {
 public:
  /// Standby knobs.
  struct Options {
    /// Lease: how long the feed may stay silent before the active
    /// coordinator is presumed dead. Must be shorter than the nodes'
    /// decision timeout or a redriven COMMIT can race their presumed
    /// abort (docs/MEMBERSHIP.md §4).
    rtsj::RelativeTime lease = rtsj::RelativeTime::milliseconds(250);
    /// Options for the coordinator built at promotion.
    ReconfigCoordinator::Options coordinator;
  };

  /// A standby named `name` (the TAKEOVER announcement) whose fallback
  /// membership is `initial` — used only when promotion happens before
  /// the first decision record arrived.
  StandbyCoordinator(std::string name, validate::MembershipView initial);
  /// Same, with explicit standby knobs.
  StandbyCoordinator(std::string name, validate::MembershipView initial,
                     Options options);

  /// Attaches the feed channel the active coordinator streams records to.
  /// Starts the lease clock.
  void attach_feed(std::shared_ptr<comm::Channel> channel);

  /// Registers the control channel this standby will own toward `node`
  /// after promotion (the active coordinator keeps its own channels).
  void attach_node(const std::string& node,
                   std::shared_ptr<comm::Channel> channel);

  /// Drains the feed for up to `wait`, renewing the lease per record.
  /// Returns the number of records consumed.
  std::size_t pump(rtsj::RelativeTime wait);

  /// True when the feed has been silent longer than the lease.
  bool lease_expired() const;

  /// Promotes this standby: builds the coordinator from the last durable
  /// record (or from `global` + the initial view when none arrived),
  /// raises the coordinator epoch, and fences the predecessor with a
  /// TAKEOVER sweep waiting up to `takeover_wait` per node. Idempotent —
  /// a second call returns the already-promoted coordinator.
  ReconfigCoordinator& promote(const model::Architecture& global,
                               rtsj::RelativeTime takeover_wait);

  /// Redrives the last durable decision through the promoted coordinator
  /// (promote() first); nullopt when no record ever arrived — the
  /// predecessor died mid-PREPARE and the nodes presumed-abort alone.
  std::optional<ReconfigCoordinator::Outcome> redrive_last();

  /// The promoted coordinator, or null before promote().
  ReconfigCoordinator* coordinator() noexcept { return promoted_.get(); }

  /// Decision records consumed so far.
  std::uint64_t records_seen() const noexcept { return records_seen_; }

  /// The last decision record, or nullopt before the first.
  const std::optional<StandbySyncPayload>& last_record() const noexcept {
    return last_record_;
  }

 private:
  std::string name_;
  validate::MembershipView initial_;
  Options options_;
  std::shared_ptr<comm::Channel> feed_;
  std::map<std::string, std::shared_ptr<comm::Channel>> node_channels_;
  std::optional<StandbySyncPayload> last_record_;
  std::uint64_t records_seen_ = 0;
  /// Highest coordinator epoch observed on the feed (1 = the initial
  /// active coordinator, before any record names a higher one).
  std::uint64_t observed_epoch_ = 1;
  rtsj::AbsoluteTime last_heard_{};
  std::unique_ptr<ReconfigCoordinator> promoted_;
};

}  // namespace rtcf::dist
