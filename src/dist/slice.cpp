#include "dist/slice.hpp"

#include <map>
#include <set>
#include <stdexcept>

#include "dist/gateway.hpp"

namespace rtcf::dist {

using model::ActiveComponent;
using model::Architecture;
using model::Binding;
using model::Component;
using model::ComponentKind;
using model::InterfaceDecl;
using model::InterfaceRole;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::Protocol;
using model::ThreadDomain;
using validate::NodeMap;

namespace {

bool is_local_functional(const Component& c, const NodeMap& map,
                         const std::string& node) {
  return c.is_functional() && map.node_of(c.name()) == node;
}

/// True when `composite` (transitively) contains a functional component
/// mapped to `node`.
bool contains_local(const Component& composite, const NodeMap& map,
                    const std::string& node) {
  for (const Component* sub : composite.subs()) {
    if (is_local_functional(*sub, map, node)) return true;
    if (contains_local(*sub, map, node)) return true;
  }
  return false;
}

/// The client-side signature of a binding end (for synthesizing the
/// matching gateway interface). Falls back to the server's signature, then
/// to a placeholder, so slicing never throws on inconsistent declarations
/// — validate() reports those properly.
std::string end_signature(const Architecture& arch,
                          const model::BindingEnd& end,
                          const model::BindingEnd& fallback) {
  if (const Component* c = arch.find(end.component)) {
    if (const InterfaceDecl* itf = c->find_interface(end.interface)) {
      return itf->signature;
    }
  }
  if (const Component* c = arch.find(fallback.component)) {
    if (const InterfaceDecl* itf = c->find_interface(fallback.interface)) {
      return itf->signature;
    }
  }
  return "IBridged";
}

}  // namespace

std::vector<GatewayRoute> compute_routes(const Architecture& global,
                                         const NodeMap& map) {
  std::vector<GatewayRoute> routes;
  for (const Binding& binding : global.bindings()) {
    if (binding.desc.protocol != Protocol::Asynchronous) continue;
    const std::string& client_node = map.node_of(binding.client.component);
    const std::string& server_node = map.node_of(binding.server.component);
    if (client_node.empty() || server_node.empty() ||
        client_node == server_node) {
      continue;
    }
    GatewayRoute route;
    route.client = binding.client.component;
    route.port = binding.client.interface;
    route.client_node = client_node;
    route.server = binding.server.component;
    route.iface = binding.server.interface;
    route.server_node = server_node;
    routes.push_back(std::move(route));
  }
  return routes;
}

Architecture slice_architecture(const Architecture& global, const NodeMap& map,
                                const std::string& node) {
  if (!map.has_node(node)) {
    throw std::invalid_argument("slice_architecture: undeclared node '" +
                                node + "'");
  }
  Architecture slice;
  std::map<const Component*, Component*> copied;

  // 1. Local functional components, in declaration order.
  for (const auto& c : global.components()) {
    if (!is_local_functional(*c, map, node)) continue;
    if (const auto* active = dynamic_cast<const ActiveComponent*>(c.get())) {
      ActiveComponent& copy =
          slice.add_active(active->name(), active->activation(),
                           active->period());
      copy.set_content_class(active->content_class());
      copy.set_cost(active->cost());
      if (active->criticality()) copy.set_criticality(*active->criticality());
      if (active->timing_contract()) {
        copy.set_timing_contract(*active->timing_contract());
      }
      copy.set_swappable(active->swappable());
      for (const InterfaceDecl& itf : active->interfaces()) {
        copy.add_interface(itf);
      }
      copied[c.get()] = &copy;
    } else if (const auto* passive =
                   dynamic_cast<const PassiveComponent*>(c.get())) {
      PassiveComponent& copy = slice.add_passive(passive->name());
      copy.set_content_class(passive->content_class());
      copy.set_swappable(passive->swappable());
      for (const InterfaceDecl& itf : passive->interfaces()) {
        copy.add_interface(itf);
      }
      copied[c.get()] = &copy;
    }
  }

  // 2. Composites containing local components, hierarchy preserved.
  for (const auto& c : global.components()) {
    if (c->is_functional() || !contains_local(*c, map, node)) continue;
    if (const auto* domain = dynamic_cast<const ThreadDomain*>(c.get())) {
      copied[c.get()] =
          &slice.add_thread_domain(domain->name(), domain->type(),
                                   domain->priority());
    } else if (const auto* area =
                   dynamic_cast<const MemoryAreaComponent*>(c.get())) {
      copied[c.get()] = &slice.add_memory_area(area->name(), area->type(),
                                               area->size_bytes(),
                                               area->area_name());
    }
  }
  for (const auto& c : global.components()) {
    auto parent = copied.find(c.get());
    if (parent == copied.end()) continue;
    for (const Component* sub : c->subs()) {
      auto child = copied.find(sub);
      if (child == copied.end()) continue;
      slice.add_child(*parent->second, *child->second);
    }
  }

  // 3. Bindings: local ones verbatim; cross-node asynchronous ones as
  //    bridge halves; cross-node synchronous ones omitted (rejected by
  //    DIST-SYNC-CROSS-NODE upstream).
  std::vector<const Binding*> exits;    // client local, server remote
  std::vector<const Binding*> entries;  // server local, client remote
  for (const Binding& binding : global.bindings()) {
    const std::string& client_node = map.node_of(binding.client.component);
    const std::string& server_node = map.node_of(binding.server.component);
    const bool client_local = client_node == node;
    const bool server_local = server_node == node;
    if (client_local && server_local) {
      slice.add_binding(binding);
    } else if (binding.desc.protocol == Protocol::Asynchronous &&
               client_local && !server_node.empty()) {
      exits.push_back(&binding);
    } else if (binding.desc.protocol == Protocol::Asynchronous &&
               server_local && !client_node.empty()) {
      entries.push_back(&binding);
    }
  }

  // 4. Gateway synthesis: one immortal area for all gateway state, a
  //    regular-priority domain for the (active) exits.
  if (!exits.empty() || !entries.empty()) {
    MemoryAreaComponent& area = slice.add_memory_area(
        kGatewayArea, model::AreaType::Immortal, 256 * 1024);
    ThreadDomain* domain = nullptr;
    if (!exits.empty()) {
      domain = &slice.add_thread_domain(kGatewayDomain,
                                        model::DomainType::Regular, 1);
      slice.add_child(area, *domain);
    }
    for (const Binding* binding : exits) {
      const std::string name = gateway_exit_name(binding->client.component,
                                                 binding->client.interface);
      ActiveComponent& exit =
          slice.add_active(name, model::ActivationKind::Sporadic);
      exit.set_content_class(kGatewayExitClass);
      exit.set_swappable(true);
      exit.add_interface({binding->server.interface, InterfaceRole::Server,
                          end_signature(global, binding->client,
                                        binding->server)});
      slice.add_child(*domain, exit);
      Binding local;
      local.client = binding->client;
      local.server = {name, binding->server.interface};
      local.desc = binding->desc;
      slice.add_binding(std::move(local));
    }
    for (const Binding* binding : entries) {
      const std::string name = gateway_entry_name(binding->client.component,
                                                  binding->client.interface);
      PassiveComponent& entry = slice.add_passive(name);
      entry.set_content_class(kGatewayEntryClass);
      entry.set_swappable(true);
      entry.add_interface({binding->client.interface, InterfaceRole::Client,
                           end_signature(global, binding->server,
                                         binding->client)});
      slice.add_child(area, entry);
      Binding local;
      local.client = {name, binding->client.interface};
      local.server = binding->server;
      local.desc = binding->desc;
      slice.add_binding(std::move(local));
    }
  }

  // 5. Modes, filtered to this node. Every mode survives by name (cluster
  //    transitions address modes uniformly); only the local entries stay.
  for (const model::ModeDecl& mode : global.modes()) {
    model::ModeDecl local;
    local.name = mode.name;
    local.degraded = mode.degraded;
    for (const model::ModeComponentConfig& cfg : mode.components) {
      if (map.node_of(cfg.component) == node) local.components.push_back(cfg);
    }
    for (const model::ModeRebind& rebind : mode.rebinds) {
      if (map.node_of(rebind.client) == node &&
          map.node_of(rebind.server) == node) {
        local.rebinds.push_back(rebind);
      }
    }
    slice.add_mode(std::move(local));
  }

  return slice;
}

}  // namespace rtcf::dist
