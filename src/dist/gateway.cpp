#include "dist/gateway.hpp"

#include "dist/dataplane.hpp"
#include "runtime/content_registry.hpp"

namespace rtcf::dist {

std::string gateway_exit_name(const std::string& client,
                              const std::string& port) {
  return "__gw.out." + client + "." + port;
}

std::string gateway_entry_name(const std::string& client,
                               const std::string& port) {
  return "__gw.in." + client + "." + port;
}

void GatewayExitContent::set_route(DataPlane* plane, std::size_t route_id) {
  plane_ = plane;
  route_id_ = route_id;
}

void GatewayExitContent::on_message(const comm::Message& message) {
  if (plane_ == nullptr) {
    ++dropped_;
    return;
  }
  if (plane_->offer(route_id_, message) == DataPlane::Offer::Dropped) {
    ++dropped_;
  } else {
    ++forwarded_;
  }
}

bool GatewayEntryContent::inject(const std::string& port_name,
                                 const comm::Message& message) {
  for (std::size_t i = 0; i < port_count(); ++i) {
    comm::OutPort& out = port(i);
    if (out.name() != port_name) continue;
    if (!out.bound()) break;
    out.send(message);
    ++injected_;
    return true;
  }
  ++dropped_;
  return false;
}

// Gateways are infrastructure, but they are instantiated through the same
// registry path as user content so the DELTA-CONTENT-UNKNOWN rule and hot
// admission treat them uniformly.
RTCF_REGISTER_CONTENT(GatewayExitContent)
RTCF_REGISTER_CONTENT(GatewayEntryContent)

namespace {
// Also register under the stable protocol-facing names used in slices
// (kGatewayExitClass / kGatewayEntryClass), which are what a second
// implementation would have to provide.
const bool gateway_aliases_registered = [] {
  auto& registry = runtime::ContentRegistry::instance();
  registry.register_class<GatewayExitContent>(kGatewayExitClass);
  registry.register_class<GatewayEntryContent>(kGatewayEntryClass);
  return true;
}();
}  // namespace

}  // namespace rtcf::dist
