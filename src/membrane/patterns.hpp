// Runtime implementations of the cross-scope communication patterns
// (paper refs [1,5,17]; design-time catalog in validate/pattern_catalog).
//
// A PatternRuntime is instantiated per binding by the Soleil planner and
// executed by the memory interceptors (§4.1: "Memory Interceptors implement
// cross-scope communication and are deployed on each binding between
// different MemoryAreas").
//
// With by-value messages the patterns reduce to *where the staged copy
// lives* and *which scope is entered for the call*:
//   direct            no staging, no entry;
//   scope-enter       synchronous call runs inside the server's scope;
//   deep-copy         payload copied into a slot in the server's area;
//   immortal-forward  payload staged in immortal memory;
//   shared-scope      payload staged in a common ancestor scope;
//   handoff           payload staged in the producer's area, then handed
//                     into an exchange slot in the consumer's area;
//   wedge-thread      server scope is kept alive by a pin (the framework
//                     pins all architecture scopes, so this behaves like
//                     deep-copy into the pinned scope).
// Every staged copy is a real memcpy into a slot allocated in the target
// area at bind time, so the benchmarks price the patterns honestly.
#pragma once

#include <cstdint>
#include <string>

#include "comm/message.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::membrane {

enum class PatternOp {
  Direct,
  ScopeEnter,
  DeepCopy,
  ImmortalForward,
  SharedScope,
  Handoff,
  WedgeThread,
};

/// Maps the design-time pattern name to the runtime op; throws
/// std::invalid_argument for unknown names.
PatternOp pattern_op_from_name(const std::string& name);
const char* to_string(PatternOp op) noexcept;

/// Per-binding pattern executor. Copyable view over slots owned by the
/// memory areas themselves (areas reclaim them with the region).
class PatternRuntime {
 public:
  /// Builds the runtime for `op`.
  /// @param server_area   Area holding the server's state.
  /// @param staging_area  Area for the staged copy (planner-chosen:
  ///                      server area for deep-copy, immortal for
  ///                      immortal-forward, common scope for shared-scope,
  ///                      producer area for handoff's first hop).
  static PatternRuntime make(PatternOp op, rtsj::MemoryArea* server_area,
                             rtsj::MemoryArea* staging_area);

  PatternOp op() const noexcept { return op_; }

  /// Asynchronous path: stages the message per the pattern and returns the
  /// message to enqueue (the staged copy, or `m` itself for direct).
  const comm::Message& stage(const comm::Message& m);

  /// Synchronous path: runs `next.invoke` under the pattern's memory
  /// discipline (entering the server scope for scope-enter; staging the
  /// request first for copying patterns).
  comm::Message call(comm::IInvocable& next, const comm::Message& m);

  std::uint64_t staged_count() const noexcept { return staged_; }

  /// Bytes of staging slots this pattern allocated in memory areas
  /// (footprint accounting).
  std::size_t slot_bytes() const noexcept {
    return (staging_ != nullptr ? sizeof(comm::Message) : 0) +
           (exchange_ != nullptr ? sizeof(comm::Message) : 0);
  }

 private:
  PatternOp op_ = PatternOp::Direct;
  rtsj::ScopedMemory* enter_scope_ = nullptr;
  comm::Message* staging_ = nullptr;   ///< First-hop slot.
  comm::Message* exchange_ = nullptr;  ///< Handoff second-hop slot.
  std::uint64_t staged_ = 0;
};

}  // namespace rtcf::membrane
