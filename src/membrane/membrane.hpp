// The component membrane (Fig. 6): the reified controlling environment
// around one functional component in the SOLEIL generation mode.
//
// A membrane owns the component's controllers and the interceptors on its
// interfaces, and is introspectable at runtime — you can enumerate the
// control components inside, which is precisely what MERGE-ALL gives up in
// exchange for fewer indirections.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "membrane/controllers.hpp"
#include "membrane/interceptors.hpp"

namespace rtcf::membrane {

/// Controlling environment of one functional component.
class Membrane {
 public:
  Membrane(std::string owner, comm::Content* content)
      : owner_(std::move(owner)),
        lifecycle_(content),
        binding_(content),
        bytes_(sizeof(Membrane)) {}

  Membrane(const Membrane&) = delete;
  Membrane& operator=(const Membrane&) = delete;

  const std::string& owner() const noexcept { return owner_; }

  LifecycleController& lifecycle() noexcept { return lifecycle_; }
  const LifecycleController& lifecycle() const noexcept { return lifecycle_; }
  BindingController& binding() noexcept { return binding_; }
  ContentController& content_controller() noexcept { return content_ctrl_; }

  /// Creates and owns an interceptor inside this membrane.
  template <typename T, typename... Args>
  T& add_interceptor(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    bytes_ += sizeof(T);
    interceptors_.push_back(std::move(owned));
    return ref;
  }

  /// Creates and owns an additional controller (beyond the basic
  /// lifecycle/binding/content triple) — e.g. the real-time controllers of
  /// non-functional components (nf_controllers.hpp).
  template <typename T, typename... Args>
  T& add_controller(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    bytes_ += sizeof(T);
    extra_controllers_.push_back(std::move(owned));
    return ref;
  }

  /// Control-interface lookup by kind; nullptr when this membrane carries
  /// no such controller.
  Controller* controller(const std::string& kind) noexcept;

  /// Introspection: kinds of all interceptors, in insertion order.
  std::vector<std::string> interceptor_kinds() const;
  /// Introspection: kinds of the controllers in this membrane.
  std::vector<std::string> controller_kinds() const;
  std::size_t interceptor_count() const noexcept {
    return interceptors_.size();
  }

  /// Bytes of control infrastructure this membrane reifies (footprint
  /// accounting for Fig. 7c).
  std::size_t footprint_bytes() const noexcept { return bytes_; }

 private:
  std::string owner_;
  LifecycleController lifecycle_;
  BindingController binding_;
  ContentController content_ctrl_;
  std::vector<std::unique_ptr<Interceptor>> interceptors_;
  std::vector<std::unique_ptr<Controller>> extra_controllers_;
  std::size_t bytes_;
};

}  // namespace rtcf::membrane
