#include "membrane/controllers.hpp"

#include <algorithm>

namespace rtcf::membrane {

void LifecycleController::start() {
  if (state_ == State::Started) return;
  state_ = State::Started;
  if (content_ != nullptr) content_->on_start();
}

void LifecycleController::stop() {
  if (state_ == State::Stopped) return;
  state_ = State::Stopped;
  if (content_ != nullptr) content_->on_stop();
}

std::vector<std::string> BindingController::port_names() const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < content_->port_count(); ++i) {
    names.push_back(content_->port(i).name());
  }
  return names;
}

void BindingController::rebind_sink(const std::string& port,
                                    comm::IMessageSink* sink) {
  if (sink == nullptr) {
    content_->port(port).unbind();
  } else {
    content_->port(port).bind_sink(sink);
  }
}

void BindingController::rebind_invocable(const std::string& port,
                                         comm::IInvocable* invocable) {
  if (invocable == nullptr) {
    content_->port(port).unbind();
  } else {
    content_->port(port).bind_invocable(invocable);
  }
}

bool ContentController::remove_sub(const std::string& name) {
  auto it = std::find(subs_.begin(), subs_.end(), name);
  if (it == subs_.end()) return false;
  subs_.erase(it);
  return true;
}

}  // namespace rtcf::membrane
