#include "membrane/patterns.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "validate/pattern_catalog.hpp"

namespace rtcf::membrane {

PatternOp pattern_op_from_name(const std::string& name) {
  if (name == validate::kPatternDirect) return PatternOp::Direct;
  if (name == validate::kPatternScopeEnter) return PatternOp::ScopeEnter;
  if (name == validate::kPatternDeepCopy) return PatternOp::DeepCopy;
  if (name == validate::kPatternImmortalForward) {
    return PatternOp::ImmortalForward;
  }
  if (name == validate::kPatternSharedScope) return PatternOp::SharedScope;
  if (name == validate::kPatternHandoff) return PatternOp::Handoff;
  if (name == validate::kPatternWedgeThread) return PatternOp::WedgeThread;
  throw std::invalid_argument("unknown pattern '" + name + "'");
}

const char* to_string(PatternOp op) noexcept {
  switch (op) {
    case PatternOp::Direct:
      return validate::kPatternDirect;
    case PatternOp::ScopeEnter:
      return validate::kPatternScopeEnter;
    case PatternOp::DeepCopy:
      return validate::kPatternDeepCopy;
    case PatternOp::ImmortalForward:
      return validate::kPatternImmortalForward;
    case PatternOp::SharedScope:
      return validate::kPatternSharedScope;
    case PatternOp::Handoff:
      return validate::kPatternHandoff;
    case PatternOp::WedgeThread:
      return validate::kPatternWedgeThread;
  }
  return "?";
}

PatternRuntime PatternRuntime::make(PatternOp op,
                                    rtsj::MemoryArea* server_area,
                                    rtsj::MemoryArea* staging_area) {
  PatternRuntime p;
  p.op_ = op;
  switch (op) {
    case PatternOp::Direct:
      break;
    case PatternOp::ScopeEnter: {
      RTCF_REQUIRE(server_area != nullptr &&
                       server_area->kind() == rtsj::AreaKind::Scoped,
                   "scope-enter needs a scoped server area");
      p.enter_scope_ = static_cast<rtsj::ScopedMemory*>(server_area);
      break;
    }
    case PatternOp::DeepCopy:
    case PatternOp::WedgeThread: {
      rtsj::MemoryArea* slot_area =
          staging_area != nullptr ? staging_area : server_area;
      RTCF_REQUIRE(slot_area != nullptr,
                   "copying pattern needs a staging area");
      p.staging_ = slot_area->make<comm::Message>();
      break;
    }
    case PatternOp::ImmortalForward:
      p.staging_ = rtsj::ImmortalMemory::instance().make<comm::Message>();
      break;
    case PatternOp::SharedScope: {
      RTCF_REQUIRE(staging_area != nullptr,
                   "shared-scope needs the common ancestor scope");
      p.staging_ = staging_area->make<comm::Message>();
      break;
    }
    case PatternOp::Handoff: {
      RTCF_REQUIRE(staging_area != nullptr && server_area != nullptr,
                   "handoff needs producer and consumer areas");
      p.staging_ = staging_area->make<comm::Message>();
      p.exchange_ = server_area->make<comm::Message>();
      break;
    }
  }
  return p;
}

const comm::Message& PatternRuntime::stage(const comm::Message& m) {
  switch (op_) {
    case PatternOp::Direct:
    case PatternOp::ScopeEnter:
      return m;
    case PatternOp::DeepCopy:
    case PatternOp::ImmortalForward:
    case PatternOp::SharedScope:
    case PatternOp::WedgeThread:
      *staging_ = m;
      ++staged_;
      return *staging_;
    case PatternOp::Handoff:
      // Producer fills its own slot, then the slot is handed into the
      // consumer-side exchange slot (two hops, as in the pattern).
      *staging_ = m;
      *exchange_ = *staging_;
      ++staged_;
      return *exchange_;
  }
  return m;
}

comm::Message PatternRuntime::call(comm::IInvocable& next,
                                   const comm::Message& m) {
  switch (op_) {
    case PatternOp::ScopeEnter: {
      comm::Message response;
      enter_scope_->enter([&] { response = next.invoke(m); });
      return response;
    }
    case PatternOp::Direct:
      return next.invoke(m);
    default: {
      const comm::Message& staged = stage(m);
      return next.invoke(staged);
    }
  }
}

}  // namespace rtcf::membrane
