// Membrane control components (§4.2).
//
// Controllers split into two groups, as the paper describes: those required
// by the component's execution (RTSJ controllers, asynchronous-communication
// state) and the optional ones providing introspection/reconfiguration
// (Lifecycle, Binding, Content). Access goes through control interfaces
// hidden from the functional level; here that's simply this header, which
// functional content never includes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/content.hpp"

namespace rtcf::membrane {

/// Base class for all membrane controllers.
class Controller {
 public:
  virtual ~Controller() = default;
  /// Stable controller kind ("lifecycle-controller", ...).
  virtual const char* kind() const noexcept = 0;
};

/// Component lifecycle state machine: Stopped -> Started -> Stopped.
/// Interceptors gate invocations on the state; start/stop invoke the
/// content hooks.
class LifecycleController final : public Controller {
 public:
  enum class State { Stopped, Started };

  explicit LifecycleController(comm::Content* content) : content_(content) {}

  const char* kind() const noexcept override { return "lifecycle-controller"; }

  State state() const noexcept { return state_; }
  bool started() const noexcept { return state_ == State::Started; }

  void start();
  void stop();

 private:
  comm::Content* content_;
  State state_ = State::Stopped;
};

/// Exposes (re)binding of the component's client ports — the hook the
/// runtime reconfiguration manager uses (§4.2 "Runtime Adaptability").
class BindingController final : public Controller {
 public:
  explicit BindingController(comm::Content* content) : content_(content) {}

  const char* kind() const noexcept override { return "binding-controller"; }

  std::vector<std::string> port_names() const;
  comm::OutPort& port(const std::string& name) {
    return content_->port(name);
  }
  /// Rebinds a port to a new sink/invocable (nullptr = unbind).
  void rebind_sink(const std::string& port, comm::IMessageSink* sink);
  void rebind_invocable(const std::string& port, comm::IInvocable* invocable);

 private:
  comm::Content* content_;
};

/// Tracks sub-components of composites (ThreadDomain / MemoryArea runtime
/// components reify their encapsulated components through this).
class ContentController final : public Controller {
 public:
  const char* kind() const noexcept override { return "content-controller"; }

  void add_sub(std::string name) { subs_.push_back(std::move(name)); }
  bool remove_sub(const std::string& name);
  const std::vector<std::string>& subs() const noexcept { return subs_; }

 private:
  std::vector<std::string> subs_;
};

}  // namespace rtcf::membrane
