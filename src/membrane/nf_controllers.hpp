// Control components of the *non-functional* runtime components (§4.1):
//
// "membranes of non-functional components contain real-time controllers
// and interceptors, which superimpose non-functional concerns over their
// subcomponents" — Fig. 6 shows the NHRT2 ThreadDomain carrying a
// ThreadDomain controller.
//
// ThreadDomainController manages the logical threads of one domain as a
// group: introspection (thread list, release totals) and RTSJ-checked
// priority changes (the whole domain moves together; the new priority must
// stay inside the domain's thread-type band).
//
// MemoryAreaController exposes the RTSJ memory-consumption counters of one
// area and a budget check against its declared size.
#pragma once

#include <cstdint>
#include <vector>

#include "membrane/controllers.hpp"
#include "model/metamodel.hpp"
#include "rtsj/memory/memory_area.hpp"
#include "rtsj/threads/realtime_thread.hpp"

namespace rtcf::membrane {

/// Coarse-grain thread management for one ThreadDomain.
class ThreadDomainController final : public Controller {
 public:
  ThreadDomainController(model::DomainType type, int priority)
      : type_(type), priority_(priority) {}

  const char* kind() const noexcept override {
    return "thread-domain-controller";
  }

  model::DomainType type() const noexcept { return type_; }
  int priority() const noexcept { return priority_; }

  void attach_thread(rtsj::RealtimeThread* thread) {
    threads_.push_back(thread);
  }
  const std::vector<rtsj::RealtimeThread*>& threads() const noexcept {
    return threads_;
  }

  /// Releases executed across all encapsulated threads.
  std::uint64_t total_releases() const noexcept;
  /// Deadline misses across all encapsulated threads.
  std::uint64_t total_deadline_misses() const noexcept;

  /// Moves the whole domain to a new priority. Refused (returns false,
  /// nothing changes) when the priority leaves the domain type's band —
  /// the runtime-adaptation analogue of the TD-PRIORITY-RANGE design rule.
  bool set_priority(int priority);

 private:
  model::DomainType type_;
  int priority_;
  std::vector<rtsj::RealtimeThread*> threads_;
};

/// Consumption introspection for one memory area.
class MemoryAreaController final : public Controller {
 public:
  explicit MemoryAreaController(rtsj::MemoryArea* area) : area_(area) {}

  const char* kind() const noexcept override {
    return "memory-area-controller";
  }

  const rtsj::MemoryArea& area() const noexcept { return *area_; }
  std::size_t consumed() const noexcept { return area_->memory_consumed(); }
  std::size_t remaining() const noexcept {
    return area_->memory_remaining();
  }
  /// Fraction of the declared size in use; 0 for unbounded areas.
  double utilization() const noexcept;
  /// True when a fixed-size area is at least `threshold` full.
  bool over_budget(double threshold = 0.9) const noexcept {
    return utilization() >= threshold;
  }

 private:
  rtsj::MemoryArea* area_;
};

}  // namespace rtcf::membrane
