#include "membrane/membrane.hpp"

namespace rtcf::membrane {

std::vector<std::string> Membrane::interceptor_kinds() const {
  std::vector<std::string> kinds;
  kinds.reserve(interceptors_.size());
  for (const auto& i : interceptors_) kinds.emplace_back(i->kind());
  return kinds;
}

std::vector<std::string> Membrane::controller_kinds() const {
  std::vector<std::string> kinds{lifecycle_.kind(), binding_.kind(),
                                 content_ctrl_.kind()};
  for (const auto& c : extra_controllers_) kinds.emplace_back(c->kind());
  return kinds;
}

Controller* Membrane::controller(const std::string& kind) noexcept {
  if (kind == lifecycle_.kind()) return &lifecycle_;
  if (kind == binding_.kind()) return &binding_;
  if (kind == content_ctrl_.kind()) return &content_ctrl_;
  for (const auto& c : extra_controllers_) {
    if (kind == c->kind()) return c.get();
  }
  return nullptr;
}

}  // namespace rtcf::membrane
