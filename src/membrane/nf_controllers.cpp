#include "membrane/nf_controllers.hpp"

#include "rtsj/threads/params.hpp"

namespace rtcf::membrane {

std::uint64_t ThreadDomainController::total_releases() const noexcept {
  std::uint64_t total = 0;
  for (const auto* t : threads_) total += t->release_count();
  return total;
}

std::uint64_t ThreadDomainController::total_deadline_misses()
    const noexcept {
  std::uint64_t total = 0;
  for (const auto* t : threads_) total += t->deadline_miss_count();
  return total;
}

bool ThreadDomainController::set_priority(int priority) {
  const bool rt = type_ != model::DomainType::Regular;
  const int lo = rt ? rtsj::kMinRtPriority : rtsj::kMinRegularPriority;
  const int hi = rt ? rtsj::kMaxRtPriority : rtsj::kMaxRegularPriority;
  if (priority < lo || priority > hi) return false;
  priority_ = priority;
  for (auto* t : threads_) t->set_priority(priority);
  return true;
}

double MemoryAreaController::utilization() const noexcept {
  if (area_->size() == 0) return 0.0;
  return static_cast<double>(area_->memory_consumed()) /
         static_cast<double>(area_->size());
}

}  // namespace rtcf::membrane
