// Membrane interceptors (§4.1): the reified per-hop control objects of the
// SOLEIL generation mode.
//
// An invocation on a SOLEIL assembly traverses, client to server:
//
//   OutPort -> MemoryInterceptor -> AsyncSkeleton -(buffer)-> ...
//     ... activation ... -> ActiveInterceptor -> Content        (async)
//   OutPort -> MemoryInterceptor -> SyncSkeleton -> Content     (sync)
//
// Each arrow is a virtual call on a separately allocated object — exactly
// the indirection structure whose cost Fig. 7 measures, and which the
// MERGE-ALL / ULTRA-MERGE modes progressively collapse.
#pragma once

#include <cstdint>

#include "comm/content.hpp"
#include "comm/message.hpp"
#include "comm/message_buffer.hpp"
#include "membrane/controllers.hpp"
#include "membrane/patterns.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::membrane {

/// Notification hook: tells the activation manager that a sporadic
/// component has work (function pointer + opaque arg keeps the layer free
/// of std::function allocations on the hot path).
using NotifyFn = void (*)(void*);

/// Chain element. Default behaviour forwards to the next hop.
class Interceptor : public comm::IMessageSink, public comm::IInvocable {
 public:
  virtual const char* kind() const noexcept = 0;

  void set_next(comm::IMessageSink* sink,
                comm::IInvocable* invocable) noexcept {
    next_sink_ = sink;
    next_invocable_ = invocable;
  }

  void deliver(const comm::Message& m) override { next_sink_->deliver(m); }
  comm::Message invoke(const comm::Message& m) override {
    return next_invocable_->invoke(m);
  }

 protected:
  comm::IMessageSink* next_sink_ = nullptr;
  comm::IInvocable* next_invocable_ = nullptr;
};

/// Reified client-interface boundary: the first hop of every SOLEIL
/// interceptor chain. Fractal-style membranes expose each interface as a
/// component of the membrane itself; the entry gates on the membrane's
/// lifecycle state, maintains interface-level statistics, and forwards
/// into the chain. MERGE-ALL and ULTRA-MERGE compile this hop away.
class InterfaceEntry final : public Interceptor {
 public:
  explicit InterfaceEntry(const LifecycleController* lifecycle)
      : lifecycle_(lifecycle) {}

  const char* kind() const noexcept override { return "interface-entry"; }

  void deliver(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return;
    }
    ++traversals_;
    next_sink_->deliver(m);
  }
  comm::Message invoke(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return comm::Message{};
    }
    ++traversals_;
    return next_invocable_->invoke(m);
  }

  std::uint64_t traversal_count() const noexcept { return traversals_; }

 private:
  const LifecycleController* lifecycle_;
  std::uint64_t traversals_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Applies the binding's cross-scope communication pattern.
///
/// In the fully componentized SOLEIL mode each interceptor is a reified
/// control component: every traversal consults the owning membrane's
/// lifecycle control interface and maintains its invocation statistics —
/// exactly the per-hop bookkeeping MERGE-ALL collapses into one inlined
/// check (§4.3).
class MemoryInterceptor final : public Interceptor {
 public:
  explicit MemoryInterceptor(PatternRuntime pattern)
      : pattern_(std::move(pattern)) {}

  const char* kind() const noexcept override { return "memory-interceptor"; }

  /// Installs the membrane-level lifecycle gate (SOLEIL mode).
  void set_lifecycle_gate(const LifecycleController* lifecycle) noexcept {
    lifecycle_ = lifecycle;
  }

  void deliver(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return;
    }
    ++traversals_;
    next_sink_->deliver(pattern_.stage(m));
  }
  comm::Message invoke(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return comm::Message{};
    }
    ++traversals_;
    return pattern_.call(*next_invocable_, m);
  }

  const PatternRuntime& pattern() const noexcept { return pattern_; }
  std::uint64_t traversal_count() const noexcept { return traversals_; }

  /// Replaces the staging pattern — the binding controller's half of an
  /// asynchronous re-target (the new server may live in a different area,
  /// so the staged copy moves with it). Only legal at a quiescence point:
  /// no traversal may be in flight.
  void reset_pattern(PatternRuntime pattern) noexcept {
    pattern_ = std::move(pattern);
  }

 private:
  PatternRuntime pattern_;
  const LifecycleController* lifecycle_ = nullptr;
  std::uint64_t traversals_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Client-side terminal of an asynchronous binding: enqueues into the
/// binding's message buffer and notifies the server's activation. Reified
/// control component like MemoryInterceptor: gated and counted per hop.
class AsyncSkeleton final : public Interceptor {
 public:
  AsyncSkeleton(comm::MessageBuffer* buffer, NotifyFn notify,
                void* notify_arg)
      : buffer_(buffer), notify_(notify), notify_arg_(notify_arg) {}

  const char* kind() const noexcept override { return "async-skeleton"; }

  void set_lifecycle_gate(const LifecycleController* lifecycle) noexcept {
    lifecycle_ = lifecycle;
  }

  void deliver(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return;
    }
    ++traversals_;
    buffer_->push(m);
    if (notify_ != nullptr) notify_(notify_arg_);
  }

  const comm::MessageBuffer& buffer() const noexcept { return *buffer_; }
  std::uint64_t traversal_count() const noexcept { return traversals_; }

  /// Re-targets the skeleton onto a new buffer and activation hook — the
  /// mechanism behind asynchronous port rebinding (mode <Rebind> over an
  /// async binding, and the plan-delta engine's synthesized rebinds). Only
  /// legal at a quiescence point, *after* the old buffer has been drained
  /// to its old consumer: the swap itself then moves no message, so the
  /// conservation audit holds across the rebind.
  void retarget(comm::MessageBuffer* buffer, NotifyFn notify,
                void* notify_arg) noexcept {
    buffer_ = buffer;
    notify_ = notify;
    notify_arg_ = notify_arg;
  }

 private:
  comm::MessageBuffer* buffer_;
  NotifyFn notify_;
  void* notify_arg_;
  const LifecycleController* lifecycle_ = nullptr;
  std::uint64_t traversals_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Server-side execution model of an active component: gates on lifecycle
/// state and dispatches run-to-completion into the content.
class ActiveInterceptor final : public Interceptor {
 public:
  ActiveInterceptor(const LifecycleController* lifecycle,
                    comm::Content* content)
      : lifecycle_(lifecycle), content_(content) {}

  const char* kind() const noexcept override { return "active-interceptor"; }

  void deliver(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return;
    }
    ++delivered_;
    content_->on_message(m);
  }

  /// Periodic release entry (no message).
  void release() {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return;
    }
    ++delivered_;
    content_->on_release();
  }

  /// Synchronous invocation on an active component (gated like deliver).
  comm::Message invoke(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return comm::Message{};
    }
    ++delivered_;
    return content_->on_invoke(m);
  }

  std::uint64_t delivered_count() const noexcept { return delivered_; }
  std::uint64_t rejected_count() const noexcept { return rejected_; }

 private:
  const LifecycleController* lifecycle_;
  comm::Content* content_;
  std::uint64_t delivered_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Times the server-side execution of every delivery/invocation that
/// passes through it and reports the observed duration to a record hook
/// (function pointer + opaque arg, like NotifyFn — no std::function, no
/// allocation on the hot path). This is the membrane attachment point of
/// the runtime monitor (src/monitor): SOLEIL assemblies insert one in
/// front of each server-side entry so message-driven activations feed the
/// component's telemetry and its stochastic timing contract. MERGE-ALL and
/// ULTRA-MERGE compile the hop away along with the rest of the membrane —
/// trading observability for indirections, like the rest of Fig. 7.
class TimingInterceptor final : public Interceptor {
 public:
  using RecordFn = void (*)(void* arg, std::uint64_t exec_nanos);

  TimingInterceptor(RecordFn record, void* arg) noexcept
      : record_(record), arg_(arg) {}

  const char* kind() const noexcept override { return "timing-interceptor"; }

  void deliver(const comm::Message& m) override {
    const auto& clock = rtsj::SteadyClock::instance();
    const rtsj::AbsoluteTime begin = clock.now();
    next_sink_->deliver(m);
    report(clock.now() - begin);
  }

  comm::Message invoke(const comm::Message& m) override {
    const auto& clock = rtsj::SteadyClock::instance();
    const rtsj::AbsoluteTime begin = clock.now();
    comm::Message reply = next_invocable_->invoke(m);
    report(clock.now() - begin);
    return reply;
  }

 private:
  void report(rtsj::RelativeTime exec) noexcept {
    if (record_ != nullptr) {
      record_(arg_, static_cast<std::uint64_t>(
                        exec.nanos() < 0 ? 0 : exec.nanos()));
    }
  }

  RecordFn record_;
  void* arg_;
};

/// Server-side dispatch of a synchronous (passive) interface: lifecycle
/// gate plus content invocation. Calls against a stopped component return
/// an empty message and are counted — real-time callers must not block on
/// reconfiguration.
class SyncSkeleton final : public Interceptor {
 public:
  SyncSkeleton(const LifecycleController* lifecycle, comm::Content* content)
      : lifecycle_(lifecycle), content_(content) {}

  const char* kind() const noexcept override { return "sync-skeleton"; }

  comm::Message invoke(const comm::Message& m) override {
    if (lifecycle_ != nullptr && !lifecycle_->started()) {
      ++rejected_;
      return comm::Message{};
    }
    ++invoked_;
    return content_->on_invoke(m);
  }

  std::uint64_t invoked_count() const noexcept { return invoked_; }
  std::uint64_t rejected_count() const noexcept { return rejected_; }

 private:
  const LifecycleController* lifecycle_;
  comm::Content* content_;
  std::uint64_t invoked_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace rtcf::membrane
