// The plan-delta engine: live ADL reload as a synthesized transition.
//
// diff_plans() compares the running assembly's immutable AssemblyPlan
// snapshot against a freshly loaded <Architecture> and synthesizes the
// structural transition between them: components to add and remove, client
// ports to rebind (synchronous and asynchronous), release-rate and contract
// changes. plan_reload() wraps the diff in the full safety pipeline the
// paper's design flow prescribes for *declared* architectures, applied to
// the *delta*:
//
//   1. the target architecture passes the complete rule engine
//      (validate::validate — RTA, pattern, area and mode rules run against
//      the target plan, not the running one);
//   2. the target snapshot is partitioned under the live-migration
//      constraint: surviving components keep their executive partitions
//      (threads never migrate), added components are co-located with their
//      synchronous cluster, else with an asynchronous peer when legal, else
//      placed on the least-loaded partition;
//   3. DELTA-* rules check what only the transition can violate: removals
//      of non-swappable components, unregistered content classes, unknown
//      scoped areas, protocol flips, async servers without an activation
//      entry; REBIND-CROSS-PARTITION reports rebinds the placement could
//      not co-locate.
//
// The resulting ReloadPlan is what ModeManager::request_reload() stages and
// applies at the executive's quiescence rendezvous.
//
// Rule identifiers (stable, used by tests and tools):
//   DELTA-COMPONENT-SHAPE    a surviving component may not change its kind,
//                            activation, content class, interfaces, or
//                            deployment across a reload
//   DELTA-REMOVE-SWAPPABLE   removed components must be declared swappable
//   DELTA-SETTING-SWAPPABLE  rate/contract changes need swappable
//   DELTA-REBIND-SWAPPABLE   rebinding a client port needs swappable
//   DELTA-CONTENT-UNKNOWN    added component's content class is not
//                            registered (hot registration required first)
//   DELTA-AREA-UNKNOWN       added component / binding placement names a
//                            scoped area the running assembly does not have
//   DELTA-PROTOCOL-CHANGE    a binding may not flip sync<->async live
//   DELTA-ASYNC-SERVER       asynchronous bindings need an active server
//   DELTA-PORT-UNBOUND       (warning) a surviving client port loses its
//                            binding
//   DELTA-ASYNC-RETARGET     (info) an async rebind will drain-then-swap
//                            its buffer through the AsyncSkeleton
//   REBIND-CROSS-PARTITION   (warning) a synthesized rebind crosses
//                            executive partitions after placement
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/assembly_plan.hpp"
#include "validate/report.hpp"

namespace rtcf::model {
class Architecture;
}

namespace rtcf::reconfig {

/// One client-port re-target synthesized by the diff.
struct RebindDelta {
  /// The client end being re-targeted.
  model::BindingEnd client;
  /// Server the port pointed at in the running assembly.
  std::string old_server;
  /// Server the port points at after the transition.
  std::string new_server;
  /// Protocol of the (unchanged) binding.
  model::Protocol protocol = model::Protocol::Synchronous;
  /// The target plan's full resolution for the new wiring (pattern, area
  /// placement, buffer size, cross-partition flag).
  model::BindingSpec target;
};

/// Release-rate / contract change of a surviving component.
struct SettingDelta {
  /// The surviving component concerned.
  std::string component;
  /// True when the release rate changed.
  bool period_changed = false;
  /// The new release rate (valid when period_changed).
  rtsj::RelativeTime new_period{};
  /// True when the timing contract changed.
  bool contract_changed = false;
  /// The new contract; nullopt drops contract monitoring.
  std::optional<model::TimingContract> contract;
};

/// The synthesized transition between two assembly snapshots.
struct PlanDelta {
  /// Components to instantiate (specs captured by value from the target).
  std::vector<model::ComponentSpec> add_components;
  /// Components to drain, stop, and retire.
  std::vector<model::ComponentSpec> remove_components;
  /// Bindings whose client end is new (added component, or a previously
  /// unbound port of a survivor).
  std::vector<model::BindingSpec> add_bindings;
  /// Client ends of survivors whose binding disappears entirely.
  std::vector<model::BindingEnd> remove_bindings;
  /// Client-port re-targets between surviving or added servers.
  std::vector<RebindDelta> rebinds;
  /// Release-rate / contract changes of surviving components.
  std::vector<SettingDelta> settings;
  /// Client ends whose protocol differs between the plans (always an
  /// error; kept here so the validator can name them).
  std::vector<model::BindingEnd> protocol_changes;

  bool empty() const noexcept;
  /// One-line human-readable shape, e.g. "+2 -1 ~1 rebinds:1".
  std::string summary() const;
};

/// Pure diff of two snapshots (no validation, no placement).
PlanDelta diff_plans(const model::AssemblyPlan& running,
                     const model::AssemblyPlan& target);

/// Runs the DELTA-* rules (and REBIND-CROSS-PARTITION) of a synthesized
/// transition against the running and *placed* target snapshots, appending
/// to `report`. This is step 4 of plan_reload(), exposed on its own for
/// the distributed path: the coordinator validates the global target
/// architecture once, and every node re-validates only its received slice
/// delta with exactly this rule set before voting PREPARE_OK.
void check_delta_rules(const PlanDelta& delta,
                       const model::AssemblyPlan& running,
                       const model::AssemblyPlan& target,
                       validate::Report& report);

/// A staged reload: the delta, the placed target snapshot, and the
/// combined validation report.
struct ReloadPlan {
  /// The synthesized transition.
  PlanDelta delta;
  /// The placed target snapshot the transition commits to.
  model::AssemblyPlan target;
  /// Combined diagnostics (target rules + DELTA-* rules).
  validate::Report report;
  /// True when the report carries no errors.
  bool ok() const noexcept { return report.ok(); }
};

/// Plans a live reload of `target_arch` against the running snapshot: full
/// target validation, migration-constrained placement, diff, delta rules.
/// The target architecture is only read — it may be discarded afterwards;
/// everything the transition needs is captured by value in the ReloadPlan.
ReloadPlan plan_reload(const model::AssemblyPlan& running,
                       const model::Architecture& target_arch);

}  // namespace rtcf::reconfig
