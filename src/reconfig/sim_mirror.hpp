// Virtual-time mirror of mode transitions: replays the ModeManager's
// release-plan swap on sim::PreemptiveScheduler, so a mode-change schedule
// is deterministic and bit-for-bit reproducible (TraceKind::ModeChange).
//
// The simulator models load, not wiring: a mode's component set and rate
// overrides map to task enable/disable and period mods; its rebinds and
// contract overrides have no timing effect at the sim's abstraction level
// and map to nothing.
#pragma once

#include <vector>

#include "model/metamodel.hpp"
#include "sim/architecture_sim.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::reconfig {

/// The task mods realizing `mode` for an architecture mapped onto the
/// simulator: every mode-managed active component is enabled/disabled per
/// the mode's component set, with the mode's rate overrides applied.
std::vector<sim::PreemptiveScheduler::TaskMod> mode_task_mods(
    const model::Architecture& arch, const model::ModeDecl& mode,
    const sim::SimMapping& mapping);

/// Schedules entering `mode` at virtual time `t` (one ModeChange trace
/// event, all mods atomic at that instant).
void schedule_mode(sim::PreemptiveScheduler& scheduler,
                   const model::Architecture& arch,
                   const model::ModeDecl& mode, const sim::SimMapping& mapping,
                   rtsj::AbsoluteTime t);

}  // namespace rtcf::reconfig
