// Virtual-time mirror of mode transitions: replays the ModeManager's
// release-plan swap on sim::PreemptiveScheduler, so a mode-change schedule
// is deterministic and bit-for-bit reproducible (TraceKind::ModeChange).
//
// The simulator models load, not wiring: a mode's component set and rate
// overrides map to task enable/disable and period mods; its rebinds and
// contract overrides have no timing effect at the sim's abstraction level
// and map to nothing.
#pragma once

#include <vector>

#include "model/metamodel.hpp"
#include "reconfig/plan_delta.hpp"
#include "sim/architecture_sim.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::reconfig {

/// The task mods realizing `mode` for an architecture mapped onto the
/// simulator: every mode-managed active component is enabled/disabled per
/// the mode's component set, with the mode's rate overrides applied.
std::vector<sim::PreemptiveScheduler::TaskMod> mode_task_mods(
    const model::Architecture& arch, const model::ModeDecl& mode,
    const sim::SimMapping& mapping);

/// Schedules entering `mode` at virtual time `t` (one ModeChange trace
/// event, all mods atomic at that instant).
void schedule_mode(sim::PreemptiveScheduler& scheduler,
                   const model::Architecture& arch,
                   const model::ModeDecl& mode, const sim::SimMapping& mapping,
                   rtsj::AbsoluteTime t);

/// The virtual-time mirror of a live ADL reload: maps a synthesized plan
/// delta onto a running simulated assembly at virtual time `t`. Removed
/// components retire (their timelines tick silently forever), setting
/// changes re-period surviving tasks, and added active components become
/// new tasks configured from their specs (thread kind, priority, rate,
/// cost, partition→CPU) anchored at `anchor` — their first release falls
/// on the first grid point strictly after `t`, exactly like the launcher's
/// anchor-grid entry. `mapping` is extended with the added tasks' ids, so
/// later deltas and assertions can address them by name. Rebinds and
/// contract changes have no timing effect at the sim's abstraction level
/// and map to nothing. Deterministic: the same delta schedule replays a
/// bit-for-bit identical trace (TraceKind::PlanChange marks the apply).
void schedule_plan_delta(sim::PreemptiveScheduler& scheduler,
                         const PlanDelta& delta, sim::SimMapping& mapping,
                         rtsj::AbsoluteTime t, rtsj::AbsoluteTime anchor);

}  // namespace rtcf::reconfig
