#include "reconfig/plan_delta.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "runtime/content_registry.hpp"
#include "soleil/plan.hpp"
#include "validate/validator.hpp"

namespace rtcf::reconfig {

using model::AssemblyPlan;
using model::AssemblyPlanBuilder;
using model::BindingSpec;
using model::ComponentSpec;
using model::Protocol;
using validate::Severity;

namespace {

bool same_contract(const std::optional<model::TimingContract>& a,
                   const std::optional<model::TimingContract>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  return a->wcet_budget == b->wcet_budget &&
         a->miss_ratio_bound == b->miss_ratio_bound &&
         a->max_arrival_rate_hz == b->max_arrival_rate_hz &&
         a->window == b->window;
}

bool same_interfaces(const std::vector<model::InterfaceDecl>& a,
                     const std::vector<model::InterfaceDecl>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].role != b[i].role ||
        a[i].signature != b[i].signature) {
      return false;
    }
  }
  return true;
}

/// The live-reload shape invariant: what a surviving component may *not*
/// change (its runtime substrate — content object, thread, area, governor
/// slot — is fixed for the assembly's lifetime).
bool same_shape(const ComponentSpec& a, const ComponentSpec& b) {
  return a.kind == b.kind && a.activation == b.activation &&
         a.content_class == b.content_class &&
         a.criticality == b.criticality && a.memory_area == b.memory_area &&
         a.area_type == b.area_type && a.thread_domain == b.thread_domain &&
         a.domain_type == b.domain_type &&
         a.domain_priority == b.domain_priority &&
         same_interfaces(a.interfaces, b.interfaces);
}

std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

double spec_weight(const ComponentSpec& spec) {
  if (!spec.is_active()) return 0.0;
  double weight = 1e-3;
  if (!spec.cost.is_zero() && spec.period > rtsj::RelativeTime::zero()) {
    weight += static_cast<double>(spec.cost.nanos()) /
              static_cast<double>(spec.period.nanos());
  }
  return weight;
}

/// Re-partitions the target snapshot under the live-migration constraint:
/// surviving components keep their running partitions; added components are
/// co-located with their synchronous cluster, else with the first
/// asynchronous peer that survives, else LPT onto the least-loaded
/// partition. Deterministic throughout.
void place_target(AssemblyPlan& target, const AssemblyPlan& running) {
  const std::size_t partitions = running.partition_count();
  AssemblyPlanBuilder builder{target};
  builder.set_partition_count(partitions);
  auto& components = builder.components();
  const std::size_t n = components.size();

  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto index_of = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < n; ++i) {
      if (components[i].name == name) return i;
    }
    return n;
  };
  for (const BindingSpec& b : target.bindings()) {
    if (b.protocol != Protocol::Synchronous) continue;
    const std::size_t a = index_of(b.client.component);
    const std::size_t s = index_of(b.server.component);
    if (a == n || s == n) continue;
    const std::size_t ra = uf_find(parent, a);
    const std::size_t rb = uf_find(parent, s);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }

  // Pin each cluster: the first surviving member (component order) decides.
  std::vector<double> load(partitions, 0.0);
  std::vector<int> cluster_partition(n, -1);  // by root index
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf_find(parent, i);
    if (cluster_partition[root] >= 0) continue;
    const ComponentSpec* survivor = running.find(components[i].name);
    if (survivor != nullptr) {
      cluster_partition[root] = static_cast<int>(survivor->partition);
    }
  }
  // Clusters with no surviving sync member: co-locate with the first
  // asynchronous peer whose partition is already decided.
  for (const BindingSpec& b : target.bindings()) {
    if (b.protocol != Protocol::Asynchronous) continue;
    const std::size_t a = index_of(b.client.component);
    const std::size_t s = index_of(b.server.component);
    if (a == n || s == n) continue;
    const std::size_t ra = uf_find(parent, a);
    const std::size_t rb = uf_find(parent, s);
    if (cluster_partition[ra] < 0 && cluster_partition[rb] >= 0) {
      cluster_partition[ra] = cluster_partition[rb];
    } else if (cluster_partition[rb] < 0 && cluster_partition[ra] >= 0) {
      cluster_partition[rb] = cluster_partition[ra];
    }
  }
  // Account the load of every placed component, then place the remaining
  // clusters (entirely new, no surviving peer) heaviest-first onto the
  // least-loaded partition.
  std::vector<double> cluster_weight(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf_find(parent, i);
    cluster_weight[root] += spec_weight(components[i]);
    if (cluster_partition[root] >= 0) {
      load[static_cast<std::size_t>(cluster_partition[root])] +=
          spec_weight(components[i]);
    }
  }
  std::vector<std::size_t> floating;
  for (std::size_t i = 0; i < n; ++i) {
    if (uf_find(parent, i) == i && cluster_partition[i] < 0) {
      floating.push_back(i);
    }
  }
  std::stable_sort(floating.begin(), floating.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (cluster_weight[a] != cluster_weight[b]) {
                       return cluster_weight[a] > cluster_weight[b];
                     }
                     return a < b;
                   });
  for (const std::size_t root : floating) {
    std::size_t best = 0;
    for (std::size_t p = 1; p < partitions; ++p) {
      if (load[p] < load[best]) best = p;
    }
    cluster_partition[root] = static_cast<int>(best);
    load[best] += cluster_weight[root];
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Survivors never migrate — their threads and release timelines are
    // pinned. Only added components take the cluster placement. (A target
    // sync binding joining two survivors on different partitions is
    // therefore left crossing; the rebind rules report it.)
    const ComponentSpec* survivor = running.find(components[i].name);
    components[i].partition =
        survivor != nullptr
            ? survivor->partition
            : static_cast<std::size_t>(cluster_partition[uf_find(parent, i)]);
  }
  for (BindingSpec& b : builder.bindings()) {
    const std::size_t a = index_of(b.client.component);
    const std::size_t s = index_of(b.server.component);
    b.cross_partition = a != n && s != n &&
                        components[a].partition != components[s].partition;
  }
}

/// The set of area-placement names the running assembly can resolve: every
/// *declared* area of the launch architecture (the RuntimeEnvironment
/// created them all, including ones no component currently occupies — a
/// reload may deploy into those too).
std::set<std::string> running_area_names(const AssemblyPlan& running) {
  std::set<std::string> names;
  for (const auto& a : running.areas()) names.insert(a.name);
  return names;
}

/// Rewrites placements naming areas unknown to the running assembly: heap
/// and immortal areas degrade to the singletons (same storage), scoped ones
/// stay and fail DELTA-AREA-UNKNOWN below.
void normalize_placements(AssemblyPlan& target,
                          const model::Architecture& target_arch,
                          const std::set<std::string>& known) {
  const auto rewrite = [&](std::string& name) {
    if (name == model::kAreaNone || name == model::kAreaImmortal ||
        name == model::kAreaHeap || known.count(name) != 0) {
      return;
    }
    const auto* area =
        target_arch.find_as<model::MemoryAreaComponent>(name);
    if (area == nullptr) return;
    if (area->type() == model::AreaType::Immortal) {
      name = model::kAreaImmortal;
    } else if (area->type() == model::AreaType::Heap) {
      name = model::kAreaHeap;
    }
  };
  AssemblyPlanBuilder builder{target};
  for (BindingSpec& b : builder.bindings()) {
    rewrite(b.staging_area);
    rewrite(b.buffer_area);
  }
}

std::string end_name(const model::BindingEnd& end) {
  return end.component + "." + end.interface;
}

}  // namespace

bool PlanDelta::empty() const noexcept {
  return add_components.empty() && remove_components.empty() &&
         add_bindings.empty() && remove_bindings.empty() && rebinds.empty() &&
         settings.empty() && protocol_changes.empty();
}

std::string PlanDelta::summary() const {
  std::ostringstream os;
  os << "+" << add_components.size() << " components, -"
     << remove_components.size() << " components, " << rebinds.size()
     << " rebinds, " << settings.size() << " setting changes, +"
     << add_bindings.size() << "/-" << remove_bindings.size() << " bindings";
  return os.str();
}

PlanDelta diff_plans(const AssemblyPlan& running, const AssemblyPlan& target) {
  PlanDelta delta;

  for (const ComponentSpec& spec : target.components()) {
    const ComponentSpec* old = running.find(spec.name);
    if (old == nullptr) {
      delta.add_components.push_back(spec);
      continue;
    }
    SettingDelta setting;
    setting.component = spec.name;
    if (spec.is_active() && spec.period != old->period) {
      setting.period_changed = true;
      setting.new_period = spec.period;
    }
    if (!same_contract(spec.contract, old->contract)) {
      setting.contract_changed = true;
      setting.contract = spec.contract;
    }
    if (setting.period_changed || setting.contract_changed) {
      delta.settings.push_back(std::move(setting));
    }
  }
  for (const ComponentSpec& spec : running.components()) {
    if (target.find(spec.name) == nullptr) {
      delta.remove_components.push_back(spec);
    }
  }

  const auto removed = [&](const std::string& name) {
    return target.find(name) == nullptr;
  };
  for (const BindingSpec& old : running.bindings()) {
    if (removed(old.client.component)) continue;  // dies with its client
    const BindingSpec* next = target.binding_for(old.client);
    if (next == nullptr) {
      delta.remove_bindings.push_back(old.client);
      continue;
    }
    if (next->protocol != old.protocol) {
      delta.protocol_changes.push_back(old.client);
      continue;
    }
    if (next->server.component != old.server.component) {
      RebindDelta rebind;
      rebind.client = old.client;
      rebind.old_server = old.server.component;
      rebind.new_server = next->server.component;
      rebind.protocol = next->protocol;
      rebind.target = *next;
      delta.rebinds.push_back(std::move(rebind));
    }
  }
  for (const BindingSpec& next : target.bindings()) {
    // New client end: an added component's port, or a previously unbound
    // port of a survivor (protocol flips were already classified above).
    if (running.binding_for(next.client) == nullptr) {
      delta.add_bindings.push_back(next);
    }
  }
  return delta;
}

void check_delta_rules(const PlanDelta& delta, const AssemblyPlan& running,
                       const AssemblyPlan& target,
                       validate::Report& report) {
  const std::set<std::string> areas = running_area_names(running);
  // DELTA-* rules: what only the transition (not the target architecture
  // alone) can violate.
  for (const ComponentSpec& spec : target.components()) {
    const ComponentSpec* old = running.find(spec.name);
    if (old != nullptr && !same_shape(spec, *old)) {
      report.add(Severity::Error, "DELTA-COMPONENT-SHAPE", spec.name,
                 "surviving component changes kind, activation, content "
                 "class, criticality, interfaces, or deployment — a live "
                 "reload cannot rebuild its substrate; remove and re-add "
                 "under a new name instead");
    }
  }
  for (const ComponentSpec& spec : delta.remove_components) {
    if (!spec.swappable) {
      report.add(Severity::Error, "DELTA-REMOVE-SWAPPABLE", spec.name,
                 "removed component is not declared swappable — the static "
                 "part of the assembly is contractually untouched by "
                 "runtime reconfiguration");
    }
  }
  for (const SettingDelta& setting : delta.settings) {
    const ComponentSpec* old = running.find(setting.component);
    if (old != nullptr && !old->swappable) {
      report.add(Severity::Error, "DELTA-SETTING-SWAPPABLE",
                 setting.component,
                 "reload changes the release rate or contract of a "
                 "component not declared swappable");
    }
  }
  auto& registry = runtime::ContentRegistry::instance();
  for (const ComponentSpec& spec : delta.add_components) {
    if (spec.content_class.empty() ||
        !registry.contains(spec.content_class)) {
      report.add(Severity::Error, "DELTA-CONTENT-UNKNOWN", spec.name,
                 "content class '" + spec.content_class +
                     "' is not registered — hot-register it in the "
                     "ContentRegistry before reloading");
    }
    if (!spec.memory_area.empty() &&
        spec.area_type == model::AreaType::Scoped &&
        areas.count(spec.memory_area) == 0) {
      report.add(Severity::Error, "DELTA-AREA-UNKNOWN", spec.name,
                 "deploys into scoped area '" + spec.memory_area +
                     "', which the running assembly did not create — "
                     "scoped areas cannot be instantiated live");
    }
  }
  const auto check_placement = [&](const std::string& name,
                                   const std::string& subject) {
    if (name == model::kAreaNone || name == model::kAreaImmortal ||
        name == model::kAreaHeap || areas.count(name) != 0) {
      return;
    }
    report.add(Severity::Error, "DELTA-AREA-UNKNOWN", subject,
               "binding placement names scoped area '" + name +
                   "', which the running assembly did not create");
  };
  const auto check_async_server = [&](const BindingSpec& spec,
                                      const std::string& subject) {
    if (spec.protocol != Protocol::Asynchronous) return;
    const ComponentSpec* server = target.find(spec.server.component);
    if (server == nullptr || !server->is_active()) {
      report.add(Severity::Error, "DELTA-ASYNC-SERVER", subject,
                 "asynchronous binding server '" + spec.server.component +
                     "' is not an active component (no activation entry)");
    }
  };
  for (const BindingSpec& spec : delta.add_bindings) {
    const std::string subject = end_name(spec.client) + " -> " +
                                spec.server.component;
    check_placement(spec.staging_area, subject);
    check_placement(spec.buffer_area, subject);
    check_async_server(spec, subject);
  }
  for (const model::BindingEnd& end : delta.protocol_changes) {
    report.add(Severity::Error, "DELTA-PROTOCOL-CHANGE", end_name(end),
               "binding protocol differs from the running assembly — a "
               "port cannot flip between synchronous and asynchronous "
               "delivery live");
  }
  for (const model::BindingEnd& end : delta.remove_bindings) {
    report.add(Severity::Warning, "DELTA-PORT-UNBOUND", end_name(end),
               "surviving client port loses its binding; sends will drop");
  }
  for (const RebindDelta& rebind : delta.rebinds) {
    const std::string subject = end_name(rebind.client) + " -> " +
                                rebind.new_server;
    check_placement(rebind.target.staging_area, subject);
    check_placement(rebind.target.buffer_area, subject);
    check_async_server(rebind.target, subject);
    const ComponentSpec* client = running.find(rebind.client.component);
    if (client != nullptr && !client->swappable) {
      report.add(Severity::Error, "DELTA-REBIND-SWAPPABLE", subject,
                 "reload rebinds a port of a component not declared "
                 "swappable");
    }
    if (rebind.protocol == Protocol::Asynchronous) {
      report.add(Severity::Info, "DELTA-ASYNC-RETARGET", subject,
                 "buffer re-targeted through the AsyncSkeleton "
                 "(drain-before-swap, " +
                     std::string(rebind.target.cross_partition
                                     ? "lock-free SPSC variant"
                                     : "single-worker variant") +
                     ")");
    }
    // Partition awareness: the migration-constrained placement co-locates
    // added components where it legally can; a rebind between two *pinned*
    // survivors on different partitions cannot be co-located and is
    // reported instead.
    const ComponentSpec* tc = target.find(rebind.client.component);
    const ComponentSpec* ts = target.find(rebind.new_server);
    if (tc != nullptr && ts != nullptr && tc->partition != ts->partition) {
      report.add(
          Severity::Warning, "REBIND-CROSS-PARTITION", subject,
          rebind.protocol == Protocol::Synchronous
              ? "rebind crosses executive partitions (legal — synchronous "
                "calls execute on the caller's worker — but the server's "
                "state is now touched from two workers; co-location was "
                "impossible because both endpoints are pinned)"
              : "asynchronous rebind crosses executive partitions; the "
                "re-targeted buffer uses the lock-free SPSC variant");
    }
  }
}

ReloadPlan plan_reload(const AssemblyPlan& running,
                       const model::Architecture& target_arch) {
  ReloadPlan rp;
  // 1. The target architecture passes the full rule engine — RTA, pattern,
  //    area, and mode rules run against the *target* plan.
  rp.report = validate::validate(target_arch);

  // 2. Snapshot + migration-constrained placement.
  rp.target = soleil::snapshot_assembly(target_arch,
                                        running.partition_count());
  place_target(rp.target, running);
  normalize_placements(rp.target, target_arch, running_area_names(running));

  // 3. Diff.
  rp.delta = diff_plans(running, rp.target);

  // 4. The transition rules (shared with the distributed per-node path).
  check_delta_rules(rp.delta, running, rp.target, rp.report);
  return rp;
}

}  // namespace rtcf::reconfig
