#include "reconfig/sim_mirror.hpp"

namespace rtcf::reconfig {

std::vector<sim::PreemptiveScheduler::TaskMod> mode_task_mods(
    const model::Architecture& arch, const model::ModeDecl& mode,
    const sim::SimMapping& mapping) {
  std::vector<sim::PreemptiveScheduler::TaskMod> mods;
  for (const auto* active : arch.all_of<model::ActiveComponent>()) {
    if (!arch.mode_managed(active->name())) continue;
    if (!mapping.has(active->name())) continue;
    const model::ModeComponentConfig* cfg = mode.find(active->name());
    sim::PreemptiveScheduler::TaskMod mod;
    mod.task = mapping.task(active->name());
    mod.enabled = cfg != nullptr;
    if (cfg != nullptr && !cfg->period.is_zero() &&
        active->activation() == model::ActivationKind::Periodic) {
      mod.period = cfg->period;
    }
    mods.push_back(mod);
  }
  return mods;
}

void schedule_mode(sim::PreemptiveScheduler& scheduler,
                   const model::Architecture& arch,
                   const model::ModeDecl& mode, const sim::SimMapping& mapping,
                   rtsj::AbsoluteTime t) {
  scheduler.schedule_mode_change(t, mode_task_mods(arch, mode, mapping));
}

}  // namespace rtcf::reconfig
