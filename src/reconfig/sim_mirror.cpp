#include "reconfig/sim_mirror.hpp"

namespace rtcf::reconfig {

std::vector<sim::PreemptiveScheduler::TaskMod> mode_task_mods(
    const model::Architecture& arch, const model::ModeDecl& mode,
    const sim::SimMapping& mapping) {
  std::vector<sim::PreemptiveScheduler::TaskMod> mods;
  for (const auto* active : arch.all_of<model::ActiveComponent>()) {
    if (!arch.mode_managed(active->name())) continue;
    if (!mapping.has(active->name())) continue;
    const model::ModeComponentConfig* cfg = mode.find(active->name());
    sim::PreemptiveScheduler::TaskMod mod;
    mod.task = mapping.task(active->name());
    mod.enabled = cfg != nullptr;
    if (cfg != nullptr && !cfg->period.is_zero() &&
        active->activation() == model::ActivationKind::Periodic) {
      mod.period = cfg->period;
    }
    mods.push_back(mod);
  }
  return mods;
}

void schedule_mode(sim::PreemptiveScheduler& scheduler,
                   const model::Architecture& arch,
                   const model::ModeDecl& mode, const sim::SimMapping& mapping,
                   rtsj::AbsoluteTime t) {
  scheduler.schedule_mode_change(t, mode_task_mods(arch, mode, mapping));
}

namespace {

sim::ThreadKind thread_kind_of(model::DomainType type) {
  switch (type) {
    case model::DomainType::NoHeapRealtime:
      return sim::ThreadKind::NoHeapRealtime;
    case model::DomainType::Realtime:
      return sim::ThreadKind::Realtime;
    case model::DomainType::Regular:
      break;
  }
  return sim::ThreadKind::Regular;
}

}  // namespace

void schedule_plan_delta(sim::PreemptiveScheduler& scheduler,
                         const PlanDelta& delta, sim::SimMapping& mapping,
                         rtsj::AbsoluteTime t, rtsj::AbsoluteTime anchor) {
  sim::PreemptiveScheduler::PlanChange change;
  for (const model::ComponentSpec& spec : delta.remove_components) {
    if (!mapping.has(spec.name)) continue;
    sim::PreemptiveScheduler::TaskMod mod;
    mod.task = mapping.task(spec.name);
    mod.enabled = false;
    change.mods.push_back(mod);
  }
  for (const SettingDelta& setting : delta.settings) {
    if (!setting.period_changed || !mapping.has(setting.component)) continue;
    sim::PreemptiveScheduler::TaskMod mod;
    mod.task = mapping.task(setting.component);
    mod.enabled = true;
    mod.period = setting.new_period;
    change.mods.push_back(mod);
  }
  std::vector<std::string> added_names;
  for (const model::ComponentSpec& spec : delta.add_components) {
    if (!spec.is_active()) continue;  // passives execute on their callers
    sim::TaskConfig config;
    config.name = spec.name;
    config.kind = thread_kind_of(spec.domain_type);
    config.priority = spec.domain_priority;
    config.release = spec.activation == model::ActivationKind::Periodic
                         ? sim::ReleaseKind::Periodic
                         : sim::ReleaseKind::Sporadic;
    config.start = anchor;
    if (config.release == sim::ReleaseKind::Periodic) {
      config.period = spec.period;
    } else {
      config.min_interarrival = spec.period;
    }
    config.cost = spec.cost;
    config.cpu = spec.partition;
    change.additions.push_back(std::move(config));
    added_names.push_back(spec.name);
  }
  const std::vector<sim::TaskId> added =
      scheduler.schedule_plan_change(t, std::move(change));
  for (std::size_t i = 0; i < added.size(); ++i) {
    mapping.tasks[added_names[i]] = added[i];
  }
}

}  // namespace rtcf::reconfig
