// Safe dynamic reconfiguration: operational modes and quiescence-based
// component hot-swap.
//
// The paper's membranes carry lifecycle and binding controllers precisely
// so assemblies can be re-wired at runtime (§4.2); this subsystem drives
// them. An architecture declares operational modes (<Mode> in the ADL):
// per-mode component sets, release rates, timing contracts, and port
// redirections. The ModeManager transitions a running assembly between
// modes with a bounded, measured latency and without losing a message:
//
//   1. quiescence — every executive worker parks at its next dispatch
//      boundary (a release or activation in progress always runs to
//      completion first), so no new release can start;
//   2. drain     — in-flight messages ride the existing MessageBuffer /
//      SPSC paths to their consumers while all lifecycles are still
//      started and all bindings still point at the old targets;
//   3. stop      — components leaving the mode are stopped through their
//      membrane lifecycle controllers;
//   4. rebind    — the old mode's redirections are restored to the
//      architecture-declared servers and the new mode's redirections are
//      applied through the binding controllers (RTSJ-checked, §4.2);
//   5. re-arm    — per-mode timing contracts replace the old checkers with
//      fresh windows, and the overload governor is reset (the demotion
//      answered the overload — start clean in the new mode);
//   6. restart   — components entering the mode are started, the per-
//      component release settings (enabled, period) are republished under
//      a new plan epoch, and the workers resume: each one re-reads its own
//      partition's settings before its next dispatch, so no release is
//      lost or double-fired.
//
// The transition latency (request to resume) is therefore bounded by the
// longest release-to-completion time across the workers plus the drain;
// bench/mode_transition_latency.cpp measures it.
//
// The overload-governor hook: when sustained contract violation escalates
// the governor to `Options::demote_at` and the architecture declares a
// degraded mode, the next dispatch boundary transitions into it — the
// assembly changes shape under overload instead of only shedding work.
//
// Live ADL reload (request_reload): a freshly loaded <Architecture> is
// planned against the running AssemblyPlan snapshot by the plan-delta
// engine (plan_delta.hpp) and, when the delta validates, staged exactly
// like a mode transition: the same quiescence rendezvous, the same
// governor-reset + drain prologue, then Application::apply_plan_delta
// swaps real structure — components added and removed, sync and async
// ports re-targeted — and the launcher grows/shrinks its release plan
// through the structure hook before the workers resume. An empty delta
// short-circuits: nothing is staged, no epoch is published.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "monitor/governor.hpp"
#include "reconfig/plan_delta.hpp"
#include "rtsj/time/time.hpp"
#include "soleil/application.hpp"

namespace rtcf::reconfig {

/// Effective executive settings of one mode-managed component in the
/// current mode, read by the launcher when the plan epoch changes.
struct ComponentSetting {
  bool enabled = true;
  /// Effective release rate (mode override or declared period).
  rtsj::RelativeTime period{};
};

/// Structural change applied by a live reload, delivered to the launcher's
/// structure hook at the quiescence point so the per-worker release plans
/// can grow and shrink before the workers resume.
struct StructureChange {
  std::vector<std::string> added;
  std::vector<std::string> removed;
};

/// Drives one Application through its declared operational modes.
///
/// Construct after Application::start(): the initial mode (first declared,
/// or Options::initial_mode) is applied immediately — components absent
/// from it are stopped, its rebinds and contract overrides armed.
///
/// Threading: request_transition() may be called from any thread; the
/// transition is applied at the next quiescence point of the running
/// launcher (or inline when no launcher is running). poll()/retire()/
/// begin_run()/end_run() are the executive-side protocol and are called by
/// the Launcher, one poll per dispatch boundary.
class ModeManager {
 public:
  struct Options {
    /// Starting mode; empty selects the first declared mode.
    std::string initial_mode;
    /// Demote into the architecture's degraded mode when the governor
    /// escalates to `demote_at` or beyond.
    bool governor_demotion = true;
    monitor::GovernorLevel demote_at = monitor::GovernorLevel::Shed;
  };

  /// One applied transition, for diagnostics and the latency bench.
  struct TransitionRecord {
    std::uint64_t seq = 0;
    std::string from;
    std::string to;
    /// "request" for explicit transitions, "governor" for overload
    /// demotions.
    std::string trigger;
    /// Request to resume: quiescence wait + drain + swap.
    rtsj::RelativeTime latency{};
  };

  explicit ModeManager(soleil::Application& app);
  ModeManager(soleil::Application& app, Options options);

  ModeManager(const ModeManager&) = delete;
  ModeManager& operator=(const ModeManager&) = delete;

  const std::string& current_mode() const noexcept;
  /// Bumped on every applied transition; the launcher re-reads its
  /// entries' settings when the epoch it last saw differs.
  std::uint64_t plan_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Current effective setting of an active component (declared rate
  /// overlaid with the current mode's overrides); nullptr for components
  /// the manager does not know (removed by a reload, or passive).
  const ComponentSetting* setting(const std::string& component) const;

  /// Requests a transition. Returns false when the mode is unknown, is
  /// already current, or another transition is still pending.
  bool request_transition(const std::string& mode,
                          const char* trigger = "request");

  /// Requests a live reload: `target` is diffed against the running
  /// snapshot (plan_reload: full target validation, placement, DELTA-*
  /// rules) and the synthesized delta is applied at the next quiescence
  /// point. Returns false — staging nothing — when the plan does not
  /// validate, the delta is empty (no-op reload short-circuits), another
  /// transition is pending, or the generation mode cannot reload
  /// structurally; `report` (optional) receives the full diagnostics
  /// either way. The target architecture is captured by value and may be
  /// discarded immediately after the call.
  bool request_reload(const model::Architecture& target,
                      validate::Report* report = nullptr);

  /// Messages moved by the apply-time drain audit of the last reload
  /// (0 when the quiescence pump had already emptied every buffer —
  /// either way, nothing is lost).
  std::uint64_t last_drain_audit() const noexcept {
    return drain_audit_.load(std::memory_order_acquire);
  }

  /// Installs the launcher's release-plan growth/shrink hook, invoked at
  /// the quiescence point of every applied reload (single-threaded, all
  /// workers parked). Pass nullptr to clear.
  void set_structure_hook(std::function<void(const StructureChange&)> hook);

  /// Executive protocol. begin_run declares the worker count; every worker
  /// calls poll() at each dispatch boundary (parking there while a
  /// transition is pending — the quiescence point) and retire() when it
  /// exits; end_run applies any still-pending transition single-threaded.
  void begin_run(std::size_t workers);
  void poll(std::size_t worker);
  void retire();
  void end_run();

  std::vector<TransitionRecord> transitions() const;
  const model::ModeDecl* degraded_mode() const noexcept {
    return degraded_;
  }

 private:
  enum class PendingKind { Mode, Reload };

  void maybe_demote();
  /// Applies the pending transition and releases the rendezvous (barrier
  /// counters, pending flag, generation, waiters) on every exit path —
  /// including a throwing swap, so parked workers are never stranded.
  /// Caller holds mutex_ and guarantees quiescence (all workers parked,
  /// or no launcher running).
  void execute_pending_locked();
  void apply_transition_locked();
  void apply_reload_locked();
  /// Mode-entry state shared by the constructor and transitions: settings
  /// table, lifecycle stops/starts, rebinds, contract re-arms.
  void enter_mode_locked(const model::ModeDecl* from,
                         const model::ModeDecl& to);
  /// Rebuilds the settings table for `mode` over the current assembly
  /// snapshot (every active component, not only mode-managed ones — a
  /// reload may change declared rates of unmanaged components too).
  void publish_settings_locked(const model::ModeDecl& mode);
  /// Adopts the current assembly snapshot's mode declarations: a fresh
  /// owned copy is appended to mode_generations_ (earlier generations are
  /// never freed, so lock-free readers of current_decl_ can never
  /// dangle), modes_/degraded_/current_ re-point into it.
  void bind_modes_locked(const std::string& current_name);
  /// Index of a declared mode, or modes_.size() when unknown.
  std::size_t mode_index(const std::string& name) const noexcept;

  soleil::Application& app_;
  Options options_;
  /// Owned mode declarations, one vector per adopted assembly snapshot.
  /// Reloads append; nothing is ever destroyed (transitions are rare, so
  /// retired generations are a bounded reload-time cost, like retired
  /// contract monitors) — current_mode() stays lock-free and safe even
  /// while a reload replaces the application's snapshot.
  std::deque<std::vector<model::ModeDecl>> mode_generations_;
  std::vector<const model::ModeDecl*> modes_;
  const model::ModeDecl* degraded_ = nullptr;

  std::atomic<std::size_t> current_{0};
  /// The current mode declaration, for lock-free readers (current_mode,
  /// the demotion check). Always points into mode_generations_.
  std::atomic<const model::ModeDecl*> current_decl_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> pending_{false};
  std::atomic<std::uint64_t> drain_audit_{0};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // Guarded by mutex_: pending request, barrier bookkeeping, records.
  PendingKind pending_kind_ = PendingKind::Mode;
  std::size_t pending_target_ = 0;
  ReloadPlan pending_reload_;
  std::string pending_trigger_;
  std::function<void(const StructureChange&)> structure_hook_;
  rtsj::AbsoluteTime requested_at_{};
  std::size_t workers_ = 0;   ///< 0 = no launcher running.
  std::size_t arrived_ = 0;
  std::size_t retired_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<TransitionRecord> records_;
  /// Current settings of every active component (declared rate overlaid
  /// with the current mode's overrides). Written only at quiescence
  /// points; the epoch release-store publishes it.
  std::map<std::string, ComponentSetting> settings_;
};

}  // namespace rtcf::reconfig
