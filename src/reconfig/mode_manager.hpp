// Safe dynamic reconfiguration: operational modes and quiescence-based
// component hot-swap.
//
// The paper's membranes carry lifecycle and binding controllers precisely
// so assemblies can be re-wired at runtime (§4.2); this subsystem drives
// them. An architecture declares operational modes (<Mode> in the ADL):
// per-mode component sets, release rates, timing contracts, and port
// redirections. The ModeManager transitions a running assembly between
// modes with a bounded, measured latency and without losing a message:
//
//   1. quiescence — every executive worker parks at its next dispatch
//      boundary (a release or activation in progress always runs to
//      completion first), so no new release can start;
//   2. drain     — in-flight messages ride the existing MessageBuffer /
//      SPSC paths to their consumers while all lifecycles are still
//      started and all bindings still point at the old targets;
//   3. stop      — components leaving the mode are stopped through their
//      membrane lifecycle controllers;
//   4. rebind    — the old mode's redirections are restored to the
//      architecture-declared servers and the new mode's redirections are
//      applied through the binding controllers (RTSJ-checked, §4.2);
//   5. re-arm    — per-mode timing contracts replace the old checkers with
//      fresh windows, and the overload governor is reset (the demotion
//      answered the overload — start clean in the new mode);
//   6. restart   — components entering the mode are started, the per-
//      component release settings (enabled, period) are republished under
//      a new plan epoch, and the workers resume: each one re-reads its own
//      partition's settings before its next dispatch, so no release is
//      lost or double-fired.
//
// The transition latency (request to resume) is therefore bounded by the
// longest release-to-completion time across the workers plus the drain;
// bench/mode_transition_latency.cpp measures it.
//
// The overload-governor hook: when sustained contract violation escalates
// the governor to `Options::demote_at` and the architecture declares a
// degraded mode, the next dispatch boundary transitions into it — the
// assembly changes shape under overload instead of only shedding work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "monitor/governor.hpp"
#include "rtsj/time/time.hpp"
#include "soleil/application.hpp"

namespace rtcf::reconfig {

/// Effective executive settings of one mode-managed component in the
/// current mode, read by the launcher when the plan epoch changes.
struct ComponentSetting {
  bool enabled = true;
  /// Effective release rate (mode override or declared period).
  rtsj::RelativeTime period{};
};

/// Drives one Application through its declared operational modes.
///
/// Construct after Application::start(): the initial mode (first declared,
/// or Options::initial_mode) is applied immediately — components absent
/// from it are stopped, its rebinds and contract overrides armed.
///
/// Threading: request_transition() may be called from any thread; the
/// transition is applied at the next quiescence point of the running
/// launcher (or inline when no launcher is running). poll()/retire()/
/// begin_run()/end_run() are the executive-side protocol and are called by
/// the Launcher, one poll per dispatch boundary.
class ModeManager {
 public:
  struct Options {
    /// Starting mode; empty selects the first declared mode.
    std::string initial_mode;
    /// Demote into the architecture's degraded mode when the governor
    /// escalates to `demote_at` or beyond.
    bool governor_demotion = true;
    monitor::GovernorLevel demote_at = monitor::GovernorLevel::Shed;
  };

  /// One applied transition, for diagnostics and the latency bench.
  struct TransitionRecord {
    std::uint64_t seq = 0;
    std::string from;
    std::string to;
    /// "request" for explicit transitions, "governor" for overload
    /// demotions.
    std::string trigger;
    /// Request to resume: quiescence wait + drain + swap.
    rtsj::RelativeTime latency{};
  };

  explicit ModeManager(soleil::Application& app);
  ModeManager(soleil::Application& app, Options options);

  ModeManager(const ModeManager&) = delete;
  ModeManager& operator=(const ModeManager&) = delete;

  const std::string& current_mode() const noexcept;
  /// Bumped on every applied transition; the launcher re-reads its
  /// entries' settings when the epoch it last saw differs.
  std::uint64_t plan_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Current setting of a mode-managed component; nullptr for components
  /// no mode lists (they are untouched by transitions).
  const ComponentSetting* setting(const std::string& component) const;

  /// Requests a transition. Returns false when the mode is unknown, is
  /// already current, or another transition is still pending.
  bool request_transition(const std::string& mode,
                          const char* trigger = "request");

  /// Executive protocol. begin_run declares the worker count; every worker
  /// calls poll() at each dispatch boundary (parking there while a
  /// transition is pending — the quiescence point) and retire() when it
  /// exits; end_run applies any still-pending transition single-threaded.
  void begin_run(std::size_t workers);
  void poll(std::size_t worker);
  void retire();
  void end_run();

  std::vector<TransitionRecord> transitions() const;
  const model::ModeDecl* degraded_mode() const noexcept {
    return degraded_;
  }

 private:
  void maybe_demote();
  /// Applies the pending transition and releases the rendezvous (barrier
  /// counters, pending flag, generation, waiters) on every exit path —
  /// including a throwing swap, so parked workers are never stranded.
  /// Caller holds mutex_ and guarantees quiescence (all workers parked,
  /// or no launcher running).
  void execute_pending_locked();
  void apply_transition_locked();
  /// Mode-entry state shared by the constructor and transitions: settings
  /// table, lifecycle stops/starts, rebinds, contract re-arms.
  void enter_mode_locked(const model::ModeDecl* from,
                         const model::ModeDecl& to);
  /// Index of a declared mode, or modes_.size() when unknown.
  std::size_t mode_index(const std::string& name) const noexcept;

  soleil::Application& app_;
  Options options_;
  std::vector<const model::ModeDecl*> modes_;
  const model::ModeDecl* degraded_ = nullptr;

  std::atomic<std::size_t> current_{0};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> pending_{false};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // Guarded by mutex_: pending request, barrier bookkeeping, records.
  std::size_t pending_target_ = 0;
  std::string pending_trigger_;
  rtsj::AbsoluteTime requested_at_{};
  std::size_t workers_ = 0;   ///< 0 = no launcher running.
  std::size_t arrived_ = 0;
  std::size_t retired_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<TransitionRecord> records_;
  /// Current settings of every mode-managed component. Written only at
  /// quiescence points; the epoch release-store publishes it.
  std::map<std::string, ComponentSetting> settings_;
};

}  // namespace rtcf::reconfig
