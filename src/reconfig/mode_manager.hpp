// Safe dynamic reconfiguration: operational modes and quiescence-based
// component hot-swap.
//
// The paper's membranes carry lifecycle and binding controllers precisely
// so assemblies can be re-wired at runtime (§4.2); this subsystem drives
// them. An architecture declares operational modes (<Mode> in the ADL):
// per-mode component sets, release rates, timing contracts, and port
// redirections. The ModeManager transitions a running assembly between
// modes with a bounded, measured latency and without losing a message:
//
//   1. quiescence — every executive worker parks at its next dispatch
//      boundary (a release or activation in progress always runs to
//      completion first), so no new release can start;
//   2. drain     — in-flight messages ride the existing MessageBuffer /
//      SPSC paths to their consumers while all lifecycles are still
//      started and all bindings still point at the old targets;
//   3. stop      — components leaving the mode are stopped through their
//      membrane lifecycle controllers;
//   4. rebind    — the old mode's redirections are restored to the
//      architecture-declared servers and the new mode's redirections are
//      applied through the binding controllers (RTSJ-checked, §4.2);
//   5. re-arm    — per-mode timing contracts replace the old checkers with
//      fresh windows, and the overload governor is reset (the demotion
//      answered the overload — start clean in the new mode);
//   6. restart   — components entering the mode are started, the per-
//      component release settings (enabled, period) are republished under
//      a new plan epoch, and the workers resume: each one re-reads its own
//      partition's settings before its next dispatch, so no release is
//      lost or double-fired.
//
// The transition latency (request to resume) is therefore bounded by the
// longest release-to-completion time across the workers plus the drain;
// bench/mode_transition_latency.cpp measures it.
//
// The overload-governor hook: when sustained contract violation escalates
// the governor to `Options::demote_at` and the architecture declares a
// degraded mode, the next dispatch boundary transitions into it — the
// assembly changes shape under overload instead of only shedding work.
//
// Live ADL reload (request_reload): a freshly loaded <Architecture> is
// planned against the running AssemblyPlan snapshot by the plan-delta
// engine (plan_delta.hpp) and, when the delta validates, staged exactly
// like a mode transition: the same quiescence rendezvous, the same
// governor-reset + drain prologue, then Application::apply_plan_delta
// swaps real structure — components added and removed, sync and async
// ports re-targeted — and the launcher grows/shrinks its release plan
// through the structure hook before the workers resume. An empty delta
// short-circuits: nothing is staged, no epoch is published.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "monitor/governor.hpp"
#include "reconfig/plan_delta.hpp"
#include "rtsj/time/time.hpp"
#include "soleil/application.hpp"

namespace rtcf::reconfig {

/// Effective executive settings of one mode-managed component in the
/// current mode, read by the launcher when the plan epoch changes.
struct ComponentSetting {
  /// Enabled in the current mode (disabled components release nothing).
  bool enabled = true;
  /// Effective release rate (mode override or declared period).
  rtsj::RelativeTime period{};
};

/// Structural change applied by a live reload, delivered to the launcher's
/// structure hook at the quiescence point so the per-worker release plans
/// can grow and shrink before the workers resume.
struct StructureChange {
  /// Components the reload added.
  std::vector<std::string> added;
  /// Components the reload removed.
  std::vector<std::string> removed;
};

/// Drives one Application through its declared operational modes.
///
/// Construct after Application::start(): the initial mode (first declared,
/// or Options::initial_mode) is applied immediately — components absent
/// from it are stopped, its rebinds and contract overrides armed.
///
/// Threading: request_transition() may be called from any thread; the
/// transition is applied at the next quiescence point of the running
/// launcher (or inline when no launcher is running). poll()/retire()/
/// begin_run()/end_run() are the executive-side protocol and are called by
/// the Launcher, one poll per dispatch boundary.
class ModeManager {
 public:
  /// Manager behaviour knobs.
  struct Options {
    /// Starting mode; empty selects the first declared mode.
    std::string initial_mode;
    /// Demote into the architecture's degraded mode when the governor
    /// escalates to `demote_at` or beyond.
    bool governor_demotion = true;
    /// Governor level at (or above) which the demotion fires.
    monitor::GovernorLevel demote_at = monitor::GovernorLevel::Shed;
  };

  /// One applied transition, for diagnostics and the latency bench.
  struct TransitionRecord {
    /// Transition index (0-based, in application order).
    std::uint64_t seq = 0;
    /// Mode left by the transition.
    std::string from;
    /// Mode entered by the transition.
    std::string to;
    /// "request" for explicit transitions, "governor" for overload
    /// demotions.
    std::string trigger;
    /// Request to resume: quiescence wait + drain + swap.
    rtsj::RelativeTime latency{};
  };

  /// Manages `app` with default options.
  explicit ModeManager(soleil::Application& app);
  /// Manages `app` with explicit options.
  ModeManager(soleil::Application& app, Options options);

  /// Not copyable (owns the rendezvous state).
  ModeManager(const ModeManager&) = delete;
  /// Not assignable.
  ModeManager& operator=(const ModeManager&) = delete;

  /// Name of the mode currently in force (lock-free).
  const std::string& current_mode() const noexcept;
  /// Bumped on every applied transition; the launcher re-reads its
  /// entries' settings when the epoch it last saw differs.
  std::uint64_t plan_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Current effective setting of an active component (declared rate
  /// overlaid with the current mode's overrides); nullptr for components
  /// the manager does not know (removed by a reload, or passive).
  const ComponentSetting* setting(const std::string& component) const;

  /// Requests a transition. Returns false when the mode is unknown, is
  /// already current, or another transition is still pending.
  bool request_transition(const std::string& mode,
                          const char* trigger = "request");

  /// Requests a live reload: `target` is diffed against the running
  /// snapshot (plan_reload: full target validation, placement, DELTA-*
  /// rules) and the synthesized delta is applied at the next quiescence
  /// point. Returns false — staging nothing — when the plan does not
  /// validate, the delta is empty (no-op reload short-circuits), another
  /// transition is pending, or the generation mode cannot reload
  /// structurally; `report` (optional) receives the full diagnostics
  /// either way. The target architecture is captured by value and may be
  /// discarded immediately after the call.
  bool request_reload(const model::Architecture& target,
                      validate::Report* report = nullptr);

  /// Messages moved by the apply-time drain audit of the last reload
  /// (0 when the quiescence pump had already emptied every buffer —
  /// either way, nothing is lost).
  std::uint64_t last_drain_audit() const noexcept {
    return drain_audit_.load(std::memory_order_acquire);
  }

  // ---- two-phase protocol (distributed transitions, src/dist) ------------
  // A prepared transition splits the ordinary request in half: the
  // PREPARE half stages the transition and *holds* the executive at the
  // quiescence rendezvous (every worker parked, nothing applied, nothing
  // published); the decision half either applies it (commit — the swap
  // runs on the decision caller's thread while the workers stay parked)
  // or releases the workers with the old plan and epoch fully intact
  // (abort). This is what lets a coordinator make one logical transition
  // atomic across nodes: every node quiesces first, and only a unanimous
  // PREPARE vote commits anywhere.

  /// Stages `mode` as a prepared transition. Unlike request_transition,
  /// the current mode is accepted (a cluster transition may be a no-op on
  /// this node — it still parks for the global rendezvous). Returns false
  /// when the mode is unknown or another transition is pending.
  bool prepare_transition(const std::string& mode,
                          const char* trigger = "prepare");

  /// Stages an externally planned reload (the distributed path: the slice
  /// and delta arrived over the wire and were validated with
  /// check_delta_rules). An empty delta is accepted — the node still
  /// parks, so the cluster-wide commit stays atomic. Returns false (with
  /// diagnostics in `report` when given) when the plan's report has
  /// errors, the generation mode cannot reload structurally, the target
  /// drops the running mode, or another transition is pending.
  bool prepare_reload(ReloadPlan plan, validate::Report* report = nullptr);

  /// Blocks until the prepared transition reached quiescence (every
  /// executive worker parked; immediately true with no launcher running)
  /// or `timeout` elapsed. Returns false on timeout or when nothing is
  /// prepared (e.g. an abort raced ahead).
  bool wait_prepared(rtsj::RelativeTime timeout);

  /// True while a prepared transition is staged and quiescent, awaiting
  /// commit_prepared() or abort_prepared().
  bool prepared() const;

  /// Applies the prepared transition on the caller's thread (the workers
  /// are parked; quiescence is the caller's proof). Returns false when
  /// nothing is prepared or quiescence was not reached.
  bool commit_prepared();

  /// Releases a prepared transition without applying anything: the staged
  /// plan is dropped, no epoch is published, and the parked workers
  /// resume on the old plan. Returns false when nothing is prepared.
  bool abort_prepared();

  /// Installs the launcher's release-plan growth/shrink hook, invoked at
  /// the quiescence point of every applied reload (single-threaded, all
  /// workers parked). Pass nullptr to clear.
  void set_structure_hook(std::function<void(const StructureChange&)> hook);

  /// Executive protocol. begin_run declares the worker count; every worker
  /// calls poll() at each dispatch boundary (parking there while a
  /// transition is pending — the quiescence point) and retire() when it
  /// exits; end_run applies any still-pending transition single-threaded.
  void begin_run(std::size_t workers);
  /// One worker's dispatch-boundary poll (parks while a transition is
  /// pending — the quiescence point).
  void poll(std::size_t worker);
  /// Declares one worker gone for good (it will poll no more).
  void retire();
  /// Ends the launcher run; a still-pending transition applies inline.
  void end_run();

  /// Every applied transition so far, in order.
  std::vector<TransitionRecord> transitions() const;
  /// The most recent applied transition (a default record when none has
  /// applied yet) — O(1), unlike copying the whole history.
  TransitionRecord last_transition() const;
  /// The declared degraded mode, or nullptr.
  const model::ModeDecl* degraded_mode() const noexcept {
    return degraded_;
  }

 private:
  enum class PendingKind { Mode, Reload };

  void maybe_demote();
  /// Shared tail of prepare_transition/prepare_reload; caller holds
  /// mutex_ and has filled the pending_* fields.
  void stage_two_phase_locked();
  /// Applies the pending transition and releases the rendezvous (barrier
  /// counters, pending flag, generation, waiters) on every exit path —
  /// including a throwing swap, so parked workers are never stranded.
  /// Caller holds mutex_ and guarantees quiescence (all workers parked,
  /// or no launcher running).
  void execute_pending_locked();
  void apply_transition_locked();
  void apply_reload_locked();
  /// Mode-entry state shared by the constructor and transitions: settings
  /// table, lifecycle stops/starts, rebinds, contract re-arms.
  void enter_mode_locked(const model::ModeDecl* from,
                         const model::ModeDecl& to);
  /// Rebuilds the settings table for `mode` over the current assembly
  /// snapshot (every active component, not only mode-managed ones — a
  /// reload may change declared rates of unmanaged components too).
  void publish_settings_locked(const model::ModeDecl& mode);
  /// Adopts the current assembly snapshot's mode declarations: a fresh
  /// owned copy is appended to mode_generations_ (earlier generations are
  /// never freed, so lock-free readers of current_decl_ can never
  /// dangle), modes_/degraded_/current_ re-point into it.
  void bind_modes_locked(const std::string& current_name);
  /// Index of a declared mode, or modes_.size() when unknown.
  std::size_t mode_index(const std::string& name) const noexcept;

  soleil::Application& app_;
  Options options_;
  /// Owned mode declarations, one vector per adopted assembly snapshot.
  /// Reloads append; nothing is ever destroyed (transitions are rare, so
  /// retired generations are a bounded reload-time cost, like retired
  /// contract monitors) — current_mode() stays lock-free and safe even
  /// while a reload replaces the application's snapshot.
  std::deque<std::vector<model::ModeDecl>> mode_generations_;
  std::vector<const model::ModeDecl*> modes_;
  const model::ModeDecl* degraded_ = nullptr;

  std::atomic<std::size_t> current_{0};
  /// The current mode declaration, for lock-free readers (current_mode,
  /// the demotion check). Always points into mode_generations_.
  std::atomic<const model::ModeDecl*> current_decl_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> pending_{false};
  std::atomic<std::uint64_t> drain_audit_{0};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // Guarded by mutex_: pending request, barrier bookkeeping, records.
  PendingKind pending_kind_ = PendingKind::Mode;
  std::size_t pending_target_ = 0;
  ReloadPlan pending_reload_;
  std::string pending_trigger_;
  std::function<void(const StructureChange&)> structure_hook_;
  rtsj::AbsoluteTime requested_at_{};
  std::size_t workers_ = 0;   ///< 0 = no launcher running.
  std::size_t arrived_ = 0;
  std::size_t retired_ = 0;
  std::uint64_t generation_ = 0;
  /// Two-phase state (guarded by mutex_): the pending transition holds at
  /// the rendezvous instead of applying, until commit/abort.
  bool two_phase_ = false;
  /// All workers parked (or no launcher running): the PREPARE vote may be
  /// cast.
  bool quiescent_ = false;
  std::vector<TransitionRecord> records_;
  /// Current settings of every active component (declared rate overlaid
  /// with the current mode's overrides). Written only at quiescence
  /// points; the epoch release-store publishes it.
  std::map<std::string, ComponentSetting> settings_;
};

}  // namespace rtcf::reconfig
