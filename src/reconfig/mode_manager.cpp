#include "reconfig/mode_manager.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace rtcf::reconfig {

using model::AssemblyPlan;
using model::ComponentSpec;
using model::ModeDecl;
using model::Protocol;

namespace {

/// Reload preconditions shared by the local (request_reload) and
/// distributed (prepare_reload) paths: the generation mode must support
/// structural deltas when one is needed, and the running mode must
/// survive in the target.
void check_reload_preconditions(const soleil::Application& app,
                                bool structural_needed,
                                const std::string& mode_name,
                                const model::AssemblyPlan& target,
                                validate::Report& report) {
  if (structural_needed && !app.supports_structural_reload()) {
    report.add(validate::Severity::Error, "RELOAD-STATIC", app.mode_name(),
               "generation mode cannot apply structural plan deltas "
               "(only SOLEIL reifies the controllers a live reload "
               "needs)");
  }
  if (target.modes().empty()) {
    report.add(validate::Severity::Error, "DELTA-MODE-CURRENT", "-",
               "target declares no modes");
  } else if (target.find_mode(mode_name) == nullptr) {
    report.add(validate::Severity::Error, "DELTA-MODE-CURRENT", mode_name,
               "target no longer declares the running mode");
  }
}

}  // namespace

ModeManager::ModeManager(soleil::Application& app)
    : ModeManager(app, Options()) {}

ModeManager::ModeManager(soleil::Application& app, Options options)
    : app_(app), options_(std::move(options)) {
  const AssemblyPlan& assembly = app.assembly();
  RTCF_REQUIRE(!assembly.modes().empty(),
               "ModeManager needs an architecture with <Mode> declarations");

  // Rate-only mode sets work on any generation mode; quiescing components
  // or redirecting ports needs the per-component lifecycle and binding
  // hooks that ULTRA_MERGE compiles away.
  bool needs_reconfiguration = false;
  for (const ModeDecl& mode : assembly.modes()) {
    if (!mode.rebinds.empty()) needs_reconfiguration = true;
  }
  for (const ComponentSpec& spec : assembly.components()) {
    if (!spec.is_active() || !assembly.mode_managed(spec.name)) continue;
    for (const ModeDecl& mode : assembly.modes()) {
      if (mode.find(spec.name) == nullptr) needs_reconfiguration = true;
    }
  }
  RTCF_REQUIRE(!needs_reconfiguration || app.supports_reconfiguration(),
               "mode set quiesces components or rebinds ports, which needs "
               "a generation mode with runtime reconfiguration (SOLEIL or "
               "MERGE_ALL)");

  const std::lock_guard<std::mutex> lock(mutex_);
  bind_modes_locked(options_.initial_mode.empty()
                        ? assembly.modes().front().name
                        : options_.initial_mode);
  enter_mode_locked(nullptr,
                    *modes_[current_.load(std::memory_order_relaxed)]);
}

void ModeManager::bind_modes_locked(const std::string& current_name) {
  // Own a copy: the application's snapshot is replaced wholesale by every
  // reload, and lock-free readers must never chase pointers into a
  // destroyed one.
  mode_generations_.push_back(app_.assembly().modes());
  const std::vector<ModeDecl>& generation = mode_generations_.back();
  modes_.clear();
  degraded_ = nullptr;
  for (const ModeDecl& mode : generation) {
    modes_.push_back(&mode);
    if (mode.degraded && degraded_ == nullptr) degraded_ = &mode;
  }
  const std::size_t idx = mode_index(current_name);
  RTCF_REQUIRE(idx != modes_.size(),
               "unknown mode '" + current_name + "'");
  current_.store(idx, std::memory_order_relaxed);
  current_decl_.store(modes_[idx], std::memory_order_release);
}

const std::string& ModeManager::current_mode() const noexcept {
  return current_decl_.load(std::memory_order_acquire)->name;
}

std::size_t ModeManager::mode_index(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i]->name == name) return i;
  }
  return modes_.size();  // not found
}

const ComponentSetting* ModeManager::setting(
    const std::string& component) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = settings_.find(component);
  return it == settings_.end() ? nullptr : &it->second;
}

std::vector<ModeManager::TransitionRecord> ModeManager::transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

ModeManager::TransitionRecord ModeManager::last_transition() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.empty() ? TransitionRecord{} : records_.back();
}

void ModeManager::set_structure_hook(
    std::function<void(const StructureChange&)> hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  structure_hook_ = std::move(hook);
}

bool ModeManager::request_transition(const std::string& mode,
                                     const char* trigger) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t idx = mode_index(mode);
  if (idx == modes_.size()) return false;
  if (idx == current_.load(std::memory_order_relaxed)) return false;
  if (pending_.load(std::memory_order_relaxed)) return false;
  pending_kind_ = PendingKind::Mode;
  pending_target_ = idx;
  pending_trigger_ = trigger;
  requested_at_ = rtsj::SteadyClock::instance().now();
  pending_.store(true, std::memory_order_release);
  if (workers_ == 0) {
    // No executive running: the caller's thread is the quiescence point.
    execute_pending_locked();
  }
  return true;
}

bool ModeManager::request_reload(const model::Architecture& target,
                                 validate::Report* report) {
  // Snapshot the running plan and epoch under the lock, then plan outside
  // it: validation and placement are heavyweight and touch neither the
  // pending state nor the running wiring. The epoch re-check below drops
  // the request if another transition applied meanwhile (stale diff).
  model::AssemblyPlan running;
  std::uint64_t planned_at = 0;
  std::string mode_name;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    running = app_.assembly();
    planned_at = epoch_.load(std::memory_order_relaxed);
    mode_name = modes_[current_.load(std::memory_order_relaxed)]->name;
  }
  ReloadPlan rp = plan_reload(running, target);
  check_reload_preconditions(app_, /*structural_needed=*/true, mode_name,
                             rp.target, rp.report);
  if (report != nullptr) *report = rp.report;
  if (!rp.report.ok()) return false;
  if (rp.delta.empty()) return false;  // no-op reload: nothing to stage

  const std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.load(std::memory_order_relaxed)) return false;
  if (epoch_.load(std::memory_order_relaxed) != planned_at) {
    // Another transition applied while we planned: the diff is stale.
    return false;
  }
  pending_kind_ = PendingKind::Reload;
  pending_reload_ = std::move(rp);
  pending_trigger_ = "reload";
  requested_at_ = rtsj::SteadyClock::instance().now();
  pending_.store(true, std::memory_order_release);
  if (workers_ == 0) {
    execute_pending_locked();
  }
  return true;
}

void ModeManager::stage_two_phase_locked() {
  two_phase_ = true;
  quiescent_ = workers_ == 0;  // no executive: trivially quiescent
  requested_at_ = rtsj::SteadyClock::instance().now();
  pending_.store(true, std::memory_order_release);
}

bool ModeManager::prepare_transition(const std::string& mode,
                                     const char* trigger) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t idx = mode_index(mode);
  if (idx == modes_.size()) return false;
  if (pending_.load(std::memory_order_relaxed)) return false;
  // Unlike request_transition, idx == current_ is accepted: a cluster
  // transition may be a local no-op, but the node still owes the global
  // rendezvous its quiescence.
  pending_kind_ = PendingKind::Mode;
  pending_target_ = idx;
  pending_trigger_ = trigger;
  stage_two_phase_locked();
  return true;
}

bool ModeManager::prepare_reload(ReloadPlan plan, validate::Report* report) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // An empty slice delta still parks for cluster atomicity, so the
    // structural-support requirement only applies when something moves.
    check_reload_preconditions(app_, !plan.delta.empty(),
                               modes_[current_.load(
                                   std::memory_order_relaxed)]->name,
                               plan.target, plan.report);
    if (report != nullptr) *report = plan.report;
    if (!plan.report.ok()) return false;
    if (pending_.load(std::memory_order_relaxed)) return false;
    // Empty deltas are staged anyway: the cluster-wide commit is atomic
    // only if every node — including untouched ones — parks and votes.
    pending_kind_ = PendingKind::Reload;
    pending_reload_ = std::move(plan);
    pending_trigger_ = "dist-reload";
    stage_two_phase_locked();
  }
  return true;
}

bool ModeManager::wait_prepared(rtsj::RelativeTime timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!pending_.load(std::memory_order_relaxed) || !two_phase_) return false;
  cv_.wait_for(lock, std::chrono::nanoseconds(timeout.nanos()), [&] {
    return quiescent_ || !pending_.load(std::memory_order_relaxed);
  });
  return two_phase_ && quiescent_ &&
         pending_.load(std::memory_order_relaxed);
}

bool ModeManager::prepared() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return two_phase_ && quiescent_ &&
         pending_.load(std::memory_order_relaxed);
}

bool ModeManager::commit_prepared() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.load(std::memory_order_relaxed) || !two_phase_ ||
      !quiescent_) {
    return false;
  }
  two_phase_ = false;
  quiescent_ = false;
  // The workers are parked (or none run); the caller's thread performs
  // the swap and the barrier release wakes them into the new plan.
  execute_pending_locked();
  return true;
}

bool ModeManager::abort_prepared() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.load(std::memory_order_relaxed) || !two_phase_) {
    return false;
  }
  // Drop the staged transition without touching the assembly: no epoch is
  // published, so resuming workers re-read nothing and the old release
  // plan stays in force.
  pending_reload_ = ReloadPlan{};
  two_phase_ = false;
  quiescent_ = false;
  arrived_ = 0;
  pending_.store(false, std::memory_order_release);
  ++generation_;
  cv_.notify_all();
  return true;
}

void ModeManager::begin_run(std::size_t workers) {
  const std::lock_guard<std::mutex> lock(mutex_);
  RTCF_REQUIRE(workers_ == 0, "one launcher run at a time per ModeManager");
  RTCF_REQUIRE(workers > 0, "at least one executive worker");
  workers_ = workers;
  arrived_ = 0;
  retired_ = 0;
  // A transition prepared while no launcher ran was trivially quiescent;
  // with workers starting, quiescence must be re-earned at the rendezvous
  // before any commit may apply.
  if (pending_.load(std::memory_order_relaxed) && two_phase_) {
    quiescent_ = false;
  }
}

void ModeManager::poll(std::size_t worker) {
  (void)worker;
  maybe_demote();
  if (!pending_.load(std::memory_order_acquire)) return;  // hot path out
  std::unique_lock<std::mutex> lock(mutex_);
  if (!pending_.load(std::memory_order_relaxed)) return;
  const std::uint64_t gen = generation_;
  ++arrived_;
  if (arrived_ + retired_ >= workers_) {
    if (two_phase_) {
      // Quiescence reached; the decision (commit/abort) comes from the
      // coordinator side, so the last worker parks like everyone else.
      quiescent_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return generation_ != gen; });
    } else {
      // Last worker in: everyone else is parked below — the assembly is
      // quiescent, so this thread performs the whole swap.
      execute_pending_locked();
    }
  } else {
    cv_.wait(lock, [&] { return generation_ != gen; });
  }
}

void ModeManager::retire() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++retired_;
  if (pending_.load(std::memory_order_relaxed) && workers_ != 0 &&
      arrived_ + retired_ >= workers_) {
    if (two_phase_) {
      // The workers still polling are all parked — quiescent; the
      // decision still belongs to the coordinator.
      quiescent_ = true;
      cv_.notify_all();
    } else {
      // The workers still polling are all parked; the retiring worker
      // completes the rendezvous so they are not stranded.
      execute_pending_locked();
    }
  }
}

void ModeManager::end_run() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.load(std::memory_order_relaxed)) {
    if (two_phase_) {
      // The run ended while a prepared transition awaited its decision:
      // the workers are joined, so the staged transition stays prepared
      // (trivially quiescent) and commit/abort applies inline later.
      quiescent_ = true;
      cv_.notify_all();
    } else {
      // Requested after the last dispatch boundary; the workers are
      // joined, so apply single-threaded.
      execute_pending_locked();
    }
  }
  workers_ = 0;
  arrived_ = 0;
  retired_ = 0;
}

void ModeManager::execute_pending_locked() {
  // Release the rendezvous on *every* exit path: if the swap throws (e.g.
  // a rebind the validator could not prove fails at runtime), the parked
  // workers must still wake and the pending flag must clear — the
  // exception then propagates out of the executing worker's launcher run
  // instead of stranding the others on the condition variable.
  struct ReleaseBarrier {
    ModeManager* manager;
    ~ReleaseBarrier() {
      manager->arrived_ = 0;
      manager->pending_.store(false, std::memory_order_release);
      ++manager->generation_;
      manager->cv_.notify_all();
    }
  } release{this};
  if (pending_kind_ == PendingKind::Reload) {
    apply_reload_locked();
  } else {
    apply_transition_locked();
  }
}

void ModeManager::maybe_demote() {
  if (!options_.governor_demotion || degraded_ == nullptr) return;
  if (pending_.load(std::memory_order_acquire)) return;
  if (current_decl_.load(std::memory_order_acquire) == degraded_) return;
  if (static_cast<int>(app_.monitor().governor().level()) <
      static_cast<int>(options_.demote_at)) {
    return;
  }
  request_transition(degraded_->name, "governor");
}

void ModeManager::apply_transition_locked() {
  const std::size_t target = pending_target_;
  const ModeDecl* from = modes_[current_.load(std::memory_order_relaxed)];
  const ModeDecl& to = *modes_[target];

  // Answer the overload before draining: a Shed-level governor would drop
  // low-criticality activations during the drain, and the whole point of a
  // demotion is to change the assembly's shape *instead of* shedding.
  app_.monitor().governor().reset();

  // Drain while every lifecycle is still started and every binding still
  // points at its old target: in-flight messages ride the existing
  // MessageBuffer/SPSC paths to their consumers, so the transition itself
  // loses nothing.
  app_.pump();

  enter_mode_locked(from, to);
  current_.store(target, std::memory_order_relaxed);
  current_decl_.store(&to, std::memory_order_release);

  TransitionRecord record;
  record.seq = records_.size();
  record.from = from->name;
  record.to = to.name;
  record.trigger = pending_trigger_;
  record.latency = rtsj::SteadyClock::instance().now() - requested_at_;
  records_.push_back(std::move(record));
}

void ModeManager::apply_reload_locked() {
  ReloadPlan rp = std::move(pending_reload_);
  pending_reload_ = ReloadPlan{};
  const std::string mode_name = current_mode();

  // The same prologue as a mode transition: answer the overload, then
  // drain with every lifecycle still started and every binding still
  // pointing at its old target — in-flight messages reach their consumers
  // before any structure moves.
  app_.monitor().governor().reset();
  app_.pump();

  // Structural swap: add/remove real components, re-target ports. The
  // apply-time drains inside (buffer re-targets, removals) are the audit
  // trail — normally zero, never lost.
  const std::uint64_t drained = app_.apply_plan_delta(rp.delta, rp.target);
  drain_audit_.store(drained, std::memory_order_release);

  // The assembly snapshot was replaced wholesale; re-point the mode
  // declarations and republish the settings of the (unchanged) current
  // mode over the new declared values.
  bind_modes_locked(mode_name);
  const ModeDecl& mode =
      *modes_[current_.load(std::memory_order_relaxed)];
  publish_settings_locked(mode);

  // Re-arm contracts whose bounds the reload changed (fresh windows, like
  // a mode entry); the mode's own overrides still win where declared.
  const AssemblyPlan& assembly = app_.assembly();
  for (const SettingDelta& setting : rp.delta.settings) {
    if (!setting.contract_changed) continue;
    monitor::RuntimeMonitor::Entry* entry =
        app_.monitor().find(setting.component);
    if (entry == nullptr) continue;
    const model::ModeComponentConfig* cfg = mode.find(setting.component);
    const ComponentSpec* spec = assembly.find(setting.component);
    const model::TimingContract* contract = nullptr;
    if (cfg != nullptr && cfg->contract) {
      contract = &*cfg->contract;
    } else if (spec != nullptr && spec->contract) {
      contract = &*spec->contract;
    }
    app_.monitor().rearm(*entry, contract);
  }

  // Release-plan growth/shrink: the launcher adds timelines for new
  // periodic components (anchor grid) and retires removed ones, all while
  // the workers are parked.
  if (structure_hook_) {
    StructureChange change;
    for (const ComponentSpec& spec : rp.delta.add_components) {
      change.added.push_back(spec.name);
    }
    for (const ComponentSpec& spec : rp.delta.remove_components) {
      change.removed.push_back(spec.name);
    }
    structure_hook_(change);
  }
  epoch_.fetch_add(1, std::memory_order_release);

  TransitionRecord record;
  record.seq = records_.size();
  record.from = mode_name;
  record.to = mode_name;
  record.trigger = pending_trigger_;
  record.latency = rtsj::SteadyClock::instance().now() - requested_at_;
  records_.push_back(std::move(record));
}

void ModeManager::publish_settings_locked(const ModeDecl& mode) {
  const AssemblyPlan& assembly = app_.assembly();
  settings_.clear();
  for (const ComponentSpec& spec : assembly.components()) {
    if (!spec.is_active()) continue;
    const bool managed = assembly.mode_managed(spec.name);
    const model::ModeComponentConfig* cfg = mode.find(spec.name);
    ComponentSetting setting;
    setting.enabled = managed ? cfg != nullptr : true;
    setting.period = (cfg != nullptr && !cfg->period.is_zero())
                         ? cfg->period
                         : spec.period;
    settings_[spec.name] = setting;
  }
}

void ModeManager::enter_mode_locked(const ModeDecl* from,
                                    const ModeDecl& to) {
  const AssemblyPlan& assembly = app_.assembly();

  // Stop the components leaving the mode (membrane lifecycle controllers;
  // idempotent, so the initial mode can stop absentees unconditionally).
  for (const ComponentSpec& spec : assembly.components()) {
    if (!spec.is_active() || !assembly.mode_managed(spec.name)) continue;
    if (to.find(spec.name) == nullptr) {
      app_.set_component_started(spec.name, false);
    }
  }

  // A mode rebind redirects the port with the *declared* binding's
  // protocol: synchronous ports re-route through the invocation chain,
  // asynchronous ports re-target their buffer through the AsyncSkeleton
  // (drain-before-swap) — the sync-only limitation is gone.
  const auto apply_rebind = [&](const std::string& client,
                                const std::string& port,
                                const std::string& server,
                                const char* what) {
    const model::BindingSpec* declared =
        assembly.binding_for({client, port});
    const bool async = declared != nullptr &&
                       declared->protocol == Protocol::Asynchronous;
    const auto report = async ? app_.rebind_async(client, port, server)
                              : app_.rebind_sync(client, port, server);
    RTCF_REQUIRE(report.ok(),
                 std::string(what) + " failed: " + report.to_string());
  };

  // Restore the old mode's redirections that the new mode does not carry:
  // the port goes back to the server the architecture declares for it.
  const auto same_rebind = [](const model::ModeRebind& a,
                              const model::ModeRebind& b) {
    return a.client == b.client && a.port == b.port;
  };
  if (from != nullptr) {
    for (const auto& old : from->rebinds) {
      bool carried = false;
      for (const auto& next : to.rebinds) {
        if (same_rebind(old, next)) carried = true;
      }
      if (carried) continue;
      const model::BindingSpec* declared =
          assembly.binding_for({old.client, old.port});
      if (declared != nullptr) {
        apply_rebind(old.client, old.port, declared->server.component,
                     "restoring declared binding");
      }
    }
  }
  // Apply the new mode's redirections (skipping those already in force).
  for (const auto& rebind : to.rebinds) {
    bool in_force = false;
    if (from != nullptr) {
      for (const auto& old : from->rebinds) {
        if (same_rebind(old, rebind) && old.server == rebind.server) {
          in_force = true;
        }
      }
    }
    if (in_force) continue;
    apply_rebind(rebind.client, rebind.port, rebind.server,
                 "mode rebind (validate the architecture)");
  }

  // Re-arm contracts with fresh windows for every component enabled in the
  // new mode (override or declared), and republish the release settings.
  for (const ComponentSpec& spec : assembly.components()) {
    if (!spec.is_active() || !assembly.mode_managed(spec.name)) continue;
    const model::ModeComponentConfig* cfg = to.find(spec.name);
    if (cfg == nullptr) continue;
    monitor::RuntimeMonitor::Entry* entry = app_.monitor().find(spec.name);
    if (entry == nullptr) continue;
    const model::TimingContract* contract = nullptr;
    if (cfg->contract) {
      contract = &*cfg->contract;
    } else if (spec.contract) {
      contract = &*spec.contract;
    }
    app_.monitor().rearm(*entry, contract);
  }
  publish_settings_locked(to);
  epoch_.fetch_add(1, std::memory_order_release);

  // Start the components entering the mode last: they wake into the new
  // wiring and the new contracts.
  for (const ComponentSpec& spec : assembly.components()) {
    if (!spec.is_active() || !assembly.mode_managed(spec.name)) continue;
    if (to.find(spec.name) != nullptr) {
      app_.set_component_started(spec.name, true);
    }
  }
}

}  // namespace rtcf::reconfig
