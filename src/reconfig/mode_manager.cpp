#include "reconfig/mode_manager.hpp"

#include "util/assert.hpp"

namespace rtcf::reconfig {

using model::ActiveComponent;
using model::ModeDecl;

ModeManager::ModeManager(soleil::Application& app)
    : ModeManager(app, Options()) {}

ModeManager::ModeManager(soleil::Application& app, Options options)
    : app_(app), options_(std::move(options)) {
  const model::Architecture& arch = *app.plan().arch;
  RTCF_REQUIRE(!arch.modes().empty(),
               "ModeManager needs an architecture with <Mode> declarations");
  for (const auto& mode : arch.modes()) modes_.push_back(&mode);
  degraded_ = arch.degraded_mode();

  // Rate-only mode sets work on any generation mode; quiescing components
  // or redirecting ports needs the per-component lifecycle and binding
  // hooks that ULTRA_MERGE compiles away.
  bool needs_reconfiguration = false;
  for (const ModeDecl* mode : modes_) {
    if (!mode->rebinds.empty()) needs_reconfiguration = true;
  }
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    if (!arch.mode_managed(active->name())) continue;
    for (const ModeDecl* mode : modes_) {
      if (mode->find(active->name()) == nullptr) {
        needs_reconfiguration = true;
      }
    }
  }
  RTCF_REQUIRE(!needs_reconfiguration || app.supports_reconfiguration(),
               "mode set quiesces components or rebinds ports, which needs "
               "a generation mode with runtime reconfiguration (SOLEIL or "
               "MERGE_ALL)");

  std::size_t initial = 0;
  if (!options_.initial_mode.empty()) {
    initial = mode_index(options_.initial_mode);
    RTCF_REQUIRE(initial != modes_.size(),
                 "unknown initial mode '" + options_.initial_mode + "'");
  }
  current_.store(initial, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  enter_mode_locked(nullptr, *modes_[initial]);
}

const std::string& ModeManager::current_mode() const noexcept {
  return modes_[current_.load(std::memory_order_acquire)]->name;
}

std::size_t ModeManager::mode_index(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i]->name == name) return i;
  }
  return modes_.size();  // not found
}

const ComponentSetting* ModeManager::setting(
    const std::string& component) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = settings_.find(component);
  return it == settings_.end() ? nullptr : &it->second;
}

std::vector<ModeManager::TransitionRecord> ModeManager::transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

bool ModeManager::request_transition(const std::string& mode,
                                     const char* trigger) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t idx = mode_index(mode);
  if (idx == modes_.size()) return false;
  if (idx == current_.load(std::memory_order_relaxed)) return false;
  if (pending_.load(std::memory_order_relaxed)) return false;
  pending_target_ = idx;
  pending_trigger_ = trigger;
  requested_at_ = rtsj::SteadyClock::instance().now();
  pending_.store(true, std::memory_order_release);
  if (workers_ == 0) {
    // No executive running: the caller's thread is the quiescence point.
    execute_pending_locked();
  }
  return true;
}

void ModeManager::begin_run(std::size_t workers) {
  const std::lock_guard<std::mutex> lock(mutex_);
  RTCF_REQUIRE(workers_ == 0, "one launcher run at a time per ModeManager");
  RTCF_REQUIRE(workers > 0, "at least one executive worker");
  workers_ = workers;
  arrived_ = 0;
  retired_ = 0;
}

void ModeManager::poll(std::size_t worker) {
  (void)worker;
  maybe_demote();
  if (!pending_.load(std::memory_order_acquire)) return;  // hot path out
  std::unique_lock<std::mutex> lock(mutex_);
  if (!pending_.load(std::memory_order_relaxed)) return;
  const std::uint64_t gen = generation_;
  ++arrived_;
  if (arrived_ + retired_ >= workers_) {
    // Last worker in: everyone else is parked below — the assembly is
    // quiescent, so this thread performs the whole swap.
    execute_pending_locked();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen; });
  }
}

void ModeManager::retire() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++retired_;
  if (pending_.load(std::memory_order_relaxed) && workers_ != 0 &&
      arrived_ + retired_ >= workers_) {
    // The workers still polling are all parked; the retiring worker
    // completes the rendezvous so they are not stranded.
    execute_pending_locked();
  }
}

void ModeManager::end_run() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.load(std::memory_order_relaxed)) {
    // Requested after the last dispatch boundary; the workers are joined,
    // so apply single-threaded.
    execute_pending_locked();
  }
  workers_ = 0;
  arrived_ = 0;
  retired_ = 0;
}

void ModeManager::execute_pending_locked() {
  // Release the rendezvous on *every* exit path: if the swap throws (e.g.
  // a rebind the validator could not prove fails at runtime), the parked
  // workers must still wake and the pending flag must clear — the
  // exception then propagates out of the executing worker's launcher run
  // instead of stranding the others on the condition variable.
  struct ReleaseBarrier {
    ModeManager* manager;
    ~ReleaseBarrier() {
      manager->arrived_ = 0;
      manager->pending_.store(false, std::memory_order_release);
      ++manager->generation_;
      manager->cv_.notify_all();
    }
  } release{this};
  apply_transition_locked();
}

void ModeManager::maybe_demote() {
  if (!options_.governor_demotion || degraded_ == nullptr) return;
  if (pending_.load(std::memory_order_acquire)) return;
  if (modes_[current_.load(std::memory_order_relaxed)] == degraded_) return;
  if (static_cast<int>(app_.monitor().governor().level()) <
      static_cast<int>(options_.demote_at)) {
    return;
  }
  request_transition(degraded_->name, "governor");
}

void ModeManager::apply_transition_locked() {
  const std::size_t target = pending_target_;
  const ModeDecl* from = modes_[current_.load(std::memory_order_relaxed)];
  const ModeDecl& to = *modes_[target];

  // Answer the overload before draining: a Shed-level governor would drop
  // low-criticality activations during the drain, and the whole point of a
  // demotion is to change the assembly's shape *instead of* shedding.
  app_.monitor().governor().reset();

  // Drain while every lifecycle is still started and every binding still
  // points at its old target: in-flight messages ride the existing
  // MessageBuffer/SPSC paths to their consumers, so the transition itself
  // loses nothing.
  app_.pump();

  enter_mode_locked(from, to);
  current_.store(target, std::memory_order_release);

  TransitionRecord record;
  record.seq = records_.size();
  record.from = from->name;
  record.to = to.name;
  record.trigger = pending_trigger_;
  record.latency = rtsj::SteadyClock::instance().now() - requested_at_;
  records_.push_back(std::move(record));
}

void ModeManager::enter_mode_locked(const ModeDecl* from,
                                    const ModeDecl& to) {
  const model::Architecture& arch = *app_.plan().arch;

  // Stop the components leaving the mode (membrane lifecycle controllers;
  // idempotent, so the initial mode can stop absentees unconditionally).
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    if (!arch.mode_managed(active->name())) continue;
    if (to.find(active->name()) == nullptr) {
      app_.set_component_started(active->name(), false);
    }
  }

  // Restore the old mode's redirections that the new mode does not carry:
  // the port goes back to the server the architecture declares for it.
  const auto same_rebind = [](const model::ModeRebind& a,
                              const model::ModeRebind& b) {
    return a.client == b.client && a.port == b.port;
  };
  if (from != nullptr) {
    for (const auto& old : from->rebinds) {
      bool carried = false;
      for (const auto& next : to.rebinds) {
        if (same_rebind(old, next)) carried = true;
      }
      if (carried) continue;
      for (const auto& pb : app_.plan().bindings) {
        if (pb.binding->client.component == old.client &&
            pb.binding->client.interface == old.port) {
          const auto report =
              app_.rebind_sync(old.client, old.port, pb.server->name());
          RTCF_REQUIRE(report.ok(),
                       "restoring declared binding failed: " +
                           report.to_string());
          break;
        }
      }
    }
  }
  // Apply the new mode's redirections (skipping those already in force).
  for (const auto& rebind : to.rebinds) {
    bool in_force = false;
    if (from != nullptr) {
      for (const auto& old : from->rebinds) {
        if (same_rebind(old, rebind) && old.server == rebind.server) {
          in_force = true;
        }
      }
    }
    if (in_force) continue;
    const auto report =
        app_.rebind_sync(rebind.client, rebind.port, rebind.server);
    RTCF_REQUIRE(report.ok(),
                 "mode rebind failed (validate the architecture): " +
                     report.to_string());
  }

  // Re-arm contracts with fresh windows for every component enabled in the
  // new mode (override or declared), and republish the release settings.
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    if (!arch.mode_managed(active->name())) continue;
    const model::ModeComponentConfig* cfg = to.find(active->name());
    ComponentSetting setting;
    setting.enabled = cfg != nullptr;
    setting.period = (cfg != nullptr && !cfg->period.is_zero())
                         ? cfg->period
                         : active->period();
    settings_[active->name()] = setting;
    if (cfg == nullptr) continue;
    monitor::RuntimeMonitor::Entry* entry =
        app_.monitor().find(active->name());
    if (entry == nullptr) continue;
    const soleil::PlannedComponent* pc =
        app_.plan().find_component(active->name());
    const model::TimingContract* contract =
        cfg->contract ? &*cfg->contract
                      : (pc != nullptr ? pc->contract : nullptr);
    app_.monitor().rearm(*entry, contract);
  }
  epoch_.fetch_add(1, std::memory_order_release);

  // Start the components entering the mode last: they wake into the new
  // wiring and the new contracts.
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    if (!arch.mode_managed(active->name())) continue;
    if (to.find(active->name()) != nullptr) {
      app_.set_component_started(active->name(), true);
    }
  }
}

}  // namespace rtcf::reconfig
