#include "validate/pattern_catalog.hpp"

#include "validate/validator.hpp"

namespace rtcf::validate {

using model::Protocol;

const std::vector<std::string>& known_patterns() {
  static const std::vector<std::string> patterns = {
      kPatternDirect,        kPatternScopeEnter, kPatternDeepCopy,
      kPatternImmortalForward, kPatternSharedScope, kPatternHandoff,
      kPatternWedgeThread,
  };
  return patterns;
}

bool is_known_pattern(const std::string& name) {
  for (const auto& p : known_patterns()) {
    if (p == name) return true;
  }
  return false;
}

bool pattern_applicable(const std::string& pattern, AreaRelation relation,
                        Protocol protocol) {
  if (pattern == kPatternDirect) {
    // Only legal when no lifetime boundary is crossed toward a
    // shorter-lived target.
    return relation == AreaRelation::Same ||
           relation == AreaRelation::ServerOuter;
  }
  if (pattern == kPatternScopeEnter) {
    // The client enters the server's scope for the duration of the call.
    return relation == AreaRelation::ServerInner &&
           protocol == Protocol::Synchronous;
  }
  if (pattern == kPatternWedgeThread) {
    // A wedge keeps the server scope alive between asynchronous releases.
    return relation == AreaRelation::ServerInner &&
           protocol == Protocol::Asynchronous;
  }
  if (pattern == kPatternDeepCopy) {
    // Copying the payload into the target area works for any relation.
    return true;
  }
  if (pattern == kPatternImmortalForward) {
    // Payload staged in immortal memory; universal but never reclaimed, so
    // only sensible for fixed-size recycled buffers.
    return true;
  }
  if (pattern == kPatternSharedScope) {
    // Both parties communicate through a common ancestor scope.
    return relation == AreaRelation::Disjoint ||
           relation == AreaRelation::Same;
  }
  if (pattern == kPatternHandoff) {
    // Producer-owned object handed to the consumer through a pinned
    // exchange slot; classic for disjoint producer/consumer scopes.
    return relation == AreaRelation::Disjoint;
  }
  return false;
}

std::string resolve_binding_pattern(const model::Architecture& arch,
                                    const model::Binding& binding) {
  if (!binding.desc.pattern.empty()) return binding.desc.pattern;
  const auto* client = arch.find(binding.client.component);
  const auto* server = arch.find(binding.server.component);
  if (client == nullptr || server == nullptr) return {};
  const auto* client_area = arch.memory_area_of(*client);
  const auto* server_area = arch.memory_area_of(*server);

  PatternQuery query;
  query.relation = relate_areas(arch, client_area, server_area);
  query.protocol = binding.desc.protocol;
  for (const auto* domain : executing_domains(arch, *client)) {
    if (domain->type() == model::DomainType::NoHeapRealtime) {
      query.client_no_heap = true;
    }
  }
  query.server_in_heap = server_area == nullptr ||
                         server_area->type() == model::AreaType::Heap;
  if (client_area != nullptr && server_area != nullptr &&
      query.relation == AreaRelation::Disjoint) {
    const auto* a = design_parent_scope(arch, *client_area);
    const auto* b = design_parent_scope(arch, *server_area);
    query.common_scope_ancestor = (a != nullptr && a == b);
  }
  return suggest_pattern(query);
}

std::string suggest_pattern(const PatternQuery& q) {
  switch (q.relation) {
    case AreaRelation::Same:
      return kPatternDirect;
    case AreaRelation::ServerOuter:
      if (q.server_in_heap && q.client_no_heap) {
        // An NHRT may never touch heap state synchronously; asynchronous
        // traffic can be staged in immortal memory and drained by a
        // heap-side thread.
        return q.protocol == Protocol::Asynchronous ? kPatternImmortalForward
                                                    : std::string{};
      }
      return kPatternDirect;
    case AreaRelation::ServerInner:
      return q.protocol == Protocol::Synchronous ? kPatternScopeEnter
                                                 : kPatternWedgeThread;
    case AreaRelation::Disjoint:
      if (q.protocol == Protocol::Asynchronous) return kPatternImmortalForward;
      return q.common_scope_ancestor ? kPatternSharedScope : kPatternDeepCopy;
  }
  return {};
}

}  // namespace rtcf::validate
