// Validation diagnostics: the "immediate feedback" of the Fig. 3 design
// flow. Violations are data, not exceptions — the designer inspects the
// report, fixes the architecture, and re-validates.
#pragma once

#include <string>
#include <vector>

namespace rtcf::validate {

enum class Severity { Info, Warning, Error };

const char* to_string(Severity s) noexcept;

/// One finding. `rule` is a stable identifier (e.g. "RT-DOMAIN-UNIQUE")
/// suitable for tests and suppression lists; `subject` names the component
/// or binding concerned.
struct Diagnostic {
  Severity severity{};
  std::string rule;
  std::string subject;
  std::string message;

  std::string to_string() const;
};

/// Ordered collection of diagnostics for one validation run.
class Report {
 public:
  void add(Severity severity, std::string rule, std::string subject,
           std::string message);

  bool ok() const noexcept { return error_count_ == 0; }
  std::size_t error_count() const noexcept { return error_count_; }
  std::size_t warning_count() const noexcept { return warning_count_; }
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

  /// All diagnostics carrying `rule`.
  std::vector<Diagnostic> by_rule(const std::string& rule) const;
  bool has_rule(const std::string& rule) const;

  std::string to_string() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

}  // namespace rtcf::validate
