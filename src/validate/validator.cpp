#include "validate/validator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "rtsj/threads/params.hpp"
#include "sim/rta.hpp"
#include "validate/area_relation.hpp"
#include "validate/pattern_catalog.hpp"

namespace rtcf::validate {

using model::ActivationKind;
using model::ActiveComponent;
using model::Architecture;
using model::AreaType;
using model::Binding;
using model::Component;
using model::ComponentKind;
using model::DomainType;
using model::InterfaceDecl;
using model::InterfaceRole;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::Protocol;
using model::ThreadDomain;

namespace {

std::string binding_label(const Binding& b) {
  return b.client.component + "." + b.client.interface + " -> " +
         b.server.component + "." + b.server.interface;
}

/// True when any component reachable downward from `root` satisfies `pred`.
template <typename Pred>
bool any_in_subtree(const Component& root, Pred pred) {
  if (pred(root)) return true;
  for (const Component* sub : root.subs()) {
    if (any_in_subtree(*sub, pred)) return true;
  }
  return false;
}

void check_timing_contract(const ActiveComponent& active, Report& report);

void check_active_components(const Architecture& arch, Report& report) {
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    const auto domains = arch.thread_domains_of(*active);
    if (domains.empty()) {
      report.add(Severity::Error, "AC-DOMAIN-UNIQUE", active->name(),
                 "active component is not deployed in any ThreadDomain");
    } else if (domains.size() > 1) {
      std::ostringstream os;
      os << "active component is deployed in " << domains.size()
         << " ThreadDomains (";
      for (std::size_t i = 0; i < domains.size(); ++i) {
        if (i) os << ", ";
        os << domains[i]->name();
      }
      os << "); exactly one is required";
      report.add(Severity::Error, "AC-DOMAIN-UNIQUE", active->name(),
                 os.str());
    }
    if (active->activation() == ActivationKind::Periodic &&
        active->period() <= rtsj::RelativeTime::zero()) {
      report.add(Severity::Error, "AC-PERIOD-POSITIVE", active->name(),
                 "periodic active component needs a positive period");
    }
    if (active->activation() == ActivationKind::Sporadic) {
      const bool triggered = std::any_of(
          arch.bindings().begin(), arch.bindings().end(),
          [&](const Binding& b) {
            return b.server.component == active->name() &&
                   b.desc.protocol == Protocol::Asynchronous;
          });
      if (!triggered) {
        report.add(Severity::Warning, "AC-SPORADIC-TRIGGER", active->name(),
                   "sporadic active component has no incoming asynchronous "
                   "binding to trigger its releases");
      }
    }
    if (active->content_class().empty()) {
      report.add(Severity::Warning, "AC-CONTENT-CLASS", active->name(),
                 "no content class named; the generator cannot attach "
                 "functional logic");
    }
    check_timing_contract(*active, report);
  }
}

/// A stochastic timing contract is only meaningful on a component with a
/// deadline (the implicit deadline comes from the period / minimum
/// interarrival time) and a declared criticality — the overload governor
/// cannot act on a violation without knowing what it may degrade.
void check_timing_contract(const ActiveComponent& active, Report& report) {
  if (!active.timing_contract()) return;
  const model::TimingContract& tc = *active.timing_contract();
  if (active.period() <= rtsj::RelativeTime::zero()) {
    report.add(Severity::Error, "AC-CONTRACT-COMPLETE", active.name(),
               "timing contract on a component without a period / minimum "
               "interarrival time: no deadline exists for the miss-ratio "
               "bound to be checked against");
  }
  if (!active.criticality()) {
    report.add(Severity::Error, "AC-CONTRACT-COMPLETE", active.name(),
               "timing contract without a declared criticality; the "
               "overload governor needs to know whether this component may "
               "be shed");
  }
  // Negated range predicates so NaN bounds (all comparisons false) are
  // reported instead of slipping through as "configured".
  if (!(tc.miss_ratio_bound >= 0.0 && tc.miss_ratio_bound <= 1.0)) {
    std::ostringstream os;
    os << "miss-ratio bound " << tc.miss_ratio_bound
       << " outside [0, 1]";
    report.add(Severity::Error, "AC-CONTRACT-BOUNDS", active.name(),
               os.str());
  }
  if (tc.wcet_budget.is_negative()) {
    report.add(Severity::Error, "AC-CONTRACT-BOUNDS", active.name(),
               "negative WCET budget");
  }
  if (!std::isfinite(tc.max_arrival_rate_hz) ||
      tc.max_arrival_rate_hz < 0.0) {
    report.add(Severity::Error, "AC-CONTRACT-BOUNDS", active.name(),
               "arrival-rate bound must be a non-negative finite number");
  }
  if (tc.window == 0) {
    report.add(Severity::Error, "AC-CONTRACT-BOUNDS", active.name(),
               "observation window must be at least one release");
  }
}

void check_thread_domains(const Architecture& arch, Report& report) {
  for (const auto* domain : arch.all_of<ThreadDomain>()) {
    // ThreadDomains must not nest, in either direction.
    for (const Component* sub : domain->subs()) {
      if (sub->kind() == ComponentKind::ThreadDomain) {
        report.add(Severity::Error, "TD-NO-NESTING", domain->name(),
                   "ThreadDomain contains ThreadDomain '" + sub->name() +
                       "'; domains must not nest");
      } else if (sub->kind() != ComponentKind::Active) {
        report.add(Severity::Error, "TD-ACTIVE-ONLY", domain->name(),
                   "ThreadDomain contains non-active component '" +
                       sub->name() +
                       "'; domains group active components only");
      }
    }
    // Priority bands per thread type.
    const bool rt = domain->type() != DomainType::Regular;
    const int lo = rt ? rtsj::kMinRtPriority : rtsj::kMinRegularPriority;
    const int hi = rt ? rtsj::kMaxRtPriority : rtsj::kMaxRegularPriority;
    if (domain->priority() < lo || domain->priority() > hi) {
      std::ostringstream os;
      os << model::to_string(domain->type()) << " domain priority "
         << domain->priority() << " outside band [" << lo << ", " << hi
         << "]";
      report.add(Severity::Error, "TD-PRIORITY-RANGE", domain->name(),
                 os.str());
    }
    // NHRT domains must not encapsulate heap areas (§3.1) nor be placed in
    // heap memory.
    if (domain->type() == DomainType::NoHeapRealtime) {
      const bool heap_below = any_in_subtree(
          *domain, [&](const Component& c) {
            const auto* area = dynamic_cast<const MemoryAreaComponent*>(&c);
            return area != nullptr && area->type() == AreaType::Heap;
          });
      if (heap_below) {
        report.add(Severity::Error, "TD-NHRT-NO-HEAP", domain->name(),
                   "NHRT ThreadDomain encapsulates a heap MemoryArea");
      }
      for (const Component* sub : domain->subs()) {
        const auto* area = arch.memory_area_of(*sub);
        if (area != nullptr && area->type() == AreaType::Heap) {
          report.add(Severity::Error, "TD-NHRT-NO-HEAP", domain->name(),
                     "component '" + sub->name() +
                         "' runs on an NHRT but is allocated in heap "
                         "MemoryArea '" +
                         area->name() + "'");
        }
      }
    }
  }
}

void check_non_functional_interfaces(const Architecture& arch,
                                     Report& report) {
  for (const auto& owned : arch.components()) {
    if (owned->is_functional()) continue;
    if (!owned->interfaces().empty()) {
      report.add(Severity::Error, "NF-NO-INTERFACES", owned->name(),
                 "non-functional composites are exclusively composite and "
                 "declare no functional interfaces");
    }
  }
}

void check_memory_areas(const Architecture& arch, Report& report) {
  for (const auto* area : arch.all_of<MemoryAreaComponent>()) {
    if (area->type() == AreaType::Scoped) {
      if (area->size_bytes() == 0) {
        report.add(Severity::Error, "MA-SCOPED-SIZE", area->name(),
                   "scoped MemoryArea must declare a positive size");
      }
      const auto enclosing = arch.memory_areas_of(*area);
      if (enclosing.size() > 1) {
        std::ostringstream os;
        os << "scoped MemoryArea nested in " << enclosing.size()
           << " areas; the single parent rule requires at most one";
        report.add(Severity::Error, "MA-SCOPED-SINGLE-PARENT", area->name(),
                   os.str());
      }
    }
  }
  for (const auto& owned : arch.components()) {
    if (!owned->is_functional()) continue;
    if (arch.memory_area_of(*owned) == nullptr) {
      report.add(Severity::Warning, "MA-DEPLOYED", owned->name(),
                 "functional component has no memory assignment; defaulting "
                 "to heap");
    }
  }
}

struct ResolvedBinding {
  const Component* client = nullptr;
  const Component* server = nullptr;
  const InterfaceDecl* client_if = nullptr;
  const InterfaceDecl* server_if = nullptr;
};

ResolvedBinding resolve(const Architecture& arch, const Binding& b,
                        Report& report) {
  ResolvedBinding r;
  r.client = arch.find(b.client.component);
  r.server = arch.find(b.server.component);
  const std::string label = binding_label(b);
  if (r.client == nullptr) {
    report.add(Severity::Error, "BIND-ENDPOINTS", label,
               "client component '" + b.client.component + "' not found");
  }
  if (r.server == nullptr) {
    report.add(Severity::Error, "BIND-ENDPOINTS", label,
               "server component '" + b.server.component + "' not found");
  }
  if (r.client != nullptr) {
    r.client_if = r.client->find_interface(b.client.interface);
    if (r.client_if == nullptr) {
      report.add(Severity::Error, "BIND-ENDPOINTS", label,
                 "client interface '" + b.client.interface +
                     "' not declared on '" + b.client.component + "'");
    } else if (r.client_if->role != InterfaceRole::Client) {
      report.add(Severity::Error, "BIND-ENDPOINTS", label,
                 "interface '" + b.client.interface +
                     "' is not a client interface");
    }
  }
  if (r.server != nullptr) {
    r.server_if = r.server->find_interface(b.server.interface);
    if (r.server_if == nullptr) {
      report.add(Severity::Error, "BIND-ENDPOINTS", label,
                 "server interface '" + b.server.interface +
                     "' not declared on '" + b.server.component + "'");
    } else if (r.server_if->role != InterfaceRole::Server) {
      report.add(Severity::Error, "BIND-ENDPOINTS", label,
                 "interface '" + b.server.interface +
                     "' is not a server interface");
    }
  }
  if (r.client_if != nullptr && r.server_if != nullptr &&
      r.client_if->signature != r.server_if->signature) {
    report.add(Severity::Error, "BIND-ENDPOINTS", label,
               "signature mismatch: client requires '" +
                   r.client_if->signature + "', server provides '" +
                   r.server_if->signature + "'");
  }
  return r;
}

void check_bindings(const Architecture& arch, Report& report) {
  for (const Binding& b : arch.bindings()) {
    const std::string label = binding_label(b);
    const ResolvedBinding r = resolve(arch, b, report);
    if (r.client == nullptr || r.server == nullptr) continue;

    if (b.desc.protocol == Protocol::Asynchronous && b.desc.buffer_size == 0) {
      report.add(Severity::Error, "BIND-ASYNC-BUFFER", label,
                 "asynchronous binding needs a positive bufferSize");
    }

    const auto* client_area = arch.memory_area_of(*r.client);
    const auto* server_area = arch.memory_area_of(*r.server);
    const AreaRelation relation =
        relate_areas(arch, client_area, server_area);

    // Does any NHRT execute the client side?
    bool client_no_heap = false;
    for (const auto* domain : executing_domains(arch, *r.client)) {
      if (domain->type() == DomainType::NoHeapRealtime) client_no_heap = true;
    }
    const bool server_in_heap =
        server_area == nullptr || server_area->type() == AreaType::Heap;

    if (client_no_heap && server_in_heap &&
        b.desc.protocol == Protocol::Synchronous) {
      report.add(Severity::Error, "BIND-NHRT-HEAP-SYNC", label,
                 "synchronous call from an NHRT client into heap-allocated "
                 "server state would raise MemoryAccessError; use an "
                 "asynchronous binding staged outside the heap");
    }

    PatternQuery query;
    query.relation = relation;
    query.protocol = b.desc.protocol;
    query.client_no_heap = client_no_heap;
    query.server_in_heap = server_in_heap;
    query.common_scope_ancestor = false;
    if (client_area != nullptr && server_area != nullptr &&
        relation == AreaRelation::Disjoint) {
      // A shared outer scope enables the shared-scope pattern.
      const auto* a = design_parent_scope(arch, *client_area);
      const auto* bscope = design_parent_scope(arch, *server_area);
      query.common_scope_ancestor = (a != nullptr && a == bscope);
    }

    if (!b.desc.pattern.empty()) {
      if (!is_known_pattern(b.desc.pattern)) {
        report.add(Severity::Error, "BIND-PATTERN-KNOWN", label,
                   "unknown communication pattern '" + b.desc.pattern + "'");
      } else if (!pattern_applicable(b.desc.pattern, relation,
                                     b.desc.protocol)) {
        report.add(Severity::Error, "BIND-PATTERN-KNOWN", label,
                   "pattern '" + b.desc.pattern +
                       "' is not applicable to a " +
                       std::string(to_string(relation)) + " " +
                       model::to_string(b.desc.protocol) + " binding");
      }
    } else if (relation != AreaRelation::Same) {
      const std::string suggested = suggest_pattern(query);
      if (!suggested.empty()) {
        report.add(Severity::Info, "BIND-PATTERN-SUGGEST", label,
                   "crosses memory areas (" +
                       std::string(to_string(relation)) +
                       "); the framework will apply pattern '" + suggested +
                       "'");
      }
    }
  }
}

// ---- operational modes ----------------------------------------------------

/// Effective per-mode configuration of one managed component, for the
/// cross-mode difference check.
struct EffectiveModeConfig {
  bool present = false;
  rtsj::RelativeTime period{};
  std::optional<model::TimingContract> contract;
};

bool same_contract(const std::optional<model::TimingContract>& a,
                   const std::optional<model::TimingContract>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->wcet_budget == b->wcet_budget &&
         a->miss_ratio_bound == b->miss_ratio_bound &&
         a->max_arrival_rate_hz == b->max_arrival_rate_hz &&
         a->window == b->window;
}

EffectiveModeConfig effective_config(const model::ModeDecl& mode,
                                     const ActiveComponent& active) {
  EffectiveModeConfig out;
  const model::ModeComponentConfig* cfg = mode.find(active.name());
  if (cfg == nullptr) return out;
  out.present = true;
  out.period = cfg->period.is_zero() ? active.period() : cfg->period;
  out.contract =
      cfg->contract ? cfg->contract : active.timing_contract();
  return out;
}

/// Response-time analysis of one mode's enabled task set: managed
/// components absent from the mode contribute no load; rate overrides
/// replace the declared period. Mirrors sim::tasks_from_architecture's
/// extraction otherwise (unconstrained sporadics and cost-free components
/// are skipped — their interference is not analysable).
void check_mode_schedulable(const Architecture& arch,
                            const model::ModeDecl& mode, Report& report) {
  std::vector<sim::RtaTask> tasks;
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    if (arch.mode_managed(active->name()) &&
        mode.find(active->name()) == nullptr) {
      continue;  // quiesced in this mode
    }
    const auto* domain = arch.thread_domain_of(*active);
    if (domain == nullptr) continue;
    const EffectiveModeConfig cfg = effective_config(mode, *active);
    const rtsj::RelativeTime period =
        cfg.present ? cfg.period : active->period();
    if (period <= rtsj::RelativeTime::zero()) continue;
    if (active->cost() <= rtsj::RelativeTime::zero()) continue;
    sim::RtaTask task;
    task.name = active->name();
    task.priority = domain->priority();
    task.period = period;
    task.cost = active->cost();
    tasks.push_back(std::move(task));
  }
  const sim::RtaResult result = sim::analyze(tasks);
  if (result.all_schedulable) return;
  for (const auto& entry : result.entries) {
    if (entry.schedulable) continue;
    std::ostringstream os;
    os << "task set of mode '" << mode.name
       << "' is not schedulable: response-time analysis finds no bound "
          "within the deadline for '"
       << entry.task.name << "' (period "
       << entry.task.period.to_micros() << "us, cost "
       << entry.task.cost.to_micros() << "us)";
    report.add(Severity::Error, "MODE-SCHEDULABLE", mode.name, os.str());
  }
}

void check_modes(const Architecture& arch, Report& report) {
  const auto& modes = arch.modes();
  if (modes.empty()) return;

  std::size_t degraded = 0;
  for (const auto& mode : modes) {
    if (mode.degraded && ++degraded > 1) {
      report.add(Severity::Error, "MODE-DEGRADED-UNIQUE", mode.name,
                 "more than one mode is flagged degraded; the overload "
                 "governor needs a single demotion target");
    }
  }

  for (const auto& mode : modes) {
    for (const auto& cfg : mode.components) {
      const Component* c = arch.find(cfg.component);
      if (c == nullptr || c->kind() != ComponentKind::Active) {
        report.add(Severity::Error, "MODE-COMPONENT-KNOWN", mode.name,
                   "mode lists '" + cfg.component +
                       "', which is not a declared active component");
      }
    }
    for (const auto& rebind : mode.rebinds) {
      const std::string subject =
          mode.name + ": " + rebind.client + "." + rebind.port + " -> " +
          rebind.server;
      const Component* client = arch.find(rebind.client);
      const Component* server = arch.find(rebind.server);
      if (client == nullptr || server == nullptr) {
        report.add(Severity::Error, "MODE-COMPONENT-KNOWN", subject,
                   "rebind endpoint is not a declared component");
        continue;
      }
      const InterfaceDecl* port = client->find_interface(rebind.port);
      if (port == nullptr || port->role != InterfaceRole::Client) {
        report.add(Severity::Error, "MODE-COMPONENT-KNOWN", subject,
                   "rebind names no client port '" + rebind.port +
                       "' on '" + rebind.client + "'");
      }
      if (!client->swappable()) {
        report.add(Severity::Error, "MODE-SWAPPABLE", rebind.client,
                   "mode '" + mode.name + "' rebinds port '" + rebind.port +
                       "' of a component not declared swappable");
      }
      if (port == nullptr) continue;
      // The rebind must be as legal as a declared binding: the server
      // provides the port's signature, and an RTSJ-legal communication
      // pattern exists — catching at design time what would otherwise
      // abort the transition at runtime.
      const InterfaceDecl* provided = nullptr;
      for (const auto& itf : server->interfaces()) {
        if (itf.role == InterfaceRole::Server &&
            itf.signature == port->signature) {
          provided = &itf;
        }
      }
      if (provided == nullptr) {
        report.add(Severity::Error, "MODE-REBIND-LEGAL", subject,
                   "rebind server provides no interface with signature '" +
                       port->signature + "'");
        continue;
      }
      // The rebind inherits the *declared* binding's protocol for the
      // port: synchronous ports re-route invocations, asynchronous ports
      // re-target their buffer through the AsyncSkeleton — so an async
      // rebind additionally needs an active server (activation entry).
      Protocol protocol = Protocol::Synchronous;
      for (const auto& binding : arch.bindings()) {
        if (binding.client.component == rebind.client &&
            binding.client.interface == rebind.port) {
          protocol = binding.desc.protocol;
        }
      }
      if (protocol == Protocol::Asynchronous &&
          server->kind() != ComponentKind::Active) {
        report.add(Severity::Error, "MODE-REBIND-LEGAL", subject,
                   "asynchronous rebind server is not an active component "
                   "(no activation entry)");
        continue;
      }
      model::Binding hypothetical;
      hypothetical.client = {rebind.client, rebind.port};
      hypothetical.server = {rebind.server, provided->name};
      hypothetical.desc.protocol = protocol;
      if (resolve_binding_pattern(arch, hypothetical).empty()) {
        report.add(Severity::Error, "MODE-REBIND-LEGAL", subject,
                   "no RTSJ-legal pattern exists for the rebind "
                   "(synchronous NHRT client into heap state?)");
      }
    }
  }

  // Components whose effective configuration differs between any two modes
  // are touched by transitions and must be declared swappable.
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    if (!arch.mode_managed(active->name()) || active->swappable()) continue;
    const EffectiveModeConfig first = effective_config(modes[0], *active);
    for (std::size_t i = 1; i < modes.size(); ++i) {
      const EffectiveModeConfig other = effective_config(modes[i], *active);
      if (other.present == first.present && other.period == first.period &&
          same_contract(other.contract, first.contract)) {
        continue;
      }
      report.add(Severity::Error, "MODE-SWAPPABLE", active->name(),
                 "configuration differs between modes '" + modes[0].name +
                     "' and '" + modes[i].name +
                     "' but the component is not declared swappable");
      break;
    }
  }

  for (const auto& mode : modes) check_mode_schedulable(arch, mode, report);
}

}  // namespace

std::vector<const ThreadDomain*> executing_domains(
    const Architecture& arch, const Component& component) {
  // Fixpoint: active components execute in their own domain; passive
  // components execute in the domains of their synchronous callers.
  std::map<const Component*, std::set<const ThreadDomain*>> domains;
  for (const auto& owned : arch.components()) {
    if (owned->kind() == ComponentKind::Active) {
      for (auto* d : arch.thread_domains_of(*owned)) {
        domains[owned.get()].insert(d);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Binding& b : arch.bindings()) {
      if (b.desc.protocol != Protocol::Synchronous) continue;
      const Component* client = arch.find(b.client.component);
      const Component* server = arch.find(b.server.component);
      if (client == nullptr || server == nullptr) continue;
      if (server->kind() != ComponentKind::Passive) continue;
      for (const auto* d : domains[client]) {
        if (domains[server].insert(d).second) changed = true;
      }
    }
  }
  const auto& set = domains[&component];
  return {set.begin(), set.end()};
}

Report validate(const Architecture& arch) {
  Report report;
  check_active_components(arch, report);
  check_thread_domains(arch, report);
  check_non_functional_interfaces(arch, report);
  check_memory_areas(arch, report);
  check_bindings(arch, report);
  check_modes(arch, report);
  return report;
}

}  // namespace rtcf::validate
