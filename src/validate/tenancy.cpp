#include "validate/tenancy.hpp"

#include <map>
#include <set>
#include <sstream>

namespace rtcf::validate {

using model::AssemblyPlan;
using model::ComponentSpec;
using model::TenantSpec;

namespace {

/// " (line N)" when the tenant carries ADL source context, else "".
std::string line_context(const TenantSpec& tenant) {
  if (tenant.adl_line == 0) return "";
  return " (line " + std::to_string(tenant.adl_line) + ")";
}

void check_membership(const AssemblyPlan& plan, Report& report) {
  std::map<std::string, const TenantSpec*> owner;
  for (const TenantSpec& tenant : plan.tenants()) {
    for (const std::string& member : tenant.components) {
      if (plan.find(member) == nullptr) {
        report.add(Severity::Error, "TENANT-MEMBER-UNKNOWN", tenant.name,
                   "tenant '" + tenant.name + "' lists member '" + member +
                       "' which the architecture does not declare" +
                       line_context(tenant));
        continue;
      }
      const auto [it, inserted] = owner.emplace(member, &tenant);
      if (!inserted && it->second != &tenant) {
        report.add(Severity::Error, "TENANT-MEMBER-EXCLUSIVE", tenant.name,
                   "component '" + member + "' belongs to both tenant '" +
                       it->second->name + "' and tenant '" + tenant.name +
                       "'; tenant membership must partition the assembly" +
                       line_context(tenant));
      }
    }
  }
}

/// Checks one cross-tenant route client->server: the serving tenant must
/// export the server interface as a capability, and the consuming tenant
/// must import that capability from it. `what` names the route kind for
/// the message ("binding" or "mode rebind").
void check_route(const TenantSpec& client_tenant,
                 const TenantSpec& server_tenant,
                 const model::BindingEnd& client,
                 const model::BindingEnd& server, const char* what,
                 Report& report) {
  const model::CapabilityExport* exported = nullptr;
  for (const auto& e : server_tenant.exports) {
    if (e.component == server.component && e.interface == server.interface) {
      exported = &e;
      break;
    }
  }
  std::ostringstream os;
  os << what << " " << client.component << "." << client.interface << " -> "
     << server.component << "." << server.interface
     << " crosses from tenant '" << client_tenant.name << "' into tenant '"
     << server_tenant.name << "'";
  if (exported == nullptr) {
    os << ", which exports no capability for " << server.component << "."
       << server.interface << line_context(server_tenant);
    report.add(Severity::Error, "TENANT-CAPABILITY-ROUTED",
               client_tenant.name, os.str());
    return;
  }
  const model::CapabilityImport* imported =
      client_tenant.find_import(exported->capability);
  if (imported == nullptr || imported->from_tenant != server_tenant.name) {
    os << ", but tenant '" << client_tenant.name
       << "' does not import capability '" << exported->capability
       << "' from it" << line_context(client_tenant);
    report.add(Severity::Error, "TENANT-CAPABILITY-ROUTED",
               client_tenant.name, os.str());
  }
}

void check_capability_routing(const AssemblyPlan& plan, Report& report) {
  for (const auto& binding : plan.bindings()) {
    const TenantSpec* ct = plan.tenant_of(binding.client.component);
    const TenantSpec* st = plan.tenant_of(binding.server.component);
    // Tenantless endpoints are the operator slice (including synthesized
    // gateways); only tenant-to-tenant edges are capability-routed.
    if (ct == nullptr || st == nullptr || ct == st) continue;
    check_route(*ct, *st, binding.client, binding.server, "binding", report);
  }
  // Mode rebinds re-target a client port at transition time; a redirect
  // into another tenant needs the same export/import route as a static
  // binding, or a mode change would pierce the isolation boundary.
  for (const auto& mode : plan.modes()) {
    for (const auto& rebind : mode.rebinds) {
      const TenantSpec* ct = plan.tenant_of(rebind.client);
      const TenantSpec* st = plan.tenant_of(rebind.server);
      if (ct == nullptr || st == nullptr || ct == st) continue;
      const model::BindingEnd client{rebind.client, rebind.port};
      std::string interface = rebind.port;
      if (const auto* bound = plan.binding_for(client)) {
        interface = bound->server.interface;
      }
      check_route(*ct, *st, client, {rebind.server, interface},
                  "mode rebind", report);
    }
  }
}

void check_area_and_domain_scoping(const AssemblyPlan& plan, Report& report) {
  // area/domain name -> tenants (by name) plus a marker for tenantless
  // occupants.
  std::map<std::string, std::set<std::string>> area_tenants;
  std::map<std::string, std::set<std::string>> domain_tenants;
  for (const ComponentSpec& spec : plan.components()) {
    const TenantSpec* tenant = plan.tenant_of(spec.name);
    const std::string tag = tenant != nullptr ? tenant->name : std::string();
    if (!spec.memory_area.empty()) area_tenants[spec.memory_area].insert(tag);
    if (!spec.thread_domain.empty()) {
      domain_tenants[spec.thread_domain].insert(tag);
    }
  }
  const auto flag = [&](const std::map<std::string, std::set<std::string>>&
                            occupancy,
                        const char* rule, const char* kind) {
    for (const auto& [name, tenants] : occupancy) {
      std::set<std::string> owned = tenants;
      const bool has_tenantless = owned.erase(std::string()) != 0;
      if (owned.size() > 1) {
        std::ostringstream os;
        os << kind << " '" << name << "' is shared by tenants";
        for (const auto& t : owned) os << " '" << t << "'";
        os << "; no " << kind
           << " may span a tenant isolation boundary";
        report.add(Severity::Error, rule, name, os.str());
      } else if (owned.size() == 1 && has_tenantless) {
        report.add(Severity::Warning, rule, name,
                   std::string(kind) + " '" + name + "' of tenant '" +
                       *owned.begin() +
                       "' also hosts tenantless operator components");
      }
    }
  };
  flag(area_tenants, "TENANT-AREA-SCOPED", "memory area");
  flag(domain_tenants, "TENANT-DOMAIN-EXCLUSIVE", "thread domain");
}

void check_budgets(const AssemblyPlan& plan, Report& report) {
  for (const TenantSpec& tenant : plan.tenants()) {
    if (tenant.budget.cpu_utilization < 0.0) {
      report.add(Severity::Error, "TENANT-BUDGET-BOUNDS", tenant.name,
                 "tenant '" + tenant.name +
                     "' declares a negative CPU budget" +
                     line_context(tenant));
      continue;
    }
    if (tenant.budget.cpu_utilization > 0.0) {
      double utilization = 0.0;
      for (const std::string& member : tenant.components) {
        const ComponentSpec* spec = plan.find(member);
        if (spec == nullptr || !spec->is_active()) continue;
        if (spec->period.is_zero() || spec->cost.is_zero()) continue;
        utilization += static_cast<double>(spec->cost.nanos()) /
                       static_cast<double>(spec->period.nanos());
      }
      if (utilization > tenant.budget.cpu_utilization + 1e-9) {
        std::ostringstream os;
        os << "tenant '" << tenant.name << "' members need utilization "
           << utilization << " but the declared CPU budget is "
           << tenant.budget.cpu_utilization << line_context(tenant);
        report.add(Severity::Error, "TENANT-BUDGET-BOUNDS", tenant.name,
                   os.str());
      }
    }
    if (tenant.budget.memory_bytes > 0) {
      std::size_t bytes = 0;
      for (const std::string& area : tenant.areas) {
        if (const auto* spec = plan.find_area(area)) {
          bytes += spec->size_bytes;
        }
      }
      if (bytes > tenant.budget.memory_bytes) {
        std::ostringstream os;
        os << "tenant '" << tenant.name << "' owns areas totalling " << bytes
           << " bytes but the declared memory budget is "
           << tenant.budget.memory_bytes << " bytes" << line_context(tenant);
        report.add(Severity::Error, "TENANT-BUDGET-BOUNDS", tenant.name,
                   os.str());
      }
    }
  }
}

void check_capability_declarations(const AssemblyPlan& plan, Report& report) {
  for (const TenantSpec& tenant : plan.tenants()) {
    std::set<std::string> names;
    for (const auto& e : tenant.exports) {
      if (!names.insert(e.capability).second) {
        report.add(Severity::Error, "TENANT-EXPORT-UNKNOWN", tenant.name,
                   "tenant '" + tenant.name +
                       "' exports capability '" + e.capability +
                       "' more than once" + line_context(tenant));
        continue;
      }
      if (!tenant.owns_component(e.component)) {
        report.add(Severity::Error, "TENANT-EXPORT-UNKNOWN", tenant.name,
                   "tenant '" + tenant.name + "' exports capability '" +
                       e.capability + "' from component '" + e.component +
                       "' it does not own" + line_context(tenant));
        continue;
      }
      const ComponentSpec* spec = plan.find(e.component);
      const model::InterfaceDecl* itf =
          spec != nullptr ? spec->find_interface(e.interface) : nullptr;
      if (itf == nullptr || itf->role != model::InterfaceRole::Server) {
        report.add(Severity::Error, "TENANT-EXPORT-UNKNOWN", tenant.name,
                   "tenant '" + tenant.name + "' exports capability '" +
                       e.capability + "' on '" + e.component + "." +
                       e.interface +
                       "', which is not a server interface" +
                       line_context(tenant));
      }
    }
    for (const auto& i : tenant.imports) {
      if (i.from_tenant == tenant.name) {
        report.add(Severity::Error, "TENANT-IMPORT-UNKNOWN", tenant.name,
                   "tenant '" + tenant.name + "' imports capability '" +
                       i.capability + "' from itself" +
                       line_context(tenant));
        continue;
      }
      const TenantSpec* from = plan.find_tenant(i.from_tenant);
      if (from == nullptr) {
        report.add(Severity::Error, "TENANT-IMPORT-UNKNOWN", tenant.name,
                   "tenant '" + tenant.name + "' imports capability '" +
                       i.capability + "' from unknown tenant '" +
                       i.from_tenant + "'" + line_context(tenant));
        continue;
      }
      if (from->find_export(i.capability) == nullptr) {
        report.add(Severity::Error, "TENANT-IMPORT-UNKNOWN", tenant.name,
                   "tenant '" + tenant.name + "' imports capability '" +
                       i.capability + "' which tenant '" + i.from_tenant +
                       "' does not export" + line_context(tenant));
      }
    }
  }
}

}  // namespace

Report validate_tenancy(const AssemblyPlan& plan) {
  Report report;
  if (plan.tenants().empty()) return report;
  check_membership(plan, report);
  check_capability_declarations(plan, report);
  check_capability_routing(plan, report);
  check_area_and_domain_scoping(plan, report);
  check_budgets(plan, report);
  return report;
}

}  // namespace rtcf::validate
