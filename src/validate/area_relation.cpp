#include "validate/area_relation.hpp"

namespace rtcf::validate {

using model::AreaType;
using model::Architecture;
using model::MemoryAreaComponent;

const char* to_string(AreaRelation r) noexcept {
  switch (r) {
    case AreaRelation::Same:
      return "same";
    case AreaRelation::ServerOuter:
      return "server-outer";
    case AreaRelation::ServerInner:
      return "server-inner";
    case AreaRelation::Disjoint:
      return "disjoint";
  }
  return "?";
}

const MemoryAreaComponent* design_parent_scope(
    const Architecture& arch, const MemoryAreaComponent& area) {
  const MemoryAreaComponent* enclosing = arch.memory_area_of(area);
  while (enclosing != nullptr && enclosing->type() != AreaType::Scoped) {
    enclosing = arch.memory_area_of(*enclosing);
  }
  return enclosing;
}

namespace {

/// True when `outer` appears on the design-time parent chain of `inner`
/// (inclusive).
bool scope_descends_from(const Architecture& arch,
                         const MemoryAreaComponent* inner,
                         const MemoryAreaComponent* outer) {
  for (const MemoryAreaComponent* s = inner; s != nullptr;
       s = design_parent_scope(arch, *s)) {
    if (s == outer) return true;
  }
  return false;
}

}  // namespace

AreaRelation relate_areas(const Architecture& arch,
                          const MemoryAreaComponent* client_area,
                          const MemoryAreaComponent* server_area) {
  const AreaType client_type =
      client_area ? client_area->type() : AreaType::Heap;
  const AreaType server_type =
      server_area ? server_area->type() : AreaType::Heap;

  // Primordial areas compare by type: all heap is one heap, all immortal
  // is one immortal.
  if (client_type != AreaType::Scoped && server_type != AreaType::Scoped) {
    return client_type == server_type ? AreaRelation::Same
                                      : AreaRelation::ServerOuter;
  }
  if (server_type != AreaType::Scoped) {
    // Scoped client, primordial server: the server outlives the client.
    return AreaRelation::ServerOuter;
  }
  if (client_type != AreaType::Scoped) {
    // Primordial client, scoped server: the client must enter the scope.
    return AreaRelation::ServerInner;
  }
  if (client_area == server_area) return AreaRelation::Same;
  if (scope_descends_from(arch, client_area, server_area)) {
    return AreaRelation::ServerOuter;  // Server is an ancestor scope.
  }
  if (scope_descends_from(arch, server_area, client_area)) {
    return AreaRelation::ServerInner;  // Server is nested below the client.
  }
  return AreaRelation::Disjoint;
}

}  // namespace rtcf::validate
