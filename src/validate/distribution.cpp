#include "validate/distribution.hpp"

#include <utility>

namespace rtcf::validate {

using model::AssemblyPlan;
using model::BindingSpec;
using model::ComponentSpec;

const std::string& NodeMap::node_of(const std::string& component) const {
  static const std::string kEmpty;
  auto it = assignment.find(component);
  return it == assignment.end() ? kEmpty : it->second;
}

bool NodeMap::has_node(const std::string& name) const {
  return node_index(name) != nodes.size();
}

std::size_t NodeMap::node_index(const std::string& name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == name) return i;
  }
  return nodes.size();
}

Report validate_distribution(const AssemblyPlan& plan, const NodeMap& map) {
  Report report;

  for (const ComponentSpec& spec : plan.components()) {
    const std::string& node = map.node_of(spec.name);
    if (node.empty()) {
      report.add(Severity::Error, "DIST-NODE-UNKNOWN", spec.name,
                 "component is not assigned to any node");
    } else if (!map.has_node(node)) {
      report.add(Severity::Error, "DIST-NODE-UNKNOWN", spec.name,
                 "component is assigned to undeclared node '" + node + "'");
    }
  }

  // Composites must not be torn by the cut. The snapshot records each
  // component's *innermost* area and its thread domain; two components
  // sharing either name must share a node.
  const auto span_check = [&](const char* rule, const char* what,
                              const std::string& (*key)(
                                  const ComponentSpec&)) {
    for (std::size_t i = 0; i < plan.components().size(); ++i) {
      const ComponentSpec& a = plan.components()[i];
      if (key(a).empty()) continue;
      for (std::size_t j = i + 1; j < plan.components().size(); ++j) {
        const ComponentSpec& b = plan.components()[j];
        if (key(a) != key(b)) continue;
        const std::string& na = map.node_of(a.name);
        const std::string& nb = map.node_of(b.name);
        if (!na.empty() && !nb.empty() && na != nb) {
          report.add(Severity::Error, rule, key(a),
                     std::string(what) + " deploys '" + a.name + "' on '" +
                         na + "' and '" + b.name + "' on '" + nb +
                         "' — one RTSJ composite cannot span nodes");
        }
      }
    }
  };
  span_check("DIST-AREA-SPAN", "memory area",
             [](const ComponentSpec& s) -> const std::string& {
               return s.memory_area;
             });
  span_check("DIST-DOMAIN-SPAN", "thread domain",
             [](const ComponentSpec& s) -> const std::string& {
               return s.thread_domain;
             });

  for (const BindingSpec& binding : plan.bindings()) {
    const std::string& client_node = map.node_of(binding.client.component);
    const std::string& server_node = map.node_of(binding.server.component);
    if (client_node.empty() || server_node.empty() ||
        client_node == server_node) {
      continue;
    }
    const std::string subject = binding.client.component + "." +
                                binding.client.interface + " -> " +
                                binding.server.component;
    if (binding.protocol == model::Protocol::Synchronous) {
      report.add(Severity::Error, "DIST-SYNC-CROSS-NODE", subject,
                 "synchronous binding crosses nodes ('" + client_node +
                     "' -> '" + server_node +
                     "'); there is no synchronous bridge — declare the "
                     "binding asynchronous to get a gateway pair");
    } else {
      report.add(Severity::Info, "DIST-ASYNC-BRIDGED", subject,
                 "asynchronous binding crosses nodes ('" + client_node +
                     "' -> '" + server_node +
                     "'); a gateway pair bridges it over the data channel");
    }
  }

  for (const model::ModeDecl& mode : plan.modes()) {
    for (const model::ModeRebind& rebind : mode.rebinds) {
      const std::string& client_node = map.node_of(rebind.client);
      const std::string& server_node = map.node_of(rebind.server);
      if (client_node.empty() || server_node.empty() ||
          client_node == server_node) {
        continue;
      }
      report.add(Severity::Error, "DIST-REBIND-CROSS-NODE",
                 mode.name + ":" + rebind.client + "." + rebind.port,
                 "mode rebind redirects the port to '" + rebind.server +
                     "' on node '" + server_node +
                     "' — mode rebinds are node-local; re-shape the "
                     "cross-node wiring with a coordinated reload");
    }
  }

  return report;
}

MembershipView MembershipView::admit(const std::string& node) const {
  MembershipView next = *this;
  next.epoch = epoch + 1;
  if (!next.map.has_node(node)) {
    next.map.nodes.push_back(node);
  }
  return next;
}

MembershipView MembershipView::evict(const std::string& node) const {
  MembershipView next;
  next.epoch = epoch + 1;
  for (const std::string& name : map.nodes) {
    if (name != node) next.map.nodes.push_back(name);
  }
  for (const auto& [component, owner] : map.assignment) {
    if (owner != node) next.map.assignment.emplace(component, owner);
  }
  return next;
}

MembershipView MembershipView::reshard(NodeMap next_map) const {
  MembershipView next;
  next.epoch = epoch + 1;
  next.map = std::move(next_map);
  return next;
}

Report validate_membership(const MembershipView& current,
                           const MembershipView& proposed) {
  Report report;

  if (proposed.epoch <= current.epoch) {
    report.add(Severity::Error, "MEMBER-EPOCH-STALE",
               std::to_string(proposed.epoch),
               "proposed view does not advance the membership epoch "
               "(current " +
                   std::to_string(current.epoch) + ")");
  }

  for (std::size_t i = 0; i < proposed.map.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < proposed.map.nodes.size(); ++j) {
      if (proposed.map.nodes[i] == proposed.map.nodes[j]) {
        report.add(Severity::Error, "MEMBER-NODE-DUP", proposed.map.nodes[i],
                   "proposed view declares the node twice");
      }
    }
  }

  std::vector<std::string> added;
  std::vector<std::string> removed;
  for (const std::string& node : proposed.map.nodes) {
    if (!current.map.has_node(node)) added.push_back(node);
  }
  for (const std::string& node : current.map.nodes) {
    if (!proposed.map.has_node(node)) removed.push_back(node);
  }
  if (added.size() + removed.size() > 1) {
    std::string subject;
    for (const std::string& node : added) {
      subject += (subject.empty() ? "+" : ", +") + node;
    }
    for (const std::string& node : removed) {
      subject += (subject.empty() ? "-" : ", -") + node;
    }
    report.add(Severity::Error, "MEMBER-NODE-FLAP", subject,
               "membership changes are single-step: admit or remove one "
               "node per transition");
  }

  for (const std::string& node : added) {
    for (const auto& [component, owner] : proposed.map.assignment) {
      if (owner == node) {
        report.add(Severity::Error, "MEMBER-JOIN-EMPTY", node,
                   "joining node already holds '" + component +
                       "' — admit with an empty slice, then re-shard with "
                       "a coordinated reload");
      }
    }
  }

  for (const std::string& node : removed) {
    for (const auto& [component, owner] : current.map.assignment) {
      if (owner == node) {
        report.add(Severity::Error, "MEMBER-DRAIN-FIRST", node,
                   "departing node still holds '" + component +
                       "' in the current view — drain its slice before "
                       "removing it");
      }
    }
  }

  for (const auto& [component, owner] : proposed.map.assignment) {
    if (!proposed.map.has_node(owner)) {
      report.add(Severity::Error, "MEMBER-ASSIGN-ORPHAN", component,
                 "assigned to node '" + owner +
                     "' which the proposed view does not declare");
    }
  }

  return report;
}

}  // namespace rtcf::validate
