#include "validate/report.hpp"

#include <sstream>

namespace rtcf::validate {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << validate::to_string(severity) << " [" << rule << "] " << subject
     << ": " << message;
  return os.str();
}

void Report::add(Severity severity, std::string rule, std::string subject,
                 std::string message) {
  if (severity == Severity::Error) ++error_count_;
  if (severity == Severity::Warning) ++warning_count_;
  diagnostics_.push_back(Diagnostic{severity, std::move(rule),
                                    std::move(subject), std::move(message)});
}

std::vector<Diagnostic> Report::by_rule(const std::string& rule) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics_) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

bool Report::has_rule(const std::string& rule) const {
  for (const auto& d : diagnostics_) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << d.to_string() << "\n";
  os << error_count_ << " error(s), " << warning_count_ << " warning(s)";
  return os.str();
}

}  // namespace rtcf::validate
