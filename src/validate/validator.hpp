// RTSJ conformance validation of component architectures (§3.1–3.2).
//
// "The compliance with RTSJ is enforced during the design process. This
// provides an immediate feedback and the designer can appropriately modify
// an architecture whenever it violates RTSJ."
//
// Rule identifiers (stable, used by tests and tools):
//   AC-DOMAIN-UNIQUE       active component in exactly one ThreadDomain
//   AC-PERIOD-POSITIVE     periodic activation needs a positive period
//   AC-SPORADIC-TRIGGER    sporadic component should have an incoming
//                          asynchronous binding (its release trigger)
//   AC-CONTENT-CLASS       functional component should name a content class
//   TD-NO-NESTING          ThreadDomains must not nest
//   TD-ACTIVE-ONLY         ThreadDomains contain only active components
//   TD-PRIORITY-RANGE      domain priority must match its thread type band
//   TD-NHRT-NO-HEAP        an NHRT domain must not encapsulate heap memory
//                          nor execute components allocated on the heap
//   NF-NO-INTERFACES       non-functional composites declare no functional
//                          interfaces
//   MA-SCOPED-SINGLE-PARENT design-time single parent rule for scoped areas
//   MA-SCOPED-SIZE         scoped/immortal areas declare a positive size
//   MA-DEPLOYED            functional components should have a memory
//                          assignment (default heap otherwise)
//   BIND-ENDPOINTS         binding endpoints resolve with matching
//                          roles/signatures
//   BIND-ASYNC-BUFFER      asynchronous bindings declare a buffer size
//   BIND-NHRT-HEAP-SYNC    no synchronous call from an NHRT into heap state
//   BIND-PATTERN-KNOWN     explicit pattern must exist and be applicable
//   BIND-PATTERN-SUGGEST   cross-area binding without a pattern: the
//                          framework proposes one (info)
//   MODE-COMPONENT-KNOWN   mode entries and rebind endpoints reference
//                          declared components of the right kind
//   MODE-REBIND-LEGAL      a mode rebind is as legal as a declared
//                          binding: matching server signature, RTSJ-legal
//                          communication pattern
//   MODE-DEGRADED-UNIQUE   at most one mode carries the degraded flag
//   MODE-SWAPPABLE         mode transitions only touch components declared
//                          swappable (presence, rate, contract, rebinds)
//   MODE-SCHEDULABLE       every mode's enabled task set passes
//                          response-time analysis independently
#pragma once

#include "model/metamodel.hpp"
#include "validate/report.hpp"

namespace rtcf::validate {

/// Runs every rule against `arch` and returns the full report.
Report validate(const model::Architecture& arch);

/// The set of ThreadDomains whose threads can execute `component`: an
/// active component executes in its own domain; a passive component
/// executes in the domains of every client that calls it synchronously
/// (computed as a fixpoint across bindings). Exposed for the planner.
std::vector<const model::ThreadDomain*> executing_domains(
    const model::Architecture& arch, const model::Component& component);

}  // namespace rtcf::validate
