// Distribution rules: what a multi-node deployment adds to the rule engine.
//
// A distributed assembly is one global architecture plus a NodeMap that
// assigns every functional component to a node. Most RTSJ rules are
// node-local and already covered by validate(); these rules check what
// only the *cut* across nodes can violate. Like every other rule set, the
// identifiers are stable and used by tests and tools:
//
//   DIST-NODE-UNKNOWN        a component is mapped to a node the cluster
//                            does not declare, or not mapped at all
//   DIST-SYNC-CROSS-NODE     a synchronous binding spans two nodes; there
//                            is no synchronous bridge — redeclare the
//                            binding asynchronous (the framework then
//                            synthesizes the gateway pair)
//   DIST-AREA-SPAN           one MemoryArea deploys components on
//                            different nodes (an RTSJ area cannot span
//                            address spaces)
//   DIST-DOMAIN-SPAN         one ThreadDomain contains active components
//                            on different nodes
//   DIST-REBIND-CROSS-NODE   a mode <Rebind> redirects a port to a server
//                            on another node (mode rebinds are node-local;
//                            cross-node re-targeting goes through a
//                            coordinated reload instead)
//   DIST-ASYNC-BRIDGED       (info) an asynchronous binding crosses nodes
//                            and will ride a synthesized gateway bridge
//
// Live membership adds the MEMBER-* family: the cluster's NodeMap is no
// longer fixed at deploy time but carried by an epoch-versioned
// MembershipView, and every proposed transition old-view -> new-view is
// checked before the coordinator drives it (docs/MEMBERSHIP.md):
//
//   MEMBER-EPOCH-STALE       the proposed view does not advance the epoch
//   MEMBER-NODE-DUP          the proposed view declares a node twice
//   MEMBER-NODE-FLAP         more than one node added or removed at once
//                            (membership changes are single-step)
//   MEMBER-JOIN-EMPTY        a node added by this transition already holds
//                            assignments — joiners are admitted with an
//                            empty slice and re-sharded by a later reload
//   MEMBER-DRAIN-FIRST       a node removed by this transition still held
//                            assignments in the current view — drain its
//                            slice before removing it
//   MEMBER-ASSIGN-ORPHAN     the proposed map assigns a component to a
//                            node the proposed view does not declare
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/assembly_plan.hpp"
#include "validate/report.hpp"

namespace rtcf::validate {

/// Assignment of functional components to named nodes — the deployment
/// half of a distributed assembly (the global architecture is the other
/// half). Non-functional composites (ThreadDomains, MemoryAreas) are not
/// mapped; they follow the functional components they contain, and
/// DIST-AREA-SPAN / DIST-DOMAIN-SPAN reject composites the cut would
/// tear apart.
struct NodeMap {
  /// Declared node names, in cluster order (node index = position).
  std::vector<std::string> nodes;
  /// Component name -> node name.
  std::map<std::string, std::string> assignment;

  /// The node assigned to `component`, or an empty string when unmapped.
  const std::string& node_of(const std::string& component) const;
  /// True when `name` is a declared node.
  bool has_node(const std::string& name) const;
  /// Index of `name` in `nodes`; nodes.size() when unknown.
  std::size_t node_index(const std::string& name) const;
};

/// Runs the DIST-* rules for `plan` under `map` and returns the report.
/// `plan` is the *global* assembly snapshot (all nodes); run the ordinary
/// validate() on the global architecture first — these rules only add the
/// cut checks.
Report validate_distribution(const model::AssemblyPlan& plan,
                             const NodeMap& map);

/// Epoch-versioned membership: the NodeMap the cluster currently agrees
/// on plus a monotonically increasing version. Every committed admission,
/// drain, or re-shard produces the next epoch, so two views are ordered
/// by a single integer and a resyncing node can tell at a glance whether
/// its snapshot is current (docs/MEMBERSHIP.md §1).
struct MembershipView {
  std::uint64_t epoch = 0;  ///< Bumps by one on every committed change.
  NodeMap map;              ///< The agreed assignment at this epoch.

  /// The view after admitting `node` with an empty slice: the node is
  /// appended to the member list, nothing is assigned to it, epoch + 1.
  MembershipView admit(const std::string& node) const;
  /// The view after evicting `node`: the node leaves the member list and
  /// every assignment it still held is dropped, epoch + 1. Callers drain
  /// the slice first — MEMBER-DRAIN-FIRST rejects an undrained eviction.
  MembershipView evict(const std::string& node) const;
  /// The view after re-sharding onto `map` (same or different member
  /// list), epoch + 1.
  MembershipView reshard(NodeMap next) const;
};

/// Runs the MEMBER-* rules for the transition `current` -> `proposed` and
/// returns the report. Pure view-level checks — run validate_distribution
/// on the global plan under `proposed.map` as well before driving the
/// two-phase reconfiguration.
Report validate_membership(const MembershipView& current,
                           const MembershipView& proposed);

}  // namespace rtcf::validate
