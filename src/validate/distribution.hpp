// Distribution rules: what a multi-node deployment adds to the rule engine.
//
// A distributed assembly is one global architecture plus a NodeMap that
// assigns every functional component to a node. Most RTSJ rules are
// node-local and already covered by validate(); these rules check what
// only the *cut* across nodes can violate. Like every other rule set, the
// identifiers are stable and used by tests and tools:
//
//   DIST-NODE-UNKNOWN        a component is mapped to a node the cluster
//                            does not declare, or not mapped at all
//   DIST-SYNC-CROSS-NODE     a synchronous binding spans two nodes; there
//                            is no synchronous bridge — redeclare the
//                            binding asynchronous (the framework then
//                            synthesizes the gateway pair)
//   DIST-AREA-SPAN           one MemoryArea deploys components on
//                            different nodes (an RTSJ area cannot span
//                            address spaces)
//   DIST-DOMAIN-SPAN         one ThreadDomain contains active components
//                            on different nodes
//   DIST-REBIND-CROSS-NODE   a mode <Rebind> redirects a port to a server
//                            on another node (mode rebinds are node-local;
//                            cross-node re-targeting goes through a
//                            coordinated reload instead)
//   DIST-ASYNC-BRIDGED       (info) an asynchronous binding crosses nodes
//                            and will ride a synthesized gateway bridge
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/assembly_plan.hpp"
#include "validate/report.hpp"

namespace rtcf::validate {

/// Assignment of functional components to named nodes — the deployment
/// half of a distributed assembly (the global architecture is the other
/// half). Non-functional composites (ThreadDomains, MemoryAreas) are not
/// mapped; they follow the functional components they contain, and
/// DIST-AREA-SPAN / DIST-DOMAIN-SPAN reject composites the cut would
/// tear apart.
struct NodeMap {
  /// Declared node names, in cluster order (node index = position).
  std::vector<std::string> nodes;
  /// Component name -> node name.
  std::map<std::string, std::string> assignment;

  /// The node assigned to `component`, or an empty string when unmapped.
  const std::string& node_of(const std::string& component) const;
  /// True when `name` is a declared node.
  bool has_node(const std::string& name) const;
  /// Index of `name` in `nodes`; nodes.size() when unknown.
  std::size_t node_index(const std::string& name) const;
};

/// Runs the DIST-* rules for `plan` under `map` and returns the report.
/// `plan` is the *global* assembly snapshot (all nodes); run the ordinary
/// validate() on the global architecture first — these rules only add the
/// cut checks.
Report validate_distribution(const model::AssemblyPlan& plan,
                             const NodeMap& map);

}  // namespace rtcf::validate
