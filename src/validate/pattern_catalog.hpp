// Catalog of RTSJ cross-scope communication patterns (paper refs [1,5,17]:
// Corsaro & Santoro 2005; Benowitz & Niessner 2003; Pizlo et al. 2004).
//
// At design time the validator checks that an explicitly chosen pattern is
// applicable to a binding's area relation, and suggests one when the
// designer left the choice open — "compositions violating RTSJ are
// identified and possible solutions proposed" (§3.2). The runtime
// implementations live in membrane/patterns.hpp; the planner maps these
// names onto memory interceptors.
#pragma once

#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "validate/area_relation.hpp"

namespace rtcf::validate {

/// Stable pattern names.
inline constexpr const char* kPatternDirect = "direct";
inline constexpr const char* kPatternScopeEnter = "scope-enter";
inline constexpr const char* kPatternDeepCopy = "deep-copy";
inline constexpr const char* kPatternImmortalForward = "immortal-forward";
inline constexpr const char* kPatternSharedScope = "shared-scope";
inline constexpr const char* kPatternHandoff = "handoff";
inline constexpr const char* kPatternWedgeThread = "wedge-thread";

/// All pattern names the framework understands.
const std::vector<std::string>& known_patterns();

bool is_known_pattern(const std::string& name);

/// True when `pattern` can implement a binding with the given area
/// relation and protocol.
bool pattern_applicable(const std::string& pattern, AreaRelation relation,
                        model::Protocol protocol);

/// Context needed to pick a safe default pattern.
struct PatternQuery {
  AreaRelation relation = AreaRelation::Same;
  model::Protocol protocol = model::Protocol::Synchronous;
  bool client_no_heap = false;  ///< Client executes on an NHRT.
  bool server_in_heap = false;  ///< Server state lives on the heap.
  bool common_scope_ancestor = false;  ///< Disjoint scopes sharing an outer
                                       ///< scope (enables shared-scope).
};

/// The framework's default choice for `query`; empty when no pattern can
/// make the binding RTSJ-legal (e.g. a synchronous call from an NHRT into
/// heap state), in which case the validator reports an error.
std::string suggest_pattern(const PatternQuery& query);

/// Resolves the effective pattern of a binding in `arch`: the explicitly
/// declared pattern when present, otherwise the framework suggestion.
/// Returns the empty string when no legal pattern exists. Shared by the
/// validator, the planner, and the code emitter so all three agree.
std::string resolve_binding_pattern(const model::Architecture& arch,
                                    const model::Binding& binding);

}  // namespace rtcf::validate
