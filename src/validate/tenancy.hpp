// Tenancy rules: what a multi-tenant deployment adds to the rule engine.
//
// A multi-tenant assembly is one architecture whose tenants partition the
// functional components into mutually-isolated slices. The ordinary
// validate() rules stay tenant-blind; these rules check what only the
// tenant boundaries can violate. Like every other rule set, the
// identifiers are stable and used by tests and tools:
//
//   TENANT-MEMBER-UNKNOWN      a tenant lists a member the architecture
//                              does not declare
//   TENANT-MEMBER-EXCLUSIVE    a component belongs to two tenants (tenant
//                              membership must partition the assembly)
//   TENANT-CAPABILITY-ROUTED   a binding crosses a tenant boundary without
//                              a matching capability export on the serving
//                              tenant and import on the consuming tenant
//                              (Fuchsia-style: a route exists only when
//                              both sides declare it)
//   TENANT-AREA-SCOPED         one MemoryArea hosts components of two
//                              tenants, or of a tenant and the tenantless
//                              operator slice (shared memory across the
//                              isolation boundary)
//   TENANT-DOMAIN-EXCLUSIVE    one ThreadDomain contains active components
//                              of different tenants (a shared thread bank
//                              lets one tenant starve another below the
//                              governor's reach)
//   TENANT-BUDGET-BOUNDS       a tenant's members exceed its declared CPU
//                              utilization or memory envelope, or the
//                              envelope itself is malformed
//   TENANT-EXPORT-UNKNOWN      an exported capability names a component or
//                              server interface the tenant does not own
//   TENANT-IMPORT-UNKNOWN      an imported capability names a tenant that
//                              does not exist or does not export it
//
// Diagnostics carry the tenant name as the subject and, when the tenant
// came from ADL, the `<Tenant>` element's source line in the message — the
// admission controller forwards both as its machine-readable rejection
// reason.
#pragma once

#include "model/assembly_plan.hpp"
#include "validate/report.hpp"

namespace rtcf::validate {

/// Runs the TENANT-* rules for `plan` and returns the report. `plan` is
/// the whole assembly snapshot; run the ordinary validate() on the source
/// architecture first — these rules only add the tenant-boundary checks.
/// A plan with no tenants passes vacuously.
Report validate_tenancy(const model::AssemblyPlan& plan);

}  // namespace rtcf::validate
