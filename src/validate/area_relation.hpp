// Architecture-level memory-area relationships.
//
// The validator and the Soleil planner both need to know how the memory
// areas of a binding's two endpoints relate: same area, target longer-lived
// (outer), target shorter-lived (inner scope), or unrelated sibling scopes.
// Heap and immortal are primordial: everything may reference them (heap
// subject to the NHRT barrier); they are "outer" to every scope.
#pragma once

#include "model/metamodel.hpp"

namespace rtcf::validate {

/// Relationship from a *client* component's area to a *server* component's
/// area, deciding which communication patterns are applicable.
enum class AreaRelation {
  Same,          ///< Identical area (or both primordial of the same type).
  ServerOuter,   ///< Server lives at least as long as the client: direct
                 ///< references are legal (heap still NHRT-barriered).
  ServerInner,   ///< Server is in a scope nested below the client: the
                 ///< client must enter the scope (scope-enter/portal).
  Disjoint,      ///< Sibling scopes / unrelated: data must be copied or
                 ///< handed off through a common ancestor.
};

const char* to_string(AreaRelation r) noexcept;

/// Innermost *scoped* MemoryArea enclosing `area` in the architecture's
/// containment DAG (its design-time parent scope), or nullptr when the
/// area's parent is primordial.
const model::MemoryAreaComponent* design_parent_scope(
    const model::Architecture& arch, const model::MemoryAreaComponent& area);

/// Computes the relation between the areas of two components. Components
/// with no memory assignment are treated as heap-allocated (the validator
/// flags them separately).
AreaRelation relate_areas(const model::Architecture& arch,
                          const model::MemoryAreaComponent* client_area,
                          const model::MemoryAreaComponent* server_area);

}  // namespace rtcf::validate
