#include "adl/loader.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "adl/xml.hpp"

namespace rtcf::adl {

using model::ActivationKind;
using model::ActiveComponent;
using model::Architecture;
using model::AreaType;
using model::Binding;
using model::BindingDesc;
using model::Component;
using model::ComponentKind;
using model::DomainType;
using model::InterfaceRole;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::Protocol;
using model::ThreadDomain;

namespace {

std::pair<long long, std::string> split_number_suffix(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) ||
          (i == 0 && text[i] == '-'))) {
    ++i;
  }
  if (i == 0 || (i == 1 && text[0] == '-')) {
    throw AdlError("expected a number in '" + std::string(text) + "'");
  }
  long long value = 0;
  try {
    value = std::stoll(std::string(text.substr(0, i)));
  } catch (const std::exception&) {
    throw AdlError("number out of range in '" + std::string(text) + "'");
  }
  std::string suffix(text.substr(i));
  std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return {value, suffix};
}

}  // namespace

rtsj::RelativeTime parse_duration(std::string_view text) {
  const auto [value, suffix] = split_number_suffix(text);
  if (suffix.empty() || suffix == "ns") {
    return rtsj::RelativeTime::nanoseconds(value);
  }
  if (suffix == "us") return rtsj::RelativeTime::microseconds(value);
  if (suffix == "ms") return rtsj::RelativeTime::milliseconds(value);
  if (suffix == "s") return rtsj::RelativeTime::seconds(value);
  throw AdlError("unknown duration unit '" + suffix + "'");
}

std::size_t parse_size(std::string_view text) {
  const auto [value, suffix] = split_number_suffix(text);
  if (value < 0) throw AdlError("sizes must be non-negative");
  const auto v = static_cast<std::size_t>(value);
  if (suffix.empty() || suffix == "b") return v;
  if (suffix == "kb" || suffix == "k") return v * 1024;
  if (suffix == "mb" || suffix == "m") return v * 1024 * 1024;
  throw AdlError("unknown size unit '" + suffix + "'");
}

std::string format_duration(rtsj::RelativeTime t) {
  const auto n = t.nanos();
  std::ostringstream os;
  if (n != 0 && n % 1'000'000'000 == 0) {
    os << n / 1'000'000'000 << "s";
  } else if (n != 0 && n % 1'000'000 == 0) {
    os << n / 1'000'000 << "ms";
  } else if (n != 0 && n % 1'000 == 0) {
    os << n / 1'000 << "us";
  } else {
    os << n << "ns";
  }
  return os.str();
}

std::string format_size(std::size_t bytes) {
  std::ostringstream os;
  if (bytes != 0 && bytes % (1024 * 1024) == 0) {
    os << bytes / (1024 * 1024) << "MB";
  } else if (bytes != 0 && bytes % 1024 == 0) {
    os << bytes / 1024 << "KB";
  } else {
    os << bytes;
  }
  return os.str();
}

namespace {

InterfaceRole parse_role(const std::string& role) {
  if (role == "client") return InterfaceRole::Client;
  if (role == "server") return InterfaceRole::Server;
  throw AdlError("unknown interface role '" + role + "'");
}

ActivationKind parse_activation(const std::string& type) {
  if (type == "periodic") return ActivationKind::Periodic;
  if (type == "sporadic") return ActivationKind::Sporadic;
  throw AdlError("unknown active component type '" + type + "'");
}

DomainType parse_domain_type(const std::string& type) {
  if (type == "NHRT") return DomainType::NoHeapRealtime;
  if (type == "RT") return DomainType::Realtime;
  if (type == "Regular") return DomainType::Regular;
  throw AdlError("unknown domain type '" + type + "'");
}

AreaType parse_area_type(const std::string& type) {
  if (type == "immortal") return AreaType::Immortal;
  if (type == "scope") return AreaType::Scoped;
  if (type == "heap") return AreaType::Heap;
  throw AdlError("unknown area type '" + type + "'");
}

model::Criticality parse_criticality(const std::string& text) {
  if (text == "low") return model::Criticality::Low;
  if (text == "high") return model::Criticality::High;
  throw AdlError("unknown criticality '" + text + "'");
}

double parse_ratio(const std::string& text) {
  double v = 0.0;
  std::size_t consumed = 0;
  try {
    v = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw AdlError("expected a number in '" + text + "'");
  }
  // std::stod happily parses "nan"/"inf", which would arm contract checks
  // with bounds no comparison can ever satisfy (or reject).
  if (consumed != text.size() || !std::isfinite(v)) {
    throw AdlError("expected a finite number in '" + text + "'");
  }
  return v;
}

model::TimingContract parse_timing_contract(const XmlNode& node) {
  model::TimingContract contract;
  if (auto w = node.attr("wcet")) contract.wcet_budget = parse_duration(*w);
  if (auto r = node.attr("missRatioBound")) {
    contract.miss_ratio_bound = parse_ratio(*r);
  }
  if (auto a = node.attr("maxArrivalRate")) {
    contract.max_arrival_rate_hz = parse_ratio(*a);
  }
  if (auto w = node.attr("window")) {
    long long v = 0;
    std::size_t consumed = 0;
    try {
      v = std::stoll(*w, &consumed);
    } catch (const std::exception&) {
      throw AdlError("expected a number in TimingContract window '" + *w +
                     "'");
    }
    if (consumed != w->size()) {
      throw AdlError("trailing junk in TimingContract window '" + *w + "'");
    }
    if (v <= 0 || v > std::numeric_limits<std::uint32_t>::max()) {
      throw AdlError("TimingContract window out of range");
    }
    contract.window = static_cast<std::uint32_t>(v);
  }
  return contract;
}

void load_interfaces(const XmlNode& node, Component& component) {
  for (const XmlNode* itf : node.children_named("interface")) {
    component.add_interface({itf->require_attr("name"),
                             parse_role(itf->require_attr("role")),
                             itf->require_attr("signature")});
  }
  if (const XmlNode* content = node.child("content")) {
    const std::string cls = content->require_attr("class");
    if (auto* active = dynamic_cast<ActiveComponent*>(&component)) {
      active->set_content_class(cls);
    } else if (auto* passive = dynamic_cast<PassiveComponent*>(&component)) {
      passive->set_content_class(cls);
    }
  }
}

bool parse_bool(const std::string& text, const char* what) {
  if (text == "true") return true;
  if (text == "false") return false;
  throw AdlError(std::string("expected true/false in ") + what + " '" +
                 text + "'");
}

void load_active(const XmlNode& node, Architecture& arch) {
  const std::string name = node.require_attr("name");
  const auto activation = parse_activation(node.attr_or("type", "sporadic"));
  rtsj::RelativeTime period;
  if (auto p = node.attr("periodicity")) period = parse_duration(*p);
  if (auto p = node.attr("minInterarrival")) period = parse_duration(*p);
  auto& component = arch.add_active(name, activation, period);
  if (auto c = node.attr("cost")) component.set_cost(parse_duration(*c));
  if (auto c = node.attr("criticality")) {
    component.set_criticality(parse_criticality(*c));
  }
  if (auto s = node.attr("swappable")) {
    component.set_swappable(parse_bool(*s, "swappable"));
  }
  if (const XmlNode* contract = node.child("TimingContract")) {
    component.set_timing_contract(parse_timing_contract(*contract));
  }
  load_interfaces(node, component);
}

void load_passive(const XmlNode& node, Architecture& arch) {
  auto& component = arch.add_passive(node.require_attr("name"));
  if (auto s = node.attr("swappable")) {
    component.set_swappable(parse_bool(*s, "swappable"));
  }
  load_interfaces(node, component);
}

/// Re-runs `fn`, anchoring any failure at `node`'s element name and input
/// line — malformed <Mode>/<Rebind> content reports *where* it is broken
/// instead of a bare parse failure.
template <typename Fn>
void with_element_context(const XmlNode& node, Fn&& fn) {
  try {
    fn();
  } catch (const AdlError& e) {
    if (e.line() != 0) throw;  // already anchored at an inner element
    std::string reason = e.what();
    if (reason.rfind("adl: ", 0) == 0) reason = reason.substr(5);
    throw AdlError("in <" + node.name + "> (line " +
                       std::to_string(node.line) + "): " + reason,
                   node.line);
  } catch (const std::exception& e) {
    throw AdlError("in <" + node.name + "> (line " +
                       std::to_string(node.line) + "): " + e.what(),
                   node.line);
  }
}

/// `<Mode name="Degraded" degraded="true">` with `<Component>` children
/// (the mode's enabled set plus per-mode overrides) and `<Rebind>` children
/// (port redirections applied for the mode's duration).
void load_mode(const XmlNode& node, Architecture& arch) {
  model::ModeDecl mode;
  with_element_context(node, [&] {
    mode.name = node.require_attr("name");
    if (auto d = node.attr("degraded")) {
      mode.degraded = parse_bool(*d, "degraded");
    }
  });
  for (const XmlNode& child : node.children) {
    if (child.name == "Component") {
      with_element_context(child, [&] {
        model::ModeComponentConfig cfg;
        cfg.component = child.require_attr("name");
        if (auto p = child.attr("periodicity")) {
          cfg.period = parse_duration(*p);
        }
        if (const XmlNode* contract = child.child("TimingContract")) {
          cfg.contract = parse_timing_contract(*contract);
        }
        mode.components.push_back(std::move(cfg));
      });
    } else if (child.name == "Rebind") {
      with_element_context(child, [&] {
        mode.rebinds.push_back({child.require_attr("client"),
                                child.require_attr("port"),
                                child.require_attr("server")});
      });
    } else {
      throw AdlError("unexpected <" + child.name + "> inside <Mode> (line " +
                         std::to_string(child.line) + ")",
                     child.line);
    }
  }
  arch.add_mode(std::move(mode));
}

/// `<Tenant name="acme" criticalityFloor="high">` with `<Budget>`,
/// `<Member>`, `<Export>`, and `<Import>` children. The element's input
/// line is kept on the declaration so validator/admission diagnostics can
/// point back into the ADL source.
void load_tenant(const XmlNode& node, Architecture& arch) {
  model::TenantDecl tenant;
  tenant.adl_line = node.line;
  with_element_context(node, [&] {
    tenant.name = node.require_attr("name");
    if (auto f = node.attr("criticalityFloor")) {
      tenant.criticality_floor = parse_criticality(*f);
    }
  });
  for (const XmlNode& child : node.children) {
    if (child.name == "Budget") {
      with_element_context(child, [&] {
        if (auto c = child.attr("cpu")) {
          tenant.budget.cpu_utilization = parse_ratio(*c);
        }
        if (auto m = child.attr("memory")) {
          tenant.budget.memory_bytes = parse_size(*m);
        }
      });
    } else if (child.name == "Member") {
      with_element_context(child, [&] {
        tenant.members.push_back(child.require_attr("name"));
      });
    } else if (child.name == "Export") {
      with_element_context(child, [&] {
        tenant.exports.push_back({child.require_attr("capability"),
                                  child.require_attr("component"),
                                  child.require_attr("interface")});
      });
    } else if (child.name == "Import") {
      with_element_context(child, [&] {
        tenant.imports.push_back({child.require_attr("capability"),
                                  child.require_attr("from")});
      });
    } else {
      throw AdlError("unexpected <" + child.name + "> inside <Tenant> (line " +
                         std::to_string(child.line) + ")",
                     child.line);
    }
  }
  arch.add_tenant(std::move(tenant));
}

void load_binding(const XmlNode& node, Architecture& arch) {
  const XmlNode* client = node.child("client");
  const XmlNode* server = node.child("server");
  if (client == nullptr || server == nullptr) {
    throw AdlError("<Binding> needs <client> and <server> children");
  }
  Binding binding;
  binding.client = {client->require_attr("cname"),
                    client->require_attr("iname")};
  binding.server = {server->require_attr("cname"),
                    server->require_attr("iname")};
  if (const XmlNode* desc = node.child("BindDesc")) {
    const std::string protocol = desc->attr_or("protocol", "synchronous");
    if (protocol == "synchronous") {
      binding.desc.protocol = Protocol::Synchronous;
    } else if (protocol == "asynchronous") {
      binding.desc.protocol = Protocol::Asynchronous;
    } else {
      throw AdlError("unknown binding protocol '" + protocol + "'");
    }
    if (auto b = desc->attr("bufferSize")) {
      binding.desc.buffer_size = parse_size(*b);
    }
    binding.desc.pattern = desc->attr_or("pattern", "");
  }
  arch.add_binding(std::move(binding));
}

Component& resolve_ref(const XmlNode& node, Architecture& arch) {
  const std::string name = node.require_attr("name");
  Component* c = arch.find(name);
  if (c == nullptr) {
    throw AdlError("reference to undeclared component '" + name + "'");
  }
  return *c;
}

void load_thread_domain(const XmlNode& node, Architecture& arch,
                        Component* parent) {
  const XmlNode* desc = node.child("DomainDesc");
  if (desc == nullptr) {
    throw AdlError("<ThreadDomain> needs a <DomainDesc> child");
  }
  auto& domain = arch.add_thread_domain(
      node.require_attr("name"),
      parse_domain_type(desc->require_attr("type")),
      std::stoi(desc->attr_or("priority", "1")));
  if (parent != nullptr) arch.add_child(*parent, domain);
  for (const XmlNode* ref : node.children_named("ActiveComp")) {
    arch.add_child(domain, resolve_ref(*ref, arch));
  }
}

void load_memory_area(const XmlNode& node, Architecture& arch,
                      Component* parent) {
  const XmlNode* desc = node.child("AreaDesc");
  if (desc == nullptr) {
    throw AdlError("<MemoryArea> needs an <AreaDesc> child");
  }
  const AreaType type = parse_area_type(desc->require_attr("type"));
  std::size_t size = 0;
  if (auto s = desc->attr("size")) size = parse_size(*s);
  auto& area =
      arch.add_memory_area(node.require_attr("name"), type, size,
                           desc->attr_or("name", node.require_attr("name")));
  if (parent != nullptr) arch.add_child(*parent, area);
  for (const XmlNode& child : node.children) {
    if (child.name == "ThreadDomain") {
      load_thread_domain(child, arch, &area);
    } else if (child.name == "MemoryArea") {
      load_memory_area(child, arch, &area);
    } else if (child.name == "ActiveComp" || child.name == "PassiveComp" ||
               child.name == "Component") {
      arch.add_child(area, resolve_ref(child, arch));
    } else if (child.name != "AreaDesc") {
      throw AdlError("unexpected <" + child.name + "> inside <MemoryArea>");
    }
  }
}

}  // namespace

Architecture load_architecture(std::string_view adl_text) {
  const XmlNode root = parse_xml(adl_text);
  if (root.name != "Architecture") {
    throw AdlError("root element must be <Architecture>, got <" + root.name +
                   ">");
  }
  Architecture arch;
  // Pass 1: functional component declarations and bindings. Every loader
  // runs under with_element_context, so a malformed element reports its
  // element name and input line, not a bare parse failure.
  for (const XmlNode& child : root.children) {
    if (child.name == "ActiveComponent") {
      with_element_context(child, [&] { load_active(child, arch); });
    } else if (child.name == "PassiveComponent") {
      with_element_context(child, [&] { load_passive(child, arch); });
    }
  }
  for (const XmlNode& child : root.children) {
    if (child.name == "Binding") {
      with_element_context(child, [&] { load_binding(child, arch); });
    }
  }
  // Pass 2: non-functional composition and operational modes, both
  // referencing pass-1 components.
  for (const XmlNode& child : root.children) {
    if (child.name == "MemoryArea") {
      with_element_context(child,
                           [&] { load_memory_area(child, arch, nullptr); });
    } else if (child.name == "ThreadDomain") {
      with_element_context(child,
                           [&] { load_thread_domain(child, arch, nullptr); });
    } else if (child.name == "Mode") {
      load_mode(child, arch);
    } else if (child.name == "Tenant") {
      load_tenant(child, arch);
    } else if (child.name != "ActiveComponent" &&
               child.name != "PassiveComponent" && child.name != "Binding") {
      throw AdlError("unexpected top-level element <" + child.name + ">");
    }
  }
  return arch;
}

namespace {

/// One `<TimingContract>` element (max_digits10 keeps the save/load round
/// trip value-exact for any bound; default stream precision would quietly
/// perturb e.g. 1.0/3).
XmlNode contract_node(const model::TimingContract& tc) {
  XmlNode n;
  n.name = "TimingContract";
  const auto ratio = [](double v) {
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    return os.str();
  };
  if (!tc.wcet_budget.is_zero()) {
    n.attributes.emplace_back("wcet", format_duration(tc.wcet_budget));
  }
  if (tc.miss_ratio_bound < 1.0) {
    n.attributes.emplace_back("missRatioBound", ratio(tc.miss_ratio_bound));
  }
  if (tc.max_arrival_rate_hz > 0.0) {
    n.attributes.emplace_back("maxArrivalRate",
                              ratio(tc.max_arrival_rate_hz));
  }
  n.attributes.emplace_back("window", std::to_string(tc.window));
  return n;
}

XmlNode serialize_functional(const Component& c) {
  XmlNode node;
  if (const auto* active = dynamic_cast<const ActiveComponent*>(&c)) {
    node.name = "ActiveComponent";
    node.attributes.emplace_back("name", c.name());
    node.attributes.emplace_back("type",
                                 model::to_string(active->activation()));
    if (!active->period().is_zero()) {
      node.attributes.emplace_back(
          active->activation() == ActivationKind::Periodic
              ? "periodicity"
              : "minInterarrival",
          format_duration(active->period()));
    }
    if (!active->cost().is_zero()) {
      node.attributes.emplace_back("cost", format_duration(active->cost()));
    }
    if (active->criticality()) {
      node.attributes.emplace_back("criticality",
                                   model::to_string(*active->criticality()));
    }
  } else {
    node.name = "PassiveComponent";
    node.attributes.emplace_back("name", c.name());
  }
  if (c.swappable()) {
    node.attributes.emplace_back("swappable", "true");
  }
  for (const auto& itf : c.interfaces()) {
    XmlNode i;
    i.name = "interface";
    i.attributes.emplace_back("name", itf.name);
    i.attributes.emplace_back("role", model::to_string(itf.role));
    i.attributes.emplace_back("signature", itf.signature);
    node.children.push_back(std::move(i));
  }
  std::string content;
  if (const auto* active = dynamic_cast<const ActiveComponent*>(&c)) {
    content = active->content_class();
  } else if (const auto* passive = dynamic_cast<const PassiveComponent*>(&c)) {
    content = passive->content_class();
  }
  if (!content.empty()) {
    XmlNode n;
    n.name = "content";
    n.attributes.emplace_back("class", content);
    node.children.push_back(std::move(n));
  }
  if (const auto* active = dynamic_cast<const ActiveComponent*>(&c);
      active != nullptr && active->timing_contract()) {
    node.children.push_back(contract_node(*active->timing_contract()));
  }
  return node;
}

XmlNode serialize_mode(const model::ModeDecl& mode) {
  XmlNode node;
  node.name = "Mode";
  node.attributes.emplace_back("name", mode.name);
  if (mode.degraded) node.attributes.emplace_back("degraded", "true");
  for (const auto& cfg : mode.components) {
    XmlNode c;
    c.name = "Component";
    c.attributes.emplace_back("name", cfg.component);
    if (!cfg.period.is_zero()) {
      c.attributes.emplace_back("periodicity", format_duration(cfg.period));
    }
    if (cfg.contract) c.children.push_back(contract_node(*cfg.contract));
    node.children.push_back(std::move(c));
  }
  for (const auto& rebind : mode.rebinds) {
    XmlNode r;
    r.name = "Rebind";
    r.attributes.emplace_back("client", rebind.client);
    r.attributes.emplace_back("port", rebind.port);
    r.attributes.emplace_back("server", rebind.server);
    node.children.push_back(std::move(r));
  }
  return node;
}

XmlNode serialize_tenant(const model::TenantDecl& tenant) {
  XmlNode node;
  node.name = "Tenant";
  node.attributes.emplace_back("name", tenant.name);
  if (tenant.criticality_floor != model::Criticality::Low) {
    node.attributes.emplace_back("criticalityFloor",
                                 model::to_string(tenant.criticality_floor));
  }
  if (tenant.budget != model::TenantBudget{}) {
    XmlNode budget;
    budget.name = "Budget";
    if (tenant.budget.cpu_utilization > 0.0) {
      // max_digits10 keeps the save/load round trip value-exact, matching
      // the contract serializer.
      std::ostringstream os;
      os << std::setprecision(std::numeric_limits<double>::max_digits10)
         << tenant.budget.cpu_utilization;
      budget.attributes.emplace_back("cpu", os.str());
    }
    if (tenant.budget.memory_bytes != 0) {
      budget.attributes.emplace_back("memory",
                                     format_size(tenant.budget.memory_bytes));
    }
    node.children.push_back(std::move(budget));
  }
  for (const std::string& member : tenant.members) {
    XmlNode m;
    m.name = "Member";
    m.attributes.emplace_back("name", member);
    node.children.push_back(std::move(m));
  }
  for (const auto& e : tenant.exports) {
    XmlNode x;
    x.name = "Export";
    x.attributes.emplace_back("capability", e.capability);
    x.attributes.emplace_back("component", e.component);
    x.attributes.emplace_back("interface", e.interface);
    node.children.push_back(std::move(x));
  }
  for (const auto& i : tenant.imports) {
    XmlNode x;
    x.name = "Import";
    x.attributes.emplace_back("capability", i.capability);
    x.attributes.emplace_back("from", i.from_tenant);
    node.children.push_back(std::move(x));
  }
  return node;
}

XmlNode serialize_nonfunctional(const Component& c) {
  XmlNode node;
  if (const auto* domain = dynamic_cast<const ThreadDomain*>(&c)) {
    node.name = "ThreadDomain";
    node.attributes.emplace_back("name", c.name());
    for (const Component* sub : c.subs()) {
      XmlNode ref;
      ref.name = "ActiveComp";
      ref.attributes.emplace_back("name", sub->name());
      node.children.push_back(std::move(ref));
    }
    XmlNode desc;
    desc.name = "DomainDesc";
    desc.attributes.emplace_back("type", model::to_string(domain->type()));
    desc.attributes.emplace_back("priority",
                                 std::to_string(domain->priority()));
    node.children.push_back(std::move(desc));
    return node;
  }
  const auto* area = dynamic_cast<const MemoryAreaComponent*>(&c);
  node.name = "MemoryArea";
  node.attributes.emplace_back("name", c.name());
  for (const Component* sub : c.subs()) {
    if (sub->is_functional()) {
      XmlNode ref;
      ref.name = sub->kind() == ComponentKind::Active ? "ActiveComp"
                                                      : "PassiveComp";
      ref.attributes.emplace_back("name", sub->name());
      node.children.push_back(std::move(ref));
    } else {
      node.children.push_back(serialize_nonfunctional(*sub));
    }
  }
  XmlNode desc;
  desc.name = "AreaDesc";
  desc.attributes.emplace_back("type", model::to_string(area->type()));
  if (area->area_name() != area->name()) {
    desc.attributes.emplace_back("name", area->area_name());
  }
  if (area->size_bytes() != 0) {
    desc.attributes.emplace_back("size", format_size(area->size_bytes()));
  }
  node.children.push_back(std::move(desc));
  return node;
}

}  // namespace

std::string save_architecture(const Architecture& arch) {
  XmlNode root;
  root.name = "Architecture";
  for (const auto& owned : arch.components()) {
    if (owned->is_functional()) {
      root.children.push_back(serialize_functional(*owned));
    }
  }
  for (const Binding& b : arch.bindings()) {
    XmlNode node;
    node.name = "Binding";
    XmlNode client;
    client.name = "client";
    client.attributes.emplace_back("cname", b.client.component);
    client.attributes.emplace_back("iname", b.client.interface);
    XmlNode server;
    server.name = "server";
    server.attributes.emplace_back("cname", b.server.component);
    server.attributes.emplace_back("iname", b.server.interface);
    node.children.push_back(std::move(client));
    node.children.push_back(std::move(server));
    XmlNode desc;
    desc.name = "BindDesc";
    desc.attributes.emplace_back("protocol",
                                 model::to_string(b.desc.protocol));
    if (b.desc.buffer_size != 0) {
      desc.attributes.emplace_back("bufferSize",
                                   std::to_string(b.desc.buffer_size));
    }
    if (!b.desc.pattern.empty()) {
      desc.attributes.emplace_back("pattern", b.desc.pattern);
    }
    node.children.push_back(std::move(desc));
    root.children.push_back(std::move(node));
  }
  for (Component* top : arch.roots()) {
    if (!top->is_functional()) {
      root.children.push_back(serialize_nonfunctional(*top));
    }
  }
  for (const model::ModeDecl& mode : arch.modes()) {
    root.children.push_back(serialize_mode(mode));
  }
  for (const model::TenantDecl& tenant : arch.tenants()) {
    root.children.push_back(serialize_tenant(tenant));
  }
  return to_xml(root);
}

}  // namespace rtcf::adl
