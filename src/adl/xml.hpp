// Minimal, dependency-free XML for the ADL (Fig. 4 dialect).
//
// Supports: elements, attributes (single or double quoted), nested
// children, text content, comments, processing instructions/declarations
// (skipped), self-closing tags, and the five predefined entities. That is
// everything the paper's architecture description language needs.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtcf::adl {

/// Parse failure with 1-based line/column of the offending input.
class XmlParseError : public std::runtime_error {
 public:
  XmlParseError(const std::string& message, std::size_t line,
                std::size_t column);
  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// One element of the DOM.
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  std::string text;  ///< Concatenated character data directly inside.
  /// 1-based input line of the element's open tag (0 for synthesized
  /// nodes); loaders use it to anchor content diagnostics.
  std::size_t line = 0;

  /// Attribute lookup; nullopt when absent.
  std::optional<std::string> attr(std::string_view key) const;
  /// Attribute lookup with default.
  std::string attr_or(std::string_view key, std::string fallback) const;
  /// Attribute lookup that throws std::invalid_argument when absent.
  std::string require_attr(std::string_view key) const;

  /// First child element with the given name, or nullptr.
  const XmlNode* child(std::string_view name) const noexcept;
  /// All child elements with the given name, in document order.
  std::vector<const XmlNode*> children_named(std::string_view name) const;
};

/// Parses a complete document and returns its root element.
XmlNode parse_xml(std::string_view input);

/// Escapes the five predefined entities for attribute/text emission.
std::string escape_xml(std::string_view raw);

/// Serializes a node (and subtree) with two-space indentation.
std::string to_xml(const XmlNode& node, std::size_t indent = 0);

}  // namespace rtcf::adl
