#include "adl/xml.hpp"

#include <cctype>
#include <sstream>

namespace rtcf::adl {

XmlParseError::XmlParseError(const std::string& message, std::size_t line,
                             std::size_t column)
    : std::runtime_error("xml parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

std::optional<std::string> XmlNode::attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string XmlNode::attr_or(std::string_view key,
                             std::string fallback) const {
  auto v = attr(key);
  return v ? *v : std::move(fallback);
}

std::string XmlNode::require_attr(std::string_view key) const {
  auto v = attr(key);
  if (!v) {
    throw std::invalid_argument("element <" + name + "> missing attribute '" +
                                std::string(key) + "'");
  }
  return *v;
}

const XmlNode* XmlNode::child(std::string_view name) const noexcept {
  for (const auto& c : children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c.name == name) out.push_back(&c);
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  XmlNode parse_document() {
    skip_misc();
    if (eof()) fail("document has no root element");
    XmlNode root = parse_element();
    skip_misc();
    if (!eof()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw XmlParseError(message, line_, column_);
  }

  bool eof() const noexcept { return pos_ >= input_.size(); }
  char peek() const noexcept { return eof() ? '\0' : input_[pos_]; }
  bool starts_with(std::string_view s) const noexcept {
    return input_.substr(pos_, s.size()) == s;
  }

  char advance() {
    if (eof()) fail("unexpected end of input");
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void advance_n(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) advance();
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }

  /// Skips whitespace, comments, declarations and processing instructions.
  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (starts_with("<!--")) {
        advance_n(4);
        while (!starts_with("-->")) {
          if (eof()) fail("unterminated comment");
          advance();
        }
        advance_n(3);
      } else if (starts_with("<?")) {
        advance_n(2);
        while (!starts_with("?>")) {
          if (eof()) fail("unterminated processing instruction");
          advance();
        }
        advance_n(2);
      } else if (starts_with("<!DOCTYPE")) {
        while (!eof() && peek() != '>') advance();
        if (!eof()) advance();
      } else {
        return;
      }
    }
  }

  static bool is_name_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool is_name_char(char c) noexcept {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string name;
    while (!eof() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto end = raw.find(';', i);
      if (end == std::string_view::npos) fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, end - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else {
        fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = end;
    }
    return out;
  }

  std::pair<std::string, std::string> parse_attribute() {
    std::string key = parse_name();
    skip_whitespace();
    if (peek() != '=') fail("expected '=' after attribute name");
    advance();
    skip_whitespace();
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    std::string raw;
    while (peek() != quote) {
      if (eof()) fail("unterminated attribute value");
      raw.push_back(advance());
    }
    advance();  // closing quote
    return {std::move(key), decode_entities(raw)};
  }

  XmlNode parse_element() {
    if (peek() != '<') fail("expected '<'");
    const std::size_t open_line = line_;
    advance();
    XmlNode node;
    node.line = open_line;
    node.name = parse_name();
    for (;;) {
      skip_whitespace();
      if (starts_with("/>")) {
        advance_n(2);
        return node;
      }
      if (peek() == '>') {
        advance();
        break;
      }
      node.attributes.push_back(parse_attribute());
    }
    // Content until matching close tag.
    for (;;) {
      if (starts_with("</")) {
        advance_n(2);
        const std::string close = parse_name();
        if (close != node.name) {
          fail("mismatched close tag </" + close + "> for <" + node.name +
               ">");
        }
        skip_whitespace();
        if (peek() != '>') fail("malformed close tag");
        advance();
        return node;
      }
      if (starts_with("<!--")) {
        skip_misc();
        continue;
      }
      if (peek() == '<') {
        node.children.push_back(parse_element());
        continue;
      }
      if (eof()) fail("unterminated element <" + node.name + ">");
      std::string raw;
      while (!eof() && peek() != '<') raw.push_back(advance());
      std::string decoded = decode_entities(raw);
      // Trim pure-indentation text runs.
      const auto first =
          decoded.find_first_not_of(" \t\r\n");
      if (first != std::string::npos) {
        const auto last = decoded.find_last_not_of(" \t\r\n");
        node.text += decoded.substr(first, last - first + 1);
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

XmlNode parse_xml(std::string_view input) {
  return Parser(input).parse_document();
}

std::string escape_xml(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string to_xml(const XmlNode& node, std::size_t indent) {
  std::ostringstream os;
  const std::string pad(indent * 2, ' ');
  os << pad << '<' << node.name;
  for (const auto& [k, v] : node.attributes) {
    os << ' ' << k << "=\"" << escape_xml(v) << '"';
  }
  if (node.children.empty() && node.text.empty()) {
    os << "/>\n";
    return os.str();
  }
  os << '>';
  if (!node.text.empty()) os << escape_xml(node.text);
  if (!node.children.empty()) {
    os << '\n';
    for (const auto& c : node.children) os << to_xml(c, indent + 1);
    os << pad;
  }
  os << "</" << node.name << ">\n";
  return os.str();
}

}  // namespace rtcf::adl
