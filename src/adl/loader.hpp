// ADL loader and serializer for the paper's XML dialect (Fig. 4).
//
// The dialect, unchanged from the paper:
//
//   <Architecture>
//     <ActiveComponent name="ProductionLine" type="periodic"
//                      periodicity="10ms">
//       <interface name="iMonitor" role="client" signature="IMonitor"/>
//       <content class="ProductionLineImpl"/>
//     </ActiveComponent>
//     <PassiveComponent name="Console"> ... </PassiveComponent>
//     <Binding>
//       <client cname="ProductionLine" iname="iMonitor"/>
//       <server cname="MonitoringSystem" iname="iMonitor"/>
//       <BindDesc protocol="asynchronous" bufferSize="10"/>
//     </Binding>
//     <MemoryArea name="Imm1">
//       <ThreadDomain name="NHRT1">
//         <ActiveComp name="ProductionLine"/>
//         <DomainDesc type="NHRT" priority="30"/>
//       </ThreadDomain>
//       <AreaDesc type="immortal" size="600KB"/>
//     </MemoryArea>
//   </Architecture>
//
// Functional components are declared at the top level and *referenced*
// inside non-functional composites (<ActiveComp>/<PassiveComp> name refs),
// which is how the three design views stay independent in one document.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "model/metamodel.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::adl {

/// Malformed architecture description (well-formed XML, bad content).
/// Errors raised while loading an element carry the element's 1-based
/// input line (0 when no element context applies), and the message names
/// the element — "in <Rebind> (line 12): …" — instead of a bare parse
/// failure.
class AdlError : public std::runtime_error {
 public:
  explicit AdlError(const std::string& message)
      : std::runtime_error("adl: " + message) {}
  AdlError(const std::string& message, std::size_t line)
      : std::runtime_error("adl: " + message), line_(line) {}

  /// Input line of the element the error is anchored to; 0 = none.
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_ = 0;
};

/// Parses "10ms", "250us", "1s", "5000ns" (bare numbers = nanoseconds).
rtsj::RelativeTime parse_duration(std::string_view text);

/// Parses "600KB", "28KB", "2MB", "512" (bare numbers = bytes).
std::size_t parse_size(std::string_view text);

/// Renders a duration/size back into canonical ADL spelling.
std::string format_duration(rtsj::RelativeTime t);
std::string format_size(std::size_t bytes);

/// Builds an Architecture from ADL text. Throws XmlParseError on malformed
/// XML and AdlError on malformed content. The result is *not* validated
/// against the RTSJ rules — run validate::validate() next, as the design
/// flow prescribes.
model::Architecture load_architecture(std::string_view adl_text);

/// Serializes an architecture back to ADL text (round-trip stable).
std::string save_architecture(const model::Architecture& arch);

}  // namespace rtcf::adl
