#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace rtcf::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

const std::vector<double>& SampleSet::sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  return sorted_;
}

double SampleSet::percentile(double p) const {
  RTCF_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  const auto& s = sorted();
  RTCF_REQUIRE(!s.empty(), "percentile of empty sample set");
  if (s.size() == 1) return s.front();
  const double rank = (p / 100.0) * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] + frac * (s[lo + 1] - s[lo]);
}

double SampleSet::min() const {
  RTCF_REQUIRE(!samples_.empty(), "min of empty sample set");
  return sorted().front();
}

double SampleSet::max() const {
  RTCF_REQUIRE(!samples_.empty(), "max of empty sample set");
  return sorted().back();
}

double SampleSet::mean() const {
  RTCF_REQUIRE(!samples_.empty(), "mean of empty sample set");
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::jitter() const {
  const double med = median();
  double sum = 0.0;
  for (double x : samples_) sum += std::abs(x - med);
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::worst_case_deviation() const {
  const double med = median();
  double worst = 0.0;
  for (double x : samples_) worst = std::max(worst, std::abs(x - med));
  return worst;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  RTCF_REQUIRE(hi > lo, "histogram range must be non-empty");
  RTCF_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double Histogram::bucket_low(std::size_t i) const {
  RTCF_REQUIRE(i < counts_.size(), "bucket index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

std::string Histogram::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << bucket_low(i) << "," << counts_[i] << "\n";
  }
  return os.str();
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    os.width(12);
    os << bucket_low(i) << " |";
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) os << "  (underflow: " << underflow_ << ")\n";
  if (overflow_ != 0) os << "  (overflow: " << overflow_ << ")\n";
  return os.str();
}

}  // namespace rtcf::util
