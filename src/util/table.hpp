// Plain-text table rendering for the benchmark harnesses, so every bench
// binary can print the same rows the paper's figures/tables report.
#pragma once

#include <string>
#include <vector>

namespace rtcf::util {

/// Accumulates rows of strings and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Aligned, pipe-separated rendering with a header underline.
  std::string to_string() const;
  /// Comma-separated rendering (header row first).
  std::string to_csv() const;

  /// Formats a double with `digits` fractional digits.
  static std::string num(double value, int digits = 3);
  /// Formats a byte count as "N bytes (X.Y KB)".
  static std::string bytes(std::size_t n);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtcf::util
