// Statistics helpers used by the benchmark harnesses and the scheduler
// simulator: online mean/variance, exact percentile sets, fixed-bucket
// histograms, and the jitter definition used throughout EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtcf::util {

/// Welford online accumulator for mean and variance.
class OnlineStats {
 public:
  void add(double x) noexcept;
  /// Number of samples accumulated so far.
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples and answers percentile / dispersion queries.
///
/// The evaluation section of the paper reports a median and an "average
/// jitter" per variant (Fig. 7b). We define jitter as the mean absolute
/// deviation from the median, which matches the paper's "average jitter"
/// reading and is robust to one-sided tails.
class SampleSet {
 public:
  SampleSet() = default;
  explicit SampleSet(std::size_t reserve) { samples_.reserve(reserve); }

  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const std::vector<double>& samples() const noexcept { return samples_; }

  /// Interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double min() const;
  double max() const;
  double mean() const;
  /// Mean absolute deviation from the median (our Fig. 7b jitter).
  double jitter() const;
  /// Maximum observed deviation from the median.
  double worst_case_deviation() const;

 private:
  // Sorted lazily; mutable cache invalidated by add().
  mutable std::vector<double> sorted_;
  std::vector<double> samples_;
  const std::vector<double>& sorted() const;
};

/// Fixed-width-bucket histogram over [lo, hi); used to print the Fig. 7a
/// execution-time distribution as an ASCII/CSV series.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_low(std::size_t i) const;
  double bucket_width() const noexcept { return width_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Renders one "bucket_low,count" line per bucket.
  std::string to_csv() const;
  /// Renders a column chart with `width` characters for the modal bucket.
  std::string to_ascii(std::size_t width = 60) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace rtcf::util
