// Bump-pointer arena with a high-water mark, the backing store for RTSJ
// memory areas (ImmortalMemory grows in chunks; ScopedMemory preallocates a
// single fixed region, matching RTSJ LTMemory's linear-time allocation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rtcf::util {

/// A bump allocator over one or more owned chunks.
///
/// `reset()` frees nothing but rewinds the bump pointer, which is exactly
/// the reclamation model of an RTSJ scoped memory when its thread reference
/// count drops to zero.
class Arena {
 public:
  /// @param initial_capacity  Bytes reserved in the first chunk.
  /// @param fixed             When true, allocation beyond the initial chunk
  ///                          fails (ScopedMemory semantics: region size is
  ///                          declared up front). When false, new chunks are
  ///                          chained on demand (ImmortalMemory semantics).
  explicit Arena(std::size_t initial_capacity, bool fixed = false);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Allocates `size` bytes aligned to `align`; returns nullptr when the
  /// arena is fixed and exhausted.
  void* allocate(std::size_t size, std::size_t align) noexcept;

  /// Rewinds all bump pointers; previously returned pointers become invalid.
  void reset() noexcept;

  /// Bytes handed out since construction or the last reset().
  std::size_t consumed() const noexcept { return consumed_; }
  /// Total bytes owned across all chunks.
  std::size_t capacity() const noexcept { return capacity_; }
  /// Remaining bytes in the current chunk (fixed arenas: total remaining).
  std::size_t remaining() const noexcept;
  /// Largest `consumed()` value ever observed (footprint reporting).
  std::size_t high_water_mark() const noexcept { return high_water_; }
  bool fixed() const noexcept { return fixed_; }

  /// True when `p` points into one of the arena's chunks. Used by the RTSJ
  /// layer to answer "which memory area owns this object?".
  bool contains(const void* p) const noexcept;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  bool grow(std::size_t at_least);

  std::vector<Chunk> chunks_;
  std::size_t consumed_ = 0;
  std::size_t capacity_ = 0;
  std::size_t high_water_ = 0;
  bool fixed_;
};

}  // namespace rtcf::util
