// Lightweight contract-checking macros used across the framework.
//
// RTCF_ASSERT is an internal invariant check (never fires on well-formed
// usage); RTCF_REQUIRE throws std::invalid_argument and is used to validate
// caller-supplied values on public API boundaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rtcf {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "rtcf: invariant violated: %s (%s:%d)\n", expr, file,
               line);
  std::abort();
}

}  // namespace rtcf

#define RTCF_ASSERT(expr)                               \
  do {                                                  \
    if (!(expr)) ::rtcf::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)

#define RTCF_REQUIRE(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) throw std::invalid_argument(std::string("rtcf: ") + (msg)); \
  } while (0)
