// Bounded ring buffers used by the asynchronous communication layer.
//
// Two flavours are provided:
//   * RingBuffer<T>      — single-threaded bounded FIFO (used inside the
//                          run-to-completion executor where handlers never
//                          race);
//   * SpscRingBuffer<T>  — wait-free single-producer/single-consumer ring
//                          for wall-clock executions across OS threads.
//
// Capacities are fixed at construction: RTSJ-style systems preallocate all
// communication state up front (the paper's `BindDesc bufferSize` attribute).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace rtcf::util {

/// Single-threaded bounded FIFO with preallocated storage.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    RTCF_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == slots_.size(); }

  /// Returns false (and drops nothing) when the buffer is full.
  bool push(T value) {
    if (full()) return false;
    slots_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
    return true;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T out = std::move(slots_[head_]);
    head_ = next(head_);
    --size_;
    return out;
  }

  /// Discards all queued elements.
  void clear() noexcept {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::size_t next(std::size_t i) const noexcept {
    return (i + 1 == slots_.size()) ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

/// Wait-free bounded SPSC queue (one slot sacrificed to distinguish
/// full from empty).
template <typename T>
class SpscRingBuffer {
 public:
  explicit SpscRingBuffer(std::size_t capacity) : slots_(capacity + 1) {
    RTCF_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  std::size_t capacity() const noexcept { return slots_.size() - 1; }

  bool push(T value) {
    const auto tail = tail_.load(std::memory_order_relaxed);
    const auto next_tail = next(tail);
    if (next_tail == head_.load(std::memory_order_acquire)) return false;
    slots_[tail] = std::move(value);
    tail_.store(next_tail, std::memory_order_release);
    return true;
  }

  std::optional<T> pop() {
    const auto head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    T out = std::move(slots_[head]);
    head_.store(next(head), std::memory_order_release);
    return out;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::size_t next(std::size_t i) const noexcept {
    return (i + 1 == slots_.size()) ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

}  // namespace rtcf::util
