#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace rtcf::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RTCF_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  RTCF_REQUIRE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c];
      os << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string Table::bytes(std::size_t n) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%zu bytes (%.1f KB)", n,
                static_cast<double>(n) / 1024.0);
  return buf;
}

}  // namespace rtcf::util
