#include "util/arena.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rtcf::util {

namespace {
std::size_t align_up(std::size_t value, std::size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

Arena::Arena(std::size_t initial_capacity, bool fixed) : fixed_(fixed) {
  RTCF_REQUIRE(initial_capacity > 0, "arena capacity must be positive");
  grow(initial_capacity);
}

bool Arena::grow(std::size_t at_least) {
  Chunk chunk;
  // Double the previous chunk but always satisfy the request.
  const std::size_t prev = chunks_.empty() ? 0 : chunks_.back().size;
  chunk.size = std::max(at_least, prev * 2);
  chunk.data = std::make_unique<std::byte[]>(chunk.size);
  capacity_ += chunk.size;
  chunks_.push_back(std::move(chunk));
  return true;
}

void* Arena::allocate(std::size_t size, std::size_t align) noexcept {
  if (size == 0) size = 1;
  if (align == 0) align = alignof(std::max_align_t);
  Chunk* chunk = &chunks_.back();
  auto base = reinterpret_cast<std::uintptr_t>(chunk->data.get());
  std::size_t offset = align_up(chunk->used + static_cast<std::size_t>(
                                                  base & (align - 1)),
                                align) -
                       static_cast<std::size_t>(base & (align - 1));
  // Simpler: compute aligned address directly.
  std::uintptr_t addr = align_up(base + chunk->used, align);
  offset = static_cast<std::size_t>(addr - base);
  if (offset + size > chunk->size) {
    if (fixed_) return nullptr;
    grow(size + align);
    chunk = &chunks_.back();
    base = reinterpret_cast<std::uintptr_t>(chunk->data.get());
    addr = align_up(base, align);
    offset = static_cast<std::size_t>(addr - base);
    if (offset + size > chunk->size) return nullptr;
  }
  chunk->used = offset + size;
  consumed_ += size;
  high_water_ = std::max(high_water_, consumed_);
  return reinterpret_cast<void*>(addr);
}

void Arena::reset() noexcept {
  for (auto& chunk : chunks_) chunk.used = 0;
  consumed_ = 0;
}

std::size_t Arena::remaining() const noexcept {
  std::size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.size - chunk.used;
  return total;
}

bool Arena::contains(const void* p) const noexcept {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  for (const auto& chunk : chunks_) {
    const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    if (addr >= base && addr < base + chunk.size) return true;
  }
  return false;
}

}  // namespace rtcf::util
