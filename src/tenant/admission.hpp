// RTA-gated admission control for multi-tenant assemblies.
//
// A candidate tenant slice may join a live cluster only if the *composed*
// assembly — every resident tenant plus the candidate — passes the full
// rule engine, the TENANT-* isolation rules, and response-time analysis in
// every operational mode. Admission therefore can never harm a resident
// tenant's deadlines: the schedulability proof covers residents and
// candidate together, before anything changes.
//
// admit() is pure: it composes, validates, analyses, and synthesizes the
// transition (a reconfig::ReloadPlan riding the existing plan_reload
// machinery), but applies nothing. An accepted decision carries the
// PlanDelta the caller hands to ModeManager::request_reload() or the
// two-phase distributed coordinator; a rejected decision carries
// machine-readable reasons (stable rule id, subject, owning tenant, ADL
// line) and leaves the running plan epoch untouched by construction.
//
// Rule identifiers added by admission itself:
//   TENANT-ADMIT-RTA   the composed task set (no modes declared) fails
//                      response-time analysis; the diagnostic names the
//                      first task whose bound diverges. Mode-declaring
//                      assemblies get the same gate per mode via the
//                      validator's MODE-SCHEDULABLE rule.
#pragma once

#include <string>
#include <vector>

#include "model/assembly_plan.hpp"
#include "model/metamodel.hpp"
#include "reconfig/plan_delta.hpp"
#include "validate/report.hpp"

namespace rtcf::tenant {

/// One machine-readable rejection reason: the stable rule id, the element
/// it fired on, the tenant it concerns (empty for assembly-wide findings),
/// and the tenant's ADL source line when known.
struct AdmissionReason {
  /// Stable rule id (TENANT-*, MODE-SCHEDULABLE, DELTA-*, ...).
  std::string rule;
  /// Offending element (component, binding, tenant, or mode name).
  std::string subject;
  /// Owning tenant of the subject, when resolvable.
  std::string tenant;
  /// 1-based ADL line of the owning tenant's declaration; 0 when unknown.
  int adl_line = 0;
  /// Human-readable detail (already carries the line context).
  std::string message;
};

/// Schedulability verdict of one operational mode of the composed
/// assembly (mode is empty for the modeless whole-assembly analysis).
struct ModeRta {
  /// Mode name; empty for the modeless composed task set.
  std::string mode;
  /// True when response-time analysis bounds every task in the mode.
  bool schedulable = true;
};

/// Outcome of one admission request.
struct AdmissionDecision {
  /// True when the candidate may join; the reload below is then valid.
  bool accepted = false;
  /// Names of the tenants the candidate slice declares.
  std::vector<std::string> candidate_tenants;
  /// Machine-readable rejection reasons (empty when accepted).
  std::vector<AdmissionReason> reasons;
  /// Per-mode composed-RTA verdicts.
  std::vector<ModeRta> rta;
  /// Full diagnostics of the composition + validation + delta pipeline.
  validate::Report report;
  /// The staged transition onto the composed assembly (valid when
  /// accepted): delta + placed target snapshot, ready for
  /// ModeManager::request_reload or the distributed coordinator.
  reconfig::ReloadPlan reload;

  /// The first reason carrying `rule`, or nullptr.
  const AdmissionReason* reason_for(const std::string& rule) const noexcept;
};

/// The admission gate. Stateless: every admit() call is an independent
/// judgement of candidate-composed-with-residents.
class AdmissionController {
 public:
  /// Judges `candidate` (a tenant slice architecture) against the
  /// residents (`resident` architecture, whose running snapshot is
  /// `running`). On acceptance the decision's reload carries the
  /// PlanDelta from `running` to the composed assembly; on rejection the
  /// reasons list every rule the composition violates.
  AdmissionDecision admit(const model::AssemblyPlan& running,
                          const model::Architecture& resident,
                          const model::Architecture& candidate) const;
};

}  // namespace rtcf::tenant
