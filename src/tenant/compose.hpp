// Architecture composition for multi-tenant admission.
//
// Admission control needs the *composed* assembly — every resident
// tenant's slice plus the candidate's — as one Architecture, because both
// the rule engine and the response-time analysis reason over whole
// assemblies. Architecture owns its components (non-copyable), so
// composition re-declares everything by value into a fresh instance.
//
// Name collisions between the slices are composition errors, reported
// under the stable rule id TENANT-COMPOSE-CONFLICT: two tenants declaring
// the same component, area, domain, or tenant name cannot coexist on one
// cluster. Modes are merged by name — each slice contributes its own
// component configs and rebinds to the shared mode, which is what lets a
// candidate tenant join an assembly that already declares `normal` and
// `degraded` modes.
#pragma once

#include "model/metamodel.hpp"
#include "validate/report.hpp"

namespace rtcf::tenant {

/// Re-declares every component, binding, mode, and tenant of `from` into
/// `into`. Collisions (component or tenant names already present) are
/// appended to `report` as TENANT-COMPOSE-CONFLICT errors and the
/// colliding declaration is skipped; same-name modes are merged.
void append_architecture(model::Architecture& into,
                         const model::Architecture& from,
                         validate::Report& report);

/// Composes `base` and `overlay` into a fresh Architecture (both inputs
/// are only read). Collision diagnostics land in `report`.
model::Architecture merge_architectures(const model::Architecture& base,
                                        const model::Architecture& overlay,
                                        validate::Report& report);

}  // namespace rtcf::tenant
