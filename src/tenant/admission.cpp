#include "tenant/admission.hpp"

#include <sstream>

#include "sim/rta.hpp"
#include "soleil/plan.hpp"
#include "tenant/compose.hpp"
#include "validate/tenancy.hpp"
#include "validate/validator.hpp"

namespace rtcf::tenant {

using model::Architecture;
using model::AssemblyPlan;
using validate::Report;
using validate::Severity;

namespace {

/// Folds `from` into `into`, preserving severity and order.
void append_report(Report& into, const Report& from) {
  for (const auto& d : from.diagnostics()) {
    into.add(d.severity, d.rule, d.subject, d.message);
  }
}

/// Whole-assembly RTA for compositions that declare no modes (the
/// validator's MODE-SCHEDULABLE covers the mode-declaring case per mode).
void check_composed_rta(const Architecture& merged, Report& report) {
  const auto tasks = sim::tasks_from_architecture(merged);
  const sim::RtaResult result = sim::analyze(tasks);
  if (result.all_schedulable) return;
  for (const auto& entry : result.entries) {
    if (entry.schedulable) continue;
    std::ostringstream os;
    os << "composed task set is not schedulable: response-time analysis "
          "finds no bound within the deadline for '"
       << entry.task.name << "' (period " << entry.task.period.to_micros()
       << "us, cost " << entry.task.cost.to_micros() << "us)";
    report.add(Severity::Error, "TENANT-ADMIT-RTA", entry.task.name,
               os.str());
  }
}

}  // namespace

const AdmissionReason* AdmissionDecision::reason_for(
    const std::string& rule) const noexcept {
  for (const auto& r : reasons) {
    if (r.rule == rule) return &r;
  }
  return nullptr;
}

AdmissionDecision AdmissionController::admit(
    const AssemblyPlan& running, const Architecture& resident,
    const Architecture& candidate) const {
  AdmissionDecision decision;
  for (const auto& tenant : candidate.tenants()) {
    decision.candidate_tenants.push_back(tenant.name);
  }

  // 1. Compose: residents + candidate as one assembly. Name collisions
  //    are already grounds for rejection.
  Report compose_report;
  Architecture merged =
      merge_architectures(resident, candidate, compose_report);
  append_report(decision.report, compose_report);

  // 2. Full rule engine on the composition (RTSJ rules, pattern legality,
  //    per-mode RTA via MODE-SCHEDULABLE) plus the modeless composed-RTA
  //    gate, plus the TENANT-* isolation rules over the snapshot.
  if (compose_report.ok()) {
    append_report(decision.report, validate::validate(merged));
    if (merged.modes().empty()) {
      check_composed_rta(merged, decision.report);
    }
    const AssemblyPlan composed = soleil::snapshot_assembly(
        merged, running.partition_count());
    append_report(decision.report, validate::validate_tenancy(composed));
  }

  // 3. Per-mode RTA verdicts for the decision record (schedulable modes
  //    are listed too — the caller sees what was proven, not only what
  //    failed).
  if (merged.modes().empty()) {
    decision.rta.push_back(
        {std::string(), !decision.report.has_rule("TENANT-ADMIT-RTA")});
  } else {
    for (const auto& mode : merged.modes()) {
      bool schedulable = true;
      for (const auto& d :
           decision.report.by_rule("MODE-SCHEDULABLE")) {
        if (d.subject == mode.name) schedulable = false;
      }
      decision.rta.push_back({mode.name, schedulable});
    }
  }

  // 4. Synthesize the transition running -> composed through the existing
  //    reload pipeline (migration-constrained placement + DELTA-* rules),
  //    only when the composition itself is sound.
  if (decision.report.ok()) {
    decision.reload = reconfig::plan_reload(running, merged);
    append_report(decision.report, decision.reload.report);
  }

  decision.accepted = decision.report.ok();
  if (decision.accepted) return decision;

  // 5. Machine-readable rejection: every error becomes a reason carrying
  //    the owning tenant and its ADL line, so a caller (or an operator
  //    console) can point back into the candidate's source.
  const AssemblyPlan* target =
      decision.reload.target.components().empty() ? nullptr
                                                  : &decision.reload.target;
  for (const auto& d : decision.report.diagnostics()) {
    if (d.severity != Severity::Error) continue;
    AdmissionReason reason;
    reason.rule = d.rule;
    reason.subject = d.subject;
    reason.message = d.message;
    const model::TenantDecl* owner = merged.find_tenant(d.subject);
    if (owner == nullptr) owner = merged.tenant_of(d.subject);
    if (owner != nullptr) {
      reason.tenant = owner->name;
      reason.adl_line = owner->adl_line;
    } else if (target != nullptr) {
      if (const auto* spec = target->tenant_of(d.subject)) {
        reason.tenant = spec->name;
        reason.adl_line = spec->adl_line;
      }
    }
    decision.reasons.push_back(std::move(reason));
  }
  return decision;
}

}  // namespace rtcf::tenant
