#include "tenant/compose.hpp"

namespace rtcf::tenant {

using model::ActiveComponent;
using model::Architecture;
using model::Component;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::ThreadDomain;
using validate::Report;
using validate::Severity;

namespace {

/// Re-declares one component of `from` into `into` with all its value
/// attributes (containment is wired afterwards, once every node exists).
void clone_component(Architecture& into, const Component& c) {
  Component* copy = nullptr;
  switch (c.kind()) {
    case model::ComponentKind::Active: {
      const auto& active = static_cast<const ActiveComponent&>(c);
      auto& a = into.add_active(active.name(), active.activation(),
                                active.period());
      a.set_cost(active.cost());
      a.set_content_class(active.content_class());
      if (active.criticality()) a.set_criticality(*active.criticality());
      if (active.timing_contract()) {
        a.set_timing_contract(*active.timing_contract());
      }
      copy = &a;
      break;
    }
    case model::ComponentKind::Passive: {
      const auto& passive = static_cast<const PassiveComponent&>(c);
      auto& p = into.add_passive(passive.name());
      p.set_content_class(passive.content_class());
      copy = &p;
      break;
    }
    case model::ComponentKind::ThreadDomain: {
      const auto& domain = static_cast<const ThreadDomain&>(c);
      copy = &into.add_thread_domain(domain.name(), domain.type(),
                                     domain.priority());
      break;
    }
    case model::ComponentKind::MemoryArea: {
      const auto& area = static_cast<const MemoryAreaComponent&>(c);
      copy = &into.add_memory_area(area.name(), area.type(),
                                   area.size_bytes(), area.area_name());
      break;
    }
  }
  copy->set_swappable(c.swappable());
  for (const auto& itf : c.interfaces()) copy->add_interface(itf);
}

}  // namespace

void append_architecture(Architecture& into, const Architecture& from,
                         Report& report) {
  // Pass 1: declarations. A name already present in `into` is a
  // cross-slice collision — report it and skip the overlay declaration so
  // composition can keep going and surface every conflict at once.
  std::vector<const Component*> cloned;
  for (const auto& owned : from.components()) {
    if (into.find(owned->name()) != nullptr) {
      report.add(Severity::Error, "TENANT-COMPOSE-CONFLICT", owned->name(),
                 "component '" + owned->name() +
                     "' is declared by more than one tenant slice");
      continue;
    }
    clone_component(into, *owned);
    cloned.push_back(owned.get());
  }
  // Pass 2: containment among the cloned declarations.
  for (const Component* original : cloned) {
    Component* parent = into.find(original->name());
    for (const Component* sub : original->subs()) {
      Component* child = into.find(sub->name());
      if (parent != nullptr && child != nullptr) {
        into.add_child(*parent, *child);
      }
    }
  }
  for (const auto& binding : from.bindings()) {
    into.add_binding(binding);
  }
  // Modes merge by name: each slice contributes its configs/rebinds to the
  // shared mode. The degraded flag is sticky — flagged by any slice means
  // flagged in the composition (MODE-DEGRADED-UNIQUE still polices
  // conflicting flags on *different* modes).
  for (const auto& mode : from.modes()) {
    const model::ModeDecl* existing = into.find_mode(mode.name);
    if (existing == nullptr) {
      into.add_mode(mode);
      continue;
    }
    auto& merged = const_cast<model::ModeDecl&>(*existing);
    merged.degraded = merged.degraded || mode.degraded;
    for (const auto& cfg : mode.components) merged.components.push_back(cfg);
    for (const auto& rebind : mode.rebinds) merged.rebinds.push_back(rebind);
  }
  for (const auto& tenant : from.tenants()) {
    if (into.find_tenant(tenant.name) != nullptr) {
      report.add(Severity::Error, "TENANT-COMPOSE-CONFLICT", tenant.name,
                 "tenant '" + tenant.name +
                     "' is declared by more than one slice");
      continue;
    }
    into.add_tenant(tenant);
  }
}

Architecture merge_architectures(const Architecture& base,
                                 const Architecture& overlay,
                                 Report& report) {
  Architecture merged;
  append_architecture(merged, base, report);
  append_architecture(merged, overlay, report);
  return merged;
}

}  // namespace rtcf::tenant
