// Registry mapping ADL content-class names to factories.
//
// The paper's generated Java instantiates user classes by name inside the
// right allocation context; we reproduce that with a process-wide registry.
// Factories allocate the content *inside a given memory area*, so a
// Console deployed in a 28 KB scope really lives in that scope.
//
// Hot registration: classes may be registered while an assembly is running
// (the prerequisite for a live ADL reload that adds components whose
// implementations were not linked in at launch — the C++ stand-in for the
// paper's dynamic class loading). All entry points are mutex-guarded, and
// `revision()` counts registrations so a reload planner can tell whether
// the class set changed since it last validated a delta. The lock is never
// on a real-time path: creation happens at assembly time or inside the
// quiescence window of a reload.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "comm/content.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::runtime {

/// Process-wide content-class registry.
class ContentRegistry {
 public:
  using Factory = std::function<comm::Content*(rtsj::MemoryArea&)>;

  static ContentRegistry& instance();

  /// Registers T under `cls`. Re-registration replaces — new instances use
  /// the new implementation; running instances are untouched (the paper's
  /// adaptability story: swap the class, then reload the assembly).
  template <typename T>
  void register_class(const std::string& cls) {
    register_factory(cls, [](rtsj::MemoryArea& area) -> comm::Content* {
      return area.make<T>();
    });
  }

  void register_factory(const std::string& cls, Factory factory);

  bool contains(const std::string& cls) const;

  /// Instantiates `cls` inside `area`; throws std::invalid_argument for
  /// unregistered classes. The object's destructor runs when the area is
  /// reclaimed.
  comm::Content* create(const std::string& cls, rtsj::MemoryArea& area) const;

  std::vector<std::string> registered() const;

  /// Bumped on every (re)registration; lets a reload planner detect that
  /// the class set changed since a delta was validated.
  std::uint64_t revision() const noexcept;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
  std::uint64_t revision_ = 0;
};

}  // namespace rtcf::runtime

/// Registers ContentClass under its own name at static-init time.
#define RTCF_REGISTER_CONTENT(ContentClass)                                  \
  namespace {                                                                \
  const bool rtcf_registered_##ContentClass = [] {                           \
    ::rtcf::runtime::ContentRegistry::instance()                             \
        .register_class<ContentClass>(#ContentClass);                        \
    return true;                                                             \
  }();                                                                       \
  }
