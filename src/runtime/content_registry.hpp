// Registry mapping ADL content-class names to factories.
//
// The paper's generated Java instantiates user classes by name inside the
// right allocation context; we reproduce that with a process-wide registry.
// Factories allocate the content *inside a given memory area*, so a
// Console deployed in a 28 KB scope really lives in that scope.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "comm/content.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::runtime {

/// Process-wide content-class registry.
class ContentRegistry {
 public:
  using Factory = std::function<comm::Content*(rtsj::MemoryArea&)>;

  static ContentRegistry& instance();

  /// Registers T under `cls`. Re-registration replaces (supports test
  /// fixtures swapping implementations — a crude form of the paper's
  /// adaptability).
  template <typename T>
  void register_class(const std::string& cls) {
    factories_[cls] = [](rtsj::MemoryArea& area) -> comm::Content* {
      return area.make<T>();
    };
  }

  void register_factory(const std::string& cls, Factory factory) {
    factories_[cls] = std::move(factory);
  }

  bool contains(const std::string& cls) const {
    return factories_.count(cls) != 0;
  }

  /// Instantiates `cls` inside `area`; throws std::invalid_argument for
  /// unregistered classes. The object's destructor runs when the area is
  /// reclaimed.
  comm::Content* create(const std::string& cls, rtsj::MemoryArea& area) const;

  std::vector<std::string> registered() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace rtcf::runtime

/// Registers ContentClass under its own name at static-init time.
#define RTCF_REGISTER_CONTENT(ContentClass)                                  \
  namespace {                                                                \
  const bool rtcf_registered_##ContentClass = [] {                           \
    ::rtcf::runtime::ContentRegistry::instance()                             \
        .register_class<ContentClass>(#ContentClass);                        \
    return true;                                                             \
  }();                                                                       \
  }
