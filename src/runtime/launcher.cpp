#include "runtime/launcher.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "reconfig/mode_manager.hpp"
#include "rtsj/threads/os_sched.hpp"
#include "util/assert.hpp"

namespace rtcf::runtime {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

namespace {

/// Clears the mode manager's structure hook on every exit path (a release
/// that throws must not leave a hook referencing a dead stack frame).
struct HookGuard {
  reconfig::ModeManager* mm;
  ~HookGuard() {
    if (mm != nullptr) mm->set_structure_hook(nullptr);
  }
};

/// First grid point strictly after `now` on the anchored timeline.
AbsoluteTime align_to_grid(AbsoluteTime anchor, RelativeTime period,
                           AbsoluteTime now) {
  const std::int64_t p = period.nanos();
  const std::int64_t elapsed = (now - anchor).nanos();
  const std::int64_t k = (p <= 0 || elapsed < 0) ? 1 : elapsed / p + 1;
  return anchor +
         RelativeTime::nanoseconds(k * std::max<std::int64_t>(p, 1));
}

}  // namespace

void Launcher::add_entry(const soleil::PlannedComponent& pc) {
  PeriodicEntry entry;
  entry.name = pc.component->name();
  entry.release = app_.release_fn(entry.name);
  entry.period = pc.active->period();
  entry.deadline = pc.thread->profile().effective_deadline();
  entry.priority = pc.thread->priority();
  entry.partition = pc.partition;
  entry.mon = app_.monitor().find(entry.name);
  // emplace keeps accumulated stats when a name is re-added after an
  // earlier removal — retirement never loses recorded releases.
  stats_.emplace(entry.name, ComponentStats{});
  periodics_.push_back(std::move(entry));
  periodics_.back().stats = &stats_.at(periodics_.back().name);
}

Launcher::Launcher(soleil::Application& app) : app_(app) {
  for (const auto& pc : app.plan().components) {
    if (pc.retired || pc.active == nullptr ||
        pc.active->activation() != model::ActivationKind::Periodic) {
      continue;
    }
    add_entry(pc);
  }
  // An assembly without periodic components is legal under a mode manager
  // (a distributed node may host only sporadic consumers fed over the
  // bridge; a cluster demotion may disable every local timeline): run()
  // then serves activations until the horizon. Without a mode manager a
  // run would return immediately, which run() rejects.
}

void Launcher::reconcile_with_plan() {
  // Entries whose planned component was retired by an inter-run reload.
  for (auto& entry : periodics_) {
    if (!entry.retired &&
        app_.plan().find_component(entry.name) == nullptr) {
      entry.retired = true;
      entry.enabled = false;
    }
  }
  // Periodic components admitted by an inter-run reload.
  for (const auto& pc : app_.plan().components) {
    if (pc.retired || pc.active == nullptr ||
        pc.active->activation() != model::ActivationKind::Periodic) {
      continue;
    }
    bool known = false;
    for (const auto& entry : periodics_) {
      if (!entry.retired && entry.name == pc.component->name()) known = true;
    }
    if (!known) add_entry(pc);
  }
}

void Launcher::run(const Options& options) {
  // Reloads applied while no run was active (inline quiescence) changed
  // the plan without a structure hook; catch up before dispatching.
  reconcile_with_plan();
  RTCF_REQUIRE(!periodics_.empty() || options.mode_manager != nullptr,
               "launcher needs at least one periodic active component (or "
               "a mode manager driving a release-less assembly)");
  if (options.workers <= 1) {
    run_single(options);
    return;
  }
  run_partitioned(options);
}

void Launcher::dispatch_entry(PeriodicEntry& entry, std::size_t worker,
                              bool partitioned) {
  auto& clock = rtsj::SteadyClock::instance();
  const AbsoluteTime scheduled = entry.next_release;

  // Overload-governor admission: a degraded release is skipped entirely —
  // the period still advances (drift-free timeline), and the skip is
  // counted both here and in the component's telemetry block.
  if (entry.mon != nullptr &&
      app_.monitor().admit_release(*entry.mon) !=
          monitor::OverloadGovernor::Admission::Run) {
    ++entry.stats->shed;
    entry.next_release = scheduled + entry.period;
    return;
  }

  const AbsoluteTime actual_start = clock.now();
  entry.release();
  // The component's own execution ends here; the pump below runs
  // *downstream* components' activations, which record their own
  // execution via their timing interceptors. Billing the drain to this
  // component would blame the wrong party in its WCET-budget contract.
  const AbsoluteTime release_done = clock.now();
  if (partitioned) {
    app_.pump_partition(worker);
  } else {
    app_.pump();
  }
  const AbsoluteTime finish = clock.now();

  ComponentStats& cs = *entry.stats;
  ++cs.releases;
  cs.response_us.add((finish - scheduled).to_micros());
  cs.start_lateness_us.add((actual_start - scheduled).to_micros());
  const bool missed =
      !entry.deadline.is_zero() && finish - scheduled > entry.deadline;
  if (missed) ++cs.deadline_misses;
  if (entry.mon != nullptr) {
    app_.monitor().record_release(*entry.mon, release_done - actual_start,
                                  finish - scheduled,
                                  actual_start - scheduled, missed);
  }
  entry.next_release = scheduled + entry.period;  // drift-free anchor
}

void Launcher::apply_mode_setting(PeriodicEntry& entry,
                                  const reconfig::ComponentSetting& setting,
                                  AbsoluteTime now) {
  const bool was_enabled = entry.enabled;
  if (!setting.period.is_zero() && setting.period != entry.period) {
    // The implicit deadline follows the mode's rate; an explicit deadline
    // (deadline != period) is a property of the component and stays.
    if (entry.deadline == entry.period) entry.deadline = setting.period;
    entry.period = setting.period;
    // The already-scheduled release keeps its instant; releases after it
    // use the new period (drift-free from that instant on).
  }
  entry.enabled = setting.enabled;
  if (!was_enabled && setting.enabled) {
    // Resume on the anchor grid, strictly in the future: the releases
    // skipped while disabled are gone by design, not fired as a burst.
    entry.next_release = align_to_grid(entry.anchor, entry.period, now);
  }
}

void Launcher::rebuild_queue(std::vector<PeriodicEntry*>& mine,
                             std::size_t worker, bool all) {
  mine.clear();
  for (auto& entry : periodics_) {
    if (entry.retired) continue;
    if (!all && entry.partition != worker) continue;
    mine.push_back(&entry);
  }
  std::stable_sort(mine.begin(), mine.end(),
                   [](const PeriodicEntry* a, const PeriodicEntry* b) {
                     return a->priority > b->priority;
                   });
}

void Launcher::ingest_structure_change(
    const reconfig::StructureChange& change, AbsoluteTime start) {
  const AbsoluteTime now = rtsj::SteadyClock::instance().now();
  for (const auto& name : change.removed) {
    for (auto& entry : periodics_) {
      if (entry.name == name && !entry.retired) {
        entry.retired = true;
        entry.enabled = false;
      }
    }
  }
  for (const auto& name : change.added) {
    const auto* pc = app_.plan().find_component(name);
    if (pc == nullptr || pc->active == nullptr ||
        pc->active->activation() != model::ActivationKind::Periodic) {
      continue;  // sporadic/passive additions release via activations
    }
    add_entry(*pc);
    PeriodicEntry& entry = periodics_.back();
    entry.anchor = start;
    entry.enabled = true;
    // The new timeline enters on the run-start anchor grid, strictly in
    // the future — exactly like a re-enabled component, so releases stay
    // phase-aligned with the rest of the assembly.
    entry.next_release = align_to_grid(start, entry.period, now);
  }
}

void Launcher::run_single(const Options& options) {
  auto& clock = rtsj::SteadyClock::instance();
  const AbsoluteTime start = clock.now();
  const AbsoluteTime end = start + options.duration;
  reconfig::ModeManager* mm = options.mode_manager;
  for (auto& entry : periodics_) {
    if (entry.retired) continue;
    entry.anchor = start;
    entry.enabled = true;
    entry.next_release = start + entry.period;
  }
  std::vector<PeriodicEntry*> mine;
  rebuild_queue(mine, 0, /*all=*/true);
  std::uint64_t seen_epoch = 0;
  const auto sync_mode = [&] {
    if (mm == nullptr || mm->plan_epoch() == seen_epoch) return;
    seen_epoch = mm->plan_epoch();
    // Reloads may have grown or shrunk the entry list.
    rebuild_queue(mine, 0, /*all=*/true);
    const AbsoluteTime now = clock.now();
    for (auto* entry : mine) {
      if (const auto* setting = mm->setting(entry->name)) {
        apply_mode_setting(*entry, *setting, now);
      }
    }
  };
  HookGuard hook_guard{mm};
  if (mm != nullptr) {
    mm->set_structure_hook(
        [this, start](const reconfig::StructureChange& change) {
          ingest_structure_change(change, start);
        });
    mm->begin_run(1);
  }
  sync_mode();
  const auto poll = std::chrono::nanoseconds(
      std::max<std::int64_t>(options.poll_interval.nanos(), 1));
  // With a boundary hook installed, each boundary also drains the
  // activations the hook injected (a node hosting only sporadic consumers
  // has no dispatch points of its own). Without a hook the classic
  // single-core executive is untouched: activations drain run-to-
  // completion inside dispatch_entry only.
  const auto boundary = [&] {
    if (!options.boundary_hook) return;
    options.boundary_hook();
    app_.pump();
  };

  for (;;) {
    if (mm != nullptr) {
      mm->poll(0);  // dispatch boundary: pending transitions apply here
      sync_mode();
    }
    boundary();
    // Earliest pending release across the enabled periodic components.
    AbsoluteTime next = end;
    for (const auto* entry : mine) {
      if (!entry->enabled) continue;
      next = std::min(next, entry->next_release);
    }
    if (next >= end && (mm == nullptr || clock.now() >= end)) break;

    // A transition applied while waiting invalidates `next`: resync and
    // recompute instead of dispatching against the stale plan (which
    // could fire a release before its scheduled instant).
    bool replanned = false;
    if (options.busy_wait) {
      while (clock.now() < next) {
        if (mm == nullptr) continue;
        mm->poll(0);
        if (mm->plan_epoch() != seen_epoch) {
          sync_mode();
          replanned = true;
          break;
        }
        boundary();
      }
    } else if (clock.now() < next) {
      if (mm == nullptr) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds((next - clock.now()).nanos()));
      } else {
        // Sleep in poll_interval chunks so externally requested
        // transitions keep their dispatch-boundary latency bound even
        // while the executive is idle.
        while (clock.now() < next) {
          mm->poll(0);
          if (mm->plan_epoch() != seen_epoch) {
            sync_mode();
            replanned = true;
            break;
          }
          boundary();
          const auto remaining =
              std::chrono::nanoseconds((next - clock.now()).nanos());
          if (remaining.count() > 0) {
            std::this_thread::sleep_for(std::min(poll, remaining));
          }
        }
      }
    }
    if (replanned) continue;

    // Dispatch every enabled component due at (or before) `next`, highest
    // priority first (the queue is priority-sorted); each release runs to
    // completion including its downstream activations.
    for (auto* entry : mine) {
      if (!entry->enabled || entry->next_release > next) continue;
      dispatch_entry(*entry, 0, /*partitioned=*/false);
    }
  }
  if (mm != nullptr) {
    mm->retire();
    mm->end_run();
  }
}

void Launcher::run_partitioned(const Options& options) {
  const std::size_t workers = options.workers;
  RTCF_REQUIRE(
      app_.plan().partition_count == workers,
      "Launcher workers must match the application's plan partition_count "
      "(build the application with build_application(arch, mode, workers))");
  os_grants_.store(0, std::memory_order_relaxed);

  auto& clock = rtsj::SteadyClock::instance();
  const AbsoluteTime start = clock.now();
  const AbsoluteTime end = start + options.duration;

  // Component logic may throw (area exhaustion, contract violations); the
  // single-core executive propagates those to the caller, and the
  // partitioned one must match — capture the first worker failure and
  // rethrow after the join instead of letting std::terminate fire.
  std::mutex failure_mutex;
  std::exception_ptr failure;
  HookGuard hook_guard{options.mode_manager};
  if (options.mode_manager != nullptr) {
    options.mode_manager->set_structure_hook(
        [this, start](const reconfig::StructureChange& change) {
          ingest_structure_change(change, start);
        });
    options.mode_manager->begin_run(workers);
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([this, w, &options, start, end, &failure_mutex,
                          &failure] {
      try {
        worker_loop(w, options, start, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
      // Retire on every exit path: a worker that died mid-run must not
      // strand the others at a transition rendezvous.
      if (options.mode_manager != nullptr) options.mode_manager->retire();
    });
  }
  for (auto& t : threads) t.join();
  if (options.mode_manager != nullptr) options.mode_manager->end_run();
  if (failure) std::rethrow_exception(failure);

  // Final drain: messages pushed just before the horizon by one worker may
  // still sit in a cross-partition buffer after its consumer exited. The
  // workers are joined, so the single-threaded sweep is safe. The drain
  // runs *activations* only — per-component release/deadline-miss stats
  // and telemetry release counters are written exclusively in
  // dispatch_entry, which never executes here, so nothing is aggregated
  // twice; each drained activation is recorded exactly once by the
  // consumer's timing interceptor, same as when a worker pumps it.
  // (Regression: PartitionedLauncherTest.FinalDrainAggregatesStatsOnce.)
  app_.pump();
}

void Launcher::worker_loop(std::size_t worker, const Options& options,
                           AbsoluteTime start, AbsoluteTime end) {
  auto& clock = rtsj::SteadyClock::instance();
  reconfig::ModeManager* mm = options.mode_manager;

  // This worker's release queue: its pinned periodic components in
  // priority order.
  std::vector<PeriodicEntry*> mine;
  rebuild_queue(mine, worker, /*all=*/false);
  int top_priority = 0;
  for (const auto* entry : mine) {
    top_priority = std::max(top_priority, entry->priority);
  }
  // Sporadic components pinned here also count towards the worker's OS
  // priority even though they release via activation credits.
  for (const auto& pc : app_.plan().components) {
    if (!pc.retired && pc.partition == worker && pc.thread != nullptr) {
      top_priority = std::max(top_priority, pc.thread->priority());
    }
  }
  if (options.apply_os_priorities &&
      rtsj::try_set_current_thread_priority(top_priority)) {
    os_grants_.fetch_add(1, std::memory_order_relaxed);
  }

  for (auto* entry : mine) {
    entry->anchor = start;
    entry->enabled = true;
    entry->next_release = start + entry->period;
  }
  // Per-worker release-plan swap: each worker re-reads only its own pinned
  // entries' settings when the mode manager publishes a new plan epoch —
  // always between dispatches, never mid-release. A reload additionally
  // rebuilds the queue, adopting hot-added timelines pinned to this
  // partition and dropping retired ones.
  std::uint64_t seen_epoch = 0;
  const auto sync_mode = [&] {
    if (mm == nullptr || mm->plan_epoch() == seen_epoch) return;
    seen_epoch = mm->plan_epoch();
    rebuild_queue(mine, worker, /*all=*/false);
    const AbsoluteTime now = clock.now();
    for (auto* entry : mine) {
      if (const auto* setting = mm->setting(entry->name)) {
        apply_mode_setting(*entry, *setting, now);
      }
    }
  };
  sync_mode();

  const auto poll = std::chrono::nanoseconds(
      std::max<std::int64_t>(options.poll_interval.nanos(), 1));
  const auto boundary = [&] {
    if (worker != 0 || !options.boundary_hook) return;
    options.boundary_hook();
    app_.pump_partition(worker);
  };
  for (;;) {
    if (mm != nullptr) {
      mm->poll(worker);  // dispatch boundary: the quiescence point
      sync_mode();
    }
    boundary();
    AbsoluteTime next = end;
    for (const auto* entry : mine) {
      if (!entry->enabled) continue;
      next = std::min(next, entry->next_release);
    }

    // Wait for the next local release while serving cross-worker
    // activations destined for this partition (and transition requests).
    bool replanned = false;
    while (clock.now() < next) {
      if (mm != nullptr) {
        mm->poll(worker);
        if (mm->plan_epoch() != seen_epoch) {
          sync_mode();
          replanned = true;  // release set changed; recompute `next`
          break;
        }
      }
      boundary();
      const bool moved = app_.pump_partition(worker);
      if (moved || options.busy_wait) continue;
      const auto remaining =
          std::chrono::nanoseconds((next - clock.now()).nanos());
      if (remaining.count() > 0) {
        std::this_thread::sleep_for(std::min(poll, remaining));
      }
    }
    if (replanned) continue;
    if (next >= end) break;

    for (auto* entry : mine) {
      if (!entry->enabled || entry->next_release > next) continue;
      dispatch_entry(*entry, worker, /*partitioned=*/true);
    }
  }
}

const Launcher::ComponentStats& Launcher::stats(
    const std::string& component) const {
  auto it = stats_.find(component);
  RTCF_REQUIRE(it != stats_.end(),
               "no periodic component '" + component + "'");
  return it->second;
}

}  // namespace rtcf::runtime
