#include "runtime/launcher.hpp"

#include <algorithm>
#include <thread>

#include "util/assert.hpp"

namespace rtcf::runtime {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

Launcher::Launcher(soleil::Application& app) : app_(app) {
  for (const auto& pc : app.plan().components) {
    if (pc.active == nullptr ||
        pc.active->activation() != model::ActivationKind::Periodic) {
      continue;
    }
    PeriodicEntry entry;
    entry.name = pc.component->name();
    entry.release = app.release_fn(entry.name);
    entry.period = pc.active->period();
    entry.deadline = pc.thread->profile().effective_deadline();
    entry.priority = pc.thread->priority();
    periodics_.push_back(std::move(entry));
    stats_.emplace(pc.component->name(), ComponentStats{});
  }
  RTCF_REQUIRE(!periodics_.empty(),
               "launcher needs at least one periodic active component");
  // Dispatch ties at the same instant in priority order.
  std::stable_sort(periodics_.begin(), periodics_.end(),
                   [](const PeriodicEntry& a, const PeriodicEntry& b) {
                     return a.priority > b.priority;
                   });
}

void Launcher::run(const Options& options) {
  auto& clock = rtsj::SteadyClock::instance();
  const AbsoluteTime start = clock.now();
  const AbsoluteTime end = start + options.duration;
  for (auto& entry : periodics_) entry.next_release = start + entry.period;

  for (;;) {
    // Earliest pending release across all periodic components.
    AbsoluteTime next = end;
    for (const auto& entry : periodics_) {
      next = std::min(next, entry.next_release);
    }
    if (next >= end) break;

    if (options.busy_wait) {
      while (clock.now() < next) {
      }
    } else if (clock.now() < next) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds((next - clock.now()).nanos()));
    }

    // Dispatch every component due at (or before) `next`, highest priority
    // first (periodics_ is priority-sorted); each release runs to
    // completion including its downstream activations.
    for (auto& entry : periodics_) {
      if (entry.next_release > next) continue;
      const AbsoluteTime scheduled = entry.next_release;
      const AbsoluteTime actual_start = clock.now();
      entry.release();
      app_.pump();
      const AbsoluteTime finish = clock.now();

      ComponentStats& cs = stats_.at(entry.name);
      ++cs.releases;
      cs.response_us.add((finish - scheduled).to_micros());
      cs.start_lateness_us.add((actual_start - scheduled).to_micros());
      if (!entry.deadline.is_zero() &&
          finish - scheduled > entry.deadline) {
        ++cs.deadline_misses;
      }
      entry.next_release = scheduled + entry.period;  // drift-free anchor
    }
  }
}

const Launcher::ComponentStats& Launcher::stats(
    const std::string& component) const {
  auto it = stats_.find(component);
  RTCF_REQUIRE(it != stats_.end(),
               "no periodic component '" + component + "'");
  return it->second;
}

}  // namespace rtcf::runtime
