// Runtime environment: maps the non-functional half of an architecture
// onto the RTSJ substrate.
//
// For every MemoryArea component it creates (or resolves) the backing
// rtsj::MemoryArea — scoped areas are instantiated with their declared size
// and *pinned* for the application's lifetime by an emulated wedge thread,
// so components allocated inside them survive between releases. For every
// active component it creates the logical thread its ThreadDomain
// prescribes (type, priority, release profile).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "model/metamodel.hpp"
#include "rtsj/memory/context.hpp"
#include "rtsj/memory/memory_area.hpp"
#include "rtsj/threads/realtime_thread.hpp"

namespace rtcf::runtime {

/// Owns the RTSJ-substrate objects for one application instance.
class RuntimeEnvironment {
 public:
  /// Builds areas, pins scopes (outermost first), and creates threads.
  /// The architecture must outlive the environment.
  explicit RuntimeEnvironment(const model::Architecture& arch);
  ~RuntimeEnvironment();

  RuntimeEnvironment(const RuntimeEnvironment&) = delete;
  RuntimeEnvironment& operator=(const RuntimeEnvironment&) = delete;

  const model::Architecture& architecture() const noexcept { return arch_; }

  /// The rtsj area backing a MemoryArea component (heap/immortal resolve to
  /// the singletons).
  rtsj::MemoryArea& area_runtime(const model::MemoryAreaComponent& area);

  /// The area a component's state lives in (innermost enclosing MemoryArea;
  /// heap when undeployed).
  rtsj::MemoryArea& area_for(const model::Component& component);

  /// The logical thread of an active component; throws for components
  /// without a ThreadDomain (the validator rejects those architectures).
  rtsj::RealtimeThread& thread_for(const model::ActiveComponent& component);

  /// All scoped areas created for this environment (tests/introspection).
  std::vector<rtsj::ScopedMemory*> scopes() const;

  /// Runs `fn` with `area` as the allocation context, using the wedge
  /// context for scoped areas (which already have the scope on their
  /// stack). This is how contents get constructed inside their area.
  void run_in_area(rtsj::MemoryArea& area, const std::function<void()>& fn);

 private:
  void build_areas();
  void build_threads();

  const model::Architecture& arch_;
  std::map<const model::MemoryAreaComponent*,
           std::unique_ptr<rtsj::ScopedMemory>>
      scopes_;
  // Each scope is pinned by its own wedge context (entering the scope's
  // design-time ancestors first so parenting mirrors the architecture);
  // pins are released in reverse creation order by the destructor.
  rtsj::ThreadContext wedge_ctx_;
  std::map<const model::MemoryAreaComponent*,
           std::unique_ptr<rtsj::ThreadContext>>
      wedges_;
  std::vector<std::unique_ptr<rtsj::ScopePin>> pins_;
  std::map<const model::ActiveComponent*,
           std::unique_ptr<rtsj::RealtimeThread>>
      threads_;
};

}  // namespace rtcf::runtime
