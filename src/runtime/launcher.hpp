// Wall-clock cyclic-executive launcher.
//
// Runs an assembled Application in real time on the calling thread: each
// periodic active component releases on its own timeline (anchored at
// launch), releases and the activations they trigger execute
// run-to-completion in priority order at each dispatch point, and
// per-component response times / deadline misses are recorded. This is the
// single-threaded embedded deployment style (cyclic executive over a
// priority-ordered release queue) — a faithful stand-in for the paper's
// RTSJ-VM execution that works on a stock host, while the discrete-event
// simulator (src/sim) covers exact-virtual-time experiments.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "soleil/application.hpp"
#include "util/stats.hpp"

namespace rtcf::runtime {

/// Drives one Application in wall-clock time.
class Launcher {
 public:
  struct Options {
    /// How long to run.
    rtsj::RelativeTime duration = rtsj::RelativeTime::milliseconds(100);
    /// Spin instead of sleeping between releases (tighter release jitter
    /// at the price of CPU burn).
    bool busy_wait = false;
  };

  struct ComponentStats {
    std::uint64_t releases = 0;
    std::uint64_t deadline_misses = 0;
    /// Response time per release: from the *scheduled* release instant to
    /// completion of the release and everything it triggered downstream.
    util::SampleSet response_us;
    /// Release jitter: how late the release actually started, per release.
    util::SampleSet start_lateness_us;
  };

  explicit Launcher(soleil::Application& app);

  /// Runs until `options.duration` elapses (blocking).
  void run(const Options& options);

  const ComponentStats& stats(const std::string& component) const;
  const std::map<std::string, ComponentStats>& all_stats() const noexcept {
    return stats_;
  }

 private:
  struct PeriodicEntry {
    std::string name;
    std::function<void()> release;
    rtsj::RelativeTime period;
    rtsj::RelativeTime deadline;
    int priority;
    rtsj::AbsoluteTime next_release{};
  };

  soleil::Application& app_;
  std::vector<PeriodicEntry> periodics_;
  std::map<std::string, ComponentStats> stats_;
};

}  // namespace rtcf::runtime
