// Wall-clock executive launcher: single-core cyclic executive or
// partitioned multi-worker.
//
// Single-core mode (workers == 1, the default) runs an assembled
// Application in real time on the calling thread: each periodic active
// component releases on its own timeline (anchored at launch), releases and
// the activations they trigger execute run-to-completion in priority order
// at each dispatch point, and per-component response times / deadline
// misses are recorded. This is the single-threaded embedded deployment
// style (cyclic executive over a priority-ordered release queue) — a
// faithful stand-in for the paper's RTSJ-VM execution that works on a stock
// host, while the discrete-event simulator (src/sim) covers exact-virtual-
// time experiments.
//
// Partitioned mode (workers == N > 1) runs one worker OS thread per plan
// partition: every worker owns a priority-ordered release queue of the
// periodic components pinned to it and a partition view of the activation
// dispatcher, so components never migrate and per-partition execution stays
// run-to-completion. Cross-worker asynchronous bindings ride lock-free SPSC
// message buffers plus atomic activation credits — no locks anywhere on the
// steady-state path. The application must have been built with
// build_application(arch, mode, N).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "monitor/runtime_monitor.hpp"
#include "soleil/application.hpp"
#include "util/stats.hpp"

namespace rtcf::reconfig {
class ModeManager;
struct ComponentSetting;
struct StructureChange;
}  // namespace rtcf::reconfig

namespace rtcf::runtime {

/// Drives one Application in wall-clock time.
class Launcher {
 public:
  struct Options {
    /// How long to run.
    rtsj::RelativeTime duration = rtsj::RelativeTime::milliseconds(100);
    /// Spin instead of sleeping between releases (tighter release jitter
    /// at the price of CPU burn).
    bool busy_wait = false;
    /// Number of executive workers. Must equal the application plan's
    /// partition_count; 1 selects the single-core cyclic executive.
    std::size_t workers = 1;
    /// Ask the OS for SCHED_FIFO worker priorities derived from each
    /// worker's highest-priority component (rtsj::to_os_priority). Silently
    /// degraded to SCHED_OTHER without privileges.
    bool apply_os_priorities = false;
    /// How long a waiting worker sleeps between polls for cross-worker
    /// activations (partitioned + !busy_wait only; also the mode-manager
    /// poll cadence of a sleeping single-core executive).
    rtsj::RelativeTime poll_interval = rtsj::RelativeTime::microseconds(200);
    /// Drives mode transitions and live reloads (src/reconfig): every
    /// worker polls the manager at each dispatch boundary — parking there
    /// while a transition is pending, which is the quiescence point — and
    /// re-reads its own entries' release settings (enabled, period)
    /// whenever the plan epoch changes. The swap is per worker and between
    /// dispatches, so no release is lost or double-fired across a
    /// transition. Reloads additionally grow/shrink the release plan
    /// through the manager's structure hook: new periodic components enter
    /// on the run-start anchor grid (first release strictly in the
    /// future), removed ones retire with their accumulated stats intact.
    reconfig::ModeManager* mode_manager = nullptr;
    /// Called by worker 0 (or the single-core executive) at every dispatch
    /// boundary, next to the mode-manager poll and never mid-release — the
    /// distribution layer's hook for injecting remote gateway messages
    /// from an executive thread. Not called while the worker is parked at
    /// a transition rendezvous, so injections never race a swap.
    std::function<void()> boundary_hook;
  };

  struct ComponentStats {
    std::uint64_t releases = 0;
    std::uint64_t deadline_misses = 0;
    /// Releases skipped by the overload governor (shed or rate-limited);
    /// also counted in the component's telemetry block.
    std::uint64_t shed = 0;
    /// Response time per release: from the *scheduled* release instant to
    /// completion of the release and everything it triggered downstream
    /// (downstream on the same worker, in partitioned mode).
    util::SampleSet response_us;
    /// Release jitter: how late the release actually started, per release.
    util::SampleSet start_lateness_us;
  };

  explicit Launcher(soleil::Application& app);

  /// Runs until `options.duration` elapses (blocking). Partitioned runs
  /// finish with a final drain, so no in-flight message is left behind.
  void run(const Options& options);

  const ComponentStats& stats(const std::string& component) const;
  const std::map<std::string, ComponentStats>& all_stats() const noexcept {
    return stats_;
  }

  /// How many workers obtained a real-time OS priority in the last run
  /// (0 on hosts without the privilege — informational).
  std::size_t os_priority_grants() const noexcept {
    return os_grants_.load(std::memory_order_relaxed);
  }

 private:
  struct PeriodicEntry {
    std::string name;
    std::function<void()> release;
    rtsj::RelativeTime period;
    rtsj::RelativeTime deadline;
    int priority;
    std::size_t partition = 0;
    rtsj::AbsoluteTime next_release{};
    /// Enabled in the current operational mode (mode-managed components
    /// absent from the mode release nothing).
    bool enabled = true;
    /// Permanently retired by a live reload (component removed). Workers
    /// drop retired entries from their queues on the next epoch sync; the
    /// entry itself stays so its accumulated stats survive.
    bool retired = false;
    /// Release-timeline anchor (run start): a component re-enabled by a
    /// mode transition resumes on its original grid, strictly in the
    /// future — no catch-up burst of the releases skipped while disabled.
    /// Hot-added components anchor on the same run-start grid.
    rtsj::AbsoluteTime anchor{};
    /// Runtime-monitor slot (telemetry + contract + governor id).
    monitor::RuntimeMonitor::Entry* mon = nullptr;
    /// Cached stats slot; stats_ is a node-based map mutated only at
    /// quiescence points, so workers touch disjoint entries without
    /// synchronisation and pointers stay valid across reloads.
    ComponentStats* stats = nullptr;
  };

  void run_single(const Options& options);
  void run_partitioned(const Options& options);
  /// Re-reads one entry's mode settings (enabled, period) after a plan-
  /// epoch change; `now` realigns re-enabled entries on their anchor grid.
  void apply_mode_setting(PeriodicEntry& entry,
                          const reconfig::ComponentSetting& setting,
                          rtsj::AbsoluteTime now);
  /// Release-plan growth/shrink at a reload's quiescence point (runs on
  /// the swap-executing worker while every other worker is parked): added
  /// periodic components get a timeline on the run-start anchor grid,
  /// removed ones are retired. periodics_ is a deque, so existing entries
  /// never move and parked workers' pointers stay valid.
  void ingest_structure_change(const reconfig::StructureChange& change,
                               rtsj::AbsoluteTime start);
  /// Reconciles the entry list against the application's *current* plan
  /// at the top of every run: reloads applied inline between runs (no
  /// structure hook installed) still grow/shrink the release plan.
  void reconcile_with_plan();
  /// Appends one entry for a live periodic planned component.
  void add_entry(const soleil::PlannedComponent& pc);
  /// Rebuilds one executive's priority-ordered release queue from the
  /// (possibly reload-grown) entry list. `all` selects every partition
  /// (single-core executive).
  void rebuild_queue(std::vector<PeriodicEntry*>& mine, std::size_t worker,
                     bool all);
  /// One worker's cyclic executive over its pinned entries; also pumps the
  /// partition's activation credits while waiting.
  void worker_loop(std::size_t worker, const Options& options,
                   rtsj::AbsoluteTime start, rtsj::AbsoluteTime end);
  void dispatch_entry(PeriodicEntry& entry, std::size_t worker,
                      bool partitioned);

  soleil::Application& app_;
  /// Deque: live reload appends entries while parked workers hold stable
  /// pointers to existing ones.
  std::deque<PeriodicEntry> periodics_;
  std::map<std::string, ComponentStats> stats_;
  std::atomic<std::size_t> os_grants_{0};
};

}  // namespace rtcf::runtime
