#include "runtime/environment.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "validate/area_relation.hpp"

namespace rtcf::runtime {

using model::ActivationKind;
using model::ActiveComponent;
using model::Architecture;
using model::AreaType;
using model::DomainType;
using model::MemoryAreaComponent;
using model::ThreadDomain;

RuntimeEnvironment::RuntimeEnvironment(const Architecture& arch)
    : arch_(arch),
      wedge_ctx_("wedge-root", rtsj::ThreadKind::Realtime,
                 rtsj::kMaxRtPriority,
                 &rtsj::ImmortalMemory::instance()) {
  build_areas();
  build_threads();
}

RuntimeEnvironment::~RuntimeEnvironment() {
  // Release pins inner-first so each wedge context pops in stack order and
  // scope reference counts drain to zero (triggering reclamation).
  while (!pins_.empty()) pins_.pop_back();
}

void RuntimeEnvironment::build_areas() {
  const auto areas = arch_.all_of<MemoryAreaComponent>();
  // Create scoped areas first.
  for (const auto* area : areas) {
    if (area->type() != AreaType::Scoped) continue;
    scopes_[area] = std::make_unique<rtsj::ScopedMemory>(
        area->area_name(), area->size_bytes() ? area->size_bytes() : 4096);
  }
  // Pin each scope once, entering its design-time ancestors first so the
  // runtime parent chain mirrors the architecture. All pins share one wedge
  // context; chains are pinned outermost-first, and because sibling chains
  // would interleave on a single stack, each scope gets its own context.
  std::vector<const MemoryAreaComponent*> order;
  for (const auto* area : areas) {
    if (area->type() == AreaType::Scoped) order.push_back(area);
  }
  // Sort by nesting depth (outermost first) for deterministic pinning.
  auto depth = [&](const MemoryAreaComponent* a) {
    int d = 0;
    for (const auto* s = validate::design_parent_scope(arch_, *a);
         s != nullptr; s = validate::design_parent_scope(arch_, *s)) {
      ++d;
    }
    return d;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](const auto* a, const auto* b) {
                     return depth(a) < depth(b);
                   });
  for (const auto* area : order) {
    // Build the ancestor chain outermost -> area.
    std::vector<const MemoryAreaComponent*> chain;
    for (const auto* s = area; s != nullptr;
         s = validate::design_parent_scope(arch_, *s)) {
      chain.push_back(s);
    }
    std::reverse(chain.begin(), chain.end());
    auto wedge = std::make_unique<rtsj::ThreadContext>(
        "wedge-" + area->area_name(), rtsj::ThreadKind::Realtime,
        rtsj::kMaxRtPriority, &rtsj::ImmortalMemory::instance());
    for (const auto* link : chain) {
      pins_.push_back(
          std::make_unique<rtsj::ScopePin>(*scopes_.at(link), *wedge));
    }
    wedges_[area] = std::move(wedge);
  }
}

void RuntimeEnvironment::build_threads() {
  for (const auto* active : arch_.all_of<ActiveComponent>()) {
    const ThreadDomain* domain = arch_.thread_domain_of(*active);
    if (domain == nullptr) continue;  // Validator rejects; stay buildable.
    rtsj::ReleaseProfile profile =
        active->activation() == ActivationKind::Periodic
            ? rtsj::ReleaseProfile::periodic(active->period(), active->cost())
            : rtsj::ReleaseProfile::sporadic(active->period(),
                                             active->cost());
    rtsj::MemoryArea& area = area_for(*active);
    std::unique_ptr<rtsj::RealtimeThread> thread;
    switch (domain->type()) {
      case DomainType::NoHeapRealtime:
        thread = std::make_unique<rtsj::NoHeapRealtimeThread>(
            active->name(), domain->priority(), profile, &area);
        break;
      case DomainType::Realtime:
        thread = std::make_unique<rtsj::RealtimeThread>(
            active->name(), rtsj::ThreadKind::Realtime, domain->priority(),
            profile, &area);
        break;
      case DomainType::Regular:
        thread = std::make_unique<rtsj::RealtimeThread>(
            active->name(), rtsj::ThreadKind::Regular, domain->priority(),
            profile, &area);
        break;
    }
    threads_[active] = std::move(thread);
  }
}

rtsj::MemoryArea& RuntimeEnvironment::area_runtime(
    const MemoryAreaComponent& area) {
  switch (area.type()) {
    case AreaType::Heap:
      return rtsj::HeapMemory::instance();
    case AreaType::Immortal:
      return rtsj::ImmortalMemory::instance();
    case AreaType::Scoped:
      return *scopes_.at(&area);
  }
  RTCF_ASSERT(false);
}

rtsj::MemoryArea& RuntimeEnvironment::area_for(
    const model::Component& component) {
  const MemoryAreaComponent* area = arch_.memory_area_of(component);
  if (area == nullptr) return rtsj::HeapMemory::instance();
  return area_runtime(*area);
}

rtsj::RealtimeThread& RuntimeEnvironment::thread_for(
    const ActiveComponent& component) {
  auto it = threads_.find(&component);
  RTCF_REQUIRE(it != threads_.end(),
               "active component '" + component.name() +
                   "' has no ThreadDomain (invalid architecture)");
  return *it->second;
}

std::vector<rtsj::ScopedMemory*> RuntimeEnvironment::scopes() const {
  std::vector<rtsj::ScopedMemory*> out;
  out.reserve(scopes_.size());
  for (const auto& [model_area, scope] : scopes_) out.push_back(scope.get());
  return out;
}

void RuntimeEnvironment::run_in_area(rtsj::MemoryArea& area,
                                     const std::function<void()>& fn) {
  if (area.kind() == rtsj::AreaKind::Scoped) {
    // Use the wedge context that pinned this scope: the scope is on its
    // stack, so execute_in_area is legal.
    for (const auto& [model_area, wedge] : wedges_) {
      if (scopes_.at(model_area).get() == &area) {
        rtsj::ContextGuard guard(*wedge);
        area.execute_in_area(fn);
        return;
      }
    }
    RTCF_REQUIRE(false, "scope '" + area.name() +
                            "' is not managed by this environment");
  }
  area.execute_in_area(fn);
}

}  // namespace rtcf::runtime
