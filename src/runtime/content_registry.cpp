#include "runtime/content_registry.hpp"

#include <stdexcept>

namespace rtcf::runtime {

ContentRegistry& ContentRegistry::instance() {
  static ContentRegistry registry;
  return registry;
}

void ContentRegistry::register_factory(const std::string& cls,
                                       Factory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  factories_[cls] = std::move(factory);
  ++revision_;
}

bool ContentRegistry::contains(const std::string& cls) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(cls) != 0;
}

comm::Content* ContentRegistry::create(const std::string& cls,
                                       rtsj::MemoryArea& area) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(cls);
    if (it == factories_.end()) {
      throw std::invalid_argument("content class '" + cls +
                                  "' is not registered");
    }
    // Copy so the factory runs outside the lock (it may allocate inside a
    // scoped area, which can itself take time or throw).
    factory = it->second;
  }
  return factory(area);
}

std::vector<std::string> ContentRegistry::registered() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [cls, factory] : factories_) out.push_back(cls);
  return out;
}

std::uint64_t ContentRegistry::revision() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return revision_;
}

}  // namespace rtcf::runtime
