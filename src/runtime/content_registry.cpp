#include "runtime/content_registry.hpp"

#include <stdexcept>

namespace rtcf::runtime {

ContentRegistry& ContentRegistry::instance() {
  static ContentRegistry registry;
  return registry;
}

comm::Content* ContentRegistry::create(const std::string& cls,
                                       rtsj::MemoryArea& area) const {
  auto it = factories_.find(cls);
  if (it == factories_.end()) {
    throw std::invalid_argument("content class '" + cls +
                                "' is not registered");
  }
  return it->second(area);
}

std::vector<std::string> ContentRegistry::registered() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [cls, factory] : factories_) out.push_back(cls);
  return out;
}

}  // namespace rtcf::runtime
