#include "soleil/bootstrap_api.hpp"

#include "runtime/content_registry.hpp"
#include "util/assert.hpp"
#include "validate/pattern_catalog.hpp"

namespace rtcf::soleil {

namespace {

/// Lifecycle-free synchronous adapter used by bootstrap-level wiring.
struct DirectEntry final : comm::IInvocable {
  comm::Content* content = nullptr;
  comm::Message invoke(const comm::Message& m) override {
    return content->on_invoke(m);
  }
};

}  // namespace

BootstrapContext::BootstrapContext(const model::Architecture& arch)
    : arch_(arch), env_(arch) {}

BootstrapContext::~BootstrapContext() = default;

void BootstrapContext::advance_phase(Phase at_most) {
  if (phase_ > at_most) {
    throw BootstrapError(
        "initialization order violated: operation arrived after its phase "
        "(areas -> domains -> threads -> contents -> wiring -> start)");
  }
  phase_ = at_most;
}

void BootstrapContext::use_immortal(const std::string& area_component) {
  advance_phase(Phase::Areas);
  (void)area(area_component);  // resolves + validates the reference
  record("use_immortal " + area_component);
}

void BootstrapContext::use_heap(const std::string& area_component) {
  advance_phase(Phase::Areas);
  (void)area(area_component);
  record("use_heap " + area_component);
}

void BootstrapContext::create_scope(const std::string& area_name,
                                    std::size_t bytes) {
  advance_phase(Phase::Areas);
  // The environment already instantiated + pinned the scope from the
  // architecture; the generated call validates and records it.
  for (auto* scope : env_.scopes()) {
    if (scope->name() == area_name) {
      RTCF_REQUIRE(bytes == 0 || scope->size() == bytes,
                   "scope '" + area_name + "' size mismatch");
      record("create_scope " + area_name + " " + std::to_string(bytes));
      return;
    }
  }
  throw BootstrapError("unknown scope '" + area_name + "'");
}

void BootstrapContext::create_domain(const std::string& name,
                                     const std::string& type, int priority) {
  advance_phase(Phase::Domains);
  const auto* domain = arch_.find_as<model::ThreadDomain>(name);
  if (domain == nullptr) {
    throw BootstrapError("unknown thread domain '" + name + "'");
  }
  if (std::string(model::to_string(domain->type())) != type ||
      domain->priority() != priority) {
    throw BootstrapError("domain '" + name +
                         "' descriptor mismatch with the architecture");
  }
  domains_[name] = type + "/" + std::to_string(priority);
  record("create_domain " + name + " " + type + " " +
         std::to_string(priority));
}

void BootstrapContext::create_thread(const std::string& component,
                                     const std::string& domain) {
  advance_phase(Phase::Threads);
  if (domains_.find(domain) == domains_.end()) {
    throw BootstrapError("thread '" + component +
                         "' references undeclared domain '" + domain + "'");
  }
  (void)thread(component);  // resolves + validates
  record("create_thread " + component + " in " + domain);
}

void BootstrapContext::create_content(const std::string& component,
                                      const std::string& content_class,
                                      const std::string& area_component) {
  advance_phase(Phase::Contents);
  const auto* c = arch_.find(component);
  if (c == nullptr) {
    throw BootstrapError("unknown component '" + component + "'");
  }
  rtsj::MemoryArea& target = area_component == "heap"
                                 ? rtsj::HeapMemory::instance()
                                 : area(area_component);
  ContentSlot slot;
  slot.content =
      runtime::ContentRegistry::instance().create(content_class, target);
  for (const auto& itf : c->interfaces()) {
    if (itf.role == model::InterfaceRole::Client) {
      slot.content->add_port(itf.name);
    }
  }
  auto entry = std::make_unique<DirectEntry>();
  entry->content = slot.content;
  slot.entry = std::move(entry);
  contents_[component] = std::move(slot);
  record("create_content " + component + " (" + content_class + ") in " +
         area_component);
}

comm::Content* BootstrapContext::content(const std::string& component) {
  auto it = contents_.find(component);
  if (it == contents_.end()) {
    throw BootstrapError("content of '" + component +
                         "' has not been created yet");
  }
  return it->second.content;
}

comm::MessageBuffer& BootstrapContext::make_buffer(
    const std::string& server_component, std::size_t capacity) {
  advance_phase(Phase::Wiring);
  const auto* server = arch_.find(server_component);
  if (server == nullptr) {
    throw BootstrapError("unknown buffer consumer '" + server_component +
                         "'");
  }
  // Bootstrap-level default placement: the consumer's area, falling back
  // to immortal when that is the heap (NHRT-safe, as the planner does).
  rtsj::MemoryArea* target = &env_.area_for(*server);
  if (target->kind() == rtsj::AreaKind::Heap) {
    target = &rtsj::ImmortalMemory::instance();
  }
  buffers_.push_back(std::make_unique<comm::MessageBuffer>(*target,
                                                           capacity));
  record("make_buffer for " + server_component + " x" +
         std::to_string(capacity) + " in " + target->name());
  return *buffers_.back();
}

membrane::PatternRuntime BootstrapContext::make_pattern(
    const std::string& pattern_name, const std::string& server_component) {
  advance_phase(Phase::Wiring);
  const auto* server = arch_.find(server_component);
  if (server == nullptr) {
    throw BootstrapError("unknown pattern target '" + server_component +
                         "'");
  }
  const auto op = membrane::pattern_op_from_name(pattern_name);
  rtsj::MemoryArea& server_area = env_.area_for(*server);
  rtsj::MemoryArea* staging = nullptr;
  switch (op) {
    case membrane::PatternOp::Direct:
    case membrane::PatternOp::ScopeEnter:
      break;
    case membrane::PatternOp::ImmortalForward:
      staging = &rtsj::ImmortalMemory::instance();
      break;
    default:
      staging = &server_area;
      break;
  }
  record("make_pattern " + pattern_name + " -> " + server_component);
  return membrane::PatternRuntime::make(op, &server_area, staging);
}

comm::IInvocable* BootstrapContext::server_entry(
    const std::string& component) {
  auto it = contents_.find(component);
  if (it == contents_.end()) {
    throw BootstrapError("server entry of '" + component +
                         "' requested before its content exists");
  }
  return it->second.entry.get();
}

void* BootstrapContext::notify_arg(const std::string&) { return nullptr; }

void BootstrapContext::start_all() {
  advance_phase(Phase::Started);
  for (auto& [name, slot] : contents_) slot.content->on_start();
  started_ = true;
  record("start_all");
}

rtsj::MemoryArea& BootstrapContext::area(const std::string& area_component) {
  const auto* model_area =
      arch_.find_as<model::MemoryAreaComponent>(area_component);
  if (model_area == nullptr) {
    throw BootstrapError("unknown memory area component '" + area_component +
                         "'");
  }
  return env_.area_runtime(*model_area);
}

rtsj::RealtimeThread& BootstrapContext::thread(const std::string& component) {
  const auto* active = arch_.find_as<model::ActiveComponent>(component);
  if (active == nullptr) {
    throw BootstrapError("component '" + component +
                         "' is not an active component");
  }
  return env_.thread_for(*active);
}

}  // namespace rtcf::soleil
