// The MERGE-ALL dispatch structure: one merged shell per functional
// component.
//
// "In this generation mode the implementation of functional component code
// and its associated membrane are merged into a single Java class ...
// several indirections introduced by the membrane architecture are replaced
// by direct method calls." (§4.3)
//
// The shell inlines the lifecycle gate and the activation dispatch that
// SOLEIL spreads over ActiveInterceptor/SyncSkeleton objects, and embeds
// its outgoing endpoints (pattern + buffer wiring) as member state instead
// of reified interceptor chains. One virtual hop in, one out — membrane
// structure is *not* preserved at runtime, so no membrane introspection.
#pragma once

#include <cstdint>
#include <deque>

#include "comm/content.hpp"
#include "comm/message.hpp"
#include "comm/message_buffer.hpp"
#include "membrane/interceptors.hpp"
#include "membrane/patterns.hpp"

namespace rtcf::soleil {

/// Merged membrane + dispatch for one functional component.
class MergedShell final : public comm::IMessageSink, public comm::IInvocable {
 public:
  explicit MergedShell(comm::Content* content) : content_(content) {}

  // ---- lifecycle (inlined flag, still functional-level controllable) ----
  bool started() const noexcept { return started_; }
  void start() {
    if (!started_) {
      started_ = true;
      content_->on_start();
    }
  }
  void stop() {
    if (started_) {
      started_ = false;
      content_->on_stop();
    }
  }

  // ---- server-side entries ----------------------------------------------
  void deliver(const comm::Message& m) override {
    if (!started_) {
      ++rejected_;
      return;
    }
    ++delivered_;
    content_->on_message(m);
  }

  comm::Message invoke(const comm::Message& m) override {
    if (!started_) {
      ++rejected_;
      return comm::Message{};
    }
    ++delivered_;
    return content_->on_invoke(m);
  }

  void release() {
    if (!started_) {
      ++rejected_;
      return;
    }
    ++delivered_;
    content_->on_release();
  }

  // ---- client-side endpoints (embedded, not reified) ---------------------
  /// Outgoing binding state merged into the shell; exactly one virtual hop
  /// between the client port and the communication primitive.
  struct OutEndpoint final : comm::IMessageSink, comm::IInvocable {
    membrane::PatternRuntime pattern;
    comm::MessageBuffer* buffer = nullptr;
    membrane::NotifyFn notify = nullptr;
    void* notify_arg = nullptr;
    MergedShell* target = nullptr;

    void deliver(const comm::Message& m) override {
      buffer->push(pattern.stage(m));
      if (notify != nullptr) notify(notify_arg);
    }
    comm::Message invoke(const comm::Message& m) override {
      return pattern.call(*target, m);
    }
  };

  OutEndpoint& add_endpoint() { return endpoints_.emplace_back(); }
  std::size_t endpoint_count() const noexcept { return endpoints_.size(); }

  comm::Content* content() const noexcept { return content_; }
  std::uint64_t delivered_count() const noexcept { return delivered_; }
  std::uint64_t rejected_count() const noexcept { return rejected_; }

 private:
  comm::Content* content_;
  bool started_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t rejected_ = 0;
  std::deque<OutEndpoint> endpoints_;
};

}  // namespace rtcf::soleil
