// The infrastructure plan: the validated architecture resolved against the
// RTSJ substrate, ready for assembly in any generation mode.
//
// Planning implements §3.3's "the verification process of the architecture
// identifies the points where a glue code handling RTSJ concerns needs to
// be deployed": for every binding it fixes the communication pattern and
// decides which memory areas hold the staged copies and the message buffer.
// All three generation modes (and the code emitter) consume the same plan —
// they differ only in how much of it they reify as objects.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "membrane/patterns.hpp"
#include "model/metamodel.hpp"
#include "runtime/environment.hpp"

namespace rtcf::soleil {

/// Generation modes (§4.3).
enum class Mode { Soleil, MergeAll, UltraMerge };

const char* to_string(Mode mode) noexcept;

/// Raised when an architecture cannot be planned (it would also fail
/// validation; run validate::validate first for full diagnostics).
class PlanningError : public std::runtime_error {
 public:
  explicit PlanningError(const std::string& message)
      : std::runtime_error("soleil: " + message) {}
};

/// One functional component resolved against the substrate.
struct PlannedComponent {
  const model::Component* component = nullptr;
  /// Non-null for active components.
  const model::ActiveComponent* active = nullptr;
  rtsj::MemoryArea* area = nullptr;
  /// Non-null for active components (their logical thread).
  rtsj::RealtimeThread* thread = nullptr;
  std::string content_class;
};

/// One binding resolved: pattern op plus the areas for staging and buffer.
struct PlannedBinding {
  const model::Binding* binding = nullptr;
  const model::Component* client = nullptr;
  const model::Component* server = nullptr;
  model::Protocol protocol = model::Protocol::Synchronous;
  std::size_t buffer_size = 0;
  membrane::PatternOp op = membrane::PatternOp::Direct;
  /// Area holding the server's state (pattern construction input).
  rtsj::MemoryArea* server_area = nullptr;
  /// Area for the pattern's staged copy (nullptr for direct/scope-enter).
  rtsj::MemoryArea* staging_area = nullptr;
  /// Area holding the async message buffer (nullptr for sync bindings).
  rtsj::MemoryArea* buffer_area = nullptr;
};

/// The full plan for one application instance.
struct Plan {
  const model::Architecture* arch = nullptr;
  std::vector<PlannedComponent> components;
  std::vector<PlannedBinding> bindings;

  const PlannedComponent* find_component(const std::string& name) const;
};

/// Resolves `arch` against `env`. Throws PlanningError when a binding has
/// no legal pattern or endpoints do not resolve.
Plan make_plan(const model::Architecture& arch,
               runtime::RuntimeEnvironment& env);

}  // namespace rtcf::soleil
