// The infrastructure plan: the validated architecture resolved against the
// RTSJ substrate, ready for assembly in any generation mode.
//
// Planning implements §3.3's "the verification process of the architecture
// identifies the points where a glue code handling RTSJ concerns needs to
// be deployed": for every binding it fixes the communication pattern and
// decides which memory areas hold the staged copies and the message buffer.
// All three generation modes (and the code emitter) consume the same plan —
// they differ only in how much of it they reify as objects.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "membrane/patterns.hpp"
#include "model/assembly_plan.hpp"
#include "model/metamodel.hpp"
#include "runtime/environment.hpp"

namespace rtcf::soleil {

/// Generation modes (§4.3).
enum class Mode { Soleil, MergeAll, UltraMerge };

const char* to_string(Mode mode) noexcept;

/// Raised when an architecture cannot be planned (it would also fail
/// validation; run validate::validate first for full diagnostics).
class PlanningError : public std::runtime_error {
 public:
  explicit PlanningError(const std::string& message)
      : std::runtime_error("soleil: " + message) {}
};

/// One functional component resolved against the substrate.
struct PlannedComponent {
  const model::Component* component = nullptr;
  /// Non-null for active components.
  const model::ActiveComponent* active = nullptr;
  rtsj::MemoryArea* area = nullptr;
  /// Non-null for active components (their logical thread).
  rtsj::RealtimeThread* thread = nullptr;
  std::string content_class;
  /// Executive partition (worker thread / simulated CPU) this component is
  /// pinned to. Components connected by synchronous bindings always share a
  /// partition, so synchronous calls never cross workers. 0 in
  /// single-partition plans.
  std::size_t partition = 0;
  /// Declared criticality, defaulted to High when the architecture does
  /// not classify the component — the overload governor may only degrade
  /// components explicitly marked Low.
  model::Criticality criticality = model::Criticality::High;
  /// Stochastic timing contract to monitor at runtime; nullptr when the
  /// component is uncontracted. Points into the Architecture, which
  /// outlives every plan made from it (or, for hot-added components, into
  /// the application-owned shadow metamodel object).
  const model::TimingContract* contract = nullptr;
  /// True once a live reload removed the component: its releases and
  /// activations are retired, but the slot stays (deque references into
  /// the plan must remain valid, and its area-allocated state persists
  /// until the area is reclaimed — RTSJ semantics).
  bool retired = false;
};

/// One binding resolved: pattern op plus the areas for staging and buffer.
struct PlannedBinding {
  const model::Binding* binding = nullptr;
  const model::Component* client = nullptr;
  const model::Component* server = nullptr;
  model::Protocol protocol = model::Protocol::Synchronous;
  std::size_t buffer_size = 0;
  membrane::PatternOp op = membrane::PatternOp::Direct;
  /// Area holding the server's state (pattern construction input).
  rtsj::MemoryArea* server_area = nullptr;
  /// Area for the pattern's staged copy (nullptr for direct/scope-enter).
  rtsj::MemoryArea* staging_area = nullptr;
  /// Area holding the async message buffer (nullptr for sync bindings).
  rtsj::MemoryArea* buffer_area = nullptr;
  /// True when client and server are pinned to different partitions. Only
  /// asynchronous bindings may cross (synchronous clusters are co-located),
  /// and crossing bindings get the lock-free SPSC buffer variant.
  bool cross_partition = false;
  /// True once a live reload removed or superseded the binding.
  bool retired = false;
};

/// The full plan for one application instance.
///
/// `components` and `bindings` are deques: live reload appends hot-added
/// components and bindings while ComponentRuntime entries keep stable
/// references into them (deques never relocate on push_back). Removed
/// entries are flagged `retired`, never erased.
struct Plan {
  const model::Architecture* arch = nullptr;
  /// The immutable value snapshot this plan was resolved from (the unit
  /// the plan-delta engine diffs against a freshly loaded architecture).
  model::AssemblyPlan assembly;
  std::deque<PlannedComponent> components;
  std::deque<PlannedBinding> bindings;
  /// Number of executive partitions the components are assigned across.
  std::size_t partition_count = 1;

  /// Finds the live (non-retired) planned component of that name.
  const PlannedComponent* find_component(const std::string& name) const;
  PlannedComponent* find_component(const std::string& name);
  /// The live planned binding whose client end is (component, port).
  PlannedBinding* find_binding(const std::string& client,
                               const std::string& port);
  /// Partition of a planned component; throws for unknown names.
  std::size_t partition_of(const std::string& name) const;
};

/// Captures `arch` as an immutable value snapshot: components with their
/// deployment, bindings with their resolved RTSJ pattern and area
/// placement, modes, and the partition assignment for `partitions`
/// executive partitions. Throws PlanningError when a binding has no legal
/// pattern or endpoints do not resolve. The snapshot owns everything; the
/// architecture may be discarded afterwards.
model::AssemblyPlan snapshot_assembly(const model::Architecture& arch,
                                      std::size_t partitions = 1);

/// Partition assignment on a snapshot: components connected by synchronous
/// bindings are clustered with union-find and clusters are balanced across
/// partitions by modeled utilization (longest-processing-time first).
/// Exposed for the plan-delta engine, which re-partitions a target snapshot
/// under the constraint that surviving components keep their partitions.
void assign_partitions(model::AssemblyPlan& plan, std::size_t partitions);

/// The common design-time scope ancestor of two scoped areas, or nullptr
/// (shared by the planner's pattern placement and the runtime rebind
/// planner — one walk, one behaviour).
const model::MemoryAreaComponent* common_scope_ancestor(
    const model::Architecture& arch, const model::MemoryAreaComponent* a,
    const model::MemoryAreaComponent* b);

/// Resolves a snapshot area placement name against the running substrate:
/// the "@none"/"@immortal"/"@heap" sentinels map to null and the RTSJ
/// singletons, anything else to the named MemoryArea component of `arch`
/// (nullptr when the area is unknown — the delta validator rejects those
/// reloads up front).
rtsj::MemoryArea* resolve_area_name(const std::string& name,
                                    const model::Architecture& arch,
                                    runtime::RuntimeEnvironment& env);

/// Resolves `arch` against `env` (snapshot first, then the RTSJ substrate
/// objects). Throws PlanningError when a binding has no legal pattern or
/// endpoints do not resolve.
Plan make_plan(const model::Architecture& arch,
               runtime::RuntimeEnvironment& env, std::size_t partitions = 1);

}  // namespace rtcf::soleil
