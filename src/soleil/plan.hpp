// The infrastructure plan: the validated architecture resolved against the
// RTSJ substrate, ready for assembly in any generation mode.
//
// Planning implements §3.3's "the verification process of the architecture
// identifies the points where a glue code handling RTSJ concerns needs to
// be deployed": for every binding it fixes the communication pattern and
// decides which memory areas hold the staged copies and the message buffer.
// All three generation modes (and the code emitter) consume the same plan —
// they differ only in how much of it they reify as objects.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "membrane/patterns.hpp"
#include "model/metamodel.hpp"
#include "runtime/environment.hpp"

namespace rtcf::soleil {

/// Generation modes (§4.3).
enum class Mode { Soleil, MergeAll, UltraMerge };

const char* to_string(Mode mode) noexcept;

/// Raised when an architecture cannot be planned (it would also fail
/// validation; run validate::validate first for full diagnostics).
class PlanningError : public std::runtime_error {
 public:
  explicit PlanningError(const std::string& message)
      : std::runtime_error("soleil: " + message) {}
};

/// One functional component resolved against the substrate.
struct PlannedComponent {
  const model::Component* component = nullptr;
  /// Non-null for active components.
  const model::ActiveComponent* active = nullptr;
  rtsj::MemoryArea* area = nullptr;
  /// Non-null for active components (their logical thread).
  rtsj::RealtimeThread* thread = nullptr;
  std::string content_class;
  /// Executive partition (worker thread / simulated CPU) this component is
  /// pinned to. Components connected by synchronous bindings always share a
  /// partition, so synchronous calls never cross workers. 0 in
  /// single-partition plans.
  std::size_t partition = 0;
  /// Declared criticality, defaulted to High when the architecture does
  /// not classify the component — the overload governor may only degrade
  /// components explicitly marked Low.
  model::Criticality criticality = model::Criticality::High;
  /// Stochastic timing contract to monitor at runtime; nullptr when the
  /// component is uncontracted. Points into the Architecture, which
  /// outlives every plan made from it.
  const model::TimingContract* contract = nullptr;
};

/// One binding resolved: pattern op plus the areas for staging and buffer.
struct PlannedBinding {
  const model::Binding* binding = nullptr;
  const model::Component* client = nullptr;
  const model::Component* server = nullptr;
  model::Protocol protocol = model::Protocol::Synchronous;
  std::size_t buffer_size = 0;
  membrane::PatternOp op = membrane::PatternOp::Direct;
  /// Area holding the server's state (pattern construction input).
  rtsj::MemoryArea* server_area = nullptr;
  /// Area for the pattern's staged copy (nullptr for direct/scope-enter).
  rtsj::MemoryArea* staging_area = nullptr;
  /// Area holding the async message buffer (nullptr for sync bindings).
  rtsj::MemoryArea* buffer_area = nullptr;
  /// True when client and server are pinned to different partitions. Only
  /// asynchronous bindings may cross (synchronous clusters are co-located),
  /// and crossing bindings get the lock-free SPSC buffer variant.
  bool cross_partition = false;
};

/// The full plan for one application instance.
struct Plan {
  const model::Architecture* arch = nullptr;
  std::vector<PlannedComponent> components;
  std::vector<PlannedBinding> bindings;
  /// Number of executive partitions the components are assigned across.
  std::size_t partition_count = 1;

  const PlannedComponent* find_component(const std::string& name) const;
  /// Partition of a planned component; throws for unknown names.
  std::size_t partition_of(const std::string& name) const;
};

/// Resolves `arch` against `env`. Throws PlanningError when a binding has
/// no legal pattern or endpoints do not resolve.
///
/// `partitions` spreads the components across that many executive
/// partitions (worker threads in the wall-clock launcher, CPUs in the
/// simulator): components connected by synchronous bindings are clustered
/// with union-find and clusters are balanced across partitions by modeled
/// utilization (longest-processing-time first). 1 keeps the single-core
/// plan unchanged.
Plan make_plan(const model::Architecture& arch,
               runtime::RuntimeEnvironment& env, std::size_t partitions = 1);

/// Re-derives the partition assignment of an existing plan (exposed for
/// tests and tools; make_plan already calls it).
void assign_partitions(Plan& plan, std::size_t partitions);

}  // namespace rtcf::soleil
